//! Cross-crate durability and streaming-ingestion tests: a persisted index
//! must reload bit-identically for *arbitrary* workloads, a damaged file must
//! never load, and an ingest batch must publish exactly one snapshot epoch
//! that in-flight readers do not observe.

use digital_traces::index::{IndexConfig, IngestBuffer, JoinOptions, MinSigIndex};
use digital_traces::{EntityId, PaperAdm, Period, PresenceInstance, SpIndex, TraceSet};
use proptest::prelude::*;

/// An arbitrary small trace workload over a fixed 3-level hierarchy: every
/// element is `(entity 0..12, base-unit index 0..24, start hour 0..48,
/// duration 1..5 hours)`.
fn workload_strategy() -> impl Strategy<Value = Vec<(u64, usize, u64, u64)>> {
    proptest::collection::vec((0u64..12, 0usize..24, 0u64..48, 1u64..5), 1..120)
}

fn record_of(base: &[u32], item: (u64, usize, u64, u64)) -> PresenceInstance {
    let (entity, unit, start_hour, hours) = item;
    let start = start_hour * 60;
    PresenceInstance::new(
        EntityId(entity),
        base[unit % base.len()],
        Period::new(start, start + hours * 60).unwrap(),
    )
}

fn build_traces(workload: &[(u64, usize, u64, u64)]) -> (SpIndex, TraceSet) {
    let sp = SpIndex::uniform(2, &[3, 4]).unwrap();
    let base = sp.base_units().to_vec();
    let mut traces = TraceSet::new(60);
    for &item in workload {
        traces.record(record_of(&base, item));
    }
    (sp, traces)
}

fn temp_path(name: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("digital-traces-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{case}.msix"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Round trip: build → save → load answers every `top_k` and `top_k_join`
    /// query bit-identically to the freshly built index — degrees, order and
    /// all — without rebuilding.
    #[test]
    fn save_then_open_answers_identically(
        workload in workload_strategy(),
        k in 1usize..6,
        nh in 4u32..40,
    ) {
        let (sp, traces) = build_traces(&workload);
        let config = IndexConfig { num_hash_functions: nh, ..IndexConfig::default() };
        let built = MinSigIndex::build(&sp, &traces, config).unwrap();
        let path = temp_path("round-trip", (workload.len() as u64) * 1000 + nh as u64);
        built.save(&path).unwrap();
        let opened = MinSigIndex::open(&path).unwrap();
        std::fs::remove_file(&path).unwrap();

        prop_assert_eq!(opened.num_entities(), built.num_entities());
        prop_assert_eq!(opened.tree().num_nodes(), built.tree().num_nodes());
        let measure = PaperAdm::default_for(sp.height() as usize);
        let probes: Vec<EntityId> = traces.entities().collect();
        for &query in &probes {
            let (a, _) = built.top_k(query, k, &measure).unwrap();
            let (b, _) = opened.top_k(query, k, &measure).unwrap();
            prop_assert_eq!(a, b, "top_k({}) diverged after reload", query);
        }
        let options = JoinOptions { k, ..JoinOptions::default() };
        let (join_a, _) = built.top_k_join(&probes, &measure, options).unwrap();
        let (join_b, _) = opened.top_k_join(&probes, &measure, options).unwrap();
        prop_assert_eq!(join_a.len(), join_b.len());
        for (a, b) in join_a.iter().zip(join_b.iter()) {
            prop_assert_eq!(a.probe, b.probe);
            // Compare answers only: the rows' SearchStats carry wall-clock time.
            prop_assert_eq!(&a.matches, &b.matches, "join diverged for probe {}", a.probe);
        }
    }

    /// Epoch isolation: a snapshot taken before a flush never observes any
    /// part of the batch, the flush publishes exactly one epoch, and the new
    /// state equals a from-scratch rebuild over the merged records.
    #[test]
    fn ingest_publishes_one_epoch_and_isolates_readers(
        seed_workload in workload_strategy(),
        stream in proptest::collection::vec((0u64..20, 0usize..24, 48u64..96, 1u64..4), 1..200),
    ) {
        let (sp, mut traces) = build_traces(&seed_workload);
        let base = sp.base_units().to_vec();
        let config = IndexConfig { num_hash_functions: 16, ..IndexConfig::default() };
        let mut index = MinSigIndex::build(&sp, &traces, config).unwrap();
        let measure = PaperAdm::default_for(sp.height() as usize);

        let reader = index.snapshot();
        let reader_entities = reader.num_entities();
        let seed_entities: Vec<EntityId> = traces.entities().collect();
        let reader_answers: Vec<_> = seed_entities
            .iter()
            .map(|&e| reader.top_k(e, 3, &measure).unwrap().0)
            .collect();

        let mut buffer = IngestBuffer::with_capacity(stream.len());
        for &item in &stream {
            let record = record_of(&base, item);
            buffer.push(record);
            traces.record(record);
        }
        let report = buffer.flush(&mut index).unwrap();
        prop_assert_eq!(report.records, stream.len());
        prop_assert_eq!(report.epoch, 1, "one batch must publish exactly one epoch");
        prop_assert_eq!(index.epoch(), 1);
        prop_assert!(buffer.is_empty());

        // The pre-flush snapshot is frozen: same entity count, same answers.
        prop_assert_eq!(reader.num_entities(), reader_entities);
        for (&e, expected) in seed_entities.iter().zip(&reader_answers) {
            let (got, _) = reader.top_k(e, 3, &measure).unwrap();
            prop_assert_eq!(&got, expected, "pre-flush snapshot drifted for {}", e);
        }

        // The post-flush state equals a from-scratch rebuild (hash range
        // pinned to the incremental index's resolved range, since a rebuild
        // would re-derive it from the merged data).
        let pinned = IndexConfig { hash_range: Some(index.hasher().range()), ..config };
        let rebuilt = MinSigIndex::build(&sp, &traces, pinned).unwrap();
        prop_assert_eq!(index.num_entities(), rebuilt.num_entities());
        for e in traces.entities() {
            let (a, _) = index.top_k(e, 3, &measure).unwrap();
            let (b, _) = rebuilt.top_k(e, 3, &measure).unwrap();
            prop_assert_eq!(a, b, "post-flush answers diverge from rebuild for {}", e);
        }
    }
}

/// Crash safety: truncating the segment file at any prefix length — including
/// mid-segment, mid-checksum and missing-END cuts — must yield a corruption
/// error from `open`, never a partially loaded index.
#[test]
fn truncated_index_file_never_loads() {
    let (sp, traces) = build_traces(&[
        (0, 0, 0, 2),
        (1, 0, 1, 2),
        (2, 5, 0, 3),
        (3, 9, 10, 1),
        (4, 14, 20, 2),
        (5, 21, 30, 4),
    ]);
    let _ = sp;
    let index = MinSigIndex::build(
        &sp,
        &traces,
        IndexConfig { num_hash_functions: 8, ..IndexConfig::default() },
    )
    .unwrap();
    let path = temp_path("truncate", 0);
    index.save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();

    for cut in 0..bytes.len() {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let err = MinSigIndex::open(&path).expect_err("truncated file must not load");
        assert!(
            matches!(
                err,
                digital_traces::index::IndexError::Corrupt(_)
                    | digital_traces::index::IndexError::Io(_)
            ),
            "cut at {cut} of {} produced unexpected error {err:?}",
            bytes.len()
        );
    }

    // The intact file still loads and answers.
    std::fs::write(&path, &bytes).unwrap();
    let reopened = MinSigIndex::open(&path).unwrap();
    assert_eq!(reopened.num_entities(), index.num_entities());
    std::fs::remove_file(&path).unwrap();
}

/// The acceptance-criteria scenario end to end: a 10k-record batch flushes as
/// one epoch while a reader on the prior epoch keeps its exact view, and the
/// post-flush index survives a save/open round trip.
#[test]
fn ten_thousand_record_batch_is_one_epoch() {
    let sp = SpIndex::uniform(3, &[4, 4]).unwrap();
    let base = sp.base_units().to_vec();
    let mut traces = TraceSet::new(60);
    for e in 0..50u64 {
        for s in 0..4u64 {
            traces.record(PresenceInstance::new(
                EntityId(e),
                base[((e * 7 + s * 3) % base.len() as u64) as usize],
                Period::new(s * 120, s * 120 + 60).unwrap(),
            ));
        }
    }
    let mut index = MinSigIndex::build(
        &sp,
        &traces,
        IndexConfig { num_hash_functions: 32, ..IndexConfig::default() },
    )
    .unwrap();
    let measure = PaperAdm::default_for(sp.height() as usize);
    let reader = index.snapshot();
    let (reader_top, _) = reader.top_k(EntityId(0), 5, &measure).unwrap();

    let records: Vec<PresenceInstance> = (0..10_000u64)
        .map(|i| {
            let entity = if i % 4 == 0 { EntityId(100 + i % 37) } else { EntityId(i % 50) };
            let start = 1_000 + (i % 200) * 60;
            PresenceInstance::new(
                entity,
                base[((i * 31) % base.len() as u64) as usize],
                Period::new(start, start + 45).unwrap(),
            )
        })
        .collect();
    let report = index.ingest_batch(records).unwrap();
    assert_eq!(report.records, 10_000);
    assert_eq!(report.epoch, 1);
    assert_eq!(report.entities_inserted, 37);
    assert_eq!(index.num_entities(), 87);

    // Reader on the prior epoch: bit-identical answers, old entity count.
    assert_eq!(reader.num_entities(), 50);
    let (reader_top_after, _) = reader.top_k(EntityId(0), 5, &measure).unwrap();
    assert_eq!(reader_top, reader_top_after);

    // The merged index survives persistence.
    let path = temp_path("ten-k", 1);
    index.save(&path).unwrap();
    let reopened = MinSigIndex::open(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(reopened.num_entities(), 87);
    let (a, _) = index.top_k(EntityId(100), 5, &measure).unwrap();
    let (b, _) = reopened.top_k(EntityId(100), 5, &measure).unwrap();
    assert_eq!(a, b);
}
