//! Concurrency contract of the unified query engine: N threads querying one
//! `Arc<IndexSnapshot>` produce results identical to sequential execution,
//! batch evaluation equals per-entity evaluation, and snapshots are isolated
//! from subsequent updates on the index handle.

use digital_traces::index::{IndexConfig, JoinOptions, MinSigIndex, TopKResult};
use digital_traces::{EntityId, PaperAdm, Period, PresenceInstance, SpIndex, TraceSet};
use proptest::prelude::*;
use std::sync::Arc;

/// Deterministic paired dataset: entities (2i, 2i+1) share an itinerary.
fn paired_dataset(pairs: usize) -> (SpIndex, TraceSet) {
    let sp = SpIndex::uniform(3, &[4, 4]).unwrap();
    let base = sp.base_units().to_vec();
    let mut traces = TraceSet::new(60);
    for i in 0..pairs {
        for member in 0..2u64 {
            let entity = EntityId(2 * i as u64 + member);
            for step in 0..6u64 {
                let unit = base[(i * 7 + step as usize) % base.len()];
                let start = step * 180;
                traces.record(PresenceInstance::new(
                    entity,
                    unit,
                    Period::new(start, start + 60).unwrap(),
                ));
            }
            let noise = base[(i * 13 + member as usize * 29 + 5) % base.len()];
            traces.record(PresenceInstance::new(
                entity,
                noise,
                Period::new(2000 + member * 120, 2060 + member * 120).unwrap(),
            ));
        }
    }
    (sp, traces)
}

fn assert_same_results(a: &[TopKResult], b: &[TopKResult], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: result lengths differ");
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.entity, y.entity, "{context}: entities differ");
        assert!(
            (x.degree - y.degree).abs() < 1e-15,
            "{context}: degrees differ ({} vs {})",
            x.degree,
            y.degree
        );
    }
}

#[test]
fn n_threads_over_one_snapshot_match_sequential_execution() {
    let (sp, traces) = paired_dataset(30);
    let index = MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(64)).unwrap();
    let measure = PaperAdm::default_for(sp.height() as usize);
    let queries: Vec<EntityId> = (0..60u64).map(EntityId).collect();
    let k = 5;

    // Ground truth: sequential evaluation on the handle.
    let sequential: Vec<Vec<TopKResult>> =
        queries.iter().map(|&q| index.top_k(q, k, &measure).unwrap().0).collect();

    // 8 worker threads share one snapshot; each evaluates a stripe of the
    // query set.
    let snapshot = index.snapshot();
    let threads = 8;
    let mut parallel: Vec<Option<Vec<TopKResult>>> = vec![None; queries.len()];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let snapshot = Arc::clone(&snapshot);
                let queries = &queries;
                let measure = &measure;
                scope.spawn(move || {
                    (t..queries.len())
                        .step_by(threads)
                        .map(|i| (i, snapshot.top_k(queries[i], k, measure).unwrap().0))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (i, results) in handle.join().unwrap() {
                parallel[i] = Some(results);
            }
        }
    });

    for (i, (seq, par)) in sequential.iter().zip(parallel.iter()).enumerate() {
        let par = par.as_ref().expect("every query index was covered");
        assert_same_results(seq, par, &format!("query {i}"));
    }
}

#[test]
fn batch_and_parallel_join_match_sequential_join_exactly() {
    let (sp, traces) = paired_dataset(25);
    let index = MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(48)).unwrap();
    let measure = PaperAdm::default_for(sp.height() as usize);
    let probes: Vec<EntityId> = (0..50u64).map(EntityId).collect();
    let snapshot = index.snapshot();

    let (seq_rows, _) = snapshot
        .top_k_join(&probes, &measure, JoinOptions { k: 4, threads: 1, ..JoinOptions::default() })
        .unwrap();
    let (par_rows, _) = snapshot
        .top_k_join(&probes, &measure, JoinOptions { k: 4, threads: 8, ..JoinOptions::default() })
        .unwrap();
    let batch = snapshot.top_k_batch(&probes, 4, &measure).unwrap();

    assert_eq!(seq_rows.len(), par_rows.len());
    assert_eq!(seq_rows.len(), batch.len());
    for ((s, p), (b, _)) in seq_rows.iter().zip(par_rows.iter()).zip(batch.iter()) {
        assert_eq!(s.probe, p.probe);
        assert_same_results(&s.matches, &p.matches, "join parallel vs sequential");
        assert_same_results(&s.matches, b, "batch vs sequential join");
    }
}

#[test]
fn snapshots_are_isolated_from_later_updates() {
    let (sp, traces) = paired_dataset(10);
    let mut index = MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(32)).unwrap();
    let measure = PaperAdm::default_for(sp.height() as usize);

    let before = index.snapshot();
    let (top_before, _) = before.top_k(EntityId(0), 1, &measure).unwrap();
    assert_eq!(top_before[0].entity, EntityId(1));

    // Remove entity 0's partner on the handle; the old snapshot must not move.
    index.remove_entity(EntityId(1)).unwrap();
    assert!(!before.contains(EntityId(999)));
    assert!(before.contains(EntityId(1)), "snapshot still holds the removed entity");
    assert_eq!(before.num_entities(), 20);
    assert_eq!(index.num_entities(), 19);

    let (old_view, _) = before.top_k(EntityId(0), 1, &measure).unwrap();
    assert_eq!(old_view[0].entity, EntityId(1), "reads on the old snapshot are stable");
    let (new_view, _) = index.top_k(EntityId(0), 1, &measure).unwrap();
    assert_ne!(new_view[0].entity, EntityId(1), "the handle sees the removal");

    // And concurrent readers on the old snapshot while the handle keeps
    // mutating: every thread must see the pre-update answer throughout.
    std::thread::scope(|scope| {
        let reader = scope.spawn(|| {
            for _ in 0..50 {
                let (r, _) = before.top_k(EntityId(0), 1, &measure).unwrap();
                assert_eq!(r[0].entity, EntityId(1));
            }
        });
        for victim in [2u64, 3, 4] {
            index.remove_entity(EntityId(victim)).unwrap();
        }
        reader.join().unwrap();
    });
    assert_eq!(index.num_entities(), 16);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `top_k_batch` equals per-entity `top_k` for every entity, for arbitrary
    /// workloads and k.
    #[test]
    fn batch_equals_per_entity_top_k(
        workload in proptest::collection::vec((0u64..10, 0usize..16, 0u64..48, 1u64..4), 1..80),
        k in 1usize..6,
    ) {
        let sp = SpIndex::uniform(2, &[4, 4]).unwrap();
        let base = sp.base_units().to_vec();
        let mut traces = TraceSet::new(60);
        for &(entity, unit, start_hour, hours) in &workload {
            let start = start_hour * 60;
            traces.record(PresenceInstance::new(
                EntityId(entity),
                base[unit % base.len()],
                Period::new(start, start + hours * 60).unwrap(),
            ));
        }
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(16)).unwrap();
        let measure = PaperAdm::default_for(sp.height() as usize);
        let entities: Vec<EntityId> = traces.entities().collect();

        let batch = index.top_k_batch(&entities, k, &measure).unwrap();
        prop_assert_eq!(batch.len(), entities.len());
        for (&entity, (results, stats)) in entities.iter().zip(batch.iter()) {
            let (single, single_stats) = index.top_k(entity, k, &measure).unwrap();
            prop_assert_eq!(results.len(), single.len());
            for (b, s) in results.iter().zip(single.iter()) {
                prop_assert_eq!(b.entity, s.entity);
                prop_assert!((b.degree - s.degree).abs() < 1e-15);
            }
            // Work accounting is deterministic too, not just the answers.
            prop_assert_eq!(stats.entities_checked, single_stats.entities_checked);
            prop_assert_eq!(stats.nodes_visited, single_stats.nodes_visited);
        }
    }
}
