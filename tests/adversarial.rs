//! Adversarial and degenerate workloads for the index: duplicated entities,
//! empty traces, single-cell traces, heavily skewed populations, and every
//! entity piled into one ST-cell.  Exactness and termination must hold on all of
//! them — on the unsharded index *and* behind the sharded fan-out.
//!
//! The populations come from the shared `minsig::testkit` generator, so the
//! shapes exercised here are exactly the ones the conformance and stress
//! suites draw from.

use digital_traces::index::testkit::{
    assert_equivalent_answers, assert_exact_for_all, HierarchySpec, SkewedConfig, UniformConfig,
    Workload,
};
use digital_traces::index::{IndexConfig, ShardedMinSigIndex};
use digital_traces::{DiceAdm, EntityId, PaperAdm};

#[test]
fn all_entities_identical() {
    // Every entity has exactly the same trace: every degree ties, and the search
    // must still terminate after checking at most the whole population.
    let w = Workload::all_identical(30, HierarchySpec::new(2, &[3]));
    let index = w.build_index(IndexConfig::with_hash_functions(16));
    let measure = PaperAdm::default_for(2);
    assert_exact_for_all(&index, 5, &measure);
    let (results, stats) = index.top_k(EntityId(0), 5, &measure).unwrap();
    assert_eq!(results.len(), 5);
    assert!(results.iter().all(|r| (r.degree - results[0].degree).abs() < 1e-12));
    assert!(stats.entities_checked <= 30);
}

#[test]
fn everyone_in_one_cell_plus_one_hermit() {
    // 49 entities share a single ST-cell; one entity lives alone elsewhere.
    let w = Workload::one_cell_pileup(49, HierarchySpec::new(2, &[4]));
    let index = w.build_index(IndexConfig::with_hash_functions(8));
    let measure = PaperAdm::default_for(2);
    assert_exact_for_all(&index, 3, &measure);
    // The hermit's best association degree is zero.
    let (results, _) = index.top_k(EntityId(49), 1, &measure).unwrap();
    assert!(results.is_empty() || results[0].degree == 0.0);
}

#[test]
fn empty_and_single_cell_traces_coexist() {
    let w = Workload::degenerate_mix(HierarchySpec::new(3, &[3, 3]));
    let index = w.build_index(IndexConfig::with_hash_functions(16));
    let measure = PaperAdm::default_for(3);
    assert_exact_for_all(&index, 3, &measure);
    // The empty-trace entity is never associated with anyone.
    let (results, _) = index.top_k(EntityId(3), 2, &measure).unwrap();
    assert!(results.iter().all(|r| r.degree == 0.0));
    // The single-cell entity's best match is one of the pair (they cover its cell).
    let (results, _) = index.top_k(EntityId(2), 1, &measure).unwrap();
    assert!(results[0].degree > 0.0);
    assert!(results[0].entity == EntityId(0) || results[0].entity == EntityId(1));
}

#[test]
fn heavily_skewed_population() {
    // One "celebrity" entity visits everything; many tiny entities visit one cell
    // each.  The celebrity must not crowd out the tiny entities' true partners.
    let config = SkewedConfig {
        celebrities: 1,
        celebrity_visits_per_unit: 10,
        pairs: 10,
        hierarchy: HierarchySpec::new(2, &[8]),
        seed: 5,
    };
    let w = Workload::skewed(config);
    let index = w.build_index(IndexConfig::with_hash_functions(32));
    let measure = PaperAdm::default_for(2);
    assert_exact_for_all(&index, 2, &measure);
    // A tiny entity's top-1 is its partner, not the celebrity (the celebrity's
    // huge trace dilutes its Dice-style ratio).
    let (results, _) = index.top_k(EntityId(1), 1, &measure).unwrap();
    assert_eq!(results[0].entity, EntityId(2));
}

#[test]
fn adversarial_shapes_survive_the_sharded_fan_out() {
    // The same degenerate populations, served through shards: the sharded
    // fan-out must answer fully bit-identically to the unsharded index —
    // these shapes maximise boundary ties, which tie-complete pruning pins
    // by entity id on every execution strategy.
    let workloads = [
        Workload::all_identical(30, HierarchySpec::new(2, &[3])),
        Workload::one_cell_pileup(49, HierarchySpec::new(2, &[4])),
        Workload::degenerate_mix(HierarchySpec::new(3, &[3, 3])),
        Workload::skewed(SkewedConfig::default()),
    ];
    for w in workloads {
        let config = IndexConfig::with_hash_functions(16);
        let unsharded = w.build_index(config);
        let sharded = ShardedMinSigIndex::build(&w.sp, &w.traces, config, 4).unwrap();
        let measure = w.measure();
        for query in w.entities() {
            let (a, _) = unsharded.top_k(query, 5, &measure).unwrap();
            let (b, _) = sharded.top_k(query, 5, &measure).unwrap();
            assert_equivalent_answers(&b, &a, &format!("sharded fan-out for query {query}"));
        }
    }
}

#[test]
fn dice_and_paper_measures_agree_on_rankings_for_single_level() {
    // With a single-level hierarchy both measures are monotone transforms of the
    // same per-level ratio, so a zero/non-zero top answer must coincide.
    let w = Workload::uniform(UniformConfig {
        entities: 12,
        visits: 3,
        time_slots: 6,
        hierarchy: HierarchySpec::flat(6),
        seed: 11,
    });
    let index = w.build_index(IndexConfig::with_hash_functions(16));
    let paper = PaperAdm::default_for(1);
    let dice = DiceAdm::uniform(1);
    for query in 0..12u64 {
        let (a, _) = index.top_k(EntityId(query), 1, &paper).unwrap();
        let (b, _) = index.top_k(EntityId(query), 1, &dice).unwrap();
        if let (Some(x), Some(y)) = (a.first(), b.first()) {
            // Degrees differ (different normalisation) but a zero/non-zero answer
            // must agree.
            assert_eq!(x.degree == 0.0, y.degree == 0.0, "query {query}");
        }
    }
}
