//! Adversarial and degenerate workloads for the index: duplicated entities,
//! empty traces, single-cell traces, heavily skewed populations, and every
//! entity piled into one ST-cell.  Exactness and termination must hold on all of
//! them.

use digital_traces::index::{IndexConfig, MinSigIndex};
use digital_traces::{
    DiceAdm, DigitalTrace, EntityId, PaperAdm, Period, PresenceInstance, SpIndex, TraceSet,
};

fn assert_exact(index: &MinSigIndex, k: usize, measure: &PaperAdm) {
    for query in index.sequences().keys().copied().collect::<Vec<_>>() {
        let (got, _) = index.top_k(query, k, measure).unwrap();
        let expect = index.brute_force(query, k, measure).unwrap();
        assert_eq!(got.len(), expect.len(), "query {query}");
        for (g, e) in got.iter().zip(expect.iter()) {
            assert!((g.degree - e.degree).abs() < 1e-9, "query {query}");
        }
    }
}

#[test]
fn all_entities_identical() {
    // Every entity has exactly the same trace: every degree ties, and the search
    // must still terminate after checking at most the whole population.
    let sp = SpIndex::uniform(2, &[3]).unwrap();
    let base = sp.base_units().to_vec();
    let mut traces = TraceSet::new(60);
    for e in 0..30u64 {
        for (i, &unit) in base.iter().enumerate() {
            traces.record(PresenceInstance::new(
                EntityId(e),
                unit,
                Period::new(i as u64 * 60, i as u64 * 60 + 60).unwrap(),
            ));
        }
    }
    let index = MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(16)).unwrap();
    let measure = PaperAdm::default_for(2);
    assert_exact(&index, 5, &measure);
    let (results, stats) = index.top_k(EntityId(0), 5, &measure).unwrap();
    assert_eq!(results.len(), 5);
    assert!(results.iter().all(|r| (r.degree - results[0].degree).abs() < 1e-12));
    assert!(stats.entities_checked <= 30);
}

#[test]
fn everyone_in_one_cell_plus_one_hermit() {
    // 49 entities share a single ST-cell; one entity lives alone elsewhere.
    let sp = SpIndex::uniform(2, &[4]).unwrap();
    let base = sp.base_units().to_vec();
    let mut traces = TraceSet::new(60);
    for e in 0..49u64 {
        traces.record(PresenceInstance::new(EntityId(e), base[0], Period::new(0, 60).unwrap()));
    }
    traces.record(PresenceInstance::new(EntityId(49), base[7], Period::new(0, 60).unwrap()));
    let index = MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(8)).unwrap();
    let measure = PaperAdm::default_for(2);
    assert_exact(&index, 3, &measure);
    // The hermit's best association degree is zero.
    let (results, _) = index.top_k(EntityId(49), 1, &measure).unwrap();
    assert!(results.is_empty() || results[0].degree == 0.0);
}

#[test]
fn empty_and_single_cell_traces_coexist() {
    let sp = SpIndex::uniform(3, &[3, 3]).unwrap();
    let base = sp.base_units().to_vec();
    let mut traces = TraceSet::new(60);
    // A normal pair.
    for e in [0u64, 1] {
        for i in 0..5u64 {
            traces.record(PresenceInstance::new(
                EntityId(e),
                base[i as usize],
                Period::new(i * 60, i * 60 + 60).unwrap(),
            ));
        }
    }
    // A single-cell entity and an entity with an empty (zero-length) presence.
    traces.record(PresenceInstance::new(EntityId(2), base[0], Period::new(0, 60).unwrap()));
    traces.insert_trace(EntityId(3), DigitalTrace::new());
    let index = MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(16)).unwrap();
    let measure = PaperAdm::default_for(3);
    assert_exact(&index, 3, &measure);
    // The empty-trace entity is never associated with anyone.
    let (results, _) = index.top_k(EntityId(3), 2, &measure).unwrap();
    assert!(results.iter().all(|r| r.degree == 0.0));
    // The single-cell entity's best match is one of the pair (they cover its cell).
    let (results, _) = index.top_k(EntityId(2), 1, &measure).unwrap();
    assert!(results[0].degree > 0.0);
    assert!(results[0].entity == EntityId(0) || results[0].entity == EntityId(1));
}

#[test]
fn heavily_skewed_population() {
    // One "celebrity" entity visits everything; many tiny entities visit one cell
    // each.  The celebrity must not crowd out the tiny entities' true partners.
    let sp = SpIndex::uniform(2, &[8]).unwrap();
    let base = sp.base_units().to_vec();
    let mut traces = TraceSet::new(60);
    for (i, &unit) in base.iter().enumerate() {
        for t in 0..10u64 {
            traces.record(PresenceInstance::new(
                EntityId(0),
                unit,
                Period::new((i as u64 * 10 + t) * 60, (i as u64 * 10 + t) * 60 + 60).unwrap(),
            ));
        }
    }
    // Pairs of tiny entities sharing one specific cell each.
    for p in 0..10u64 {
        let unit = base[(p % base.len() as u64) as usize];
        let start = p * 600;
        for member in 0..2u64 {
            traces.record(PresenceInstance::new(
                EntityId(1 + 2 * p + member),
                unit,
                Period::new(start, start + 60).unwrap(),
            ));
        }
    }
    let index = MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(32)).unwrap();
    let measure = PaperAdm::default_for(2);
    assert_exact(&index, 2, &measure);
    // A tiny entity's top-1 is its partner, not the celebrity (the celebrity's
    // huge trace dilutes its Dice-style ratio).
    let (results, _) = index.top_k(EntityId(1), 1, &measure).unwrap();
    assert_eq!(results[0].entity, EntityId(2));
}

#[test]
fn dice_and_paper_measures_agree_on_rankings_for_single_level() {
    // With a single-level hierarchy both measures are monotone transforms of the
    // same per-level ratio, so the top-1 answer must coincide.
    let sp = SpIndex::uniform(6, &[]).unwrap();
    let base = sp.base_units().to_vec();
    let mut traces = TraceSet::new(60);
    for e in 0..12u64 {
        for i in 0..(e % 4 + 1) {
            traces.record(PresenceInstance::new(
                EntityId(e),
                base[((e / 2 + i) % 6) as usize],
                Period::new(i * 60, i * 60 + 60).unwrap(),
            ));
        }
    }
    let index = MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(16)).unwrap();
    let paper = PaperAdm::default_for(1);
    let dice = DiceAdm::uniform(1);
    for query in 0..12u64 {
        let (a, _) = index.top_k(EntityId(query), 1, &paper).unwrap();
        let (b, _) = index.top_k(EntityId(query), 1, &dice).unwrap();
        if let (Some(x), Some(y)) = (a.first(), b.first()) {
            // Degrees differ (different normalisation) but a zero/non-zero answer
            // must agree, and non-zero answers must rank the same entity or tie.
            assert_eq!(x.degree == 0.0, y.degree == 0.0, "query {query}");
        }
    }
}
