//! Black-box conformance of the cost-based query planner: for random
//! populations, arbitrary shard counts, arbitrary synopsis sketch sizes and
//! every planner-knob combination, the planned sharded paths must answer
//! **fully bit-identically** to the unplanned scheduler paths, the unsharded
//! index and the brute-force oracle — boundary ties included.  On the
//! planted planner workloads the planner must also *do* what it promises:
//! skip every background shard of the localized population, skip nothing on
//! the dispersed one, and report both through `QueryStats`.
//!
//! Persistence: a saved-then-reopened sharded index must carry exactly the
//! synopsis a freshly rebuilt index would (sketch size included), and
//! version-1 directories written before synopses existed must still open
//! and answer identically.

use digital_traces::index::testkit::{
    assert_equivalent_answers, PlannerDispersedConfig, PlannerLocalizedConfig, UniformConfig,
    Workload,
};
use digital_traces::index::{
    shard::SHARD_MANIFEST_FILE, IndexConfig, MinSigIndex, PlannerConfig, QueryOptions,
    SchedulerConfig, ShardedMinSigIndex, Synopsis, INDEX_MAGIC, PARTITION_VERSION,
    SHARD_MANIFEST_MAGIC,
};
use digital_traces::storage::segment::{self, SegmentReader, SegmentWriter};
use proptest::prelude::*;

fn build_pair(
    entities: u64,
    visits: u64,
    seed: u64,
    nh: u32,
    shards: usize,
) -> (Workload, MinSigIndex, ShardedMinSigIndex) {
    let w = Workload::uniform(UniformConfig {
        entities,
        visits,
        time_slots: 48,
        seed,
        ..UniformConfig::default()
    });
    let config = IndexConfig { num_hash_functions: nh, ..IndexConfig::default() };
    let unsharded = w.build_index(config);
    let sharded = ShardedMinSigIndex::build(&w.sp, &w.traces, config, shards).unwrap();
    (w, unsharded, sharded)
}

fn temp_dir(name: &str, tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("planner-test-{}-{name}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The heart of the contract: planned == unplanned == unsharded ==
    /// brute force, fully bit-identical, over arbitrary shard counts,
    /// sketch sizes `m` and planner knobs (seeding and skipping toggled
    /// independently, scan cutoff swept through "never", "sometimes" and
    /// "always scan").
    #[test]
    fn planned_answers_are_bit_identical_to_unplanned_and_oracle(
        entities in 2u64..40,
        visits in 1u64..8,
        seed in 0u64..1_000,
        nh in 4u32..32,
        shards in 1usize..9,
        k in 1usize..7,
        m in 0usize..20,
        seed_threshold in any::<bool>(),
        skip_shards in any::<bool>(),
        scan_cutoff in 0usize..50,
    ) {
        let (w, unsharded, mut sharded) = build_pair(entities, visits, seed, nh, shards);
        sharded.set_synopsis_sketch_size(m);
        let planner = PlannerConfig { seed_threshold, skip_shards, scan_cutoff, ..PlannerConfig::default() };
        let measure = w.measure();
        let snapshot = sharded.snapshot();
        for query in w.entities() {
            let (planned, stats) = snapshot
                .top_k_with_planner(
                    query, k, &measure, QueryOptions::default(),
                    SchedulerConfig::default(), planner,
                )
                .unwrap();
            let (unplanned, _) = snapshot
                .top_k_with_scheduler(
                    query, k, &measure, QueryOptions::default(), SchedulerConfig::default(),
                )
                .unwrap();
            assert_equivalent_answers(
                &planned, &unplanned,
                &format!("planned vs unplanned, {planner:?}, m={m}, {query}"),
            );
            let (exact, _) = unsharded.top_k(query, k, &measure).unwrap();
            assert_equivalent_answers(&planned, &exact, &format!("planned vs unsharded, {query}"));
            let oracle = unsharded.brute_force(query, k, &measure).unwrap();
            assert_equivalent_answers(&planned, &oracle, &format!("planned vs oracle, {query}"));
            // The counters only ever report what the knobs allow.
            if !skip_shards {
                prop_assert_eq!(stats.shards_skipped, 0, "skipping was off");
            }
            if !seed_threshold {
                prop_assert!(!stats.threshold_seeded, "seeding was off");
            }
            prop_assert!(stats.shards_skipped < shards, "a query never skips every shard");
        }
    }

    /// The default paths (`top_k`, batches, joins) run through the planner;
    /// they too must stay bit-identical to the unsharded twin.
    #[test]
    fn default_planned_paths_match_unsharded(
        entities in 2u64..30,
        seed in 0u64..1_000,
        shards in 1usize..7,
        k in 1usize..5,
    ) {
        let (w, unsharded, sharded) = build_pair(entities, 4, seed, 16, shards);
        let measure = w.measure();
        let queries = w.entities();
        let batch_a = unsharded.top_k_batch(&queries, k, &measure).unwrap();
        let batch_b = sharded.top_k_batch(&queries, k, &measure).unwrap();
        prop_assert_eq!(batch_a.len(), batch_b.len());
        for (i, ((a, _), (b, _))) in batch_a.iter().zip(batch_b.iter()).enumerate() {
            assert_equivalent_answers(b, a, &format!("planned batch entry {i}"));
        }
    }

    /// Persistence round-trip: the reopened synopsis (sketch size included)
    /// equals the synopsis of a freshly rebuilt index over the same traces,
    /// per shard, and the reopened index answers identically.
    #[test]
    fn reopened_synopsis_equals_rebuilt_synopsis(
        entities in 2u64..30,
        seed in 0u64..1_000,
        shards in 1usize..6,
        m in 1usize..24,
        k in 1usize..5,
    ) {
        let w = Workload::uniform(UniformConfig {
            entities, visits: 4, seed, ..UniformConfig::default()
        });
        let config = IndexConfig { num_hash_functions: 12, ..IndexConfig::default() };
        let mut sharded = ShardedMinSigIndex::build(&w.sp, &w.traces, config, shards).unwrap();
        sharded.set_synopsis_sketch_size(m);
        let dir = temp_dir("roundtrip", &format!("{entities}-{seed}-{shards}-{m}"));
        sharded.save(&dir).unwrap();
        let reopened = ShardedMinSigIndex::open(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();

        let mut rebuilt = ShardedMinSigIndex::build(&w.sp, &w.traces, config, shards).unwrap();
        rebuilt.set_synopsis_sketch_size(m);
        for i in 0..shards {
            prop_assert_eq!(
                reopened.shard(i).snapshot().synopsis(),
                rebuilt.shard(i).snapshot().synopsis(),
                "shard {} synopsis diverged after reload", i
            );
        }
        let measure = w.measure();
        for query in w.entities() {
            let (a, _) = sharded.top_k(query, k, &measure).unwrap();
            let (b, _) = reopened.top_k(query, k, &measure).unwrap();
            prop_assert_eq!(&a, &b, "reopened planned answers diverged for {}", query);
        }
    }
}

/// The planner's best case, pinned end to end: on the localized workload a
/// hot query must skip **every** background shard (`num_shards - 1 ≥ half`),
/// seed the threshold, and still answer bit-identically to every oracle.
#[test]
fn localized_workload_skips_every_background_shard() {
    for shards in [2usize, 4, 8] {
        let (w, hot) = Workload::planner_localized(PlannerLocalizedConfig {
            num_shards: shards,
            hot_entities: 12,
            background_entities: 48,
            ..PlannerLocalizedConfig::default()
        });
        let config = IndexConfig::with_hash_functions(32);
        let unsharded = w.build_index(config);
        let sharded = ShardedMinSigIndex::build(&w.sp, &w.traces, config, shards).unwrap();
        let snapshot = sharded.snapshot();
        let measure = w.measure();
        let k = 5;
        for &query in &hot {
            let (planned, stats) = snapshot
                .top_k_with_planner(
                    query,
                    k,
                    &measure,
                    QueryOptions::default(),
                    SchedulerConfig::default(),
                    PlannerConfig::default(),
                )
                .unwrap();
            assert!(stats.threshold_seeded, "{shards} shards: the sketch must seed k={k}");
            assert_eq!(
                stats.shards_skipped,
                shards - 1,
                "{shards} shards: every background shard is provably skippable"
            );
            assert!(
                stats.shards_skipped * 2 >= shards,
                "{shards} shards: at least half are skipped"
            );
            let (exact, _) = unsharded.top_k(query, k, &measure).unwrap();
            assert_equivalent_answers(&planned, &exact, &format!("localized, {query}"));
            // The plan agrees with the execution's accounting.
            let plan = snapshot.explain(query, k, &measure, PlannerConfig::default()).unwrap();
            assert_eq!(plan.shards_skipped(), stats.shards_skipped);
            assert!(plan.seeded());
            assert!(plan.explain().contains("skip"));
        }
    }
}

/// The planner's worst case: on the dispersed workload nothing is provably
/// skippable — `shards_skipped` must be 0 and answers stay identical.
#[test]
fn dispersed_workload_skips_nothing() {
    for shards in [2usize, 4, 8] {
        let (w, entities) = Workload::planner_dispersed(PlannerDispersedConfig {
            num_shards: shards,
            entities_per_shard: 10,
            ..PlannerDispersedConfig::default()
        });
        let config = IndexConfig::with_hash_functions(32);
        let unsharded = w.build_index(config);
        let sharded = ShardedMinSigIndex::build(&w.sp, &w.traces, config, shards).unwrap();
        let snapshot = sharded.snapshot();
        let measure = w.measure();
        for &query in entities.iter().step_by(7) {
            let (planned, stats) = snapshot
                .top_k_with_planner(
                    query,
                    3,
                    &measure,
                    QueryOptions::default(),
                    SchedulerConfig::default(),
                    PlannerConfig::default(),
                )
                .unwrap();
            assert_eq!(stats.shards_skipped, 0, "{shards} shards: nothing is skippable");
            let (exact, _) = unsharded.top_k(query, 3, &measure).unwrap();
            assert_equivalent_answers(&planned, &exact, &format!("dispersed, {query}"));
        }
    }
}

/// Synopses stay consistent under streaming mutation: after an ingest
/// batch, every shard's synopsis equals a fresh recomputation over its
/// current sequences, at the shard's current epoch.
#[test]
fn synopsis_tracks_ingest_and_epochs() {
    let (w, _, mut sharded) = build_pair(24, 4, 7, 16, 3);
    let stream = w.stream(digital_traces::index::testkit::StreamConfig {
        records: 150,
        existing_entities: 24,
        ..Default::default()
    });
    sharded.ingest_batch(stream).unwrap();
    for i in 0..sharded.num_shards() {
        let shard = sharded.shard(i);
        let snapshot = shard.snapshot();
        let expected = Synopsis::compute(
            snapshot.tree().levels(),
            snapshot.sequences().iter().map(|(e, s)| (*e, s)),
            snapshot.synopsis().sketch_size(),
            shard.epoch(),
        );
        assert_eq!(snapshot.synopsis(), &expected, "shard {i} synopsis drifted");
        assert_eq!(snapshot.synopsis().epoch(), shard.epoch(), "shard {i} epoch version");
    }
}

/// 64-bit FNV-1a over a shard file's bytes — the digest recorded in `MSHD`
/// manifests (mirrored here to craft valid version-1 directories).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Version-1 compatibility: a directory of `MSIX` v1 shard files (no `SYN`
/// segment) under an `MSHD` v1 manifest — exactly what pre-planner builds
/// wrote — must still open, answer bit-identically, and synthesise its
/// synopses at the default sketch size.
#[test]
fn version_1_directories_still_open() {
    let (w, unsharded, sharded) = build_pair(30, 4, 11, 16, 3);
    let dir_v2 = temp_dir("v1compat", "modern");
    sharded.save(&dir_v2).unwrap();

    // Re-encode every shard file as version 1: same segments minus SYN
    // (tag 5, added in v2) and WAL (tag 6, added in v3), same order —
    // byte-wise what the pre-synopsis writer produced.
    let dir_v1 = temp_dir("v1compat", "legacy");
    std::fs::create_dir_all(&dir_v1).unwrap();
    let mut digests = Vec::new();
    for shard in 0..3 {
        let name = ShardedMinSigIndex::shard_file_name(shard);
        let bytes = std::fs::read(dir_v2.join(&name)).unwrap();
        let mut reader = SegmentReader::new(bytes.as_slice(), INDEX_MAGIC, u16::MAX).unwrap();
        let mut writer = SegmentWriter::new(Vec::new(), INDEX_MAGIC, 1).unwrap();
        while let Some((tag, payload)) = reader.next_segment().unwrap() {
            if tag != 5 && tag != 6 {
                writer.write_segment(tag, &payload).unwrap();
            }
        }
        let v1_bytes = writer.finish().unwrap();
        digests.push((sharded.shard(shard).num_entities() as u64, fnv1a(&v1_bytes)));
        std::fs::write(dir_v1.join(&name), &v1_bytes).unwrap();
    }
    let mut payload = Vec::new();
    payload.extend_from_slice(&PARTITION_VERSION.to_le_bytes());
    payload.extend_from_slice(&3u32.to_le_bytes());
    for (count, digest) in digests {
        payload.extend_from_slice(&count.to_le_bytes());
        payload.extend_from_slice(&digest.to_le_bytes());
    }
    segment::atomic_write(&dir_v1.join(SHARD_MANIFEST_FILE), SHARD_MANIFEST_MAGIC, 1, |w| {
        w.write_segment(1, &payload)
    })
    .unwrap();

    let legacy = ShardedMinSigIndex::open(&dir_v1).unwrap();
    assert_eq!(legacy.num_entities(), sharded.num_entities());
    let measure = w.measure();
    for query in w.entities() {
        let (a, _) = legacy.top_k(query, 4, &measure).unwrap();
        let (b, _) = unsharded.top_k(query, 4, &measure).unwrap();
        assert_equivalent_answers(&a, &b, &format!("legacy v1 directory, {query}"));
    }
    // The synthesised synopsis equals a fresh computation at the default m.
    for i in 0..3 {
        let snapshot = legacy.shard(i).snapshot();
        let expected = Synopsis::compute(
            snapshot.tree().levels(),
            snapshot.sequences().iter().map(|(e, s)| (*e, s)),
            digital_traces::index::DEFAULT_SKETCH_SIZE,
            0,
        );
        assert_eq!(snapshot.synopsis(), &expected, "shard {i}");
    }
    std::fs::remove_dir_all(&dir_v2).unwrap();
    std::fs::remove_dir_all(&dir_v1).unwrap();
}
