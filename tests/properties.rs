//! Cross-crate property-based tests: the index's exactness, the signature
//! theorems and the ADM axioms must hold for *arbitrary* (not just generated)
//! trace data.

use digital_traces::index::{HasherMode, IndexConfig, MinSigIndex};
use digital_traces::{
    AssociationMeasure, DiceAdm, EntityId, JaccardAdm, PaperAdm, Period, PresenceInstance, SpIndex,
    TraceSet,
};
use proptest::prelude::*;

/// An arbitrary small trace workload over a fixed 3-level hierarchy: every
/// element is `(entity 0..12, base-unit index 0..24, start hour 0..48, duration
/// 1..5 hours)`.
fn workload_strategy() -> impl Strategy<Value = Vec<(u64, usize, u64, u64)>> {
    proptest::collection::vec((0u64..12, 0usize..24, 0u64..48, 1u64..5), 1..120)
}

fn build_traces(workload: &[(u64, usize, u64, u64)]) -> (SpIndex, TraceSet) {
    let sp = SpIndex::uniform(2, &[3, 4]).unwrap();
    let base = sp.base_units().to_vec();
    let mut traces = TraceSet::new(60);
    for &(entity, unit, start_hour, hours) in workload {
        let start = start_hour * 60;
        traces.record(PresenceInstance::new(
            EntityId(entity),
            base[unit % base.len()],
            Period::new(start, start + hours * 60).unwrap(),
        ));
    }
    (sp, traces)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The index answer always carries the same degrees as the brute-force answer,
    /// for any workload, any k, both hasher modes and a non-trivial measure.
    #[test]
    fn index_always_matches_brute_force(
        workload in workload_strategy(),
        k in 1usize..8,
        nh in 4u32..48,
        exhaustive in any::<bool>(),
    ) {
        let (sp, traces) = build_traces(&workload);
        let mode = if exhaustive { HasherMode::Exhaustive } else { HasherMode::PathMax };
        let config = IndexConfig { hasher_mode: mode, num_hash_functions: nh, ..IndexConfig::default() };
        let index = MinSigIndex::build(&sp, &traces, config).unwrap();
        let measure = PaperAdm::default_for(sp.height() as usize);
        for query in traces.entities() {
            let (got, stats) = index.top_k(query, k, &measure).unwrap();
            let expect = index.brute_force(query, k, &measure).unwrap();
            prop_assert_eq!(got.len(), expect.len());
            for (g, e) in got.iter().zip(expect.iter()) {
                prop_assert!((g.degree - e.degree).abs() < 1e-9,
                    "query {} k {}: {} vs {}", query, k, g.degree, e.degree);
            }
            prop_assert!(stats.entities_checked <= index.num_entities());
        }
    }

    /// Association degree measures satisfy the Section 3.2 axioms on arbitrary
    /// pairs of traces: normalisation, symmetry of the concrete measures, and the
    /// dominance of the self-degree.
    #[test]
    fn adm_axioms_hold_for_arbitrary_traces(
        workload_a in workload_strategy(),
        workload_b in workload_strategy(),
    ) {
        let (sp, traces_a) = build_traces(&workload_a);
        let (_, traces_b) = build_traces(&workload_b);
        let ea = traces_a.entities().next().unwrap();
        let eb = traces_b.entities().next().unwrap();
        let seq_a = traces_a.cell_sequence(&sp, ea).unwrap();
        let seq_b = traces_b.cell_sequence(&sp, eb).unwrap();
        let m = sp.height() as usize;
        let measures: Vec<Box<dyn AssociationMeasure>> = vec![
            Box::new(PaperAdm::default_for(m)),
            Box::new(DiceAdm::uniform(m)),
            Box::new(JaccardAdm::uniform(m)),
        ];
        for measure in &measures {
            let dab = measure.degree(&seq_a, &seq_b);
            let dba = measure.degree(&seq_b, &seq_a);
            let daa = measure.degree(&seq_a, &seq_a);
            prop_assert!((0.0..=1.0).contains(&dab), "{} out of range", measure.name());
            prop_assert!((dab - dba).abs() < 1e-12, "{} must be symmetric", measure.name());
            prop_assert!(daa + 1e-12 >= dab, "{}: self degree must dominate", measure.name());
        }
    }

    /// Incremental maintenance equals a fresh rebuild: after replacing an
    /// arbitrary entity's trace, queries agree with an index built from scratch.
    #[test]
    fn incremental_update_equals_rebuild(
        workload in workload_strategy(),
        extra in workload_strategy(),
    ) {
        let (sp, mut traces) = build_traces(&workload);
        let config = IndexConfig::with_hash_functions(16);
        let mut index = MinSigIndex::build(&sp, &traces, config).unwrap();
        // Apply the extra workload as updates.
        let (_, extra_traces) = build_traces(&extra);
        for (entity, trace) in extra_traces.iter() {
            let mut merged = traces.get(entity).cloned().unwrap_or_default();
            for pi in trace.instances() {
                merged.push(*pi);
            }
            // `upsert`, not `update`: the extra workload may introduce
            // entities the seed workload never mentioned.
            index.upsert_entity(entity, &merged).unwrap();
            traces.insert_trace(entity, merged);
        }
        let rebuilt = MinSigIndex::build(&sp, &traces, config).unwrap();
        let measure = DiceAdm::uniform(sp.height() as usize);
        for query in traces.entities() {
            let (a, _) = index.top_k(query, 3, &measure).unwrap();
            let (b, _) = rebuilt.top_k(query, 3, &measure).unwrap();
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                prop_assert!((x.degree - y.degree).abs() < 1e-9);
            }
        }
    }
}
