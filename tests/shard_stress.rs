//! Concurrency stress for the sharded index: N reader threads query a
//! `ShardedMinSigIndex` while batches flush per shard.  Readers must never
//! observe a torn cross-shard epoch set (every observed epoch vector is one
//! the flusher actually published), and every answer must match the
//! brute-force oracle evaluated over the *same* snapshot — i.e. every answer
//! is consistent with some published version of the index.
//!
//! The moderate variant runs in the tier-1 suite; the heavy variant is
//! `#[ignore]`d and runs in CI's dedicated release stress job
//! (`cargo test --release -- --ignored`).

use digital_traces::index::testkit::{
    assert_equivalent_answers, StreamConfig, UniformConfig, Workload,
};
use digital_traces::index::{
    DurableShardedMinSigIndex, IndexConfig, IngestBuffer, ShardedMinSigIndex,
};
use digital_traces::storage::LogConfig;
use digital_traces::storage::{PagedTraceStore, PoolConfig, ReplacerPolicy, PAGE_SIZE};
use digital_traces::EntityId;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};

fn run_stress(entities: u64, shards: usize, readers: usize, flushes: u64, records: usize) {
    let w = Workload::uniform(UniformConfig {
        entities,
        visits: 5,
        seed: 42,
        ..UniformConfig::default()
    });
    let measure = w.measure();
    let index =
        ShardedMinSigIndex::build(&w.sp, &w.traces, IndexConfig::with_hash_functions(16), shards)
            .unwrap();

    // Every epoch vector the flusher has made reachable.  A new vector is
    // inserted while the write lock is still held, so any vector a reader can
    // capture is already in this set — observing one that is *not* would mean
    // a torn (partially flushed) cross-shard state escaped.
    let published: Mutex<HashSet<Vec<u64>>> = Mutex::new(HashSet::from([index.epochs()]));
    let lock = RwLock::new(index);
    let stop = AtomicBool::new(false);
    // Readers that have completed at least one full check; the flusher keeps
    // the race alive until everyone has, so no reader can exit unexercised on
    // a loaded machine.
    let ready = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for reader in 0..readers {
            let (lock, published, stop, measure) = (&lock, &published, &stop, &measure);
            let ready = &ready;
            scope.spawn(move || {
                let mut iterations = 0u64;
                while !stop.load(Ordering::Acquire) {
                    // Capture a cross-shard snapshot under the read lock, then
                    // query it lock-free.
                    let snapshot = lock.read().unwrap().snapshot();
                    let epochs = snapshot.epochs().to_vec();
                    assert!(
                        published.lock().unwrap().contains(&epochs),
                        "reader {reader} observed a torn epoch set {epochs:?}"
                    );
                    let query = EntityId((reader as u64 + iterations) % entities);
                    let (got, _) = snapshot.top_k(query, 3, measure).unwrap();
                    let oracle = snapshot.brute_force(query, 3, measure).unwrap();
                    assert_equivalent_answers(
                        &got,
                        &oracle,
                        &format!("reader {reader} answer vs its snapshot's oracle"),
                    );
                    if iterations == 0 {
                        ready.fetch_add(1, Ordering::AcqRel);
                    }
                    iterations += 1;
                }
                assert!(iterations > 0, "reader {reader} never ran");
            });
        }

        // The flusher: one routed ingest batch per iteration, each advancing
        // only the touched shards' epochs.
        for flush in 0..flushes {
            let records = w.stream(StreamConfig {
                records,
                existing_entities: entities,
                new_entity_base: 10_000 + flush * 100,
                new_entity_span: 8,
                start_tick: 20_000 + flush * 1_000,
                seed: flush,
                ..StreamConfig::default()
            });
            let mut buffer: IngestBuffer = records.into_iter().collect();
            let mut guard = lock.write().unwrap();
            let report = buffer.flush_sharded(&mut guard).unwrap();
            assert!(report.shards_touched >= 1);
            // Publish the new vector BEFORE releasing the write lock: no
            // reader can capture a vector that is not yet in the set.
            published.lock().unwrap().insert(guard.epochs());
            drop(guard);
            std::thread::yield_now();
        }
        // Keep the final state readable until every reader has exercised at
        // least one full snapshot-and-check cycle, then stop them.
        while ready.load(Ordering::Acquire) < readers {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Release);
    });

    // The flusher published one distinct vector per flush plus the initial one.
    assert_eq!(published.lock().unwrap().len() as u64, flushes + 1);
    let final_epochs = lock.read().unwrap().epochs();
    assert_eq!(final_epochs.len(), shards);
    assert!(final_epochs.iter().sum::<u64>() >= flushes, "every flush advanced some shard");
}

#[test]
fn readers_race_per_shard_flushes_without_torn_epochs() {
    run_stress(24, 4, 4, 8, 60);
}

/// The heavy variant for the CI release stress job: more shards, more
/// readers, more flushes, bigger batches.
#[test]
#[ignore = "heavy stress; run with cargo test --release -- --ignored"]
fn heavy_readers_race_per_shard_flushes_without_torn_epochs() {
    run_stress(200, 8, 8, 40, 500);
}

/// The out-of-core variant: N readers drive **paged** sharded queries — every
/// candidate trace read through one shared tight [`BufferPool`], pins held
/// across executor step quanta — while the flusher keeps publishing new
/// epochs.  Every answer must match the brute-force oracle of the *same*
/// snapshot bit-for-bit, and when the dust settles no frame may be left
/// pinned (the "no torn pins" invariant).
///
/// The stream is configured to touch **only new entities**, with a disjoint
/// id range per flush, so a trace store built up-front over the base
/// population plus every future batch agrees record-for-record with whatever
/// prefix of flushes a captured snapshot has indexed.
///
/// [`BufferPool`]: digital_traces::storage::BufferPool
fn run_paged_stress(
    entities: u64,
    shards: usize,
    readers: usize,
    flushes: u64,
    records: usize,
    pool_pages: usize,
    policy: ReplacerPolicy,
) {
    let w = Workload::uniform(UniformConfig {
        entities,
        visits: 5,
        seed: 42,
        ..UniformConfig::default()
    });
    let measure = w.measure();
    let index =
        ShardedMinSigIndex::build(&w.sp, &w.traces, IndexConfig::with_hash_functions(16), shards)
            .unwrap();

    // Pre-generate every flush's batch, and a store that already holds the
    // base traces plus all of them: new-entity-only streams with disjoint id
    // ranges mean any snapshot's indexed traces are a subset of the store's,
    // record-for-record.
    let batches: Vec<Vec<_>> = (0..flushes)
        .map(|flush| {
            w.stream(StreamConfig {
                records,
                new_entity_percent: 100,
                new_entity_base: 10_000 + flush * 100,
                new_entity_span: 8,
                start_tick: 20_000 + flush * 1_000,
                seed: flush,
                ..StreamConfig::default()
            })
        })
        .collect();
    let mut all_traces = w.traces.clone();
    for record in batches.iter().flatten() {
        all_traces.record(*record);
    }
    let store = PagedTraceStore::build(&all_traces, 4);
    let pool = store.pool(
        PoolConfig { capacity_bytes: pool_pages * PAGE_SIZE, ..PoolConfig::default() }
            .with_replacer(policy),
    );

    let lock = RwLock::new(index);
    let stop = AtomicBool::new(false);
    let ready = AtomicUsize::new(0);
    let batches = Mutex::new(batches);

    std::thread::scope(|scope| {
        for reader in 0..readers {
            let (lock, stop, measure, store, pool) = (&lock, &stop, &measure, &store, &pool);
            let ready = &ready;
            scope.spawn(move || {
                let mut iterations = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let snapshot = lock.read().unwrap().snapshot();
                    let paged = snapshot.paged(store, pool);
                    // Base entities exist in every published snapshot.
                    let query = EntityId((reader as u64 + iterations) % entities);
                    let (got, stats) = paged.top_k(query, 3, measure).unwrap();
                    let oracle = snapshot.brute_force(query, 3, measure).unwrap();
                    assert_equivalent_answers(
                        &got,
                        &oracle,
                        &format!("paged reader {reader} answer vs its snapshot's oracle"),
                    );
                    assert!(
                        stats.pool_hits + stats.pool_misses > 0,
                        "paged reader {reader} did no pool I/O"
                    );
                    if iterations == 0 {
                        ready.fetch_add(1, Ordering::AcqRel);
                    }
                    iterations += 1;
                }
                assert!(iterations > 0, "paged reader {reader} never ran");
            });
        }

        for _ in 0..flushes {
            let batch = batches.lock().unwrap().remove(0);
            let mut buffer: IngestBuffer = batch.into_iter().collect();
            let mut guard = lock.write().unwrap();
            let report = buffer.flush_sharded(&mut guard).unwrap();
            assert!(report.shards_touched >= 1);
            drop(guard);
            std::thread::yield_now();
        }
        while ready.load(Ordering::Acquire) < readers {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Release);
    });

    // No torn pins: every query that finished released everything it held.
    assert_eq!(pool.pinned_frames(), 0, "a reader leaked a pin");
    let io = pool.stats();
    assert!(io.misses > 0, "a tight pool under racing readers must miss");
}

/// The durable-ingest variant: the flusher drives a
/// [`DurableShardedMinSigIndex`] — every batch WAL-logged and committed
/// before any shard flushes, with a checkpoint dropped mid-run — while N
/// readers keep checking the no-torn-epochs and oracle-equality invariants.
/// When the dust settles the process "crashes" (drops without a final
/// checkpoint) and the recovered index must answer every probe exactly like
/// the live one did.
fn run_durable_stress(entities: u64, shards: usize, readers: usize, flushes: u64, records: usize) {
    let w = Workload::uniform(UniformConfig {
        entities,
        visits: 5,
        seed: 42,
        ..UniformConfig::default()
    });
    let measure = w.measure();
    let dir = std::env::temp_dir()
        .join(format!("durable-stress-{}-{entities}-{shards}-{flushes}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let built =
        ShardedMinSigIndex::build(&w.sp, &w.traces, IndexConfig::with_hash_functions(16), shards)
            .unwrap();
    let log_config = LogConfig { fsync: false, ..LogConfig::default() };
    let durable = DurableShardedMinSigIndex::create(&dir, built, log_config).unwrap();

    let published: Mutex<HashSet<Vec<u64>>> = Mutex::new(HashSet::from([durable.index().epochs()]));
    let lock = RwLock::new(durable);
    let stop = AtomicBool::new(false);
    let ready = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for reader in 0..readers {
            let (lock, published, stop, measure) = (&lock, &published, &stop, &measure);
            let ready = &ready;
            scope.spawn(move || {
                let mut iterations = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let snapshot = lock.read().unwrap().index().snapshot();
                    let epochs = snapshot.epochs().to_vec();
                    assert!(
                        published.lock().unwrap().contains(&epochs),
                        "durable reader {reader} observed a torn epoch set {epochs:?}"
                    );
                    let query = EntityId((reader as u64 + iterations) % entities);
                    let (got, _) = snapshot.top_k(query, 3, measure).unwrap();
                    let oracle = snapshot.brute_force(query, 3, measure).unwrap();
                    assert_equivalent_answers(
                        &got,
                        &oracle,
                        &format!("durable reader {reader} answer vs its snapshot's oracle"),
                    );
                    if iterations == 0 {
                        ready.fetch_add(1, Ordering::AcqRel);
                    }
                    iterations += 1;
                }
                assert!(iterations > 0, "durable reader {reader} never ran");
            });
        }

        for flush in 0..flushes {
            let records = w.stream(StreamConfig {
                records,
                existing_entities: entities,
                new_entity_base: 10_000 + flush * 100,
                new_entity_span: 8,
                start_tick: 20_000 + flush * 1_000,
                seed: flush,
                ..StreamConfig::default()
            });
            let mut guard = lock.write().unwrap();
            let report = guard.ingest(records).unwrap();
            assert!(report.shards_touched >= 1);
            // Exercise a checkpoint under reader load mid-run: it truncates
            // the logs but must not perturb what readers observe.
            if flush == flushes / 2 {
                guard.checkpoint().unwrap();
            }
            published.lock().unwrap().insert(guard.index().epochs());
            drop(guard);
            std::thread::yield_now();
        }
        while ready.load(Ordering::Acquire) < readers {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Release);
    });

    assert_eq!(published.lock().unwrap().len() as u64, flushes + 1);

    // Crash (no final checkpoint) and recover: the reopened index must agree
    // with the live one on every probe.
    let live = lock.into_inner().unwrap();
    let live_snapshot = live.index().snapshot();
    drop(live);
    let (recovered, report) = DurableShardedMinSigIndex::open(&dir, log_config).unwrap();
    assert!(report.batches_replayed >= 1, "post-checkpoint flushes must replay, got {report:?}");
    assert_eq!(report.uncommitted_discarded, 0);
    assert_eq!(recovered.index().num_entities(), live_snapshot.num_entities());
    for query in 0..entities {
        let query = EntityId(query);
        let (got, _) = recovered.index().top_k(query, 3, &measure).unwrap();
        let (want, _) = live_snapshot.top_k(query, 3, &measure).unwrap();
        assert_equivalent_answers(
            &got,
            &want,
            &format!("recovered vs live answer for entity {}", query.raw()),
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn durable_readers_race_logged_flushes_and_recover_after_crash() {
    run_durable_stress(24, 4, 4, 8, 60);
}

/// The heavy durable variant for the CI release stress job.
#[test]
#[ignore = "heavy stress; run with cargo test --release -- --ignored"]
fn heavy_durable_readers_race_logged_flushes_and_recover_after_crash() {
    run_durable_stress(120, 8, 8, 24, 300);
}

#[test]
fn paged_readers_race_flushes_and_release_every_pin() {
    run_paged_stress(24, 4, 4, 6, 60, 2, ReplacerPolicy::default());
}

/// The heavy out-of-core variant for the CI release stress job: more of
/// everything, FIFO (the policy most hostile to re-accessed pages) and a
/// single-frame pool so every reader fights for the same slot.
#[test]
#[ignore = "heavy stress; run with cargo test --release -- --ignored"]
fn heavy_paged_readers_race_flushes_and_release_every_pin() {
    run_paged_stress(120, 8, 8, 24, 300, 1, ReplacerPolicy::Fifo);
}
