//! Concurrency stress for the sharded index: N reader threads query a
//! `ShardedMinSigIndex` while batches flush per shard.  Readers must never
//! observe a torn cross-shard epoch set (every observed epoch vector is one
//! the flusher actually published), and every answer must match the
//! brute-force oracle evaluated over the *same* snapshot — i.e. every answer
//! is consistent with some published version of the index.
//!
//! The moderate variant runs in the tier-1 suite; the heavy variant is
//! `#[ignore]`d and runs in CI's dedicated release stress job
//! (`cargo test --release -- --ignored`).

use digital_traces::index::testkit::{
    assert_equivalent_answers, StreamConfig, UniformConfig, Workload,
};
use digital_traces::index::{IndexConfig, IngestBuffer, ShardedMinSigIndex};
use digital_traces::EntityId;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};

fn run_stress(entities: u64, shards: usize, readers: usize, flushes: u64, records: usize) {
    let w = Workload::uniform(UniformConfig {
        entities,
        visits: 5,
        seed: 42,
        ..UniformConfig::default()
    });
    let measure = w.measure();
    let index =
        ShardedMinSigIndex::build(&w.sp, &w.traces, IndexConfig::with_hash_functions(16), shards)
            .unwrap();

    // Every epoch vector the flusher has made reachable.  A new vector is
    // inserted while the write lock is still held, so any vector a reader can
    // capture is already in this set — observing one that is *not* would mean
    // a torn (partially flushed) cross-shard state escaped.
    let published: Mutex<HashSet<Vec<u64>>> = Mutex::new(HashSet::from([index.epochs()]));
    let lock = RwLock::new(index);
    let stop = AtomicBool::new(false);
    // Readers that have completed at least one full check; the flusher keeps
    // the race alive until everyone has, so no reader can exit unexercised on
    // a loaded machine.
    let ready = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for reader in 0..readers {
            let (lock, published, stop, measure) = (&lock, &published, &stop, &measure);
            let ready = &ready;
            scope.spawn(move || {
                let mut iterations = 0u64;
                while !stop.load(Ordering::Acquire) {
                    // Capture a cross-shard snapshot under the read lock, then
                    // query it lock-free.
                    let snapshot = lock.read().unwrap().snapshot();
                    let epochs = snapshot.epochs().to_vec();
                    assert!(
                        published.lock().unwrap().contains(&epochs),
                        "reader {reader} observed a torn epoch set {epochs:?}"
                    );
                    let query = EntityId((reader as u64 + iterations) % entities);
                    let (got, _) = snapshot.top_k(query, 3, measure).unwrap();
                    let oracle = snapshot.brute_force(query, 3, measure).unwrap();
                    assert_equivalent_answers(
                        &got,
                        &oracle,
                        &format!("reader {reader} answer vs its snapshot's oracle"),
                    );
                    if iterations == 0 {
                        ready.fetch_add(1, Ordering::AcqRel);
                    }
                    iterations += 1;
                }
                assert!(iterations > 0, "reader {reader} never ran");
            });
        }

        // The flusher: one routed ingest batch per iteration, each advancing
        // only the touched shards' epochs.
        for flush in 0..flushes {
            let records = w.stream(StreamConfig {
                records,
                existing_entities: entities,
                new_entity_base: 10_000 + flush * 100,
                new_entity_span: 8,
                start_tick: 20_000 + flush * 1_000,
                seed: flush,
                ..StreamConfig::default()
            });
            let mut buffer: IngestBuffer = records.into_iter().collect();
            let mut guard = lock.write().unwrap();
            let report = buffer.flush_sharded(&mut guard).unwrap();
            assert!(report.shards_touched >= 1);
            // Publish the new vector BEFORE releasing the write lock: no
            // reader can capture a vector that is not yet in the set.
            published.lock().unwrap().insert(guard.epochs());
            drop(guard);
            std::thread::yield_now();
        }
        // Keep the final state readable until every reader has exercised at
        // least one full snapshot-and-check cycle, then stop them.
        while ready.load(Ordering::Acquire) < readers {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Release);
    });

    // The flusher published one distinct vector per flush plus the initial one.
    assert_eq!(published.lock().unwrap().len() as u64, flushes + 1);
    let final_epochs = lock.read().unwrap().epochs();
    assert_eq!(final_epochs.len(), shards);
    assert!(final_epochs.iter().sum::<u64>() >= flushes, "every flush advanced some shard");
}

#[test]
fn readers_race_per_shard_flushes_without_torn_epochs() {
    run_stress(24, 4, 4, 8, 60);
}

/// The heavy variant for the CI release stress job: more shards, more
/// readers, more flushes, bigger batches.
#[test]
#[ignore = "heavy stress; run with cargo test --release -- --ignored"]
fn heavy_readers_race_per_shard_flushes_without_torn_epochs() {
    run_stress(200, 8, 8, 40, 500);
}
