//! Conformance of the flat hot-path kernels (`minsig::kernel`) against the
//! owned-representation oracles:
//!
//! * the three intersection kernels (three-way-compare merge, explicit-mask
//!   merge, galloping) and the size-ratio dispatcher must agree on
//!   **arbitrary** sorted sets, including adversarially skewed size ratios
//!   that force the galloping path;
//! * the arena-backed scan and fused degree loop must answer **bitwise
//!   identically** to degrees computed from the owned `CellSetSequence`
//!   maps, across every workload generator in `minsig::testkit`.
//!
//! Nothing here trusts the arena's internal layout — only observable answers
//! are compared, through the same oracle helpers the sharding suites use.

use digital_traces::index::testkit::{
    assert_equivalent_answers, HierarchySpec, PairedConfig, PlannerDispersedConfig,
    PlannerLocalizedConfig, PruningAdversarialConfig, SkewedConfig, UniformConfig, Workload,
};
use digital_traces::index::{
    IndexConfig, IndexSnapshot, KernelDispatch, QueryView, TopKHeap, TopKResult,
};
use digital_traces::model::kernel::{
    intersection_len, intersection_len_gallop, intersection_len_masked, intersection_len_merge,
    intersection_len_simd, merge_min, merge_min_scalar, merge_min_simd, GALLOP_SKEW, SIMD_LANES,
};
use digital_traces::{AssociationMeasure, EntityId, PaperAdm};
use proptest::prelude::*;

/// Sorts and dedups a raw value vector into kernel input form.
fn to_set(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v.dedup();
    v
}

/// Asserts all five intersection entry points agree on `(a, b)`, both ways.
/// The three-way-compare merge is the oracle; the SIMD kernel must match it
/// whatever instruction set the host actually has (AVX2, SSE2-only, or the
/// non-x86 scalar fallback), and the dispatcher must match it with the
/// `simd` cargo feature both on and off.
fn assert_kernels_agree(a: &[u64], b: &[u64]) {
    let expect = intersection_len_merge(a, b);
    assert_eq!(intersection_len_masked(a, b), expect, "masked vs merge");
    assert_eq!(intersection_len_gallop(a, b), expect, "gallop vs merge");
    assert_eq!(intersection_len_simd(a, b), expect, "simd vs merge");
    assert_eq!(intersection_len(a, b), expect, "dispatcher vs merge");
    // Intersection size is symmetric; the kernels must be too.
    assert_eq!(intersection_len_merge(b, a), expect, "merge symmetry");
    assert_eq!(intersection_len_masked(b, a), expect, "masked symmetry");
    assert_eq!(intersection_len_gallop(b, a), expect, "gallop symmetry");
    assert_eq!(intersection_len_simd(b, a), expect, "simd symmetry");
    assert_eq!(intersection_len(b, a), expect, "dispatcher symmetry");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All intersection kernels agree on arbitrary sorted sets of similar size.
    #[test]
    fn kernels_agree_on_similar_sizes(
        a in proptest::collection::vec(0u64..512, 0..96),
        b in proptest::collection::vec(0u64..512, 0..96),
    ) {
        let (a, b) = (to_set(a), to_set(b));
        assert_kernels_agree(&a, &b);
    }

    /// All intersection kernels agree under adversarial size skew: a tiny
    /// probe side against a large sorted side drawn from an overlapping
    /// domain, which is exactly the regime the dispatcher hands to the
    /// galloping kernel.
    #[test]
    fn kernels_agree_on_skewed_ratios(
        small in proptest::collection::vec(0u64..4096, 0..24),
        large in proptest::collection::vec(0u64..4096, 256..1536),
    ) {
        let (small, large) = (to_set(small), to_set(large));
        if !small.is_empty() {
            // The generated ratio really is in galloping territory.
            prop_assert!(small.len().saturating_mul(GALLOP_SKEW) <= large.len()
                || large.len() < 256);
        }
        assert_kernels_agree(&small, &large);
    }

    /// Adversarial shapes for the SIMD block scheme: inputs whose lengths sit
    /// on and around multiples of the lane width, drawn from a tiny domain so
    /// duplicates-after-dedup, long equal runs and dense overlap all occur.
    #[test]
    fn kernels_agree_on_lane_width_boundaries(
        a_len in 0usize..=3 * SIMD_LANES + 1,
        b_len in 0usize..=3 * SIMD_LANES + 1,
        a_start in 0u64..16,
        b_start in 0u64..16,
        stride in 1u64..4,
    ) {
        let a: Vec<u64> = (0..a_len as u64).map(|i| a_start + i * stride).collect();
        let b: Vec<u64> = (0..b_len as u64).map(|i| b_start + i).collect();
        assert_kernels_agree(&a, &b);
    }

    /// Maximal skew: a singleton (or empty) probe against a large dense side,
    /// with the probe placed before, inside and after the large domain.
    #[test]
    fn kernels_agree_on_maximal_skew(
        probe in proptest::collection::vec(0u64..8192, 0..2),
        large_len in 512usize..2048,
        large_start in 0u64..2048,
    ) {
        let large: Vec<u64> = (0..large_len as u64).map(|i| large_start + i * 2).collect();
        assert_kernels_agree(&probe, &large);
    }

    /// The element-wise minimum merges are bit-identical: scalar oracle,
    /// explicit SIMD, and the feature-routed entry point, at widths crossing
    /// the SIMD block boundary and values straddling the sign bit (the AVX2
    /// kernel emulates unsigned min by sign-bit flip — the values most likely
    /// to expose a flip bug are near `i64::MAX`/`u64::MAX`).
    #[test]
    fn merge_min_variants_are_bit_identical(
        a in proptest::collection::vec(proptest::prelude::any::<u64>(), 0..3 * SIMD_LANES + 2),
        b in proptest::collection::vec(proptest::prelude::any::<u64>(), 0..3 * SIMD_LANES + 2),
    ) {
        let width = a.len().min(b.len());
        let dst0: Vec<u64> = a[..width].to_vec();
        let src: Vec<u64> = b[..width].to_vec();
        let mut scalar = dst0.clone();
        merge_min_scalar(&mut scalar, &src);
        let mut simd = dst0.clone();
        merge_min_simd(&mut simd, &src);
        let mut routed = dst0.clone();
        merge_min(&mut routed, &src);
        prop_assert_eq!(&scalar, &simd);
        prop_assert_eq!(&scalar, &routed);
        for (i, (&d, &s)) in dst0.iter().zip(&src).enumerate() {
            prop_assert_eq!(scalar[i], d.min(s));
        }
    }
}

/// Exhaustive degenerate shapes: empty-vs-everything, singletons at every
/// position of a block-spanning set, fully identical sets, and disjoint
/// alternating interleavings — each exercised through every kernel.
#[test]
fn kernels_agree_on_degenerate_shapes() {
    let spanning: Vec<u64> = (0..3 * SIMD_LANES as u64 + 1).map(|x| x * 3).collect();
    // Empty vs empty and empty vs non-empty.
    assert_kernels_agree(&[], &[]);
    assert_kernels_agree(&[], &spanning);
    // A singleton probing every element (hit) and every gap (miss).
    for &x in &spanning {
        assert_kernels_agree(&[x], &spanning);
        assert_kernels_agree(&[x + 1], &spanning);
    }
    // Identical sets: overlap == len, whatever the kernel.
    assert_eq!(intersection_len_simd(&spanning, &spanning), spanning.len());
    assert_kernels_agree(&spanning, &spanning);
    // Perfectly alternating disjoint interleave: the worst case for the
    // block-advance rule (every block pair overlaps in range, zero matches).
    let evens: Vec<u64> = (0..64).map(|x| x * 2).collect();
    let odds: Vec<u64> = (0..64).map(|x| x * 2 + 1).collect();
    assert_eq!(intersection_len_simd(&evens, &odds), 0);
    assert_kernels_agree(&evens, &odds);
}

/// Exhaustive sweep over **all** length pairs `0..=64 × 0..=64`, three
/// overlap densities each — every block-remainder combination of the SIMD
/// kernels, the tiny-loop cutover and the gallop cutover.  ~12.7k shapes ×
/// 10 kernel calls; run with `cargo test -- --ignored` (CI does).
#[test]
#[ignore = "exhaustive; run explicitly or via the CI kernel sweep"]
fn exhaustive_length_sweep() {
    // Deterministic splitmix64 — keeps the sweep reproducible without rand.
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };
    for a_len in 0usize..=64 {
        for b_len in 0usize..=64 {
            for domain in [96u64, 512, 1 << 40] {
                let a = to_set((0..a_len).map(|_| next() % domain).collect());
                let b = to_set((0..b_len).map(|_| next() % domain).collect());
                assert_kernels_agree(&a, &b);
            }
        }
    }
}

/// Structured worst cases the random generator is unlikely to hit exactly:
/// runs of shared prefixes/suffixes, strided interleavings, and
/// boundary-of-dispatch sizes on both sides of `GALLOP_SKEW`.
#[test]
fn kernels_agree_on_structured_edge_cases() {
    let dense: Vec<u64> = (0..1024).collect();
    let stride3: Vec<u64> = (0..1024).map(|x| x * 3).collect();
    let tail: Vec<u64> = (1000..1100).collect();
    let singleton_hit = vec![511u64];
    let singleton_miss = vec![5000u64];
    let boundary_small: Vec<u64> = (0..dense.len() / GALLOP_SKEW).map(|x| x as u64 * 7).collect();
    let just_under: Vec<u64> = (0..dense.len() / GALLOP_SKEW + 1).map(|x| x as u64 * 7).collect();
    let sets: [&[u64]; 8] = [
        &dense,
        &stride3,
        &tail,
        &singleton_hit,
        &singleton_miss,
        &boundary_small,
        &just_under,
        &[],
    ];
    for a in sets {
        for b in sets {
            assert_kernels_agree(a, b);
        }
    }
}

/// The owned-representation oracle: a flat scan over the snapshot's
/// `CellSetSequence` map, scoring through `AssociationMeasure::degree` — the
/// pre-arena hot path, kept here as ground truth.
fn owned_scan(
    snapshot: &IndexSnapshot,
    query: EntityId,
    k: usize,
    measure: &PaperAdm,
) -> Vec<TopKResult> {
    let seqs = snapshot.sequences();
    let query_seq = seqs.get(&query).expect("query entity is indexed");
    let mut top = TopKHeap::new(k);
    for (&entity, seq) in seqs {
        if entity != query {
            top.offer(entity, measure.degree(query_seq, seq));
        }
    }
    top.into_sorted()
}

/// Runs the arena-vs-owned sweep for one workload: every sampled query's
/// arena scan must be bit-identical to the owned oracle (entities **and**
/// degree bits, boundary ties included), and every per-entity fused degree
/// must carry the exact bits of the owned computation.
fn assert_arena_matches_owned(workload: &Workload, context: &str) {
    let index = workload.build_index(IndexConfig::default());
    let snapshot = index.snapshot();
    let measure = workload.measure();
    let arena = snapshot.arena();
    let seqs = snapshot.sequences();
    assert_eq!(arena.len(), seqs.len(), "{context}: arena covers the population");
    for query in workload.sample_entities(12, 7) {
        let query_seq = match seqs.get(&query) {
            Some(seq) => seq,
            None => continue,
        };
        let view = QueryView::new(query_seq);
        for k in [1, 3, 10] {
            let mut dispatch = KernelDispatch::default();
            let (got, checked) = arena.scan_top_k(&view, Some(query), k, &measure, &mut dispatch);
            let expect = owned_scan(&snapshot, query, k, &measure);
            assert_eq!(checked, seqs.len() - 1, "{context}: arena scan checks every candidate");
            assert_eq!(
                dispatch.total(),
                (checked * arena.num_levels()) as u64,
                "{context}: every per-level intersection is classified exactly once"
            );
            assert_equivalent_answers(&got, &expect, &format!("{context}, query {query}, k {k}"));
        }
        for (&entity, seq) in seqs.iter().take(64) {
            let pos = arena.position(entity).expect("indexed entity is in the arena");
            let fused = arena.degree_at(pos, &view, &measure);
            let owned = measure.degree(query_seq, seq);
            assert_eq!(
                fused.to_bits(),
                owned.to_bits(),
                "{context}: fused degree of {entity} vs query {query} drifted ({fused} vs {owned})"
            );
        }
    }
}

/// The arena answers bit-identically to the owned path on every workload
/// generator the testkit offers — uniform, paired, skewed, degenerate and
/// planner-adversarial populations alike.
#[test]
fn arena_matches_owned_path_across_all_generators() {
    assert_arena_matches_owned(&Workload::uniform(UniformConfig::default()), "uniform");
    assert_arena_matches_owned(&Workload::paired(PairedConfig::default()), "paired");
    assert_arena_matches_owned(&Workload::skewed(SkewedConfig::default()), "skewed");
    assert_arena_matches_owned(
        &Workload::all_identical(24, HierarchySpec::default()),
        "all_identical",
    );
    assert_arena_matches_owned(
        &Workload::one_cell_pileup(24, HierarchySpec::default()),
        "one_cell_pileup",
    );
    assert_arena_matches_owned(&Workload::degenerate_mix(HierarchySpec::default()), "degenerate");
    let (w, _) = Workload::pruning_adversarial(PruningAdversarialConfig::default());
    assert_arena_matches_owned(&w, "pruning_adversarial");
    let (w, _) = Workload::planner_localized(PlannerLocalizedConfig::default());
    assert_arena_matches_owned(&w, "planner_localized");
    let (w, _) = Workload::planner_dispersed(PlannerDispersedConfig::default());
    assert_arena_matches_owned(&w, "planner_dispersed");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arena-vs-owned bit-identity holds for *arbitrary* uniform populations,
    /// not just the fixed generator defaults.
    #[test]
    fn arena_matches_owned_path_on_random_populations(
        entities in 2u64..48,
        visits in 1u64..10,
        seed in 0u64..1_000,
    ) {
        let w = Workload::uniform(UniformConfig {
            entities,
            visits,
            time_slots: 24,
            hierarchy: HierarchySpec::default(),
            seed,
        });
        assert_arena_matches_owned(&w, &format!("uniform({entities},{visits},{seed})"));
    }
}
