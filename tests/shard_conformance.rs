//! Black-box conformance of the sharded index: for random populations,
//! arbitrary shard counts and arbitrary cooperative-scheduler knobs, every
//! sharded query path must answer **fully bit-identically** to the single
//! unsharded index and the brute-force oracle — identical degree vectors,
//! identical entities at every rank (boundary ties included: all exact paths
//! prune strictly and tie-break by entity id, see `minsig::engine`), and
//! canonical ordering — and a saved/reopened sharded index must answer fully
//! bit-identically to the one that was saved.
//!
//! This is the sharding analogue of checking snapshot isolation from the
//! outside: no internal invariant is trusted, only observable answers
//! compared against oracles.

use digital_traces::index::testkit::{
    assert_equivalent_answers, assert_valid_top_k, StreamConfig, UniformConfig, Workload,
};
use digital_traces::index::{
    BoundMode, IndexConfig, JoinOptions, MinSigIndex, PublishPolicy, QueryOptions, SchedulerConfig,
    ShardedMinSigIndex,
};
use digital_traces::EntityId;
use proptest::prelude::*;

/// Builds the sharded index and its unsharded twin over one random workload.
fn build_pair(
    entities: u64,
    visits: u64,
    seed: u64,
    nh: u32,
    shards: usize,
) -> (Workload, MinSigIndex, ShardedMinSigIndex) {
    let w = Workload::uniform(UniformConfig {
        entities,
        visits,
        time_slots: 48,
        seed,
        ..UniformConfig::default()
    });
    let config = IndexConfig { num_hash_functions: nh, ..IndexConfig::default() };
    let unsharded = w.build_index(config);
    let sharded = ShardedMinSigIndex::build(&w.sp, &w.traces, config, shards).unwrap();
    (w, unsharded, sharded)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `top_k` conformance: sharded == unsharded == brute force for every
    /// entity (degrees exactly — well within the 1e-9 bar — identical
    /// ordering), and every sharded answer is a *valid* top-k selection
    /// against the full ground-truth degree table.
    #[test]
    fn sharded_top_k_equals_unsharded_and_brute_force(
        entities in 2u64..40,
        visits in 1u64..8,
        seed in 0u64..1_000,
        nh in 4u32..32,
        shards in 1usize..9,
        k in 1usize..7,
    ) {
        let (w, unsharded, sharded) = build_pair(entities, visits, seed, nh, shards);
        let measure = w.measure();
        prop_assert_eq!(sharded.num_entities(), unsharded.num_entities());
        let population = unsharded.num_entities();
        for query in w.entities() {
            let (exact, _) = unsharded.top_k(query, k, &measure).unwrap();
            let (fanned, _) = sharded.top_k(query, k, &measure).unwrap();
            assert_equivalent_answers(&fanned, &exact, &format!("sharded vs unsharded, {query}"));

            // Oracles: the canonical brute-force top-k (both flavours agree
            // fully — scans are tie-complete) and the full degree table.
            let oracle = unsharded.brute_force(query, k, &measure).unwrap();
            let sharded_oracle = sharded.brute_force(query, k, &measure).unwrap();
            prop_assert_eq!(&oracle, &sharded_oracle, "the two oracles must agree, {}", query);
            assert_equivalent_answers(&fanned, &oracle, &format!("sharded vs oracle, {query}"));

            let truth = unsharded.brute_force(query, population, &measure).unwrap();
            assert_valid_top_k(&fanned, &truth, k, &format!("validity for {query}"));
        }
    }

    /// Scheduler-knob invariance: the cooperative sharded answer is fully
    /// bit-identical to the unsharded index and the brute-force oracle for
    /// **arbitrary step quanta**, either publish policy and both bound
    /// modes — the scheduler can only move work counters, never answers.
    #[test]
    fn cooperative_scheduler_never_changes_answers(
        entities in 2u64..40,
        visits in 1u64..8,
        seed in 0u64..1_000,
        shards in 1usize..9,
        k in 1usize..7,
        quantum in 1usize..97,
        eager_publish in any::<bool>(),
        share_bound in any::<bool>(),
    ) {
        let (w, unsharded, sharded) = build_pair(entities, visits, seed, 16, shards);
        let measure = w.measure();
        let scheduler = SchedulerConfig {
            step_quantum: quantum,
            publish_policy: if eager_publish {
                PublishPolicy::EveryImprovement
            } else {
                PublishPolicy::PerQuantum
            },
            bound_mode: if share_bound { BoundMode::Shared } else { BoundMode::Independent },
        };
        let snapshot = sharded.snapshot();
        for query in w.entities() {
            let (exact, _) = unsharded.top_k(query, k, &measure).unwrap();
            let (fanned, stats) = snapshot
                .top_k_with_scheduler(query, k, &measure, QueryOptions::default(), scheduler)
                .unwrap();
            assert_equivalent_answers(
                &fanned,
                &exact,
                &format!("scheduler {scheduler:?}, {query}"),
            );
            let oracle = unsharded.brute_force(query, k, &measure).unwrap();
            assert_equivalent_answers(&fanned, &oracle, &format!("vs oracle, {query}"));
            // Work accounting stays closed: every queued subtree is either
            // visited or pruned, and quanta were actually counted.
            prop_assert!(stats.steps >= 1);
            prop_assert!(stats.nodes_visited + stats.subtrees_pruned >= stats.leaves_visited);
            if scheduler.bound_mode == BoundMode::Independent {
                prop_assert_eq!(stats.bound_updates, 0, "private bounds accept nothing");
            }
        }
    }

    /// `top_k_batch` and `top_k_join` conformance: same rows, same order,
    /// same skip behaviour as the unsharded drivers.
    #[test]
    fn sharded_batch_and_join_equal_unsharded(
        entities in 2u64..30,
        seed in 0u64..1_000,
        shards in 1usize..7,
        k in 1usize..5,
    ) {
        let (w, unsharded, sharded) = build_pair(entities, 4, seed, 16, shards);
        let measure = w.measure();
        // Probe set with a guaranteed-unindexed ghost in the middle.
        let mut probes = w.entities();
        probes.insert(probes.len() / 2, EntityId(1_000_000));

        let options = JoinOptions { k, threads: 4, ..JoinOptions::default() };
        let (rows_a, stats_a) = unsharded.top_k_join(&probes, &measure, options).unwrap();
        let (rows_b, stats_b) = sharded.top_k_join(&probes, &measure, options).unwrap();
        prop_assert_eq!(rows_a.len(), rows_b.len());
        prop_assert_eq!(stats_a.probes, stats_b.probes);
        prop_assert_eq!(stats_a.skipped, stats_b.skipped);
        for (a, b) in rows_a.iter().zip(rows_b.iter()) {
            prop_assert_eq!(a.probe, b.probe);
            assert_equivalent_answers(&b.matches, &a.matches, &format!("join row {}", a.probe));
        }

        let queries = w.entities();
        let batch_a = unsharded.top_k_batch(&queries, k, &measure).unwrap();
        let batch_b = sharded.top_k_batch(&queries, k, &measure).unwrap();
        prop_assert_eq!(batch_a.len(), batch_b.len());
        for (i, ((a, _), (b, _))) in batch_a.iter().zip(batch_b.iter()).enumerate() {
            assert_equivalent_answers(b, a, &format!("batch entry {i}"));
        }
        // An unknown query fails the whole batch on both paths.
        prop_assert!(unsharded.top_k_batch(&probes, k, &measure).is_err());
        prop_assert!(sharded.top_k_batch(&probes, k, &measure).is_err());
    }

    /// Durability conformance: a saved-then-reopened sharded index answers
    /// every query **fully bit-identically** to the index that was saved
    /// (identical shard structure ⇒ identical execution, ties included), and
    /// therefore stays equivalent to the unsharded oracle.
    #[test]
    fn saved_and_reopened_sharded_index_answers_identically(
        entities in 2u64..30,
        seed in 0u64..1_000,
        shards in 1usize..7,
        k in 1usize..5,
    ) {
        let (w, unsharded, sharded) = build_pair(entities, 4, seed, 12, shards);
        let dir = std::env::temp_dir().join(format!(
            "shard-conformance-{}-{entities}-{seed}-{shards}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        sharded.save(&dir).unwrap();
        let reopened = ShardedMinSigIndex::open(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();

        prop_assert_eq!(reopened.num_shards(), shards);
        prop_assert_eq!(reopened.num_entities(), sharded.num_entities());
        let measure = w.measure();
        for query in w.entities() {
            let (a, _) = sharded.top_k(query, k, &measure).unwrap();
            let (b, _) = reopened.top_k(query, k, &measure).unwrap();
            prop_assert_eq!(&a, &b, "reopened sharded index diverged for {}", query);
            let (c, _) = unsharded.top_k(query, k, &measure).unwrap();
            assert_equivalent_answers(&b, &c, &format!("reopened vs unsharded, {query}"));
        }
    }

    /// Ingest conformance: streaming a batch into the sharded index yields
    /// the same answers as an unsharded index built from scratch over the
    /// merged traces.
    #[test]
    fn sharded_ingest_equals_rebuild_over_merged_traces(
        entities in 4u64..24,
        seed in 0u64..1_000,
        shards in 1usize..6,
        records in 10usize..150,
    ) {
        let w = Workload::uniform(UniformConfig {
            entities,
            visits: 4,
            seed,
            ..UniformConfig::default()
        });
        let config = IndexConfig { num_hash_functions: 12, ..IndexConfig::default() };
        let mut sharded = ShardedMinSigIndex::build(&w.sp, &w.traces, config, shards).unwrap();
        let stream = w.stream(StreamConfig {
            records,
            existing_entities: entities,
            seed: seed ^ 0xABCD,
            ..StreamConfig::default()
        });
        let mut merged = w.traces.clone();
        for r in &stream {
            merged.record(*r);
        }
        sharded.ingest_batch(stream).unwrap();

        let rebuilt = MinSigIndex::build(&w.sp, &merged, config).unwrap();
        prop_assert_eq!(sharded.num_entities(), rebuilt.num_entities());
        let measure = w.measure();
        for query in merged.entities() {
            let (a, _) = sharded.top_k(query, 3, &measure).unwrap();
            let (b, _) = rebuilt.top_k(query, 3, &measure).unwrap();
            assert_equivalent_answers(&a, &b, &format!("post-ingest, {query}"));
        }
    }
}
