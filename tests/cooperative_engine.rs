//! The cooperative bound-sharing executor from the outside: resumable
//! stepping is answer- and work-invariant, scheduler knobs never change
//! answers, and a [`SharedBound`] provably *saves* work against the
//! independent per-shard baseline on skewed (one-shard-holds-the-top-k)
//! populations — the contract behind the `shard_scaling` bench.

use digital_traces::index::engine::PrivateBound;
use digital_traces::index::testkit::{
    assert_equivalent_answers, PruningAdversarialConfig, UniformConfig, Workload,
};
use digital_traces::index::{
    shard_of, BoundMode, IndexConfig, PublishPolicy, QueryOptions, QueryStats, SchedulerConfig,
    ShardedMinSigIndex,
};
use digital_traces::EntityId;

/// Stepping an [`Executor`](digital_traces::index::Executor) with any quantum
/// reproduces the one-shot search exactly: same answers bitwise, same work
/// counters — resumability is free.
#[test]
fn stepped_execution_matches_one_shot() {
    let w = Workload::uniform(UniformConfig { entities: 48, visits: 5, ..Default::default() });
    let index = w.build_index(IndexConfig::with_hash_functions(24));
    let measure = w.measure();
    let snapshot = index.snapshot();
    for query in [0u64, 7, 23, 41] {
        let query = EntityId(query);
        let (expect, expect_stats) = index.top_k(query, 5, &measure).unwrap();
        for quantum in [1usize, 3, 17, usize::MAX] {
            let seq = snapshot.sequence(query).unwrap();
            let mut executor =
                snapshot.executor(seq, Some(query), 5, &measure, QueryOptions::default()).unwrap();
            while executor.step(&PrivateBound, quantum) {
                assert!(!executor.is_exhausted());
            }
            assert!(executor.is_exhausted());
            assert!(!executor.step(&PrivateBound, quantum), "exhausted executors stay exhausted");
            let (got, stats) = executor.finish();
            assert_eq!(got, expect, "quantum {quantum}, query {query}");
            assert_eq!(stats.nodes_visited, expect_stats.nodes_visited, "quantum {quantum}");
            assert_eq!(stats.leaves_visited, expect_stats.leaves_visited, "quantum {quantum}");
            assert_eq!(stats.entities_checked, expect_stats.entities_checked);
            assert_eq!(stats.subtrees_pruned, expect_stats.subtrees_pruned);
            assert_eq!(stats.bound_updates, 0, "a private bound accepts nothing");
            if quantum == 1 {
                assert!(
                    stats.steps >= stats.nodes_visited,
                    "quantum 1 pays one step per visited node"
                );
            }
        }
    }
}

/// One deterministic cooperative run (batch path: sequential round-robin
/// per-shard interleaving) of a query over the skew workload.
fn run_skewed(
    snapshot: &digital_traces::ShardedSnapshot,
    query: EntityId,
    k: usize,
    measure: &digital_traces::PaperAdm,
    bound_mode: BoundMode,
) -> (Vec<digital_traces::TopKResult>, QueryStats) {
    let scheduler = SchedulerConfig {
        step_quantum: 4,
        publish_policy: PublishPolicy::EveryImprovement,
        bound_mode,
    };
    snapshot
        .top_k_batch_with_scheduler(&[query], k, measure, QueryOptions::default(), scheduler)
        .unwrap()
        .remove(0)
}

/// The satellite stats contract: on a population where one shard holds the
/// whole top-k, a [`SharedBound`](digital_traces::index::SharedBound) visits
/// no more (here: strictly fewer) frontier nodes and checks no more entities
/// than independent per-shard executors, prunes strictly more subtrees, and
/// publishes at least one bound update — with bitwise-identical answers.
#[test]
fn shared_bound_saves_work_on_skewed_shards() {
    let config = PruningAdversarialConfig::default();
    let shards = config.num_shards;
    let (w, hot) = Workload::pruning_adversarial(config);
    let sharded =
        ShardedMinSigIndex::build(&w.sp, &w.traces, IndexConfig::with_hash_functions(32), shards)
            .unwrap();
    let snapshot = sharded.snapshot();
    let measure = w.measure();
    let k = 5;

    // Best case: a hot query — the hot shard saturates the global bound
    // almost immediately and every cold shard should prune wholesale.
    let (shared_results, shared) = run_skewed(&snapshot, hot[0], k, &measure, BoundMode::Shared);
    let (indep_results, indep) = run_skewed(&snapshot, hot[0], k, &measure, BoundMode::Independent);
    assert_eq!(shared_results, indep_results, "bound sharing never changes answers");
    assert!(
        shared.nodes_visited < indep.nodes_visited,
        "cooperative must visit strictly fewer nodes on the skewed workload \
         ({} vs {})",
        shared.nodes_visited,
        indep.nodes_visited
    );
    assert!(
        shared.entities_checked <= indep.entities_checked,
        "{} vs {}",
        shared.entities_checked,
        indep.entities_checked
    );
    assert!(
        shared.subtrees_pruned > indep.subtrees_pruned,
        "the shared bound must cut subtrees the private thresholds cannot \
         ({} vs {})",
        shared.subtrees_pruned,
        indep.subtrees_pruned
    );
    assert!(shared.bound_updates >= 1, "the hot shard publishes its threshold");
    assert_eq!(indep.bound_updates, 0, "independent executors never publish");

    // Worst case: a cold query — sharing may not help, but it must never
    // cost visits (an executor under a higher bound stops no later) and
    // never change the answer.
    let cold = w
        .entities()
        .into_iter()
        .find(|&e| shard_of(e, shards) != shard_of(hot[0], shards))
        .expect("the workload plants cold entities on other shards");
    let (shared_cold_results, shared_cold) =
        run_skewed(&snapshot, cold, k, &measure, BoundMode::Shared);
    let (indep_cold_results, indep_cold) =
        run_skewed(&snapshot, cold, k, &measure, BoundMode::Independent);
    assert_eq!(shared_cold_results, indep_cold_results);
    assert!(shared_cold.nodes_visited <= indep_cold.nodes_visited);
    assert!(shared_cold.entities_checked <= indep_cold.entities_checked);
}

/// Every scheduler knob combination over the adversarial workload returns
/// the bitwise unsharded answer — including the all-ties population, where
/// tie-complete pruning is what keeps the k-th boundary pinned.
#[test]
fn scheduler_knobs_are_answer_invariant_on_adversarial_workloads() {
    let (skew, hot) = Workload::pruning_adversarial(PruningAdversarialConfig::default());
    let ties = Workload::all_identical(12, Default::default());
    for (w, queries, shards) in
        [(&skew, vec![hot[0], hot[2]], 4usize), (&ties, vec![EntityId(0), EntityId(7)], 3)]
    {
        let config = IndexConfig::with_hash_functions(16);
        let unsharded = w.build_index(config);
        let sharded = ShardedMinSigIndex::build(&w.sp, &w.traces, config, shards).unwrap();
        let snapshot = sharded.snapshot();
        let measure = w.measure();
        for &query in &queries {
            let (expect, _) = unsharded.top_k(query, 4, &measure).unwrap();
            let oracle = unsharded.brute_force(query, 4, &measure).unwrap();
            assert_equivalent_answers(&expect, &oracle, &format!("unsharded vs oracle, {query}"));
            for quantum in [1usize, 2, 7, 64, usize::MAX] {
                for publish_policy in [PublishPolicy::EveryImprovement, PublishPolicy::PerQuantum] {
                    for bound_mode in [BoundMode::Shared, BoundMode::Independent] {
                        let scheduler =
                            SchedulerConfig { step_quantum: quantum, publish_policy, bound_mode };
                        let (got, _) = snapshot
                            .top_k_with_scheduler(
                                query,
                                4,
                                &measure,
                                QueryOptions::default(),
                                scheduler,
                            )
                            .unwrap();
                        assert_equivalent_answers(
                            &got,
                            &expect,
                            &format!("{scheduler:?}, query {query}"),
                        );
                    }
                }
            }
        }
    }
}

/// A zero step quantum is a configuration error, reported as such.
#[test]
fn zero_step_quantum_is_rejected() {
    let (w, hot) = Workload::pruning_adversarial(PruningAdversarialConfig {
        hot_entities: 4,
        cold_entities: 8,
        ..Default::default()
    });
    let sharded =
        ShardedMinSigIndex::build(&w.sp, &w.traces, IndexConfig::with_hash_functions(8), 2)
            .unwrap();
    let err = sharded
        .top_k_with_scheduler(
            hot[0],
            1,
            &w.measure(),
            QueryOptions::default(),
            SchedulerConfig::with_step_quantum(0),
        )
        .unwrap_err();
    assert!(matches!(err, digital_traces::index::IndexError::InvalidConfig(_)), "{err:?}");
}
