//! Integration tests of the storage substrate with the index: paged queries,
//! buffer-pool behaviour under different memory budgets, and external-sort-based
//! store construction from generated mobility data.

use digital_traces::index::{IndexConfig, MinSigIndex, QueryOptions};
use digital_traces::mobility_models::{HierarchyConfig, SynConfig, SynDataset};
use digital_traces::storage::{PagedTraceStore, PoolConfig, TraceRecord};
use digital_traces::{EntityId, PaperAdm};

fn dataset() -> SynDataset {
    SynDataset::generate(SynConfig {
        num_entities: 400,
        days: 4,
        hierarchy: HierarchyConfig { grid_side: 20, levels: 3, ..HierarchyConfig::default() },
        seed: 77,
        ..SynConfig::default()
    })
    .expect("generation succeeds")
}

#[test]
fn store_round_trips_every_generated_trace() {
    let dataset = dataset();
    let store = PagedTraceStore::build(&dataset.traces, 6);
    assert_eq!(store.num_entities(), dataset.traces.num_entities());
    assert_eq!(store.stats().records as usize, dataset.traces.total_presence_instances());
    let pool = store.pool(PoolConfig::default());
    for (entity, trace) in dataset.traces.iter() {
        let read = store.read_trace(&pool, entity).expect("entity stored");
        assert_eq!(read.len(), trace.len());
        assert_eq!(read.total_duration(), trace.total_duration());
    }
}

#[test]
fn paged_queries_match_in_memory_queries_on_mobility_data() {
    let dataset = dataset();
    let sp = dataset.sp_index();
    let index =
        MinSigIndex::build(sp, &dataset.traces, IndexConfig::with_hash_functions(64)).unwrap();
    let store = PagedTraceStore::build(&dataset.traces, 6);
    let pool = store.pool(PoolConfig::with_memory_fraction(store.data_bytes(), 0.3));
    let measure = PaperAdm::default_for(sp.height() as usize);
    for query in dataset.query_entities(5, 13) {
        let (memory, _) = index.top_k(query, 10, &measure).unwrap();
        let (paged, stats) =
            index.top_k_paged(query, 10, &measure, &store, &pool, QueryOptions::default()).unwrap();
        assert_eq!(memory.len(), paged.len());
        for (a, b) in memory.iter().zip(paged.iter()) {
            assert!((a.degree - b.degree).abs() < 1e-9);
        }
        assert!(stats.entities_checked > 0);
    }
}

#[test]
fn tighter_memory_budgets_cost_more_simulated_io() {
    let dataset = dataset();
    let sp = dataset.sp_index();
    let index =
        MinSigIndex::build(sp, &dataset.traces, IndexConfig::with_hash_functions(64)).unwrap();
    let store = PagedTraceStore::build(&dataset.traces, 6);
    let measure = PaperAdm::default_for(sp.height() as usize);
    let queries = dataset.query_entities(10, 21);

    let run = |fraction: f64| -> u64 {
        let pool = store.pool(PoolConfig::with_memory_fraction(store.data_bytes(), fraction));
        let mut total = 0u64;
        for _ in 0..2 {
            for &q in &queries {
                let (_, stats) = index
                    .top_k_paged(q, 10, &measure, &store, &pool, QueryOptions::default())
                    .unwrap();
                total += stats.simulated_io_us;
            }
        }
        total
    };
    let tight = run(0.05);
    let roomy = run(1.0);
    assert!(tight >= roomy, "5% of memory must not be cheaper than 100% ({tight} vs {roomy})");
}

#[test]
fn external_sort_handles_interleaved_entity_records() {
    // Records from the generator arrive grouped by entity; shuffle them so the
    // sort actually has work to do, then verify the store still serves each
    // entity's full trace.
    let dataset = dataset();
    let mut records: Vec<TraceRecord> = dataset
        .traces
        .iter()
        .flat_map(|(_, t)| t.instances().iter().map(TraceRecord::from_presence))
        .collect();
    // Deterministic interleave.
    records.sort_by_key(|r| (r.start, r.entity));
    let store = PagedTraceStore::build_from_records(records, 4);
    assert!(store.stats().sort.initial_runs >= 1);
    let pool = store.pool(PoolConfig::default());
    for entity in dataset.traces.entities().take(50) {
        let expected = dataset.traces.trace(entity).unwrap();
        let read = store.read_trace(&pool, entity).expect("entity present");
        assert_eq!(read.len(), expected.len());
    }
    // An entity that never appears is absent.
    assert!(store.read_trace(&pool, EntityId(u64::MAX)).is_none());
}
