//! Black-box conformance of the **out-of-core** sharded query paths: for
//! random populations, arbitrary shard counts, pool budgets down to a single
//! frame and every eviction policy (including an adversarial one that evicts
//! pseudo-randomly), a [`PagedShardedSnapshot`] must answer **fully
//! bit-identically** to the in-memory sharded snapshot, the unsharded index
//! and the brute-force oracle — identical degree bits, identical entities at
//! every rank, k-th-degree boundary ties included.
//!
//! The memory budget and the replacer only decide *which pages are resident
//! when* — they move I/O, never answers.  These suites are the proof: if an
//! eviction decision could leak into a degree, the chaotic replacer would
//! find it.
//!
//! [`PagedShardedSnapshot`]: digital_traces::index::PagedShardedSnapshot

use digital_traces::index::testkit::{
    assert_equivalent_answers, assert_valid_top_k, HierarchySpec, UniformConfig, Workload,
};
use digital_traces::index::{
    IndexConfig, JoinOptions, PlannerConfig, SchedulerConfig, ShardedMinSigIndex,
};
use digital_traces::storage::{
    BufferPool, PageId, PagedTraceStore, PoolConfig, Replacer, ReplacerPolicy, PAGE_SIZE,
};
use digital_traces::EntityId;
use proptest::prelude::*;

/// The policy grid every suite sweeps: plain LRU, the scan-resistant LRU-2
/// default, and FIFO (the baseline whose victims re-access cannot save).
const POLICIES: [ReplacerPolicy; 3] =
    [ReplacerPolicy::LruK(1), ReplacerPolicy::LruK(2), ReplacerPolicy::Fifo];

fn pool_config(pages: usize, policy: ReplacerPolicy) -> PoolConfig {
    PoolConfig { capacity_bytes: pages * PAGE_SIZE, ..PoolConfig::default() }.with_replacer(policy)
}

/// An adversarial [`Replacer`]: evicts a pseudo-random *evictable* page each
/// time, driven by a SplitMix64 stream.  It honours the one contract the
/// engine relies on — a page whose latest `set_evictable(id, false)` stands
/// is never named — and is otherwise as unhelpful as a policy can be.
#[derive(Debug)]
struct ChaoticReplacer {
    state: u64,
    /// Tracked pages in insertion order, with their evictable flag.
    pages: Vec<(PageId, bool)>,
}

impl ChaoticReplacer {
    fn new(seed: u64) -> Self {
        ChaoticReplacer { state: seed, pages: Vec::new() }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Replacer for ChaoticReplacer {
    fn record_access(&mut self, id: PageId) {
        if !self.pages.iter().any(|&(p, _)| p == id) {
            self.pages.push((id, true));
        }
    }

    fn set_evictable(&mut self, id: PageId, evictable: bool) {
        if let Some(entry) = self.pages.iter_mut().find(|(p, _)| *p == id) {
            entry.1 = evictable;
        }
    }

    fn remove(&mut self, id: PageId) {
        self.pages.retain(|&(p, _)| p != id);
    }

    fn victim(&mut self) -> Option<PageId> {
        let candidates: Vec<usize> = self
            .pages
            .iter()
            .enumerate()
            .filter_map(|(i, &(_, evictable))| evictable.then_some(i))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let pick = candidates[(self.next() % candidates.len() as u64) as usize];
        Some(self.pages.remove(pick).0)
    }

    fn tracked(&self) -> usize {
        self.pages.len()
    }
}

fn build_world(
    entities: u64,
    visits: u64,
    seed: u64,
    shards: usize,
) -> (Workload, digital_traces::index::MinSigIndex, ShardedMinSigIndex, PagedTraceStore) {
    let w = Workload::uniform(UniformConfig {
        entities,
        visits,
        time_slots: 48,
        seed,
        ..UniformConfig::default()
    });
    let config = IndexConfig::with_hash_functions(16);
    let unsharded = w.build_index(config);
    let sharded = ShardedMinSigIndex::build(&w.sp, &w.traces, config, shards).unwrap();
    let store = PagedTraceStore::build(&w.traces, 4);
    (w, unsharded, sharded, store)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `top_k` conformance across the whole grid: any shard count, any pool
    /// budget down to one frame, every shipped policy.  The paged answer,
    /// the in-memory sharded answer and the unsharded answer must be
    /// bit-identical, and valid against the full brute-force degree table.
    #[test]
    fn paged_top_k_is_bitwise_identical_for_any_pool_and_policy(
        entities in 2u64..32,
        visits in 1u64..7,
        seed in 0u64..1_000,
        shards in 1usize..7,
        pool_pages in 1usize..8,
        policy_pick in 0usize..3,
        k in 1usize..6,
    ) {
        let (w, unsharded, sharded, store) = build_world(entities, visits, seed, shards);
        let snapshot = sharded.snapshot();
        let pool = store.pool(pool_config(pool_pages, POLICIES[policy_pick]));
        let paged = snapshot.paged(&store, &pool);
        let measure = w.measure();
        let total = w.entities().len();
        for query in w.sample_entities(4, seed ^ 0xD1CE) {
            let (out, stats) = paged.top_k(query, k, &measure).unwrap();
            let (mem, _) = snapshot.top_k(query, k, &measure).unwrap();
            let (flat, _) = unsharded.top_k(query, k, &measure).unwrap();
            let ctx = format!(
                "query {query}, k {k}, {shards} shards, {pool_pages}-page pool, {:?}",
                POLICIES[policy_pick]
            );
            assert_equivalent_answers(&out, &mem, &format!("{ctx}: paged vs in-memory sharded"));
            assert_equivalent_answers(&out, &flat, &format!("{ctx}: paged vs unsharded"));
            let truth = unsharded.brute_force(query, total, &measure).unwrap();
            assert_valid_top_k(&out, &truth, k, &format!("{ctx}: paged vs brute force"));
            prop_assert!(
                stats.pool_hits + stats.pool_misses > 0,
                "{ctx}: a paged query must account its pool traffic"
            );
        }
        prop_assert_eq!(pool.pinned_frames(), 0, "every query releases its pins at finish");
    }

    /// Batch and join conformance under tight pools: answers per query /
    /// per probe are bit-identical to the in-memory sharded paths, skipped
    /// probes included.
    #[test]
    fn paged_batches_and_joins_match_in_memory(
        entities in 3u64..24,
        seed in 0u64..500,
        shards in 1usize..6,
        pool_pages in 1usize..5,
        policy_pick in 0usize..3,
    ) {
        let (w, _, sharded, store) = build_world(entities, 3, seed, shards);
        let snapshot = sharded.snapshot();
        let pool = store.pool(pool_config(pool_pages, POLICIES[policy_pick]));
        let paged = snapshot.paged(&store, &pool);
        let measure = w.measure();

        let queries = w.sample_entities(5, seed ^ 0xBA7C4);
        let mem_batch = snapshot.top_k_batch(&queries, 3, &measure).unwrap();
        let paged_batch = paged.top_k_batch(&queries, 3, &measure).unwrap();
        for (i, ((mem, _), (out, _))) in mem_batch.iter().zip(paged_batch.iter()).enumerate() {
            assert_equivalent_answers(out, mem, &format!("batch slot {i}"));
        }

        // Probe list with one unindexed id: both paths must skip it and agree
        // on everything else, in probe order.
        let mut probes = w.sample_entities(4, seed ^ 0x901E);
        probes.insert(1, EntityId(u64::MAX - 3));
        let options = JoinOptions { k: 2, ..JoinOptions::default() };
        let (mem_rows, mem_stats) = snapshot.top_k_join(&probes, &measure, options).unwrap();
        let (rows, stats) = paged.top_k_join(&probes, &measure, options).unwrap();
        prop_assert_eq!(mem_stats.skipped, stats.skipped);
        prop_assert_eq!(mem_rows.len(), rows.len());
        for (a, b) in mem_rows.iter().zip(rows.iter()) {
            prop_assert_eq!(a.probe, b.probe);
            assert_equivalent_answers(&b.matches, &a.matches, &format!("join probe {}", a.probe));
        }
        prop_assert_eq!(pool.pinned_frames(), 0);
    }

    /// K-th-degree boundary ties: a population where *every* pair is exactly
    /// tied forces the tie-complete cut on every query.  The paged path must
    /// keep the same (complete, id-ordered) tie group bit-for-bit whatever
    /// the pool does.
    #[test]
    fn paged_answers_keep_boundary_ties_bitwise(
        entities in 3u64..16,
        shards in 1usize..5,
        policy_pick in 0usize..3,
        k in 1usize..6,
    ) {
        let w = Workload::all_identical(entities, HierarchySpec::flat(4));
        let config = IndexConfig::with_hash_functions(8);
        let sharded = ShardedMinSigIndex::build(&w.sp, &w.traces, config, shards).unwrap();
        let snapshot = sharded.snapshot();
        let store = PagedTraceStore::build(&w.traces, 4);
        let pool = store.pool(pool_config(1, POLICIES[policy_pick]));
        let paged = snapshot.paged(&store, &pool);
        let measure = w.measure();
        for query in w.entities() {
            let (out, _) = paged.top_k(query, k, &measure).unwrap();
            let (mem, _) = snapshot.top_k(query, k, &measure).unwrap();
            assert_equivalent_answers(
                &out,
                &mem,
                &format!("all-tied population, query {query}, k {k}"),
            );
        }
    }

    /// Any eviction decision sequence yields correct answers: a replacer
    /// that victimises pseudo-randomly (honouring only the pin contract)
    /// cannot change a single degree bit.
    #[test]
    fn chaotic_eviction_decisions_never_change_answers(
        entities in 2u64..24,
        seed in 0u64..500,
        shards in 1usize..6,
        pool_pages in 1usize..6,
        chaos_seed in 0u64..u64::MAX,
        k in 1usize..5,
    ) {
        let (w, _, sharded, store) = build_world(entities, 4, seed, shards);
        let snapshot = sharded.snapshot();
        let pool = BufferPool::with_replacer(
            store.disk(),
            pool_config(pool_pages, ReplacerPolicy::default()),
            Box::new(ChaoticReplacer::new(chaos_seed)),
        );
        let paged = snapshot.paged(&store, &pool);
        let measure = w.measure();
        for query in w.sample_entities(4, seed ^ 0xC4A05) {
            let (out, _) = paged.top_k(query, k, &measure).unwrap();
            let (mem, _) = snapshot.top_k(query, k, &measure).unwrap();
            assert_equivalent_answers(
                &out,
                &mem,
                &format!("chaotic replacer (seed {chaos_seed}), query {query}"),
            );
        }
        prop_assert_eq!(pool.pinned_frames(), 0);
    }
}

/// The ISSUE acceptance bar, deterministically: a sharded index whose trace
/// data is at least **10× the pool budget** answers `top_k`, `top_k_batch`
/// and `top_k_join` bit-identically to the in-memory paths, under both
/// shipped policy families.
#[test]
fn ten_times_memory_answers_stay_exact() {
    let (w, unsharded, sharded, store) = build_world(500, 8, 7, 4);
    let snapshot = sharded.snapshot();
    let measure = w.measure();
    let budget = (store.data_bytes() / 10).max(PAGE_SIZE);
    assert!(store.data_bytes() >= 10 * budget, "dataset must dwarf the pool");

    for policy in POLICIES {
        let pool = store.pool(
            PoolConfig { capacity_bytes: budget, ..PoolConfig::default() }.with_replacer(policy),
        );
        let paged = snapshot.paged(&store, &pool);

        let queries = w.sample_entities(12, 0xFEED);
        for &query in &queries {
            let (out, stats) = paged.top_k(query, 10, &measure).unwrap();
            let (mem, _) = snapshot.top_k(query, 10, &measure).unwrap();
            let (flat, _) = unsharded.top_k(query, 10, &measure).unwrap();
            assert_equivalent_answers(&out, &mem, &format!("{policy:?} 10x top_k {query}"));
            assert_equivalent_answers(&out, &flat, &format!("{policy:?} 10x vs unsharded {query}"));
            assert!(stats.pool_misses > 0, "a 10x-memory query cannot be all hits");
        }

        let mem_batch = snapshot.top_k_batch(&queries, 5, &measure).unwrap();
        let paged_batch = paged.top_k_batch(&queries, 5, &measure).unwrap();
        for ((mem, _), (out, _)) in mem_batch.iter().zip(paged_batch.iter()) {
            assert_equivalent_answers(out, mem, &format!("{policy:?} 10x batch"));
        }

        let options = JoinOptions { k: 3, threads: 4, ..JoinOptions::default() };
        let (mem_rows, _) = snapshot.top_k_join(&queries, &measure, options).unwrap();
        let (rows, _) = paged.top_k_join(&queries, &measure, options).unwrap();
        assert_eq!(mem_rows.len(), rows.len());
        for (a, b) in mem_rows.iter().zip(rows.iter()) {
            assert_equivalent_answers(&b.matches, &a.matches, &format!("{policy:?} 10x join"));
        }
        assert_eq!(pool.pinned_frames(), 0, "{policy:?}: pins all released");
        let io = pool.stats();
        assert!(io.evictions > 0, "{policy:?}: a 10x-memory run must evict");
    }
}

/// The page-aware plan is visible and consistent: every shard carries a page
/// estimate bounded by its page directory, `explain()` renders it, and a
/// planner-disabled paged query (no estimates, no seeding) still answers
/// bit-identically.
#[test]
fn paged_explain_exposes_consistent_page_estimates() {
    let (w, _, sharded, store) = build_world(48, 4, 11, 3);
    let snapshot = sharded.snapshot();
    let pool = store.pool(pool_config(2, ReplacerPolicy::default()));
    let paged = snapshot.paged(&store, &pool);
    let measure = w.measure();
    let query = w.sample_entities(1, 3)[0];

    let plan = paged.explain(query, 5, &measure, PlannerConfig::default()).unwrap();
    assert!(plan.explain().contains("pages="), "explain must render page estimates");
    for shard_plan in &plan.shards {
        let pages = shard_plan.pages.expect("every shard of a paged plan is estimated");
        assert_eq!(pages.total_pages, paged.shard_pages(shard_plan.shard).len());
        assert!(pages.resident_pages <= pages.total_pages);
        assert_eq!(pages.cold_pages(), pages.total_pages - pages.resident_pages);
    }

    let (mem, _) = snapshot
        .top_k_with_scheduler(query, 5, &measure, Default::default(), SchedulerConfig::default())
        .unwrap();
    let (out, stats) = paged
        .top_k_with_scheduler(query, 5, &measure, Default::default(), SchedulerConfig::default())
        .unwrap();
    assert_equivalent_answers(&out, &mem, "planner-disabled paged query");
    assert!(!stats.threshold_seeded, "disabled planner must not seed");
}
