//! Black-box conformance of the deadline-aware budgeted planner: the
//! latency budget is a *quality-of-service* knob, never a silent
//! correctness knob.
//!
//! * **Unbounded budget ⇒ exactness.**  With a budget no plan can exceed,
//!   every budgeted path — planned single queries, batch-planned queries,
//!   the paged out-of-core drive — answers **fully bit-identically** to the
//!   unbudgeted planner, the unsharded index and the brute-force oracle,
//!   boundary ties included.
//! * **Truthful degradation.**  Under *any* budget the answer's
//!   `DegradationReport` is internally consistent: the per-shard mask
//!   matches the counts, planned-approximate and deadline-downgraded shards
//!   partition the sampled set, the minimum sample rate is a real rate, and
//!   an absent report means nothing was sampled anywhere.
//! * **Batch = per-query.**  Batch planning amortizes cost only: its plans
//!   and its answers equal per-query planning bitwise.
//! * **Recall floor.**  On the deadline-adversarial workload (one
//!   pathologically expensive shard) a binding budget must degrade, yet the
//!   reported recall estimate never falls below the configured floor, and a
//!   floor of 1.0 forbids degradation outright — the budget is best-effort,
//!   the floor contractual.

use digital_traces::index::testkit::{
    assert_equivalent_answers, measured_recall, DeadlineAdversarialConfig, UniformConfig, Workload,
};
use digital_traces::index::{
    IndexConfig, MinSigIndex, PlannerConfig, QueryOptions, SchedulerConfig, ShardedMinSigIndex,
};
use digital_traces::storage::{PagedTraceStore, PoolConfig, PAGE_SIZE};
use proptest::prelude::*;

fn build_pair(
    entities: u64,
    visits: u64,
    seed: u64,
    shards: usize,
) -> (Workload, MinSigIndex, ShardedMinSigIndex) {
    let w = Workload::uniform(UniformConfig {
        entities,
        visits,
        time_slots: 48,
        seed,
        ..UniformConfig::default()
    });
    let config = IndexConfig::with_hash_functions(16);
    let unsharded = w.build_index(config);
    let sharded = ShardedMinSigIndex::build(&w.sp, &w.traces, config, shards).unwrap();
    (w, unsharded, sharded)
}

/// A budget no real plan can exceed (saturates the deadline arithmetic, so
/// the deadline never trips and the budget pass never binds).
const UNBOUNDED_US: u64 = u64::MAX / 4;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// (i) Infinite budget ⇒ planned-with-deadline == planned == unsharded
    /// == brute force, fully bit-identical — including through the paged
    /// out-of-core drive.
    #[test]
    fn unbounded_budget_stays_bitwise_exact(
        entities in 2u64..32,
        visits in 1u64..7,
        seed in 0u64..1_000,
        shards in 1usize..7,
        k in 1usize..6,
        recall_floor in 0u32..=10,
        pool_pages in 2usize..6,
    ) {
        let (w, unsharded, sharded) = build_pair(entities, visits, seed, shards);
        let budgeted = PlannerConfig::with_budget_and_floor(
            UNBOUNDED_US,
            f64::from(recall_floor) / 10.0,
        );
        let measure = w.measure();
        let snapshot = sharded.snapshot();
        let store = PagedTraceStore::build(&w.traces, 4);
        let pool = store.pool(PoolConfig {
            capacity_bytes: pool_pages * PAGE_SIZE,
            ..PoolConfig::default()
        });
        let paged = snapshot.paged(&store, &pool);
        for query in w.entities() {
            let (deadline_run, stats) = snapshot
                .top_k_with_planner(
                    query, k, &measure, QueryOptions::default(),
                    SchedulerConfig::default(), budgeted,
                )
                .unwrap();
            prop_assert!(stats.degradation.is_none(), "an unbinding budget never degrades");
            prop_assert_eq!(stats.sampled_candidates, 0usize);
            prop_assert!((stats.recall_estimate - 1.0).abs() < f64::EPSILON);
            let (planned, _) = snapshot
                .top_k_with_planner(
                    query, k, &measure, QueryOptions::default(),
                    SchedulerConfig::default(), PlannerConfig::default(),
                )
                .unwrap();
            assert_equivalent_answers(
                &deadline_run, &planned,
                &format!("unbounded budget vs unbudgeted planner, {query}"),
            );
            let (exact, _) = unsharded.top_k(query, k, &measure).unwrap();
            assert_equivalent_answers(&deadline_run, &exact, &format!("vs unsharded, {query}"));
            let oracle = unsharded.brute_force(query, k, &measure).unwrap();
            assert_equivalent_answers(&deadline_run, &oracle, &format!("vs oracle, {query}"));
            let (paged_run, paged_stats) = paged
                .top_k_with_planner(
                    query, k, &measure, QueryOptions::default(),
                    SchedulerConfig::default(), budgeted,
                )
                .unwrap();
            assert_equivalent_answers(
                &paged_run, &exact,
                &format!("paged unbounded budget vs unsharded, {query}"),
            );
            prop_assert!(paged_stats.degradation.is_none(), "paged unbinding budget degraded");
        }
    }

    /// (ii) Under *any* budget the degradation report is truthful: counts,
    /// mask and minimum rate agree with each other, and no report means no
    /// sampling happened anywhere in the answer.
    #[test]
    fn degradation_reports_are_truthful_under_any_budget(
        entities in 4u64..40,
        visits in 1u64..7,
        seed in 0u64..1_000,
        shards in 1usize..7,
        k in 1usize..6,
        has_budget in any::<bool>(),
        raw_budget_us in 0u64..5_000,
        recall_floor in 0u32..=9,
    ) {
        let (w, _, sharded) = build_pair(entities, visits, seed, shards);
        let budget_us = has_budget.then_some(raw_budget_us);
        let planner = match budget_us {
            Some(us) => PlannerConfig::with_budget_and_floor(us, f64::from(recall_floor) / 10.0),
            None => PlannerConfig::default(),
        };
        let measure = w.measure();
        let snapshot = sharded.snapshot();
        for query in w.sample_entities(4, seed ^ 0xBEEF) {
            let (_, stats) = snapshot
                .top_k_with_planner(
                    query, k, &measure, QueryOptions::default(),
                    SchedulerConfig::default(), planner,
                )
                .unwrap();
            match &stats.degradation {
                None => {
                    // No report ⇒ nothing was sampled: the answer is exact.
                    prop_assert_eq!(stats.sampled_candidates, 0usize);
                    prop_assert!((stats.recall_estimate - 1.0).abs() < f64::EPSILON);
                }
                Some(report) => {
                    prop_assert!(budget_us.is_some(), "degradation without a budget");
                    let sampled = report.shards_approximate();
                    prop_assert!(sampled >= 1, "an empty report must be omitted");
                    prop_assert_eq!(
                        report.shards_planned_approximate + report.shards_deadline_downgraded,
                        sampled,
                        "planned + downgraded must partition the sampled shards"
                    );
                    prop_assert!(sampled <= shards, "more sampled shards than shards");
                    // Every shard index fits the mask here, so the mask is
                    // exactly the sampled set.
                    prop_assert_eq!(
                        report.approximate_shard_mask.count_ones() as usize, sampled,
                        "mask/count divergence"
                    );
                    prop_assert!(
                        report.approximate_shard_mask < (1u64 << shards),
                        "mask names a shard beyond the snapshot"
                    );
                    prop_assert!(
                        (0.0..1.0).contains(&report.min_sample_rate),
                        "a sampled shard's rate lives in [0, 1): {}",
                        report.min_sample_rate
                    );
                    prop_assert!(
                        report.shards_deadline_downgraded == 0 || report.deadline_exceeded,
                        "downgrades imply the deadline flag"
                    );
                    // The estimate honors the floor: every sampled rate was
                    // chosen at or above the shard's floor rate.
                    prop_assert!(
                        stats.recall_estimate >= f64::from(recall_floor) / 10.0 - 1e-9,
                        "recall estimate {} under floor {}",
                        stats.recall_estimate,
                        f64::from(recall_floor) / 10.0
                    );
                    prop_assert!(stats.recall_estimate <= 1.0 + f64::EPSILON);
                }
            }
        }
    }

    /// (iii) Batch planning is an amortization, not a semantics change:
    /// batch plans equal per-query plans and batch answers equal per-query
    /// answers, bitwise, stats contracts included.
    #[test]
    fn batch_planning_matches_per_query_planning(
        entities in 2u64..32,
        visits in 1u64..7,
        seed in 0u64..1_000,
        shards in 1usize..7,
        k in 1usize..6,
    ) {
        let (w, _, sharded) = build_pair(entities, visits, seed, shards);
        let measure = w.measure();
        let snapshot = sharded.snapshot();
        let queries = w.entities();
        let planner = PlannerConfig::default();

        // Plans: bitwise equal to per-query planning, grouping partitions
        // the batch.
        let batch_plan = snapshot.plan_batch(&queries, k, &measure, planner).unwrap();
        prop_assert_eq!(batch_plan.plans.len(), queries.len());
        for (i, &query) in queries.iter().enumerate() {
            let single = snapshot.explain(query, k, &measure, planner).unwrap();
            prop_assert_eq!(
                &batch_plan.plans[i], &single,
                "batch plan {} diverged from explain()", i
            );
        }
        let mut grouped: Vec<usize> =
            batch_plan.groups.iter().flat_map(|g| g.queries.clone()).collect();
        grouped.sort_unstable();
        prop_assert_eq!(grouped, (0..queries.len()).collect::<Vec<_>>());
        let rendering = snapshot.explain_batch(&queries, k, &measure, planner).unwrap();
        prop_assert!(rendering.contains("BatchPlan"), "{}", rendering);

        // Answers: the batch path equals the per-query path bitwise.
        let batch = snapshot
            .top_k_batch_with_planner(
                &queries, k, &measure, QueryOptions::default(),
                SchedulerConfig::default(), planner,
            )
            .unwrap();
        for (i, &query) in queries.iter().enumerate() {
            let (single, _) = snapshot
                .top_k_with_planner(
                    query, k, &measure, QueryOptions::default(),
                    SchedulerConfig::default(), planner,
                )
                .unwrap();
            assert_equivalent_answers(
                &batch[i].0, &single,
                &format!("batch vs per-query, entry {i} ({query})"),
            );
            prop_assert!(batch[i].1.degradation.is_none(), "no budget, no degradation");
        }

        // And under an unbounded budget the deadline-enabled batch stays
        // bitwise identical too.
        let budgeted = PlannerConfig::with_budget(UNBOUNDED_US);
        let budgeted_batch = snapshot
            .top_k_batch_with_planner(
                &queries, k, &measure, QueryOptions::default(),
                SchedulerConfig::default(), budgeted,
            )
            .unwrap();
        for (i, (answer, stats)) in budgeted_batch.iter().enumerate() {
            assert_equivalent_answers(
                answer, &batch[i].0,
                &format!("unbounded-budget batch vs unbudgeted batch, entry {i}"),
            );
            prop_assert!(stats.degradation.is_none());
        }
    }
}

/// (iv) The recall floor is honored on the deadline-adversarial workload: a
/// 1 µs budget must force sampling (the expensive clique shard cannot fit),
/// yet every reported recall estimate stays at or above the floor, the
/// report is stamped, and the measured recall against the exact answer is
/// healthy on average — the hot-entity sketch keeps the clique's strongest
/// partners in every sampled scan.
#[test]
fn recall_floor_is_honored_on_the_adversarial_workload() {
    let (w, clique) = Workload::deadline_adversarial(DeadlineAdversarialConfig::default());
    let config = IndexConfig::with_hash_functions(32);
    let unsharded = w.build_index(config);
    let sharded = ShardedMinSigIndex::build(&w.sp, &w.traces, config, 4).unwrap();
    let snapshot = sharded.snapshot();
    let measure = w.measure();
    let k = 5;
    let floor = 0.5;
    let planner = PlannerConfig::with_budget_and_floor(1, floor);

    let mut degraded_queries = 0usize;
    let mut recall_sum = 0.0;
    let mut probes = 0usize;
    for &query in &clique {
        let (answer, stats) = snapshot
            .top_k_with_planner(
                query,
                k,
                &measure,
                QueryOptions::default(),
                SchedulerConfig::default(),
                planner,
            )
            .unwrap();
        let (exact, _) = unsharded.top_k(query, k, &measure).unwrap();
        probes += 1;
        recall_sum += measured_recall(&answer, &exact);
        assert!(
            stats.recall_estimate >= floor - 1e-9,
            "estimate {} under the floor for {query}",
            stats.recall_estimate
        );
        if let Some(report) = &stats.degradation {
            degraded_queries += 1;
            assert!(report.shards_approximate() >= 1);
            assert!(report.min_sample_rate < 1.0);
        }
    }
    assert!(degraded_queries > 0, "a 1 us budget must bind somewhere on the adversarial workload");
    let mean_recall = recall_sum / probes as f64;
    assert!(
        mean_recall >= floor,
        "mean measured recall {mean_recall} fell under the floor {floor}"
    );

    // A floor of 1.0 forbids sampling outright: even the impossible budget
    // answers exactly, bitwise.
    let strict = PlannerConfig::with_budget_and_floor(1, 1.0);
    for &query in clique.iter().take(6) {
        let (answer, stats) = snapshot
            .top_k_with_planner(
                query,
                k,
                &measure,
                QueryOptions::default(),
                SchedulerConfig::default(),
                strict,
            )
            .unwrap();
        assert!(stats.degradation.is_none(), "a 1.0 floor forbids degradation");
        let (exact, _) = unsharded.top_k(query, k, &measure).unwrap();
        assert_equivalent_answers(&answer, &exact, &format!("strict floor, {query}"));
    }
}
