//! Crash-recovery conformance for the durable ingest path: a write-ahead log
//! cut at **every byte prefix** (a crash mid-append) or damaged by bit flips
//! must recover exactly the committed batch prefix, bit-identically to an
//! index that applied those batches and never crashed; a sharded batch whose
//! commit record never hit the commit log must vanish on every shard.
//!
//! "Bit-identically" is literal: the recovered snapshot's serialised bytes
//! are compared against the never-crashed oracle's, not just its answers.

use digital_traces::index::durable::{
    commit_wal_dir, shard_wal_dir, wal_dir, DurableMinSigIndex, DurableShardedMinSigIndex,
};
use digital_traces::index::testkit::{
    assert_equivalent_answers, PairedConfig, StreamConfig, Workload,
};
use digital_traces::index::{durable, IndexConfig, MinSigIndex, ShardedMinSigIndex};
use digital_traces::storage::{LogConfig, LogManager};
use digital_traces::{EntityId, PresenceInstance};
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};

fn no_fsync() -> LogConfig {
    LogConfig { fsync: false, ..LogConfig::default() }
}

fn workload() -> Workload {
    Workload::paired(PairedConfig { pairs: 12, ..PairedConfig::default() })
}

fn batch(w: &Workload, i: u64, records: usize) -> Vec<PresenceInstance> {
    w.stream(StreamConfig {
        records,
        existing_entities: 24,
        new_entity_base: 1_000 + i * 10,
        new_entity_span: 4,
        new_entity_percent: 25,
        start_tick: 10_000 + i * 1_000,
        seed: 7 + i,
        ..StreamConfig::default()
    })
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wal-recovery-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Serialised bytes of an unsharded index's snapshot — the bitwise oracle.
fn index_bytes(index: &MinSigIndex) -> Vec<u8> {
    index.snapshot().to_bytes().unwrap()
}

/// Per-shard serialised bytes of a sharded index — the bitwise oracle.
fn sharded_bytes(index: &ShardedMinSigIndex) -> Vec<Vec<u8>> {
    let snapshot = index.snapshot();
    (0..index.num_shards()).map(|s| snapshot.shard(s).to_bytes().unwrap()).collect()
}

/// Replaces the WAL directory's single segment file with `bytes`.
fn rewrite_wal(dir: &Path, bytes: &[u8]) {
    let _ = fs::remove_dir_all(dir);
    fs::create_dir_all(dir).unwrap();
    fs::write(dir.join("wal-00000000.log"), bytes).unwrap();
}

/// A crash can cut the unsharded WAL at **any** byte.  Whatever the cut,
/// recovery must yield exactly the batches whose final fsync'd byte made it,
/// and the recovered index must serialise bit-identically to a never-crashed
/// index that applied exactly those batches.
#[test]
fn every_wal_byte_prefix_recovers_the_committed_batch_prefix() {
    let w = workload();
    let config = IndexConfig::with_hash_functions(16);
    let dir = temp_dir("prefix");
    let mut durable = DurableMinSigIndex::create(&dir, w.build_index(config), no_fsync()).unwrap();
    let batches: Vec<Vec<PresenceInstance>> = (0..3).map(|i| batch(&w, i, 5)).collect();
    let mut ends = Vec::new(); // WAL length at which each batch became durable
    for b in &batches {
        durable.ingest(b.clone()).unwrap();
        ends.push(durable.log().disk_bytes());
    }
    drop(durable);
    let full = fs::read(wal_dir(&dir).join("wal-00000000.log")).unwrap();

    // oracles[j] = never-crashed index that applied exactly batches[..j].
    let oracles: Vec<MinSigIndex> = (0..=batches.len())
        .map(|j| {
            let mut index = w.build_index(config);
            for b in &batches[..j] {
                index.ingest_batch(b.clone()).unwrap();
            }
            index
        })
        .collect();
    let oracle_bytes: Vec<Vec<u8>> = oracles.iter().map(index_bytes).collect();

    let measure = w.measure();
    for cut in 0..=full.len() {
        rewrite_wal(&wal_dir(&dir), &full[..cut]);
        let (recovered, report) = DurableMinSigIndex::open(&dir, no_fsync()).unwrap();
        let expect = ends.iter().filter(|&&e| e <= cut as u64).count();
        assert_eq!(report.batches_replayed, expect, "cut at byte {cut} of {}", full.len());
        assert_eq!(
            index_bytes(recovered.index()),
            oracle_bytes[expect],
            "cut at byte {cut}: recovered index is not bit-identical to the oracle"
        );
        let (a, _) = recovered.index().top_k(EntityId(0), 3, &measure).unwrap();
        let (b, _) = oracles[expect].top_k(EntityId(0), 3, &measure).unwrap();
        assert_equivalent_answers(&a, &b, &format!("cut at byte {cut}"));
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// A flipped bit anywhere in the WAL ends the recovered prefix at the record
/// it lands in — and the result is still bit-identical to the corresponding
/// never-crashed oracle, never a corrupted index.
#[test]
fn wal_bit_flips_recover_a_clean_batch_prefix() {
    let w = workload();
    let config = IndexConfig::with_hash_functions(16);
    let dir = temp_dir("flip");
    let mut durable = DurableMinSigIndex::create(&dir, w.build_index(config), no_fsync()).unwrap();
    let batches: Vec<Vec<PresenceInstance>> = (0..3).map(|i| batch(&w, i, 5)).collect();
    let mut ends = Vec::new();
    for b in &batches {
        durable.ingest(b.clone()).unwrap();
        ends.push(durable.log().disk_bytes());
    }
    drop(durable);
    let full = fs::read(wal_dir(&dir).join("wal-00000000.log")).unwrap();

    let oracle_bytes: Vec<Vec<u8>> = (0..=batches.len())
        .map(|j| {
            let mut index = w.build_index(config);
            for b in &batches[..j] {
                index.ingest_batch(b.clone()).unwrap();
            }
            index_bytes(&index)
        })
        .collect();

    // One flipped bit per byte (rotating which) covers every byte of every
    // record without 8×ing the runtime.
    const FILE_HEADER_LEN: usize = 16;
    for byte in FILE_HEADER_LEN..full.len() {
        let mut damaged = full.clone();
        damaged[byte] ^= 1 << (byte % 8);
        rewrite_wal(&wal_dir(&dir), &damaged);
        let (recovered, report) = DurableMinSigIndex::open(&dir, no_fsync()).unwrap();
        // The flip lands inside record `hit`; everything before it survives.
        let hit = ends.iter().filter(|&&e| e <= byte as u64).count();
        assert_eq!(report.batches_replayed, hit, "flip at byte {byte} went undetected");
        assert_eq!(
            index_bytes(recovered.index()),
            oracle_bytes[hit],
            "flip at byte {byte}: recovered index diverged from the oracle"
        );
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// Sharded: the commit log is the atomicity pivot.  Cut it at every byte —
/// batches whose commit record survives replay on **all** their shards,
/// batches whose commit record was torn vanish from **all** their shards,
/// even though every sub-batch still sits in the per-shard WALs.
#[test]
fn every_commit_log_prefix_keeps_batches_atomic_across_shards() {
    let w = workload();
    let config = IndexConfig::with_hash_functions(16);
    let shards = 2;
    let dir = temp_dir("commit-prefix");
    let built = ShardedMinSigIndex::build(&w.sp, &w.traces, config, shards).unwrap();
    let mut durable = DurableShardedMinSigIndex::create(&dir, built, no_fsync()).unwrap();
    let batches: Vec<Vec<PresenceInstance>> = (0..3).map(|i| batch(&w, i, 6)).collect();
    let mut ends = Vec::new(); // commit-log length at which each batch committed
    for b in &batches {
        durable.ingest(b.clone()).unwrap();
        ends.push(durable.commit_log().disk_bytes());
    }
    drop(durable);
    let full = fs::read(commit_wal_dir(&dir).join("wal-00000000.log")).unwrap();

    // Shards each batch touches (= sub-batches recovery must discard when
    // that batch's commit record is lost).
    let touched: Vec<usize> = batches
        .iter()
        .map(|b| {
            let mut seen = vec![false; shards];
            for r in b {
                seen[digital_traces::index::shard_of(r.entity, shards)] = true;
            }
            seen.iter().filter(|&&s| s).count()
        })
        .collect();

    let oracle_bytes: Vec<Vec<Vec<u8>>> = (0..=batches.len())
        .map(|j| {
            let mut index = ShardedMinSigIndex::build(&w.sp, &w.traces, config, shards).unwrap();
            for b in &batches[..j] {
                index.ingest_batch(b.clone()).unwrap();
            }
            sharded_bytes(&index)
        })
        .collect();

    for cut in 0..=full.len() {
        rewrite_wal(&commit_wal_dir(&dir), &full[..cut]);
        let (recovered, report) = DurableShardedMinSigIndex::open(&dir, no_fsync()).unwrap();
        let expect = ends.iter().filter(|&&e| e <= cut as u64).count();
        assert_eq!(report.batches_replayed, expect, "commit log cut at byte {cut}");
        assert_eq!(
            report.uncommitted_discarded,
            touched[expect..].iter().sum::<usize>(),
            "commit log cut at byte {cut}: wrong number of discarded sub-batches"
        );
        assert_eq!(
            recovered.next_batch_id(),
            batches.len() as u64 + 1,
            "ids seen in shard logs must stay burned even when uncommitted"
        );
        assert_eq!(
            sharded_bytes(recovered.index()),
            oracle_bytes[expect],
            "commit log cut at byte {cut}: some shard diverged from the oracle"
        );
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// A crash between two shards' WAL appends leaves a sub-batch with no commit
/// record.  Recovery discards it, its id is never reused, and after the next
/// checkpoint it is physically gone — it can never resurface.
#[test]
fn crash_between_shard_appends_discards_the_torn_batch_forever() {
    let w = workload();
    let config = IndexConfig::with_hash_functions(16);
    let dir = temp_dir("torn-batch");
    let built = ShardedMinSigIndex::build(&w.sp, &w.traces, config, 2).unwrap();
    let mut durable = DurableShardedMinSigIndex::create(&dir, built, no_fsync()).unwrap();
    durable.ingest(batch(&w, 0, 6)).unwrap();
    let orphan_id = durable.next_batch_id();
    drop(durable);

    // Oracle: only the committed batch was ever applied.
    let mut oracle = ShardedMinSigIndex::build(&w.sp, &w.traces, config, 2).unwrap();
    oracle.ingest_batch(batch(&w, 0, 6)).unwrap();

    // The crash: shard 0's WAL gets the sub-batch, the commit log does not.
    let torn = batch(&w, 1, 6);
    let (mut log, _) = LogManager::open(&shard_wal_dir(&dir, 0), 0, no_fsync()).unwrap();
    log.append(&durable::encode_sub_batch(orphan_id, &torn)).unwrap();
    drop(log);

    let (mut recovered, report) = DurableShardedMinSigIndex::open(&dir, no_fsync()).unwrap();
    assert_eq!(report.batches_replayed, 1);
    assert_eq!(report.uncommitted_discarded, 1);
    assert_eq!(sharded_bytes(recovered.index()), sharded_bytes(&oracle));
    assert_eq!(recovered.next_batch_id(), orphan_id + 1, "the orphaned id is burned");

    // Life goes on: ingest, checkpoint (retires the orphan with the logs),
    // reopen — the torn batch stays gone.
    recovered.ingest(batch(&w, 2, 6)).unwrap();
    oracle.ingest_batch(batch(&w, 2, 6)).unwrap();
    recovered.checkpoint().unwrap();
    drop(recovered);
    let (recovered, report) = DurableShardedMinSigIndex::open(&dir, no_fsync()).unwrap();
    assert_eq!(report, durable::RecoveryReport::default());
    let measure = w.measure();
    for query in [0u64, 5, 11] {
        let (a, _) = recovered.index().top_k(EntityId(query), 3, &measure).unwrap();
        let (b, _) = oracle.top_k(EntityId(query), 3, &measure).unwrap();
        assert_equivalent_answers(&a, &b, &format!("after checkpoint, query {query}"));
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// Checkpoint/ingest cycles: every generation truncates the log, stamps the
/// checkpoint with its LSN, and a crash in any generation replays only that
/// generation's batches.
#[test]
fn checkpoint_cycles_replay_only_their_own_generation() {
    let w = workload();
    let config = IndexConfig::with_hash_functions(16);
    let dir = temp_dir("cycles");
    let mut oracle = w.build_index(config);
    let mut durable = DurableMinSigIndex::create(&dir, w.build_index(config), no_fsync()).unwrap();
    for generation in 0..4u64 {
        for i in 0..2u64 {
            let b = batch(&w, generation * 10 + i, 5);
            durable.ingest(b.clone()).unwrap();
            oracle.ingest_batch(b).unwrap();
        }
        durable.checkpoint().unwrap();
        assert_eq!(durable.log().first_lsn(), None, "generation {generation} left log records");
    }
    // One last un-checkpointed batch, then a crash.
    let tail = batch(&w, 99, 5);
    durable.ingest(tail.clone()).unwrap();
    oracle.ingest_batch(tail).unwrap();
    drop(durable);

    let (recovered, report) = DurableMinSigIndex::open(&dir, no_fsync()).unwrap();
    assert_eq!(report.batches_replayed, 1, "checkpoints cover the earlier generations");
    assert_eq!(recovered.index().num_entities(), oracle.num_entities());
    let measure = w.measure();
    for query in [0u64, 5, 11] {
        let (a, _) = recovered.index().top_k(EntityId(query), 3, &measure).unwrap();
        let (b, _) = oracle.top_k(EntityId(query), 3, &measure).unwrap();
        assert_equivalent_answers(&a, &b, &format!("after 4 generations, query {query}"));
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// An arbitrary-workload property: whatever the batches and wherever the
/// crash cuts the WAL, recovery produces a bit-identical prefix oracle.
fn workload_strategy() -> impl Strategy<Value = Vec<(u64, u64, u64)>> {
    // (entity 0..24 or new, start slot, duration slots)
    proptest::collection::vec((0u64..30, 0u64..48, 1u64..4), 6..36)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_workload_any_cut_recovers_bit_identically(
        items in workload_strategy(),
        cut_seed in 0u64..1_000_000,
    ) {
        let w = workload();
        let base = w.sp.base_units().to_vec();
        let records: Vec<PresenceInstance> = items
            .iter()
            .map(|&(entity, slot, span)| {
                PresenceInstance::new(
                    EntityId(entity),
                    base[(entity * 7 + slot) as usize % base.len()],
                    digital_traces::Period::new(slot * 60, (slot + span) * 60).unwrap(),
                )
            })
            .collect();
        let batches: Vec<Vec<PresenceInstance>> =
            records.chunks(records.len().div_ceil(3)).map(<[_]>::to_vec).collect();

        let config = IndexConfig::with_hash_functions(8);
        let dir = temp_dir(&format!("prop-{}-{cut_seed}", items.len()));
        let mut durable =
            DurableMinSigIndex::create(&dir, w.build_index(config), no_fsync()).unwrap();
        let mut ends = Vec::new();
        for b in &batches {
            durable.ingest(b.clone()).unwrap();
            ends.push(durable.log().disk_bytes());
        }
        drop(durable);
        let full = fs::read(wal_dir(&dir).join("wal-00000000.log")).unwrap();
        let cut = (cut_seed % (full.len() as u64 + 1)) as usize;

        rewrite_wal(&wal_dir(&dir), &full[..cut]);
        let (recovered, report) = DurableMinSigIndex::open(&dir, no_fsync()).unwrap();
        let expect = ends.iter().filter(|&&e| e <= cut as u64).count();
        prop_assert_eq!(report.batches_replayed, expect);

        let mut oracle = w.build_index(config);
        for b in &batches[..expect] {
            oracle.ingest_batch(b.clone()).unwrap();
        }
        prop_assert_eq!(index_bytes(recovered.index()), index_bytes(&oracle));
        fs::remove_dir_all(&dir).unwrap();
    }
}
