//! End-to-end integration tests: generated datasets → MinSigTree index → top-k
//! queries, cross-checked against the brute-force scan and the bitmap baseline.
//!
//! Populations come from the shared `minsig::testkit` generator (plus one
//! mobility-model dataset to keep the synthetic generator covered); the
//! brute-force comparisons run through the testkit's oracle helpers.

use digital_traces::baselines::{scan_top_k, BitmapIndex, BitmapIndexConfig};
use digital_traces::index::testkit::{
    assert_matches_brute_force, PairedConfig, UniformConfig, Workload,
};
use digital_traces::index::{HasherMode, IndexConfig, MinSigIndex, QueryOptions};
use digital_traces::mobility_models::{HierarchyConfig, SynConfig, SynDataset};
use digital_traces::{DiceAdm, JaccardAdm, PaperAdm};

fn uniform_workload(seed: u64) -> Workload {
    Workload::uniform(UniformConfig { entities: 120, visits: 8, seed, ..UniformConfig::default() })
}

#[test]
fn index_is_exact_on_generated_workloads() {
    for w in [
        uniform_workload(1),
        Workload::paired(PairedConfig { pairs: 60, ..PairedConfig::default() }),
    ] {
        let index = w.build_index(IndexConfig::with_hash_functions(64));
        let measure = w.measure();
        for query in w.sample_entities(6, 99) {
            for k in [1usize, 5, 25] {
                assert_matches_brute_force(&index, query, k, &measure);
            }
        }
    }
}

#[test]
fn index_is_exact_on_generated_mobility_data() {
    // The hierarchical mobility model produces clustered, bursty traces the
    // uniform generator cannot; keep it covered end to end.
    let dataset = SynDataset::generate(SynConfig {
        num_entities: 300,
        days: 3,
        hierarchy: HierarchyConfig { grid_side: 16, levels: 3, ..HierarchyConfig::default() },
        seed: 1,
        ..SynConfig::default()
    })
    .expect("generation succeeds");
    let index = MinSigIndex::build(
        dataset.sp_index(),
        &dataset.traces,
        IndexConfig::with_hash_functions(64),
    )
    .unwrap();
    let measure = PaperAdm::default_for(dataset.sp_index().height() as usize);
    for query in dataset.query_entities(6, 99) {
        for k in [1usize, 5, 25] {
            assert_matches_brute_force(&index, query, k, &measure);
        }
    }
}

#[test]
fn index_is_exact_under_different_measures() {
    let w = uniform_workload(2);
    let m = w.sp.height() as usize;
    let index = w.build_index(IndexConfig::with_hash_functions(48));
    let queries = w.sample_entities(4, 3);
    let dice = DiceAdm::uniform(m);
    let jaccard = JaccardAdm::uniform(m);
    let skewed = PaperAdm::new(m, 3.0, 4.0).unwrap();
    for query in queries {
        assert_matches_brute_force(&index, query, 10, &dice);
        assert_matches_brute_force(&index, query, 10, &jaccard);
        assert_matches_brute_force(&index, query, 10, &skewed);
    }
}

#[test]
fn both_hasher_modes_and_all_query_options_are_exact() {
    let w = uniform_workload(3);
    let measure = w.measure();
    let queries = w.sample_entities(3, 5);
    for mode in [HasherMode::PathMax, HasherMode::Exhaustive] {
        let config = IndexConfig { hasher_mode: mode, ..IndexConfig::with_hash_functions(32) };
        let index = w.build_index(config);
        for options in [
            QueryOptions::default(),
            QueryOptions { use_level_constraints: false, accumulate_down_branch: true },
            QueryOptions { use_level_constraints: true, accumulate_down_branch: false },
            QueryOptions { use_level_constraints: false, accumulate_down_branch: false },
        ] {
            for &query in &queries {
                let (got, _) = index.top_k_with_options(query, 10, &measure, options).unwrap();
                let expect = index.brute_force(query, 10, &measure).unwrap();
                for (g, e) in got.iter().zip(expect.iter()) {
                    assert!(
                        (g.degree - e.degree).abs() < 1e-9,
                        "mode {mode:?}, options {options:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn baseline_and_index_agree_on_answers() {
    let w = uniform_workload(4);
    let measure = w.measure();
    let index = w.build_index(IndexConfig::with_hash_functions(64));
    let sequences = index.sequences().clone();
    let bitmap =
        BitmapIndex::build(&sequences, BitmapIndexConfig { min_support: 2, num_clusters: 128 });
    for query in w.sample_entities(4, 17) {
        let (tree_answers, tree_stats) = index.top_k(query, 5, &measure).unwrap();
        let (bitmap_answers, _) = bitmap.top_k(&sequences, query, 5, &measure);
        let (scan_answers, _) = scan_top_k(&sequences, query, 5, &measure);
        assert_eq!(tree_answers.len(), bitmap_answers.len());
        for ((t, b), s) in tree_answers.iter().zip(&bitmap_answers).zip(&scan_answers) {
            assert!((t.degree - b.1).abs() < 1e-9, "tree vs bitmap");
            assert!((t.degree - s.1).abs() < 1e-9, "tree vs scan");
        }
        // All three are exact; the tree should not check more entities than the scan.
        assert!(tree_stats.entities_checked <= index.num_entities());
    }
}

#[test]
fn incremental_updates_match_full_rebuild_on_generated_data() {
    let w = uniform_workload(5);
    let config = IndexConfig::with_hash_functions(48);
    let mut incremental = w.build_index(config);
    let mut traces = w.traces.clone();

    // Move 30 entities: each adopts the (re-attributed) trace of another entity.
    let entities = w.entities();
    for i in 0..30usize {
        let target = entities[i * 7 % entities.len()];
        let donor = entities[(i * 13 + 5) % entities.len()];
        let donor_trace = traces.trace(donor).unwrap().clone();
        let new_trace: digital_traces::DigitalTrace = donor_trace
            .instances()
            .iter()
            .map(|pi| digital_traces::PresenceInstance::new(target, pi.unit, pi.period))
            .collect();
        incremental.update_entity(target, &new_trace).unwrap();
        traces.insert_trace(target, new_trace);
    }
    let rebuilt = MinSigIndex::build(&w.sp, &traces, config).unwrap();
    let measure = w.measure();
    for query in w.sample_entities(5, 31) {
        let (a, _) = incremental.top_k(query, 10, &measure).unwrap();
        let (b, _) = rebuilt.top_k(query, 10, &measure).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x.degree - y.degree).abs() < 1e-9);
        }
    }
}

#[test]
fn removal_then_reinsertion_restores_answers() {
    let w = uniform_workload(6);
    let mut index = w.build_index(IndexConfig::with_hash_functions(32));
    let measure = w.measure();
    let query = w.sample_entities(1, 8)[0];
    let (before, _) = index.top_k(query, 5, &measure).unwrap();
    let victim = before[0].entity;
    let victim_trace = w.traces.trace(victim).unwrap().clone();

    index.remove_entity(victim).unwrap();
    let (without, _) = index.top_k(query, 5, &measure).unwrap();
    assert!(without.iter().all(|r| r.entity != victim));

    assert!(index.upsert_entity(victim, &victim_trace).unwrap(), "victim was removed");
    let (after, _) = index.top_k(query, 5, &measure).unwrap();
    for (x, y) in before.iter().zip(after.iter()) {
        assert!((x.degree - y.degree).abs() < 1e-9);
    }
    assert_eq!(after[0].entity, victim);
}
