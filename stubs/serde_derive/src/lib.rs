//! Offline stand-in for `serde_derive`.
//!
//! The workspace's `serde` stub gives [`Serialize`]/[`Deserialize`] blanket
//! implementations, so the derives only need to exist — expanding to nothing
//! keeps every `#[derive(Serialize, Deserialize)]` in the codebase compiling
//! unchanged until the real crates.io dependency can be restored.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`: the trait is blanket-implemented by the
/// workspace's `serde` stub.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`: the trait is blanket-implemented by the
/// workspace's `serde` stub.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
