//! Offline stand-in for the `rayon` crate.
//!
//! Provides the slice fan-out subset this workspace uses — `par_iter().map(..)
//! .collect()` plus [`join`] and [`current_num_threads`] — implemented with
//! `std::thread::scope` over contiguous chunks.  Results are always collected
//! in input order, so swapping in the real work-stealing pool cannot change
//! any observable output, only the scheduling.

use std::num::NonZeroUsize;
use std::thread;

/// Number of worker threads a parallel operation will fan out to.
pub fn current_num_threads() -> usize {
    thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    thread::scope(|scope| {
        let handle = scope.spawn(a);
        let rb = b();
        (handle.join().expect("rayon::join closure panicked"), rb)
    })
}

/// The traits a caller needs in scope to use `par_iter()`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Conversion of `&self` into a parallel iterator (slice subset).
pub trait IntoParallelRefIterator<'data> {
    /// The element type iterated over.
    type Item: Sync + 'data;

    /// Returns a parallel iterator over borrowed elements.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// A parallel iterator over a borrowed slice.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Maps every element through `map`, in parallel.
    pub fn map<R, F>(self, map: F) -> ParMap<'data, T, F>
    where
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        ParMap { items: self.items, map }
    }
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    map: F,
}

impl<'data, T, R, F> ParMap<'data, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    /// Runs the map over all elements and collects the results in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(self.run())
    }

    fn run(self) -> Vec<R> {
        let threads = current_num_threads().min(self.items.len().max(1));
        if threads <= 1 || self.items.len() <= 1 {
            return self.items.iter().map(&self.map).collect();
        }
        let chunk_len = self.items.len().div_ceil(threads);
        let map = &self.map;
        let mut results: Vec<R> = Vec::with_capacity(self.items.len());
        thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk_len)
                .map(|chunk| scope.spawn(move || chunk.iter().map(map).collect::<Vec<R>>()))
                .collect();
            for handle in handles {
                results.extend(handle.join().expect("rayon worker panicked"));
            }
        });
        results
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_input_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), input.len());
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, 2 * i as u64);
        }
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [41u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }
}
