//! Offline stand-in for the `serde` crate.
//!
//! The workspace never serialises anything at runtime (there is no
//! `serde_json`/`bincode` in the dependency tree); `serde` appears only in
//! `#[derive(Serialize, Deserialize)]` attributes that keep the public types
//! ready for a real serialisation backend.  This stub keeps those derives
//! compiling offline: the traits are markers with blanket implementations and
//! the derive macros expand to nothing.  Swapping the path dependency for the
//! crates.io release restores full serialisation support without touching any
//! other file.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
