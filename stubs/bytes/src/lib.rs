//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this workspace vendors
//! the *subset* of the `bytes` API that the `trace-storage` crate uses: cheaply
//! cloneable immutable buffers ([`Bytes`]), a growable builder ([`BytesMut`])
//! and the little-endian cursor traits ([`Buf`] / [`BufMut`]).  The types are
//! drop-in compatible with the real crate for that subset, so swapping the
//! path dependency for the crates.io release is a one-line change.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::new(data.to_vec()) }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data: Arc::new(data) }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with the given capacity pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }

    /// Resizes the buffer, filling new space with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.data.resize(new_len, value);
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: Arc::new(self.data) }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source (little-endian accessors only).
pub trait Buf {
    /// Reads a little-endian `u64` and advances the cursor.
    fn get_u64_le(&mut self) -> u64;

    /// Reads a little-endian `u32` and advances the cursor.
    fn get_u32_le(&mut self) -> u32;
}

impl Buf for &[u8] {
    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        u64::from_le_bytes(head.try_into().expect("8 bytes"))
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_le_bytes(head.try_into().expect("4 bytes"))
    }
}

/// Write cursor over a byte sink (little-endian accessors only).
pub trait BufMut {
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, value: u64);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, value: u32);
}

impl BufMut for Vec<u8> {
    fn put_u64_le(&mut self, value: u64) {
        self.extend_from_slice(&value.to_le_bytes());
    }

    fn put_u32_le(&mut self, value: u32) {
        self.extend_from_slice(&value.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u64_le(&mut self, value: u64) {
        self.data.put_u64_le(value);
    }

    fn put_u32_le(&mut self, value: u32) {
        self.data.put_u32_le(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_cursor_traits() {
        let mut buf = BytesMut::with_capacity(12);
        buf.put_u64_le(0x0102_0304_0506_0708);
        buf.put_u32_le(0xAABB_CCDD);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 12);
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(cursor.get_u32_le(), 0xAABB_CCDD);
        assert!(cursor.is_empty());
    }

    #[test]
    fn bytes_clone_is_shallow() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(&a[..], &b[..]);
    }
}
