//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps the standard-library locks behind `parking_lot`'s panic-free,
//! poison-free API (the subset this workspace uses: [`Mutex::lock`],
//! [`RwLock::read`], [`RwLock::write`]).  A poisoned std lock is recovered
//! rather than propagated, matching `parking_lot`'s no-poisoning semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);

        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.into_inner(), vec![1, 2, 3]);
    }
}
