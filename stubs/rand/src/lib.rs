//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the 0.8 API this workspace uses — [`Rng::gen_range`]
//! over integer and float ranges, [`Rng::gen_bool`], and a seedable [`rngs::StdRng`]
//! — on top of the SplitMix64 generator.  The streams differ from upstream
//! `rand`, but every consumer in this workspace seeds explicitly and only relies
//! on determinism, not on a particular stream.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random number generator with typed sampling helpers.
pub trait Rng: RngCore {
    /// Samples a value uniformly from a range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that values of type `T` can be sampled from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + unit_f64(rng.next_u64()) * (end - start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&f));
            let u = rng.gen_range(3usize..=3);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn works_through_unsized_rng_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..10)
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(draw(&mut rng) < 10);
    }
}
