//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro over `name in strategy` arguments, range / tuple /
//! [`collection::vec`] / [`any()`](prelude::any) strategies, `ProptestConfig::with_cases` and
//! the `prop_assert*` macros.  Unlike real proptest there is no shrinking and
//! no persisted failure seeds — each test runs a fixed number of cases from a
//! generator seeded deterministically by the test's name, so failures are
//! reproducible across runs and machines.

pub mod test_runner {
    //! Test-case configuration and the deterministic case generator.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` generated cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// The deterministic generator driving all strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name, deterministically.
        pub fn for_case(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for byte in name.bytes() {
                seed ^= u64::from(byte);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: seed }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sample space");
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its range/tuple implementations.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of an output type.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    int_strategies!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain strategies per type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Default)]
    pub struct Any<T> {
        marker: PhantomData<T>,
    }

    /// A strategy covering `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { marker: PhantomData }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property test needs in scope.

    pub use crate::arbitrary::{any, Any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ..) { .. }`
/// runs its body for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_case(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..config.cases {
                $( let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng); )+
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

/// Asserts equality inside a property (panics on failure, like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0usize..5, f in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            items in crate::collection::vec((0u32..4, any::<bool>()), 1..9),
        ) {
            prop_assert!(!items.is_empty() && items.len() < 9);
            for (value, _flag) in &items {
                prop_assert!(*value < 4);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::for_case("case");
        let mut b = TestRng::for_case("case");
        for _ in 0..64 {
            prop_assert_eq!((0u64..100).generate(&mut a), (0u64..100).generate(&mut b));
        }
    }
}
