//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the 0.5 API the `minsig-bench` crate uses:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`],
//! [`Bencher::iter`] and the [`criterion_group!`] / [`criterion_main!`]
//! macros.  Instead of criterion's statistical analysis it runs a fixed warmup
//! plus `sample_size` timed samples and prints the median and mean per
//! benchmark (and derived throughput when one was declared), which is enough
//! to compare configurations and catch regressions offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export point for `std::hint::black_box`, mirroring `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declared work per iteration, used to derive throughput numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<F: fmt::Display, P: fmt::Display>(function_name: F, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Creates an id from a parameter value only.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, measurement_time: Duration::from_millis(500) }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Sets the time budget one benchmark aims to fill with samples.
    pub fn measurement_time(mut self, time: Duration) -> Self {
        self.measurement_time = time;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let budget = self.measurement_time;
        run_benchmark(id, None, sample_size, budget, f);
        self
    }

    /// Final statistical processing; a no-op in the offline harness.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = Some(samples.max(2));
        self
    }

    /// Declares the work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<I: fmt::Display, F>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{id}", self.name);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(&full_id, self.throughput, sample_size, self.criterion.measurement_time, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, running it enough times to fill the sample plan.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn run_benchmark<F>(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    budget: Duration,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    // Warmup pass: one untimed sample that also calibrates how many iterations
    // fit into the measurement budget.
    let mut warmup = Bencher { iters_per_sample: 1, samples: Vec::with_capacity(1) };
    f(&mut warmup);
    let per_iter = warmup.samples.first().copied().unwrap_or(Duration::from_nanos(1));
    let per_sample = budget.as_nanos() / sample_size.max(1) as u128;
    let iters_per_sample = (per_sample / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut bencher = Bencher { iters_per_sample, samples: Vec::with_capacity(sample_size) };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        eprintln!("{id:<60} (no samples: Bencher::iter was never called)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let mut line = format!(
        "{id:<60} median {:>12} mean {:>12} ({} samples x {} iters)",
        format_duration(median),
        format_duration(mean),
        samples.len(),
        iters_per_sample,
    );
    if let Some(throughput) = throughput {
        let per_second = |count: u64| count as f64 / median.as_secs_f64().max(1e-12);
        match throughput {
            Throughput::Elements(n) => {
                line.push_str(&format!("  {:.0} elem/s", per_second(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  {:.0} B/s", per_second(n)));
            }
        }
    }
    eprintln!("{line}");
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a named group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags (e.g. `--bench`);
            // the offline harness has no CLI and ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples_quickly() {
        let mut c = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("group");
        group.sample_size(2).throughput(Throughput::Elements(10));
        group.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| black_box(2) * 2));
        group.finish();
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("build", 32).to_string(), "build/32");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
