//! The immutable, shareable state of a built index.
//!
//! [`IndexSnapshot`] owns everything a query needs — the spatial hierarchy,
//! the hash family, the [`MinSigTree`] and the
//! materialised ST-cell set sequences — and exposes only `&self` query
//! methods, so an `Arc<IndexSnapshot>` can be handed to any number of worker
//! threads which all see one consistent version of the index.
//!
//! Mutation lives in [`MinSigIndex`](crate::index::MinSigIndex), which wraps
//! an `Arc<IndexSnapshot>` with copy-on-write semantics: while no reader holds
//! a second reference, `update_entity`/`remove_entity` mutate the snapshot in
//! place (the common single-owner case costs nothing); once a reader has
//! cloned the `Arc`, the next update first clones the snapshot, so in-flight
//! readers keep an unchanging view — snapshot isolation by immutability.

use crate::config::IndexConfig;
use crate::engine;
use crate::error::{IndexError, Result};
use crate::kernel::{ArenaSource, CandidateArena, NodeArena, QueryView};
use crate::query::{QueryOptions, TopKResult};
use crate::signature::{HierarchicalHasher, SeededHashFamily, SignatureList};
use crate::stats::QueryStats;
use crate::synopsis::Synopsis;
use crate::tree::MinSigTree;
use std::collections::BTreeMap;
use trace_model::{AssociationMeasure, CellSetSequence, EntityId, SpIndex};

/// One immutable version of the MinSigTree index: the unit of sharing between
/// concurrent readers.
///
/// Obtained from [`MinSigIndex::snapshot`](crate::index::MinSigIndex::snapshot);
/// every query entry point of the crate is available directly on the snapshot
/// (the `MinSigIndex` methods are thin delegates).
///
/// A snapshot is also the unit of *epoch publication* during streaming
/// ingestion ([`crate::ingest`]) and the unit of persistence
/// ([`save`](IndexSnapshot::save)/[`open`](IndexSnapshot::open)):
///
/// ```
/// use minsig::{IndexConfig, MinSigIndex};
/// use trace_model::{DiceAdm, EntityId, Period, PresenceInstance, SpIndex, TraceSet};
///
/// let sp = SpIndex::uniform(2, &[2]).unwrap();
/// let mut traces = TraceSet::new(60);
/// for e in 0..4u64 {
///     traces.record(PresenceInstance::new(
///         EntityId(e),
///         sp.base_units()[(e % 2) as usize],
///         Period::new(0, 120).unwrap(),
///     ));
/// }
/// let mut index = MinSigIndex::build(&sp, &traces, IndexConfig::default()).unwrap();
/// let snapshot = index.snapshot();
///
/// // The handle keeps mutating; the held snapshot never moves.
/// index.remove_entity(EntityId(2)).unwrap();
/// assert!(snapshot.contains(EntityId(2)));
/// assert!(!index.contains(EntityId(2)));
///
/// // Queries run directly on the snapshot, from any number of threads.
/// let (results, _) = snapshot.top_k(EntityId(0), 1, &DiceAdm::uniform(2)).unwrap();
/// assert_eq!(results[0].entity, EntityId(2));
/// ```
#[derive(Debug, Clone)]
pub struct IndexSnapshot {
    pub(crate) sp: SpIndex,
    pub(crate) config: IndexConfig,
    pub(crate) ticks_per_unit: u64,
    pub(crate) hasher: HierarchicalHasher<SeededHashFamily>,
    pub(crate) tree: MinSigTree,
    pub(crate) sequences: BTreeMap<EntityId, CellSetSequence>,
    /// Per-entity signature lists, kept alongside the tree so that streaming
    /// ingestion can merge a batch's *delta* signature into an entity's
    /// existing one (`min(sig_old, sig_delta)`) instead of re-hashing the full
    /// trace, and so that a persisted index reloads without re-hashing at all.
    pub(crate) signatures: BTreeMap<EntityId, SignatureList>,
    /// The planning synopsis of this population (per-level capacity caps,
    /// top-m hot-entity sketch, entity count) — recomputed on every mutation
    /// batch so it always equals [`Synopsis::compute`] over this snapshot;
    /// consumed by the sharded query planner ([`crate::plan`]).
    pub(crate) synopsis: Synopsis,
    /// The flat candidate arena ([`crate::kernel`]): a read-path-only
    /// CSR/SoA mirror of `sequences` + `signatures`, rebuilt (or, for pure
    /// inserts, incrementally extended) whenever a mutation publishes a new
    /// snapshot.  Invariant: always equals
    /// [`CandidateArena::build`] over the owned maps.
    pub(crate) arena: CandidateArena,
    /// The flat node rows of the tree ([`crate::kernel::NodeArena`]): the
    /// read-path-only SoA/CSR mirror of `tree` every executor expands
    /// through.  Invariant: always equals [`NodeArena::build`] over `tree`;
    /// rebuilt whenever the tree topology can change (every mutation,
    /// including single-entity insert absorbs — inserts re-route tree paths).
    pub(crate) node_arena: NodeArena,
}

impl IndexSnapshot {
    /// The configuration the index was built with.
    pub fn config(&self) -> IndexConfig {
        self.config
    }

    /// The spatial hierarchy of the index.
    pub fn sp_index(&self) -> &SpIndex {
        &self.sp
    }

    /// The underlying tree (read-only).
    pub fn tree(&self) -> &MinSigTree {
        &self.tree
    }

    /// The hierarchical hasher (used by the paged query path and by ablations).
    pub fn hasher(&self) -> &HierarchicalHasher<SeededHashFamily> {
        &self.hasher
    }

    /// The temporal discretisation (raw ticks per base temporal unit).
    pub fn ticks_per_unit(&self) -> u64 {
        self.ticks_per_unit
    }

    /// Number of indexed entities.
    pub fn num_entities(&self) -> usize {
        self.tree.num_entities()
    }

    /// True when the entity is indexed.
    pub fn contains(&self, entity: EntityId) -> bool {
        self.sequences.contains_key(&entity)
    }

    /// The materialised sequence of an indexed entity.
    pub fn sequence(&self, entity: EntityId) -> Option<&CellSetSequence> {
        self.sequences.get(&entity)
    }

    /// The signature list of an indexed entity (what the tree grouped it by).
    pub fn signature(&self, entity: EntityId) -> Option<&SignatureList> {
        self.signatures.get(&entity)
    }

    /// The materialised sequences of all indexed entities (used by baselines
    /// and ground-truth comparisons).
    pub fn sequences(&self) -> &BTreeMap<EntityId, CellSetSequence> {
        &self.sequences
    }

    /// The planning synopsis of this snapshot's population (see
    /// [`crate::synopsis`]): always consistent with the sequences — it is
    /// recomputed on every mutation batch and reloaded verbatim from `MSIX`
    /// v2 files.
    pub fn synopsis(&self) -> &Synopsis {
        &self.synopsis
    }

    /// Recomputes the synopsis from the current sequences, keeping the
    /// sketch size `m` unless a new one is given; called by every mutation
    /// path that can *shrink* sizes (replacement, removal, batch flushes).
    pub(crate) fn recompute_synopsis(&mut self, sketch_size: Option<usize>, epoch: u64) {
        let m = sketch_size.unwrap_or_else(|| self.synopsis.sketch_size());
        self.synopsis = Synopsis::compute(
            self.tree.levels(),
            self.sequences.iter().map(|(e, s)| (*e, s)),
            m,
            epoch,
        );
    }

    /// The flat candidate arena of this snapshot (see [`crate::kernel`]) —
    /// the hot-path mirror of [`sequences`](Self::sequences) every exact
    /// scan and leaf evaluation reads from.
    pub fn arena(&self) -> &CandidateArena {
        &self.arena
    }

    /// The flat node rows of this snapshot's tree (see
    /// [`crate::kernel::NodeArena`]) — the topology every
    /// [`executor`](Self::executor) expands through.
    pub fn node_arena(&self) -> &NodeArena {
        &self.node_arena
    }

    /// Rebuilds the candidate arena and the node rows from the owned maps
    /// and tree; called by every mutation path that replaces or removes
    /// trace data (the same paths that fully recompute the synopsis).
    pub(crate) fn rebuild_arena(&mut self) {
        self.arena = CandidateArena::build(
            self.tree.levels(),
            self.hasher.num_functions() as usize,
            &self.sequences,
            &self.signatures,
        );
        self.node_arena = NodeArena::build(&self.tree);
    }

    /// Splices one **newly inserted** entity into the arena incrementally —
    /// the `O(delta + n)` companion of
    /// [`absorb_inserted_entity_into_synopsis`](Self::absorb_inserted_entity_into_synopsis);
    /// the entity must already be in the owned maps.  The node rows are
    /// rebuilt outright: an insert re-routes tree paths (possibly creating
    /// nodes and lowering routing values), and the rebuild is `O(nodes)` —
    /// the same order as the splice itself.
    pub(crate) fn absorb_inserted_entity_into_arena(&mut self, entity: EntityId) {
        let seq = self.sequences.get(&entity).expect("entity was just inserted");
        let sig = self.signatures.get(&entity).expect("entity was just inserted");
        self.arena.absorb_insert(entity, seq, sig);
        self.node_arena = NodeArena::build(&self.tree);
    }

    /// Absorbs one **newly inserted** entity into the synopsis without
    /// rescanning the population — `O(m log n)` for the sketch comparison
    /// instead of the full `O(n × levels)` recompute, so streaming
    /// single-record inserts stay `O(delta)`.  Equivalent to a full
    /// recompute (see [`Synopsis::absorb_insert`]); the entity must already
    /// be in [`sequences`](Self::sequences).
    pub(crate) fn absorb_inserted_entity_into_synopsis(&mut self, entity: EntityId, epoch: u64) {
        let seq = self.sequences.get(&entity).expect("entity was just inserted");
        let levels = self.tree.levels();
        let level_sizes: Vec<usize> = (1..=levels).map(|l| seq.level(l).len()).collect();
        let total = seq.total_cells();
        // Splice position under the sketch order (total cells descending,
        // id ascending), ranked against the current members' live totals.
        let hot = self.synopsis.hot_entities();
        let mut insert_at = hot.len();
        for (j, &member) in hot.iter().enumerate() {
            let member_total = self.sequences[&member].total_cells();
            if total > member_total || (total == member_total && entity < member) {
                insert_at = j;
                break;
            }
        }
        let belongs = self.synopsis.sketch_size() > 0
            && (insert_at < hot.len() || hot.len() < self.synopsis.sketch_size());
        self.synopsis.absorb_insert(&level_sizes, entity, belongs.then_some(insert_at), epoch);
    }

    /// Estimated resident heap footprint of this snapshot in bytes: the tree
    /// (what [`IndexStats::index_bytes`](crate::stats::IndexStats) reports,
    /// the paper's Section 7.8 accounting) **plus** the per-entity signature
    /// lists and materialised sequences.
    ///
    /// This is the number to use for capacity planning — it is what a
    /// copy-on-write clone duplicates while readers hold an older snapshot —
    /// and it is dominated by the signatures (`entities × m × nh × 8` bytes)
    /// and sequences, not the tree.
    pub fn resident_bytes(&self) -> usize {
        let sig_bytes: usize = self
            .signatures
            .values()
            .map(|s| s.levels().iter().map(|l| l.len() * std::mem::size_of::<u64>()).sum::<usize>())
            .sum();
        let seq_bytes: usize =
            self.sequences.values().map(|s| s.total_cells() * std::mem::size_of::<u64>()).sum();
        self.tree.size_bytes()
            + sig_bytes
            + seq_bytes
            + self.arena.resident_bytes()
            + self.node_arena.resident_bytes()
    }

    /// Answers a top-k query for an indexed entity with default options.
    pub fn top_k<M: AssociationMeasure + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
    ) -> Result<(Vec<TopKResult>, QueryStats)> {
        self.top_k_with_options(query, k, measure, QueryOptions::default())
    }

    /// Answers a top-k query for an indexed entity with explicit options.
    pub fn top_k_with_options<M: AssociationMeasure + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
        options: QueryOptions,
    ) -> Result<(Vec<TopKResult>, QueryStats)> {
        let seq = self.sequences.get(&query).ok_or(IndexError::UnknownQueryEntity(query.raw()))?;
        self.top_k_for_sequence(seq, Some(query), k, measure, options)
    }

    /// Answers a top-k query for an arbitrary (possibly external) query
    /// sequence through the shared best-first executor over an in-memory
    /// source.
    pub fn top_k_for_sequence<M: AssociationMeasure + ?Sized>(
        &self,
        query: &CellSetSequence,
        exclude: Option<EntityId>,
        k: usize,
        measure: &M,
        options: QueryOptions,
    ) -> Result<(Vec<TopKResult>, QueryStats)> {
        let source = ArenaSource::new(&self.sequences, &self.arena, query);
        let (results, mut stats) = engine::execute(
            &self.sp,
            &self.hasher,
            &self.node_arena,
            query,
            exclude,
            k,
            measure,
            &source,
            options,
        )?;
        stats.kernel_dispatch.absorb(source.take_dispatch());
        Ok((results, stats))
    }

    /// Builds a **resumable** best-first executor over this snapshot's tree
    /// and in-memory sequences, its frontier seeded at the root.
    ///
    /// This is the building block of cooperative scheduling
    /// ([`crate::shard`]): the caller drives the returned
    /// [`Executor`](engine::Executor) in quanta via
    /// [`step`](engine::Executor::step), interleaving it with executors over
    /// other snapshots and sharing a [`Bound`](engine::Bound) between them.
    /// Driving it to exhaustion under an inert bound reproduces
    /// [`top_k_for_sequence`](Self::top_k_for_sequence) exactly.
    pub fn executor<'a, M: AssociationMeasure + ?Sized>(
        &'a self,
        query: &'a CellSetSequence,
        exclude: Option<EntityId>,
        k: usize,
        measure: &'a M,
        options: QueryOptions,
    ) -> Result<engine::Executor<'a, SeededHashFamily, ArenaSource<'a>, M>> {
        engine::Executor::new(
            &self.sp,
            &self.hasher,
            &self.node_arena,
            query,
            exclude,
            k,
            measure,
            ArenaSource::new(&self.sequences, &self.arena, query),
            options,
        )
    }

    /// Ground-truth brute force over the indexed sequences (used by tests,
    /// baselines and the experiment harness); shares its top-k selection with
    /// the executor's leaf evaluation.
    pub fn brute_force<M: AssociationMeasure + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
    ) -> Result<Vec<TopKResult>> {
        let seq = self.sequences.get(&query).ok_or(IndexError::UnknownQueryEntity(query.raw()))?;
        let mut dispatch = crate::stats::KernelDispatch::default();
        let (results, _) =
            self.arena.scan_top_k(&QueryView::new(seq), Some(query), k, measure, &mut dispatch);
        Ok(results)
    }

    /// Deterministic sampled top-k over this snapshot — the execution of the
    /// planner's [`ShardDecision::ApproximateScan`] verdict.  The synopsis's
    /// [`hot entities`](Synopsis::hot_entities) are always scored; every
    /// other member is included with probability `rate` via the pure-hash
    /// sample ([`plan::sample_includes`]), so the answer is identical across
    /// runs.  Returns the sorted answers plus the number of entities
    /// actually scored (the caller's `sampled_candidates`).
    ///
    /// [`ShardDecision::ApproximateScan`]: crate::plan::ShardDecision::ApproximateScan
    /// [`plan::sample_includes`]: crate::plan::sample_includes
    pub fn approximate_scan_top_k<M: AssociationMeasure + ?Sized>(
        &self,
        query: &CellSetSequence,
        exclude: Option<EntityId>,
        k: usize,
        measure: &M,
        rate: f64,
        dispatch: &mut crate::stats::KernelDispatch,
    ) -> (Vec<TopKResult>, usize) {
        self.arena.scan_top_k_sampled(
            &QueryView::new(query),
            exclude,
            k,
            measure,
            rate,
            self.synopsis.hot_entities(),
            dispatch,
        )
    }
}
