//! Paged query processing: leaf evaluation reads candidate traces through a
//! bounded buffer pool instead of the in-memory sequence map.
//!
//! This is the query path exercised by the Figure 7.6 experiment ("search time
//! vs. memory size"): the MinSigTree itself and the hash functions stay in memory
//! (Section 4.3's minimum memory requirement), but the raw traces needed to
//! compute exact association degrees at the leaves live on the (virtual) disk, so
//! a smaller buffer budget translates into more page misses and a longer
//! simulated search time.
//!
//! The walk itself is the shared best-first executor of [`crate::engine`]; the
//! only difference from the in-memory path is the [`PagedSource`] handed to it.
//! The buffer pool synchronises internally, so paged queries may also run from
//! several threads against one snapshot, pool and store.

use crate::engine::{self, PagedSource};
use crate::error::Result;
use crate::index::MinSigIndex;
use crate::query::{QueryOptions, TopKResult};
use crate::snapshot::IndexSnapshot;
use crate::stats::QueryStats;
use trace_model::{AssociationMeasure, EntityId};
use trace_storage::{BufferPool, PagedTraceStore};

impl IndexSnapshot {
    /// Answers a top-k query reading candidate traces through `pool` over `store`.
    ///
    /// The returned [`QueryStats`] additionally report the buffer-pool misses and
    /// the simulated I/O latency accumulated during this query.  When several
    /// threads share one pool, those two deltas are approximate: the pool's
    /// counters are global, so concurrent queries' I/O may be attributed to
    /// each other (results themselves are unaffected).
    pub fn top_k_paged<M: AssociationMeasure + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
        store: &PagedTraceStore,
        pool: &BufferPool<'_>,
        options: QueryOptions,
    ) -> Result<(Vec<TopKResult>, QueryStats)> {
        let query_seq = match self.sequence(query) {
            Some(seq) => seq.clone(),
            None => {
                // Not in the in-memory map (e.g. a sequence-free index); read it
                // from the store.
                let trace = store
                    .read_trace(pool, query)
                    .ok_or(crate::error::IndexError::UnknownQueryEntity(query.raw()))?;
                trace.cell_sequence(self.sp_index(), self.ticks_per_unit())?
            }
        };
        let before = pool.stats();
        let source = PagedSource::new(store, pool, self.sp_index(), self.ticks_per_unit());
        let (results, mut stats) = engine::execute(
            self.sp_index(),
            self.hasher(),
            self.tree(),
            &query_seq,
            Some(query),
            k,
            measure,
            &source,
            options,
        )?;
        let after = pool.stats();
        stats.pool_misses = after.misses - before.misses;
        stats.simulated_io_us = after.simulated_us - before.simulated_us;
        Ok((results, stats))
    }
}

impl MinSigIndex {
    /// Answers a top-k query reading candidate traces through `pool` over `store`.
    ///
    /// Delegates to [`IndexSnapshot::top_k_paged`] on the current snapshot.
    pub fn top_k_paged<M: AssociationMeasure + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
        store: &PagedTraceStore,
        pool: &BufferPool<'_>,
        options: QueryOptions,
    ) -> Result<(Vec<TopKResult>, QueryStats)> {
        self.snapshot().top_k_paged(query, k, measure, store, pool, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use crate::query::QueryOptions;
    use trace_model::{PaperAdm, Period, PresenceInstance, SpIndex, TraceSet};
    use trace_storage::PoolConfig;

    fn dataset(pairs: usize) -> (SpIndex, TraceSet) {
        let sp = SpIndex::uniform(2, &[4, 4]).unwrap();
        let base = sp.base_units().to_vec();
        let mut traces = TraceSet::new(60);
        for i in 0..pairs {
            for member in 0..2u64 {
                let entity = EntityId(2 * i as u64 + member);
                for step in 0..8u64 {
                    let unit = base[(i * 5 + step as usize) % base.len()];
                    let start = step * 240;
                    traces.record(PresenceInstance::new(
                        entity,
                        unit,
                        Period::new(start, start + 60).unwrap(),
                    ));
                }
            }
        }
        (sp, traces)
    }

    #[test]
    fn paged_and_in_memory_queries_agree() {
        let (sp, traces) = dataset(20);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(64)).unwrap();
        let store = PagedTraceStore::build(&traces, 4);
        let pool = store.pool(PoolConfig::default());
        let measure = PaperAdm::default_for(sp.height() as usize);
        let mut total_misses = 0;
        for query in [0u64, 9, 21] {
            let (mem, _) = index.top_k(EntityId(query), 5, &measure).unwrap();
            let (paged, stats) = index
                .top_k_paged(EntityId(query), 5, &measure, &store, &pool, QueryOptions::default())
                .unwrap();
            assert_eq!(mem.len(), paged.len());
            for (a, b) in mem.iter().zip(paged.iter()) {
                assert!((a.degree - b.degree).abs() < 1e-9);
            }
            total_misses += stats.pool_misses;
        }
        assert!(total_misses > 0, "cold pages must have been read at least once");
    }

    #[test]
    fn smaller_memory_budget_costs_more_simulated_io() {
        let (sp, traces) = dataset(150);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(32)).unwrap();
        let store = PagedTraceStore::build(&traces, 8);
        let measure = PaperAdm::default_for(sp.height() as usize);
        let queries: Vec<EntityId> = (0..40u64).map(EntityId).collect();

        let mut io = Vec::new();
        for fraction in [0.05f64, 1.0] {
            let pool = store.pool(PoolConfig::with_memory_fraction(store.data_bytes(), fraction));
            let mut total = 0u64;
            // Two passes so the large pool can profit from caching.
            for _ in 0..2 {
                for &q in &queries {
                    let (_, stats) = index
                        .top_k_paged(q, 10, &measure, &store, &pool, QueryOptions::default())
                        .unwrap();
                    total += stats.simulated_io_us;
                }
            }
            io.push(total);
        }
        assert!(
            io[0] > io[1],
            "a 5% budget should cost more simulated I/O than 100% ({} vs {})",
            io[0],
            io[1]
        );
    }

    #[test]
    fn unknown_query_entity_is_reported() {
        let (sp, traces) = dataset(3);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::default()).unwrap();
        let store = PagedTraceStore::build(&traces, 4);
        let pool = store.pool(PoolConfig::default());
        let measure = PaperAdm::default_for(sp.height() as usize);
        let err = index
            .top_k_paged(EntityId(9999), 1, &measure, &store, &pool, QueryOptions::default())
            .unwrap_err();
        assert!(matches!(err, crate::error::IndexError::UnknownQueryEntity(9999)));
    }
}
