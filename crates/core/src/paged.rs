//! Paged query processing: leaf evaluation reads candidate traces through a
//! bounded buffer pool instead of the in-memory sequence map.
//!
//! This is the query path exercised by the Figure 7.6 experiment ("search time
//! vs. memory size"): the MinSigTree itself and the hash functions stay in memory
//! (Section 4.3's minimum memory requirement), but the raw traces needed to
//! compute exact association degrees at the leaves live on the (virtual) disk, so
//! a smaller buffer budget translates into more page misses and a longer
//! simulated search time.
//!
//! The walk itself is the shared best-first executor of [`crate::engine`]; the
//! only difference from the in-memory path is the [`PagedSource`] handed to it.
//! The buffer pool synchronises internally, so paged queries may also run from
//! several threads against one snapshot, pool and store.
//!
//! ## Out-of-core sharded queries
//!
//! [`ShardedSnapshot::paged`] wraps a sharded snapshot, a [`PagedTraceStore`]
//! and a [`BufferPool`] into a [`PagedShardedSnapshot`] whose entry points
//! mirror the in-memory ones (`top_k`, `top_k_with_options`, batches, joins,
//! `explain`) — the full planned cooperative fan-out, with every candidate
//! trace read through the pool instead of the in-memory sequence maps, and
//! planned by the **page-aware** cost model
//! ([`plan::plan_query_paged`](crate::plan)).  The pin protocol: the query
//! entity's own trace is pinned for the whole fan-out (its pages stay
//! resident across every executor [`step`](crate::engine::Executor::step)
//! quantum, released when the merged answer is produced), and every
//! candidate page is pinned transiently while its records are extracted.
//! Answers are **bitwise identical** to the in-memory sharded, unsharded and
//! brute-force paths — any shard count, any pool size, any
//! [`ReplacerPolicy`](trace_storage::ReplacerPolicy)
//! (`tests/paged_conformance.rs` proptests exactly this).

use crate::config::{BoundMode, PlannerConfig, SchedulerConfig};
use crate::engine::{
    self, Bound, Executor, PagedSource, PrivateBound, SeededBound, SharedBound, TopKHeap,
    TraceSource,
};
use crate::error::{IndexError, Result};
use crate::index::MinSigIndex;
use crate::join::{collect_join_rows, JoinOptions, JoinRow, JoinStats};
use crate::kernel::{dispatch_class, intersection_len, QueryView};
use crate::plan::{self, QueryPlan, ShardDecision};
use crate::query::{QueryOptions, TopKResult};
use crate::shard::{drive_cooperatively, ShardedSnapshot};
use crate::signature::SeededHashFamily;
use crate::snapshot::IndexSnapshot;
use crate::stats::{DegradationReport, KernelDispatch, QueryStats};
use rayon::prelude::*;
use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use trace_model::ajpi::{LevelOverlap, LevelStat};
use trace_model::{AssociationMeasure, CellSetSequence, EntityId, SpIndex};
use trace_storage::{BufferPool, PageId, PagedTraceStore};

/// One entity's flat per-level rows, copied out of the buffer pool: the
/// packed level cells concatenated with a small offsets directory, exactly
/// the layout one [`CandidateArena`](crate::kernel::CandidateArena) row has.
#[derive(Debug)]
struct FlatRows {
    /// `offsets[i]..offsets[i + 1]` brackets level `i + 1`'s packed cells.
    offsets: Vec<u32>,
    cells: Vec<u64>,
}

impl FlatRows {
    fn from_sequence(seq: &CellSetSequence) -> Self {
        let num_levels = seq.num_levels();
        let mut offsets = Vec::with_capacity(num_levels + 1);
        offsets.push(0u32);
        let mut cells = Vec::new();
        for level in 1..=num_levels {
            cells.extend_from_slice(seq.level(level as trace_model::Level).packed_slice());
            offsets.push(cells.len() as u32);
        }
        FlatRows { offsets, cells }
    }

    #[inline]
    fn level(&self, i: usize) -> &[u64] {
        &self.cells[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    fn resident_bytes(&self) -> usize {
        self.cells.len() * std::mem::size_of::<u64>()
            + self.offsets.len() * std::mem::size_of::<u32>()
    }
}

/// The row cache plus per-query scratch behind one [`PagedArenaSource`];
/// a single mutex keeps the source `Sync` so the cooperative fan-out can
/// share it across parallel executors like it shares a [`PagedSource`].
#[derive(Debug, Default)]
struct PagedArenaState {
    rows: HashMap<EntityId, FlatRows>,
    resident_bytes: usize,
    scratch: LevelOverlap,
    dispatch: KernelDispatch,
}

/// A [`TraceSource`] that materialises **flat arena rows** from the paged
/// store: the out-of-core counterpart of
/// [`ArenaSource`](crate::kernel::ArenaSource), so paged leaf evaluation
/// runs the same fused per-level kernel loop the in-memory hot path does.
///
/// On the first degree request for an entity its trace is read through the
/// buffer pool (pages pinned transiently inside the read, released before
/// this returns — the source itself never holds a pin) and its per-level
/// packed cells are copied into a flat row (per-level CSR over one
/// contiguous `u64` buffer, the candidate arena's layout).  Subsequent
/// requests for
/// the same entity — every re-expansion across executor step quanta — hit
/// the row cache and never touch the pool again.
///
/// The cache honours the out-of-core budget: resident row bytes are capped
/// at the pool's configured `capacity_bytes`, and crossing the cap flushes
/// the cache wholesale (the rows were built from one pool-residency epoch;
/// a new epoch starts clean) so a paged query's extra memory never exceeds
/// one pool's worth.  Degrees are **bitwise identical** to
/// `measure.degree(query, seq)` over the sequence
/// [`sequence`](TraceSource::sequence) reports: both paths hand the measure
/// the same integer per-level [`LevelStat`]s through the same
/// [`dispatch_class`]-routed kernels.
///
/// Per-kernel dispatch accounting accumulates behind the same mutex and is
/// drained with [`take_dispatch`](Self::take_dispatch).
pub struct PagedArenaSource<'a> {
    inner: PagedSource<'a>,
    view: QueryView<'a>,
    budget_bytes: usize,
    state: Mutex<PagedArenaState>,
}

impl<'a> PagedArenaSource<'a> {
    /// Creates a source over a store and pool for one query sequence; the
    /// row-cache budget is the pool's configured capacity.
    pub fn new(
        store: &'a PagedTraceStore,
        pool: &'a BufferPool<'a>,
        sp: &'a SpIndex,
        ticks_per_unit: u64,
        query: &'a CellSetSequence,
    ) -> Self {
        PagedArenaSource {
            inner: PagedSource::new(store, pool, sp, ticks_per_unit),
            view: QueryView::new(query),
            budget_bytes: pool.config().capacity_bytes,
            state: Mutex::new(PagedArenaState::default()),
        }
    }

    /// Drains the per-kernel dispatch counts accumulated since the last
    /// call (or construction), leaving the counters at zero.
    pub fn take_dispatch(&self) -> KernelDispatch {
        std::mem::take(&mut self.state.lock().expect("paged arena state poisoned").dispatch)
    }

    /// Number of entity rows currently resident in the cache.
    pub fn cached_rows(&self) -> usize {
        self.state.lock().expect("paged arena state poisoned").rows.len()
    }
}

impl TraceSource for PagedArenaSource<'_> {
    fn sequence(&self, entity: EntityId) -> Option<Cow<'_, CellSetSequence>> {
        self.inner.sequence(entity)
    }

    fn degree(
        &self,
        entity: EntityId,
        query: &CellSetSequence,
        measure: &dyn AssociationMeasure,
    ) -> Option<f64> {
        debug_assert_eq!(query.num_levels(), self.view.num_levels());
        let state = &mut *self.state.lock().expect("paged arena state poisoned");
        if !state.rows.contains_key(&entity) {
            let rows = FlatRows::from_sequence(self.inner.sequence(entity)?.as_ref());
            let bytes = rows.resident_bytes();
            if state.resident_bytes + bytes > self.budget_bytes && !state.rows.is_empty() {
                state.rows.clear();
                state.resident_bytes = 0;
            }
            state.resident_bytes += bytes;
            state.rows.insert(entity, rows);
        }
        let rows = &state.rows[&entity];
        state.scratch.clear();
        for i in 0..self.view.num_levels() {
            let q = self.view.level(i);
            let c = rows.level(i);
            state.dispatch.record(dispatch_class(q.len(), c.len()));
            state.scratch.push(LevelStat {
                overlap: intersection_len(q, c),
                size_a: q.len(),
                size_b: c.len(),
            });
        }
        Some(measure.degree_from_overlap(&state.scratch))
    }
}

impl IndexSnapshot {
    /// Answers a top-k query reading candidate traces through `pool` over `store`.
    ///
    /// The returned [`QueryStats`] additionally report the buffer-pool misses and
    /// the simulated I/O latency accumulated during this query.  When several
    /// threads share one pool, those two deltas are approximate: the pool's
    /// counters are global, so concurrent queries' I/O may be attributed to
    /// each other (results themselves are unaffected).
    pub fn top_k_paged<M: AssociationMeasure + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
        store: &PagedTraceStore,
        pool: &BufferPool<'_>,
        options: QueryOptions,
    ) -> Result<(Vec<TopKResult>, QueryStats)> {
        let query_seq = match self.sequence(query) {
            Some(seq) => seq.clone(),
            None => {
                // Not in the in-memory map (e.g. a sequence-free index); read it
                // from the store.
                let trace = store
                    .read_trace(pool, query)
                    .ok_or(crate::error::IndexError::UnknownQueryEntity(query.raw()))?;
                trace.cell_sequence(self.sp_index(), self.ticks_per_unit())?
            }
        };
        let before = pool.stats();
        let source =
            PagedArenaSource::new(store, pool, self.sp_index(), self.ticks_per_unit(), &query_seq);
        let (results, mut stats) = engine::execute(
            self.sp_index(),
            self.hasher(),
            self.node_arena(),
            &query_seq,
            Some(query),
            k,
            measure,
            &source,
            options,
        )?;
        stats.kernel_dispatch.absorb(source.take_dispatch());
        let io = pool.stats().since(&before);
        stats.pool_hits = io.hits;
        stats.pool_misses = io.misses;
        stats.pool_evictions = io.evictions;
        stats.simulated_io_us = io.simulated_us;
        Ok((results, stats))
    }
}

impl MinSigIndex {
    /// Answers a top-k query reading candidate traces through `pool` over `store`.
    ///
    /// Delegates to [`IndexSnapshot::top_k_paged`] on the current snapshot.
    pub fn top_k_paged<M: AssociationMeasure + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
        store: &PagedTraceStore,
        pool: &BufferPool<'_>,
        options: QueryOptions,
    ) -> Result<(Vec<TopKResult>, QueryStats)> {
        self.snapshot().top_k_paged(query, k, measure, store, pool, options)
    }
}

impl ShardedSnapshot {
    /// Wraps this snapshot for out-of-core execution: every query path reads
    /// candidate traces through `pool` over `store` instead of the in-memory
    /// sequence maps, planned by the page-aware cost model.
    ///
    /// The store must hold the traces of the snapshot's entities (the usual
    /// arrangement: one entity-ordered store over the whole population, any
    /// shard count on top).  Per-shard page lists are precomputed here —
    /// build the wrapper once per snapshot and reuse it across queries.
    pub fn paged<'a>(
        &'a self,
        store: &'a PagedTraceStore,
        pool: &'a BufferPool<'a>,
    ) -> PagedShardedSnapshot<'a> {
        let shard_pages = self
            .shard_snapshots()
            .iter()
            .map(|shard| {
                let mut pages: Vec<PageId> = shard
                    .sequences()
                    .keys()
                    .filter_map(|&e| store.trace_pages(e))
                    .flatten()
                    .copied()
                    .collect();
                pages.sort_unstable();
                pages.dedup();
                pages
            })
            .collect();
        PagedShardedSnapshot { snapshot: self, store, pool, shard_pages, flat_rows: true }
    }
}

/// A [`ShardedSnapshot`] bound to a [`PagedTraceStore`] and a [`BufferPool`]:
/// the out-of-core sharded query session.
///
/// Entry points mirror [`ShardedSnapshot`]'s and return **bitwise-identical**
/// answers (see the [module docs](crate::paged)); the returned
/// [`QueryStats`] additionally carry the query's buffer-pool deltas
/// ([`pool_hits`](QueryStats::pool_hits) /
/// [`pool_misses`](QueryStats::pool_misses) /
/// [`pool_evictions`](QueryStats::pool_evictions) /
/// [`simulated_io_us`](QueryStats::simulated_io_us)).  When several queries
/// share one pool concurrently those deltas are approximate — the pool's
/// counters are global, so overlapping queries' I/O may be attributed to
/// each other; answers are unaffected.
#[derive(Debug)]
pub struct PagedShardedSnapshot<'a> {
    snapshot: &'a ShardedSnapshot,
    store: &'a PagedTraceStore,
    pool: &'a BufferPool<'a>,
    /// Per shard: the sorted distinct store pages its entities' traces span.
    shard_pages: Vec<Vec<PageId>>,
    /// Route leaf evaluation through flat [`PagedArenaSource`] rows (the
    /// default) instead of re-decoding owned sequences per evaluation.
    flat_rows: bool,
}

impl<'a> PagedShardedSnapshot<'a> {
    /// The wrapped snapshot.
    pub fn snapshot(&self) -> &'a ShardedSnapshot {
        self.snapshot
    }

    /// Toggles the flat-row hot path (see [`PagedArenaSource`]): on by
    /// default; `false` re-decodes owned sequences on every leaf evaluation
    /// through the plain [`PagedSource`].  Answers are bitwise identical
    /// either way — this knob exists for benchmarking the layouts against
    /// each other.
    pub fn with_flat_rows(mut self, flat_rows: bool) -> Self {
        self.flat_rows = flat_rows;
        self
    }

    /// The buffer pool every query reads through.
    pub fn pool(&self) -> &'a BufferPool<'a> {
        self.pool
    }

    /// The backing store.
    pub fn store(&self) -> &'a PagedTraceStore {
        self.store
    }

    /// The distinct store pages shard `shard`'s traces span (sorted).
    pub fn shard_pages(&self, shard: usize) -> &[PageId] {
        &self.shard_pages[shard]
    }

    /// Answers a top-k query with default options — the paged counterpart of
    /// [`ShardedSnapshot::top_k`].
    pub fn top_k<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
    ) -> Result<(Vec<TopKResult>, QueryStats)> {
        self.top_k_with_options(query, k, measure, QueryOptions::default())
    }

    /// Answers a top-k query with explicit options, default scheduler and
    /// default (active) planner.
    pub fn top_k_with_options<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
        options: QueryOptions,
    ) -> Result<(Vec<TopKResult>, QueryStats)> {
        self.top_k_with_planner(
            query,
            k,
            measure,
            options,
            SchedulerConfig::default(),
            PlannerConfig::default(),
        )
    }

    /// Explicit scheduler knobs with the planner **disabled** — the paged
    /// unplanned baseline, mirroring [`ShardedSnapshot::top_k_with_scheduler`].
    pub fn top_k_with_scheduler<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
        options: QueryOptions,
        scheduler: SchedulerConfig,
    ) -> Result<(Vec<TopKResult>, QueryStats)> {
        self.top_k_with_planner(query, k, measure, options, scheduler, PlannerConfig::disabled())
    }

    /// Every knob explicit (scheduler and planner).
    pub fn top_k_with_planner<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
        options: QueryOptions,
        scheduler: SchedulerConfig,
        planner: PlannerConfig,
    ) -> Result<(Vec<TopKResult>, QueryStats)> {
        let seq = self.query_sequence(query)?;
        self.fan_out(seq.as_ref(), Some(query), k, measure, options, true, scheduler, planner)
    }

    /// Answers a top-k query for an arbitrary (possibly external) query
    /// sequence, planned with the defaults.
    pub fn top_k_for_sequence<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        query: &CellSetSequence,
        exclude: Option<EntityId>,
        k: usize,
        measure: &M,
        options: QueryOptions,
    ) -> Result<(Vec<TopKResult>, QueryStats)> {
        self.fan_out(
            query,
            exclude,
            k,
            measure,
            options,
            true,
            SchedulerConfig::default(),
            PlannerConfig::default(),
        )
    }

    /// Answers every query of a batch in parallel, input order preserved —
    /// the paged counterpart of [`ShardedSnapshot::top_k_batch`].
    pub fn top_k_batch<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        queries: &[EntityId],
        k: usize,
        measure: &M,
    ) -> Result<Vec<(Vec<TopKResult>, QueryStats)>> {
        self.top_k_batch_with_options(queries, k, measure, QueryOptions::default())
    }

    /// [`top_k_batch`](Self::top_k_batch) with explicit query options.
    pub fn top_k_batch_with_options<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        queries: &[EntityId],
        k: usize,
        measure: &M,
        options: QueryOptions,
    ) -> Result<Vec<(Vec<TopKResult>, QueryStats)>> {
        self.top_k_batch_with_planner(
            queries,
            k,
            measure,
            options,
            SchedulerConfig::default(),
            PlannerConfig::default(),
        )
    }

    /// [`top_k_batch`](Self::top_k_batch) with every knob explicit.
    /// Parallelism is over the queries; each query's admitted shard
    /// executors are interleaved sequentially on its worker, sharing one
    /// seeded bound per query (identical answers either way).
    pub fn top_k_batch_with_planner<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        queries: &[EntityId],
        k: usize,
        measure: &M,
        options: QueryOptions,
        scheduler: SchedulerConfig,
        planner: PlannerConfig,
    ) -> Result<Vec<(Vec<TopKResult>, QueryStats)>> {
        let answers: Vec<Result<(Vec<TopKResult>, QueryStats)>> = queries
            .par_iter()
            .map(|&query| {
                let seq = self.query_sequence(query)?;
                self.fan_out(
                    seq.as_ref(),
                    Some(query),
                    k,
                    measure,
                    options,
                    false,
                    scheduler,
                    planner,
                )
            })
            .collect();
        answers.into_iter().collect()
    }

    /// Answers the top-k query for every probe entity — the paged
    /// counterpart of [`ShardedSnapshot::top_k_join`], with identical
    /// skip/ordering semantics (unindexed probes are counted in
    /// [`JoinStats::skipped`], output preserves probe order).
    pub fn top_k_join<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        probes: &[EntityId],
        measure: &M,
        options: JoinOptions,
    ) -> Result<(Vec<JoinRow>, JoinStats)> {
        let rows: Vec<Option<JoinRow>> = if options.threads <= 1 || probes.len() <= 1 {
            probes.iter().map(|&probe| self.join_one(probe, measure, options)).collect()
        } else {
            probes.par_iter().map(|&probe| self.join_one(probe, measure, options)).collect()
        };
        Ok(collect_join_rows(rows))
    }

    fn join_one<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        probe: EntityId,
        measure: &M,
        options: JoinOptions,
    ) -> Option<JoinRow> {
        let seq = self.query_sequence(probe).ok()?;
        match self.fan_out(
            seq.as_ref(),
            Some(probe),
            options.k,
            measure,
            options.query,
            false,
            SchedulerConfig::default(),
            PlannerConfig::default(),
        ) {
            Ok((matches, stats)) => Some(JoinRow { probe, matches, stats }),
            Err(_) => None,
        }
    }

    /// Builds — without executing — the page-aware [`QueryPlan`] the paged
    /// query paths would run: the in-memory plan's seed/skip/scan/order
    /// verdicts plus a [`PageEstimate`](crate::plan::PageEstimate) per shard,
    /// all rendered by [`QueryPlan::explain`].  Seeding reads the sketch
    /// entities' traces through the pool, so explaining warms the cache the
    /// same way planning a real query does.
    pub fn explain<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
        planner: PlannerConfig,
    ) -> Result<QueryPlan> {
        let seq = self.query_sequence(query)?;
        self.snapshot.check_query_levels(seq.as_ref())?;
        let probe = &self.snapshot.shard_snapshots()[0];
        let source =
            PagedSource::new(self.store, self.pool, probe.sp_index(), probe.ticks_per_unit());
        Ok(plan::plan_query_paged(
            self.snapshot.shard_snapshots(),
            seq.as_ref(),
            Some(query),
            k,
            measure,
            &planner,
            &source,
            &self.shard_pages,
            self.pool,
        ))
    }

    /// The query entity's sequence: from the snapshot's in-memory map when
    /// materialised, read through the pool for an indexed but sequence-free
    /// entity.  Error parity with the in-memory path: an entity the snapshot
    /// does not index is [`IndexError::UnknownQueryEntity`], whatever the
    /// store holds.
    fn query_sequence(&self, query: EntityId) -> Result<Cow<'a, CellSetSequence>> {
        if let Some(seq) = self.snapshot.sequence(query) {
            return Ok(Cow::Borrowed(seq));
        }
        if self.snapshot.contains(query) {
            let probe = &self.snapshot.shard_snapshots()[0];
            let trace = self
                .store
                .read_trace(self.pool, query)
                .ok_or(IndexError::UnknownQueryEntity(query.raw()))?;
            return Ok(Cow::Owned(trace.cell_sequence(probe.sp_index(), probe.ticks_per_unit())?));
        }
        Err(IndexError::UnknownQueryEntity(query.raw()))
    }

    /// The paged planned cooperative fan-out — [`ShardedSnapshot`]'s
    /// `fan_out` with every trace read routed through the buffer pool:
    ///
    /// 1. pin the query's own trace (held across every executor step
    ///    quantum, released when the merge completes);
    /// 2. plan page-aware ([`plan::plan_query_paged`]): seed through the
    ///    pool, estimate resident vs cold pages per shard, skip/scan/order;
    /// 3. answer scan shards by a flat paged degree loop, tree shards by
    ///    cooperative [`Executor`]s over one shared source — the flat
    ///    [`PagedArenaSource`] by default, the plain [`PagedSource`] when
    ///    [`with_flat_rows`](Self::with_flat_rows) turned the rows off;
    /// 4. merge exactly and charge the pool's counter deltas to the query.
    #[allow(clippy::too_many_arguments)]
    fn fan_out<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        query: &CellSetSequence,
        exclude: Option<EntityId>,
        k: usize,
        measure: &M,
        options: QueryOptions,
        parallel: bool,
        scheduler: SchedulerConfig,
        planner: PlannerConfig,
    ) -> Result<(Vec<TopKResult>, QueryStats)> {
        scheduler.validate()?;
        planner.validate()?;
        let start = Instant::now();
        self.snapshot.check_query_levels(query)?;
        let shards = self.snapshot.shard_snapshots();
        let probe = &shards[0];
        let source =
            PagedSource::new(self.store, self.pool, probe.sp_index(), probe.ticks_per_unit());
        let pool_before = self.pool.stats();
        // The query's own trace is re-read on every leaf evaluation path that
        // needs it; pin it for the query's whole lifetime so no replacer
        // decision can push it out between step quanta.  Dropped (pins
        // released) when this function returns the merged answer.
        let _query_pins = exclude.and_then(|q| self.store.pin_trace(self.pool, q));
        let plan = plan::plan_query_paged(
            shards,
            query,
            exclude,
            k,
            measure,
            &planner,
            &source,
            &self.shard_pages,
            self.pool,
        );

        let mut stats = QueryStats { k, ..QueryStats::default() };
        stats.planning_us = start.elapsed().as_micros() as u64;
        stats.entities_checked += plan.seed_candidates;
        stats.shards_skipped = plan.shards_skipped();
        stats.threshold_seeded = plan.seeded();
        for shard_plan in &plan.shards {
            if shard_plan.decision == ShardDecision::Skip {
                stats.total_entities += shard_plan.entities;
            }
        }

        let results = if self.flat_rows {
            let arena_source = PagedArenaSource::new(
                self.store,
                self.pool,
                probe.sp_index(),
                probe.ticks_per_unit(),
                query,
            );
            let results = self.drive_plan(
                &plan,
                &arena_source,
                query,
                exclude,
                k,
                measure,
                options,
                parallel,
                scheduler,
                &mut stats,
                start,
            )?;
            stats.kernel_dispatch.absorb(arena_source.take_dispatch());
            results
        } else {
            self.drive_plan(
                &plan, &source, query, exclude, k, measure, options, parallel, scheduler,
                &mut stats, start,
            )?
        };
        let io = self.pool.stats().since(&pool_before);
        stats.pool_hits += io.hits;
        stats.pool_misses += io.misses;
        stats.pool_evictions += io.evictions;
        stats.simulated_io_us += io.simulated_us;
        stats.query_time_us = start.elapsed().as_micros() as u64;
        Ok((results, stats))
    }

    /// Executes an already-built plan against one shared trace source —
    /// the fan-out tail common to both leaf-evaluation layouts: scan shards
    /// first (publishing their local thresholds), then the admitted tree
    /// shards as cooperative executors, then the exact merge.
    #[allow(clippy::too_many_arguments)]
    fn drive_plan<'s, S, M>(
        &self,
        plan: &QueryPlan,
        source: &'s S,
        query: &CellSetSequence,
        exclude: Option<EntityId>,
        k: usize,
        measure: &M,
        options: QueryOptions,
        parallel: bool,
        scheduler: SchedulerConfig,
        stats: &mut QueryStats,
        start: Instant,
    ) -> Result<Vec<TopKResult>>
    where
        S: TraceSource + Sync,
        M: AssociationMeasure + Sync + ?Sized,
    {
        if plan.planner.latency_budget_us.is_some() {
            return self.drive_plan_deadline(
                plan, source, query, exclude, k, measure, options, scheduler, stats, start,
            );
        }
        let shards = self.snapshot.shard_snapshots();
        let use_shared = scheduler.bound_mode == BoundMode::Shared;
        let shared = SharedBound::new();
        if use_shared && plan.seeded() {
            shared.publish(plan.seed);
        }

        // Scan shards first (fully resident by the planner's gate): flat
        // exact degree loop through the pool, publishing each local k-th
        // threshold before any tree executor runs.
        let mut parts: Vec<Vec<TopKResult>> = Vec::with_capacity(plan.shards.len());
        for shard_plan in plan.admitted().filter(|p| p.decision == ShardDecision::Scan) {
            let shard = &shards[shard_plan.shard];
            let mut top = TopKHeap::new(k);
            let mut checked = 0usize;
            for &entity in shard.sequences().keys() {
                if Some(entity) == exclude {
                    continue;
                }
                let Some(degree) = source.degree(entity, query, &measure) else { continue };
                checked += 1;
                top.offer(entity, degree);
            }
            let results = top.into_sorted();
            stats.total_entities += shard.num_entities();
            stats.entities_checked += checked;
            if use_shared && k > 0 && results.len() >= k {
                shared.publish(results[k - 1].degree);
            }
            parts.push(results);
        }

        // Tree shards in plan order (most promising, then least cold I/O):
        // one resumable executor per shard, all leaf evaluation through the
        // shared source.
        let mut executors: Vec<Executor<'_, SeededHashFamily, &'s S, M>> =
            Vec::with_capacity(plan.shards.len());
        for shard_plan in plan.admitted().filter(|p| p.decision == ShardDecision::TreeSearch) {
            let shard = &shards[shard_plan.shard];
            executors.push(
                Executor::new(
                    shard.sp_index(),
                    shard.hasher(),
                    shard.node_arena(),
                    query,
                    exclude,
                    k,
                    measure,
                    source,
                    options,
                )?
                .with_publish_policy(scheduler.publish_policy),
            );
        }
        if use_shared && (executors.len() > 1 || shared.current() > f64::NEG_INFINITY) {
            drive_cooperatively(&mut executors, &shared, parallel, scheduler.step_quantum);
        } else if !use_shared && plan.seeded() {
            let seeded = SeededBound::new(plan.seed);
            drive_cooperatively(&mut executors, &seeded, parallel, scheduler.step_quantum);
        } else {
            drive_cooperatively(&mut executors, &PrivateBound, parallel, scheduler.step_quantum);
        }

        for executor in executors {
            let (results, executor_stats) = executor.finish();
            stats.absorb_work(&executor_stats);
            parts.push(results);
        }
        Ok(engine::merge_top_k(k, parts))
    }

    /// The out-of-core counterpart of the in-memory deadline drive
    /// (`ShardedSnapshot::execute_plan_deadline`): admitted shards run
    /// **sequentially in plan order** with the deadline re-checked between
    /// quanta, planned or downgraded approximate shards answered by the
    /// deterministic sampled degree loop through the pool.  The same
    /// protocol applies — downgrade-at-floor-rate, abandon mid-flight trees,
    /// floor-rate-1.0 shards stay exact — so the degradation report means
    /// the same thing on every path.
    #[allow(clippy::too_many_arguments)]
    fn drive_plan_deadline<S, M>(
        &self,
        plan: &QueryPlan,
        source: &S,
        query: &CellSetSequence,
        exclude: Option<EntityId>,
        k: usize,
        measure: &M,
        options: QueryOptions,
        scheduler: SchedulerConfig,
        stats: &mut QueryStats,
        start: Instant,
    ) -> Result<Vec<TopKResult>>
    where
        S: TraceSource + Sync,
        M: AssociationMeasure + Sync + ?Sized,
    {
        let deadline = plan
            .planner
            .latency_budget_us
            .and_then(|us| start.checked_add(Duration::from_micros(us)));
        let shards = self.snapshot.shard_snapshots();
        let use_shared = scheduler.bound_mode == BoundMode::Shared;
        let shared = SharedBound::new();
        if plan.seeded() {
            shared.publish(plan.seed);
        }
        let mut report = DegradationReport::default();
        let mut parts: Vec<Vec<TopKResult>> = Vec::with_capacity(plan.shards.len());

        let sampled_scan = |shard_idx: usize,
                            rate: f64,
                            count_population: bool,
                            downgraded: bool,
                            stats: &mut QueryStats,
                            report: &mut DegradationReport,
                            parts: &mut Vec<Vec<TopKResult>>| {
            let shard = &shards[shard_idx];
            let hot = shard.synopsis().hot_entities();
            let mut top = TopKHeap::new(k);
            let mut checked = 0usize;
            for &entity in shard.sequences().keys() {
                if Some(entity) == exclude {
                    continue;
                }
                if !plan::sample_includes(entity, rate) && !hot.contains(&entity) {
                    continue;
                }
                let Some(degree) = source.degree(entity, query, &measure) else { continue };
                checked += 1;
                top.offer(entity, degree);
            }
            let results = top.into_sorted();
            if count_population {
                stats.total_entities += shard.num_entities();
            }
            stats.entities_checked += checked;
            stats.sampled_candidates += checked;
            stats.recall_estimate =
                stats.recall_estimate.min(shard.synopsis().expected_scan_recall(rate));
            report.record_shard(shard_idx, rate, downgraded);
            if use_shared && k > 0 && results.len() >= k {
                shared.publish(results[k - 1].degree);
            }
            parts.push(results);
        };

        for shard_plan in plan.admitted() {
            let shard = &shards[shard_plan.shard];
            let expired = deadline.is_some_and(|d| Instant::now() >= d);
            match shard_plan.decision {
                ShardDecision::Skip => unreachable!("admitted() filters skips"),
                ShardDecision::ApproximateScan { rate } => {
                    sampled_scan(
                        shard_plan.shard,
                        rate,
                        true,
                        false,
                        stats,
                        &mut report,
                        &mut parts,
                    );
                }
                ShardDecision::Scan => {
                    let floor_rate =
                        shard.synopsis().min_rate_for_recall(plan.planner.recall_floor);
                    if expired && floor_rate < 1.0 {
                        report.deadline_exceeded = true;
                        sampled_scan(
                            shard_plan.shard,
                            floor_rate,
                            true,
                            true,
                            stats,
                            &mut report,
                            &mut parts,
                        );
                        continue;
                    }
                    let mut top = TopKHeap::new(k);
                    let mut checked = 0usize;
                    for &entity in shard.sequences().keys() {
                        if Some(entity) == exclude {
                            continue;
                        }
                        let Some(degree) = source.degree(entity, query, &measure) else {
                            continue;
                        };
                        checked += 1;
                        top.offer(entity, degree);
                    }
                    let results = top.into_sorted();
                    stats.total_entities += shard.num_entities();
                    stats.entities_checked += checked;
                    if use_shared && k > 0 && results.len() >= k {
                        shared.publish(results[k - 1].degree);
                    }
                    parts.push(results);
                }
                ShardDecision::TreeSearch => {
                    let floor_rate =
                        shard.synopsis().min_rate_for_recall(plan.planner.recall_floor);
                    if expired && floor_rate < 1.0 {
                        report.deadline_exceeded = true;
                        sampled_scan(
                            shard_plan.shard,
                            floor_rate,
                            true,
                            true,
                            stats,
                            &mut report,
                            &mut parts,
                        );
                        continue;
                    }
                    let mut executor = Executor::new(
                        shard.sp_index(),
                        shard.hasher(),
                        shard.node_arena(),
                        query,
                        exclude,
                        k,
                        measure,
                        source,
                        options,
                    )?
                    .with_publish_policy(scheduler.publish_policy);
                    // Reserve the sampled fallback's estimated cost out of
                    // the deadline: an abandon still pays that scan after it.
                    let shard_deadline = if floor_rate >= 1.0 {
                        None
                    } else {
                        let reserve = Duration::from_nanos(plan::fallback_reserve_ns(
                            floor_rate,
                            shard_plan.entities,
                            plan.seed_candidates,
                            stats.planning_us,
                        ));
                        deadline.map(|d| d.checked_sub(reserve).unwrap_or(d))
                    };
                    let exhausted = if use_shared {
                        executor.run_until(&shared, scheduler.step_quantum, shard_deadline)
                    } else if plan.seeded() {
                        let seeded = SeededBound::new(plan.seed);
                        executor.run_until(&seeded, scheduler.step_quantum, shard_deadline)
                    } else {
                        executor.run_until(&PrivateBound, scheduler.step_quantum, shard_deadline)
                    };
                    let (results, executor_stats) = executor.finish();
                    stats.absorb_work(&executor_stats);
                    if exhausted {
                        parts.push(results);
                    } else {
                        report.deadline_exceeded = true;
                        sampled_scan(
                            shard_plan.shard,
                            floor_rate,
                            false,
                            true,
                            stats,
                            &mut report,
                            &mut parts,
                        );
                    }
                }
            }
        }
        if report.shards_approximate() > 0 {
            stats.degradation = Some(report);
        }
        Ok(engine::merge_top_k(k, parts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use crate::query::QueryOptions;
    use trace_model::{PaperAdm, Period, PresenceInstance, SpIndex, TraceSet};
    use trace_storage::PoolConfig;

    fn dataset(pairs: usize) -> (SpIndex, TraceSet) {
        let sp = SpIndex::uniform(2, &[4, 4]).unwrap();
        let base = sp.base_units().to_vec();
        let mut traces = TraceSet::new(60);
        for i in 0..pairs {
            for member in 0..2u64 {
                let entity = EntityId(2 * i as u64 + member);
                for step in 0..8u64 {
                    let unit = base[(i * 5 + step as usize) % base.len()];
                    let start = step * 240;
                    traces.record(PresenceInstance::new(
                        entity,
                        unit,
                        Period::new(start, start + 60).unwrap(),
                    ));
                }
            }
        }
        (sp, traces)
    }

    #[test]
    fn paged_and_in_memory_queries_agree() {
        let (sp, traces) = dataset(20);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(64)).unwrap();
        let store = PagedTraceStore::build(&traces, 4);
        let pool = store.pool(PoolConfig::default());
        let measure = PaperAdm::default_for(sp.height() as usize);
        let mut total_misses = 0;
        for query in [0u64, 9, 21] {
            let (mem, _) = index.top_k(EntityId(query), 5, &measure).unwrap();
            let (paged, stats) = index
                .top_k_paged(EntityId(query), 5, &measure, &store, &pool, QueryOptions::default())
                .unwrap();
            assert_eq!(mem.len(), paged.len());
            for (a, b) in mem.iter().zip(paged.iter()) {
                assert!((a.degree - b.degree).abs() < 1e-9);
            }
            total_misses += stats.pool_misses;
        }
        assert!(total_misses > 0, "cold pages must have been read at least once");
    }

    #[test]
    fn smaller_memory_budget_costs_more_simulated_io() {
        let (sp, traces) = dataset(150);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(32)).unwrap();
        let store = PagedTraceStore::build(&traces, 8);
        let measure = PaperAdm::default_for(sp.height() as usize);
        let queries: Vec<EntityId> = (0..40u64).map(EntityId).collect();

        let mut io = Vec::new();
        for fraction in [0.05f64, 1.0] {
            let pool = store.pool(PoolConfig::with_memory_fraction(store.data_bytes(), fraction));
            let mut total = 0u64;
            // Two passes so the large pool can profit from caching.
            for _ in 0..2 {
                for &q in &queries {
                    let (_, stats) = index
                        .top_k_paged(q, 10, &measure, &store, &pool, QueryOptions::default())
                        .unwrap();
                    total += stats.simulated_io_us;
                }
            }
            io.push(total);
        }
        assert!(
            io[0] > io[1],
            "a 5% budget should cost more simulated I/O than 100% ({} vs {})",
            io[0],
            io[1]
        );
    }

    #[test]
    fn unknown_query_entity_is_reported() {
        let (sp, traces) = dataset(3);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::default()).unwrap();
        let store = PagedTraceStore::build(&traces, 4);
        let pool = store.pool(PoolConfig::default());
        let measure = PaperAdm::default_for(sp.height() as usize);
        let err = index
            .top_k_paged(EntityId(9999), 1, &measure, &store, &pool, QueryOptions::default())
            .unwrap_err();
        assert!(matches!(err, crate::error::IndexError::UnknownQueryEntity(9999)));
    }

    #[test]
    fn paged_sharded_matches_in_memory_sharded_bitwise() {
        let (sp, traces) = dataset(40);
        let sharded =
            crate::shard::ShardedMinSigIndex::build(&sp, &traces, IndexConfig::default(), 4)
                .unwrap();
        let snapshot = sharded.snapshot();
        let store = PagedTraceStore::build(&traces, 4);
        let pool = store.pool(trace_storage::PoolConfig {
            capacity_bytes: 3 * trace_storage::PAGE_SIZE,
            ..Default::default()
        });
        let paged = snapshot.paged(&store, &pool);
        let measure = PaperAdm::default_for(sp.height() as usize);
        for query in [0u64, 7, 33, 79] {
            let (mem, _) = snapshot.top_k(EntityId(query), 5, &measure).unwrap();
            let (out, stats) = paged.top_k(EntityId(query), 5, &measure).unwrap();
            assert_eq!(mem, out, "query {query}: paged answers must be bitwise identical");
            assert!(
                stats.pool_hits + stats.pool_misses > 0,
                "paged query must account its pool traffic"
            );
        }
    }

    #[test]
    fn paged_sharded_batch_and_join_match_in_memory() {
        let (sp, traces) = dataset(30);
        let sharded =
            crate::shard::ShardedMinSigIndex::build(&sp, &traces, IndexConfig::default(), 3)
                .unwrap();
        let snapshot = sharded.snapshot();
        let store = PagedTraceStore::build(&traces, 4);
        let pool = store.pool(trace_storage::PoolConfig {
            capacity_bytes: 2 * trace_storage::PAGE_SIZE,
            ..Default::default()
        });
        let paged = snapshot.paged(&store, &pool);
        let measure = PaperAdm::default_for(sp.height() as usize);
        let queries: Vec<EntityId> = [1u64, 12, 25, 44].map(EntityId).to_vec();

        let mem_batch = snapshot.top_k_batch(&queries, 4, &measure).unwrap();
        let paged_batch = paged.top_k_batch(&queries, 4, &measure).unwrap();
        for ((mem, _), (out, _)) in mem_batch.iter().zip(paged_batch.iter()) {
            assert_eq!(mem, out);
        }

        // Join, probe list including one unindexed probe that must be skipped
        // identically on both paths.
        let probes: Vec<EntityId> = [3u64, 9999, 18].map(EntityId).to_vec();
        let options = JoinOptions { k: 3, ..JoinOptions::default() };
        let (mem_rows, mem_join) = snapshot.top_k_join(&probes, &measure, options).unwrap();
        let (rows, join) = paged.top_k_join(&probes, &measure, options).unwrap();
        assert_eq!(mem_rows.len(), rows.len());
        assert_eq!(mem_join.skipped, join.skipped);
        for (a, b) in mem_rows.iter().zip(rows.iter()) {
            assert_eq!(a.probe, b.probe);
            assert_eq!(a.matches, b.matches);
        }
    }

    #[test]
    fn flat_rows_toggle_answers_identically_and_holds_no_pins() {
        let (sp, traces) = dataset(40);
        let sharded =
            crate::shard::ShardedMinSigIndex::build(&sp, &traces, IndexConfig::default(), 4)
                .unwrap();
        let snapshot = sharded.snapshot();
        let store = PagedTraceStore::build(&traces, 4);
        let pool = store.pool(trace_storage::PoolConfig {
            capacity_bytes: 3 * trace_storage::PAGE_SIZE,
            ..Default::default()
        });
        let flat = snapshot.paged(&store, &pool);
        let owned = snapshot.paged(&store, &pool).with_flat_rows(false);
        let measure = PaperAdm::default_for(sp.height() as usize);
        let mut kernel_total = 0u64;
        for query in [0u64, 7, 33, 79] {
            let (a, flat_stats) = flat.top_k(EntityId(query), 5, &measure).unwrap();
            let (b, owned_stats) = owned.top_k(EntityId(query), 5, &measure).unwrap();
            assert_eq!(a, b, "query {query}: both layouts must answer bitwise identically");
            kernel_total += flat_stats.kernel_dispatch.total();
            assert_eq!(
                owned_stats.kernel_dispatch.total(),
                0,
                "the owned-sequence layout does not run classified kernels"
            );
            assert_eq!(pool.pinned_frames(), 0, "row cache copies pages, it never holds pins");
        }
        assert!(kernel_total > 0, "flat paged queries must account their kernel dispatches");
    }

    #[test]
    fn paged_arena_row_cache_respects_the_pool_budget() {
        let (sp, traces) = dataset(60);
        let store = PagedTraceStore::build(&traces, 4);
        let pool = store.pool(trace_storage::PoolConfig {
            capacity_bytes: 2 * trace_storage::PAGE_SIZE,
            ..Default::default()
        });
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::default()).unwrap();
        let snapshot = index.snapshot();
        let query_seq = snapshot.sequence(EntityId(0)).unwrap().clone();
        let source = PagedArenaSource::new(
            &store,
            &pool,
            snapshot.sp_index(),
            snapshot.ticks_per_unit(),
            &query_seq,
        );
        let measure = PaperAdm::default_for(sp.height() as usize);
        let budget = pool.config().capacity_bytes;
        for e in 0..120u64 {
            let via_rows = source.degree(EntityId(e), &query_seq, &measure).unwrap();
            let owned = measure.degree(&query_seq, snapshot.sequence(EntityId(e)).unwrap());
            assert_eq!(via_rows.to_bits(), owned.to_bits(), "entity {e}");
            // Re-evaluation hits the cache and stays identical.
            let again = source.degree(EntityId(e), &query_seq, &measure).unwrap();
            assert_eq!(again.to_bits(), owned.to_bits());
            assert_eq!(pool.pinned_frames(), 0);
        }
        assert!(source.cached_rows() > 0);
        assert!(
            source.cached_rows() < 120,
            "a {budget}-byte budget cannot hold all 120 rows: the cache must have flushed"
        );
        assert!(source.degree(EntityId(9999), &query_seq, &measure).is_none());
        let drained = source.take_dispatch();
        assert_eq!(drained.total(), 240 * sp.height() as u64, "two passes × 120 entities × levels");
        assert_eq!(source.take_dispatch().total(), 0);
    }

    #[test]
    fn paged_explain_reports_page_estimates() {
        let (sp, traces) = dataset(25);
        let sharded =
            crate::shard::ShardedMinSigIndex::build(&sp, &traces, IndexConfig::default(), 3)
                .unwrap();
        let snapshot = sharded.snapshot();
        let store = PagedTraceStore::build(&traces, 4);
        let pool = store.pool(trace_storage::PoolConfig::default());
        let paged = snapshot.paged(&store, &pool);
        let measure = PaperAdm::default_for(sp.height() as usize);

        let plan = paged.explain(EntityId(4), 5, &measure, PlannerConfig::default()).unwrap();
        let rendered = plan.explain();
        assert!(rendered.contains("pages="), "explain must surface page estimates: {rendered}");
        for shard_plan in &plan.shards {
            let pages = shard_plan.pages.expect("paged plans carry a page estimate per shard");
            assert_eq!(
                pages.total_pages,
                paged.shard_pages(shard_plan.shard).len(),
                "estimate totals come from the shard's page directory"
            );
            assert!(pages.resident_pages <= pages.total_pages);
        }

        // A disabled planner still answers (no estimates, no seeding) and the
        // unplanned paged path agrees with the unplanned in-memory path.
        let cold = paged.explain(EntityId(4), 5, &measure, PlannerConfig::disabled()).unwrap();
        assert!(cold.shards.iter().all(|s| s.pages.is_none()));
        let (mem, _) = snapshot
            .top_k_with_scheduler(
                EntityId(4),
                5,
                &measure,
                QueryOptions::default(),
                SchedulerConfig::default(),
            )
            .unwrap();
        let (out, _) = paged
            .top_k_with_scheduler(
                EntityId(4),
                5,
                &measure,
                QueryOptions::default(),
                SchedulerConfig::default(),
            )
            .unwrap();
        assert_eq!(mem, out);
    }
}
