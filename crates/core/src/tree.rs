//! The MinSigTree (Section 4.2.2, Algorithm 1).
//!
//! The tree has `m` levels (one per sp-index level) below a virtual root.  A node
//! at depth `d` groups the entities whose level-`d` signature has its maximum at
//! the node's *routing index*; the node stores only that routing index and the
//! group minimum at it (the paper's space optimisation: materialise `SIG_N[u]`
//! only).  Leaves (depth `m`) hold the entity lists.
//!
//! The structure supports the incremental maintenance of Section 4.2.3: inserting
//! an entity re-routes it from the root (creating nodes as needed) and lowers the
//! stored values along the path; removal detaches the entity from its leaf and
//! leaves the stored values untouched, which keeps every stored value a lower
//! bound of the group minimum — exactly what pruning soundness requires.

use crate::signature::SignatureList;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use trace_model::{EntityId, Level};

/// Identifier of a node within a [`MinSigTree`].
pub type NodeId = u32;

/// One tree node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// Depth of the node: 0 for the virtual root, `1..=m` for real nodes.
    pub depth: Level,
    /// Routing index `u` of the group (0-based position in the signature).
    pub routing_index: u32,
    /// The group minimum at the routing index (`SIG_N[u]`).
    pub routing_value: u64,
    /// Children keyed by their routing index.
    pub children: BTreeMap<u32, NodeId>,
    /// Entities stored at this node (non-empty only at leaf depth `m`).
    pub entities: Vec<EntityId>,
}

impl Node {
    fn new(depth: Level, routing_index: u32, routing_value: u64) -> Self {
        Node {
            depth,
            routing_index,
            routing_value,
            children: BTreeMap::new(),
            entities: Vec::new(),
        }
    }
}

/// The MinSigTree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MinSigTree {
    levels: Level,
    nodes: Vec<Node>,
    /// Leaf node of each indexed entity (for removal and update).
    leaf_of: BTreeMap<EntityId, NodeId>,
}

/// The virtual root is always node 0.
pub const ROOT: NodeId = 0;

impl MinSigTree {
    /// Creates an empty tree for an sp-index of the given height.
    pub fn new(levels: Level) -> Self {
        assert!(levels >= 1, "tree needs at least one level");
        MinSigTree { levels, nodes: vec![Node::new(0, 0, u64::MAX)], leaf_of: BTreeMap::new() }
    }

    /// Builds the tree from the signatures of all entities (Algorithm 1).
    ///
    /// The recursive grouping of the paper is implemented as repeated single-entity
    /// insertion, which produces exactly the same tree because the routing index of
    /// an entity at each level depends only on its own signature, and group values
    /// are minima (order-independent).
    pub fn build<'a, I>(levels: Level, entities: I) -> Self
    where
        I: IntoIterator<Item = (EntityId, &'a SignatureList)>,
    {
        let mut tree = MinSigTree::new(levels);
        for (entity, sig) in entities {
            tree.insert(entity, sig);
        }
        tree
    }

    /// Number of sp-index levels this tree was built for.
    pub fn levels(&self) -> Level {
        self.levels
    }

    /// Total number of nodes, including the virtual root.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of entities currently indexed.
    pub fn num_entities(&self) -> usize {
        self.leaf_of.len()
    }

    /// Read access to a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    /// All nodes in id order, the virtual root first (used by the persistence
    /// layer to serialise the tree structurally).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Reassembles a tree from its node arena (the inverse of
    /// [`MinSigTree::nodes`]).  The entity → leaf map is rebuilt from the leaf
    /// entity lists, and the structural invariants are re-checked; any
    /// inconsistency (duplicate entities, dangling children, wrong depths) is
    /// reported as an error instead of producing a broken tree.
    pub fn from_nodes(levels: Level, nodes: Vec<Node>) -> std::result::Result<Self, String> {
        if levels < 1 {
            return Err("tree needs at least one level".into());
        }
        if nodes.is_empty() {
            return Err("node arena is empty (missing virtual root)".into());
        }
        for node in &nodes {
            for &child in node.children.values() {
                if child as usize >= nodes.len() {
                    return Err(format!("child id {child} out of range ({})", nodes.len()));
                }
            }
        }
        let mut leaf_of = BTreeMap::new();
        for (id, node) in nodes.iter().enumerate() {
            for &entity in &node.entities {
                if leaf_of.insert(entity, id as NodeId).is_some() {
                    return Err(format!("{entity} appears in more than one leaf"));
                }
            }
        }
        let tree = MinSigTree { levels, nodes, leaf_of };
        tree.check_invariants()?;
        Ok(tree)
    }

    /// The leaf node currently holding an entity, if indexed.
    pub fn leaf_of(&self, entity: EntityId) -> Option<NodeId> {
        self.leaf_of.get(&entity).copied()
    }

    /// An estimate of the tree's memory footprint in bytes: each node stores two
    /// integers (routing index and value) plus its child map entries; leaves add
    /// one entity id per entity (Section 7.8's accounting).
    pub fn size_bytes(&self) -> usize {
        let per_node = std::mem::size_of::<u32>() + std::mem::size_of::<u64>();
        let child_entries: usize = self.nodes.iter().map(|n| n.children.len()).sum();
        let entity_entries: usize = self.nodes.iter().map(|n| n.entities.len()).sum();
        self.nodes.len() * per_node
            + child_entries * (std::mem::size_of::<u32>() + std::mem::size_of::<NodeId>())
            + entity_entries * std::mem::size_of::<EntityId>()
    }

    /// Inserts (or re-inserts) an entity with the given signatures, returning the
    /// leaf it was placed in.  If the entity is already present it is removed
    /// first, so the operation is idempotent under identical signatures.
    pub fn insert(&mut self, entity: EntityId, sig: &SignatureList) -> NodeId {
        debug_assert_eq!(sig.num_levels(), self.levels as usize);
        if self.leaf_of.contains_key(&entity) {
            self.remove(entity);
        }
        let mut current = ROOT;
        for depth in 1..=self.levels {
            let routing_index = sig.routing_index(depth);
            let value = sig.value(depth, routing_index);
            let next = match self.nodes[current as usize].children.get(&routing_index) {
                Some(&child) => {
                    // Keep the stored value the group minimum.
                    let child_node = &mut self.nodes[child as usize];
                    if value < child_node.routing_value {
                        child_node.routing_value = value;
                    }
                    child
                }
                None => {
                    let id = self.nodes.len() as NodeId;
                    self.nodes.push(Node::new(depth, routing_index, value));
                    self.nodes[current as usize].children.insert(routing_index, id);
                    id
                }
            };
            current = next;
        }
        self.nodes[current as usize].entities.push(entity);
        self.leaf_of.insert(entity, current);
        current
    }

    /// Removes an entity from its leaf.  Stored routing values are *not*
    /// recomputed (they stay lower bounds, which is sound); empty leaves are kept
    /// and simply never produce candidates.
    ///
    /// Returns `true` when the entity was present.
    pub fn remove(&mut self, entity: EntityId) -> bool {
        let Some(leaf) = self.leaf_of.remove(&entity) else { return false };
        let entities = &mut self.nodes[leaf as usize].entities;
        if let Some(pos) = entities.iter().position(|&e| e == entity) {
            entities.swap_remove(pos);
        }
        true
    }

    /// Iterates all leaf nodes (depth `m`) with at least one entity.
    pub fn leaves(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .filter(move |(_, n)| n.depth == self.levels && !n.entities.is_empty())
            .map(|(i, n)| (i as NodeId, n))
    }

    /// Iterates every indexed entity.
    pub fn entities(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.leaf_of.keys().copied()
    }

    /// Verifies the structural invariants (used by tests and debug assertions):
    /// child depth is parent depth + 1, entities only at leaves, stored values are
    /// lower bounds of their subtree entities' signature values.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        for (id, node) in self.nodes.iter().enumerate() {
            for (&ri, &child) in &node.children {
                let child_node = &self.nodes[child as usize];
                if child_node.depth != node.depth + 1 {
                    return Err(format!("child {child} of node {id} has wrong depth"));
                }
                if child_node.routing_index != ri {
                    return Err(format!("child {child} keyed under wrong routing index"));
                }
            }
            if node.depth != self.levels && !node.entities.is_empty() {
                return Err(format!("non-leaf node {id} holds entities"));
            }
        }
        for (&entity, &leaf) in &self.leaf_of {
            if !self.nodes[leaf as usize].entities.contains(&entity) {
                return Err(format!("leaf_of points {entity} at a leaf that does not hold it"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HasherMode;
    use crate::signature::{HierarchicalHasher, SeededHashFamily, SignatureList, TableHashFamily};
    use trace_model::examples::{PaperExample, T1, T2};
    use trace_model::{CellSet, CellSetSequence, SpIndex, StCell};

    fn paper_signatures() -> (PaperExample, Vec<(EntityId, SignatureList)>) {
        let ex = PaperExample::build();
        let mut table = TableHashFamily::new(10);
        let u = ex.units;
        for (t, unit) in [
            (T1, u.l1),
            (T2, u.l1),
            (T1, u.l2),
            (T2, u.l2),
            (T1, u.l3),
            (T2, u.l3),
            (T1, u.l4),
            (T2, u.l4),
        ] {
            for h in [1u32, 2] {
                let cell = StCell::new(t, unit);
                table.set(h - 1, cell, ex.hash_value(h as usize, cell).unwrap() as u64);
            }
        }
        let hasher = HierarchicalHasher::new(table, HasherMode::Exhaustive);
        let sigs = ex
            .entities
            .iter()
            .map(|(e, seq)| (*e, SignatureList::build(&ex.sp, &hasher, seq)))
            .collect();
        (ex, sigs)
    }

    /// Figure 4.1: the sample MinSigTree has N1 = {e_d} with value 3 and N2 =
    /// {e_a, e_b, e_c} with value 2 at level 1; at level 2, N21 = {e_a, e_c} (4)
    /// and N22 = {e_b} (5).  The thesis draws e_d's leaf under routing index 2
    /// with value 7, which follows from the Table 4.3 typo documented in
    /// `trace_model::examples::PaperExample::expected_signatures`; applying the
    /// Section 4.2.1 definition to Table 4.1 gives `sig^2_d = ⟨3, 2⟩`, so the leaf
    /// sits under routing index 1 with value 3.
    #[test]
    fn paper_example_figure_4_1() {
        let (_, sigs) = paper_signatures();
        let tree = MinSigTree::build(2, sigs.iter().map(|(e, s)| (*e, s)));
        tree.check_invariants().unwrap();
        assert_eq!(tree.num_entities(), 4);

        let root = tree.node(ROOT);
        assert_eq!(root.children.len(), 2);
        // N1: routing index 0 (paper's index 1), value 3, containing e_d.
        let n1 = tree.node(root.children[&0]);
        assert_eq!(n1.routing_value, 3);
        // N2: routing index 1 (paper's index 2), value 2 (min of 3, 3, 2).
        let n2 = tree.node(root.children[&1]);
        assert_eq!(n2.routing_value, 2);

        // Level 2 nodes.
        assert_eq!(n1.children.len(), 1);
        let n12 = tree.node(n1.children[&0]);
        assert_eq!(n12.routing_value, 3);
        assert_eq!(n12.entities, vec![EntityId(3)]);

        assert_eq!(n2.children.len(), 2);
        let n21 = tree.node(n2.children[&0]);
        assert_eq!(n21.routing_value, 4);
        let mut n21_entities = n21.entities.clone();
        n21_entities.sort();
        assert_eq!(n21_entities, vec![EntityId(0), EntityId(2)]);
        let n22 = tree.node(n2.children[&1]);
        assert_eq!(n22.routing_value, 5);
        assert_eq!(n22.entities, vec![EntityId(1)]);
    }

    fn random_signatures(n: usize, sp: &SpIndex, nh: u32) -> Vec<(EntityId, SignatureList)> {
        let hasher =
            HierarchicalHasher::new(SeededHashFamily::new(nh, 1, 100_000), HasherMode::PathMax);
        (0..n)
            .map(|i| {
                let cells: Vec<StCell> = (0..(i % 7 + 1))
                    .map(|j| {
                        StCell::new(j as u32, sp.base_units()[(i * 3 + j) % sp.num_base_units()])
                    })
                    .collect();
                let seq =
                    CellSetSequence::from_base_cells(sp, &CellSet::from_cells(cells)).unwrap();
                (EntityId(i as u64), SignatureList::build(sp, &hasher, &seq))
            })
            .collect()
    }

    #[test]
    fn build_indexes_every_entity_exactly_once() {
        let sp = SpIndex::uniform(3, &[4, 4]).unwrap();
        let sigs = random_signatures(100, &sp, 16);
        let tree = MinSigTree::build(3, sigs.iter().map(|(e, s)| (*e, s)));
        tree.check_invariants().unwrap();
        assert_eq!(tree.num_entities(), 100);
        let leaf_total: usize = tree.leaves().map(|(_, n)| n.entities.len()).sum();
        assert_eq!(leaf_total, 100);
        // Every entity's recorded leaf actually holds it.
        for (e, _) in &sigs {
            let leaf = tree.leaf_of(*e).unwrap();
            assert!(tree.node(leaf).entities.contains(e));
        }
    }

    #[test]
    fn node_count_is_bounded_by_entities_times_levels_plus_root() {
        let sp = SpIndex::uniform(3, &[4, 4]).unwrap();
        let sigs = random_signatures(60, &sp, 8);
        let tree = MinSigTree::build(3, sigs.iter().map(|(e, s)| (*e, s)));
        assert!(tree.num_nodes() <= 60 * 3 + 1, "size bound of Section 4.3");
        assert!(tree.size_bytes() > 0);
    }

    #[test]
    fn stored_values_lower_bound_member_signatures() {
        let sp = SpIndex::uniform(2, &[5, 5]).unwrap();
        let sigs = random_signatures(80, &sp, 12);
        let tree = MinSigTree::build(3, sigs.iter().map(|(e, s)| (*e, s)));
        // Walk each entity's path and check the stored value at each depth.
        for (e, sig) in &sigs {
            let mut current = ROOT;
            for depth in 1..=3u8 {
                let ri = sig.routing_index(depth);
                let child = tree.node(current).children[&ri];
                let node = tree.node(child);
                assert!(node.routing_value <= sig.value(depth, ri));
                current = child;
            }
            assert_eq!(tree.leaf_of(*e), Some(current));
        }
    }

    #[test]
    fn remove_detaches_entity_and_keeps_invariants() {
        let sp = SpIndex::uniform(2, &[4, 3]).unwrap();
        let sigs = random_signatures(30, &sp, 8);
        let mut tree = MinSigTree::build(3, sigs.iter().map(|(e, s)| (*e, s)));
        assert!(tree.remove(EntityId(5)));
        assert!(!tree.remove(EntityId(5)), "double removal is a no-op");
        assert_eq!(tree.num_entities(), 29);
        assert!(tree.leaf_of(EntityId(5)).is_none());
        tree.check_invariants().unwrap();
    }

    #[test]
    fn reinsert_moves_entity_to_a_new_leaf() {
        let sp = SpIndex::uniform(2, &[4, 3]).unwrap();
        let sigs = random_signatures(20, &sp, 8);
        let mut tree = MinSigTree::build(3, sigs.iter().map(|(e, s)| (*e, s)));
        let before = tree.leaf_of(EntityId(0)).unwrap();
        // Re-insert entity 0 with entity 13's signature; it should land in 13's leaf.
        tree.insert(EntityId(0), &sigs[13].1);
        let after = tree.leaf_of(EntityId(0)).unwrap();
        assert_eq!(after, tree.leaf_of(EntityId(13)).unwrap());
        assert_ne!(before, after);
        assert_eq!(tree.num_entities(), 20);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn from_nodes_round_trips_and_validates() {
        let sp = SpIndex::uniform(3, &[4, 4]).unwrap();
        let sigs = random_signatures(50, &sp, 8);
        let tree = MinSigTree::build(3, sigs.iter().map(|(e, s)| (*e, s)));

        let rebuilt = MinSigTree::from_nodes(tree.levels(), tree.nodes().to_vec()).unwrap();
        assert_eq!(rebuilt.num_nodes(), tree.num_nodes());
        assert_eq!(rebuilt.num_entities(), tree.num_entities());
        for (e, _) in &sigs {
            assert_eq!(rebuilt.leaf_of(*e), tree.leaf_of(*e));
        }

        // A duplicated entity is rejected.
        let mut nodes = tree.nodes().to_vec();
        let victim = nodes
            .iter()
            .position(|n| {
                n.depth == 3 && !n.entities.is_empty() && !n.entities.contains(&EntityId(0))
            })
            .unwrap();
        nodes[victim].entities.push(EntityId(0));
        assert!(MinSigTree::from_nodes(3, nodes).is_err());

        // A dangling child id is rejected.
        let mut nodes = tree.nodes().to_vec();
        nodes[0].children.insert(999, 10_000);
        assert!(MinSigTree::from_nodes(3, nodes).is_err());
    }

    #[test]
    fn empty_tree_has_only_the_root() {
        let tree = MinSigTree::new(4);
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.num_entities(), 0);
        assert_eq!(tree.leaves().count(), 0);
        tree.check_invariants().unwrap();
    }
}
