//! Durability for the MinSigTree index: [`IndexSnapshot::save`] /
//! [`IndexSnapshot::open`] and their [`MinSigIndex`] delegates.
//!
//! A persisted index is one segment file in the checksummed, length-prefixed
//! format of [`trace_storage::segment`] (magic [`INDEX_MAGIC`], version
//! [`INDEX_VERSION`]).  The file stores everything a restarted process needs
//! to answer queries **bit-identically** to the index that was saved, without
//! re-hashing a single cell:
//!
//! | segment | contents |
//! |---------|----------|
//! | `META`  | temporal discretisation, [`IndexConfig`], the *resolved* hash range, hierarchy height, tree level count, and the expected entity / node / unit counts |
//! | `WAL`   | the WAL checkpoint LSN: the highest log record this file already incorporates — format version 3 and newer |
//! | `SYN`   | the planning [`Synopsis`] (sketch size, per-level capacity caps, entity count, hot-entity ids) — format version 2 and newer |
//! | `SP`    | the spatial hierarchy as a parent list (units were created parent-before-child, so replaying the list through [`SpIndexBuilder`] reproduces the exact same dense unit ids) |
//! | `TREE`  | the [`MinSigTree`] node arena, structurally (chunked) |
//! | `ENT`   | per entity: its base-level ST-cells and its full signature list (chunked) |
//!
//! **Version 3** (this build) adds the `WAL` segment carrying the checkpoint
//! LSN of the durable ingest path (`crate::durable`): recovery replays only
//! log records *newer* than this LSN, and because the LSN travels inside the
//! atomically renamed file it can never disagree with the state it
//! describes — a crash between a checkpoint and its log truncation cannot
//! double-apply a batch.  A non-durable [`save`](IndexSnapshot::save) writes
//! LSN 0.  **Version 2** added the `SYN` segment so a reopened index plans
//! sharded queries immediately — including a non-default synopsis sketch
//! size chosen at build time — without recomputing anything.  Version-1 and
//! version-2 files still open: missing segments fall back (synopsis computed
//! from the loaded sequences — a linear pass over cached lengths, no
//! re-hashing; checkpoint LSN 0).
//!
//! Per-level sequences are *not* stored: they are cheap, deterministic
//! projections of the base cells ([`CellSetSequence::from_base_cells`]), so
//! [`open`](IndexSnapshot::open) recomputes them in one linear pass.  The
//! signatures — the only expensive-to-recompute state — are stored verbatim,
//! and the tree is stored structurally rather than rebuilt so that lower-bound
//! routing values left behind by [`remove_entity`] survive a restart exactly.
//!
//! Writes are atomic (temp file + rename, [`segment::atomic_write`]); a crash
//! mid-save leaves any previous file untouched.  Reads verify the magic, the
//! version, every segment checksum, the segment count, the announced entity /
//! node counts and the structural invariants of the reassembled tree; any
//! mismatch is reported as [`IndexError::Corrupt`] (or [`IndexError::Io`]),
//! never as silently wrong query answers.
//!
//! [`remove_entity`]: crate::index::MinSigIndex::remove_entity
//! [`SpIndexBuilder`]: trace_model::SpIndexBuilder

use crate::config::{HasherMode, IndexConfig};
use crate::error::{IndexError, Result};
use crate::index::MinSigIndex;
use crate::signature::{HierarchicalHasher, SeededHashFamily, SignatureList};
use crate::snapshot::IndexSnapshot;
use crate::stats::IndexStats;
use crate::synopsis::Synopsis;
use crate::tree::{MinSigTree, Node, NodeId};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;
use trace_model::{CellSet, CellSetSequence, EntityId, SpIndexBuilder, StCell};
use trace_storage::segment::{self, Cursor, SegmentError};

/// Magic bytes of a persisted index file ("MinSig IndeX").
pub const INDEX_MAGIC: [u8; 4] = *b"MSIX";
/// Newest index file format version this build reads and writes.  Version 3
/// added the `WAL` checkpoint-LSN segment, version 2 the `SYN`
/// planning-synopsis segment; older files still open (missing segments fall
/// back to a computed synopsis and checkpoint LSN 0).
pub const INDEX_VERSION: u16 = 3;

const TAG_META: u32 = 1;
const TAG_SP: u32 = 2;
const TAG_TREE: u32 = 3;
const TAG_ENT: u32 = 4;
const TAG_SYN: u32 = 5;
const TAG_WAL: u32 = 6;

/// Entities per `ENT` segment and nodes per `TREE` segment: keeps individual
/// segments small enough to checksum incrementally while amortising the
/// per-segment header over many records.
const ENTITIES_PER_SEGMENT: usize = 256;
const NODES_PER_SEGMENT: usize = 4096;

/// Sentinel parent id marking a level-1 unit in the `SP` parent list.
const NO_PARENT: u32 = u32::MAX;

impl IndexSnapshot {
    /// Persists this snapshot to `path` in the versioned, checksummed segment
    /// format described in [the module docs](crate::persist).
    ///
    /// The write is atomic: the file is produced as a temporary sibling and
    /// renamed into place, so a crash mid-save never clobbers an existing
    /// file.  A saved-then-[`open`](IndexSnapshot::open)ed snapshot answers
    /// every query bit-identically to this one.
    pub fn save(&self, path: &Path) -> Result<()> {
        self.save_with_wal_lsn(path, 0)
    }

    /// [`save`](IndexSnapshot::save), stamping `wal_lsn` as the file's WAL
    /// checkpoint LSN — the durable ingest path's hook (`crate::durable`).
    /// The LSN rides inside the atomically renamed file, so the persisted
    /// state and the log position it corresponds to can never be torn apart
    /// by a crash.
    pub(crate) fn save_with_wal_lsn(&self, path: &Path, wal_lsn: u64) -> Result<()> {
        segment::atomic_write(path, INDEX_MAGIC, INDEX_VERSION, |writer| {
            self.write_segments(writer, wal_lsn)
        })?;
        Ok(())
    }

    /// Serialises this snapshot into an in-memory buffer holding exactly the
    /// bytes [`save`](IndexSnapshot::save) would write to disk.
    ///
    /// Used by the sharded save ([`crate::shard`]) to digest each shard file
    /// without writing it first and reading it back; pair with
    /// [`open_from_bytes`](IndexSnapshot::open_from_bytes).
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        self.to_bytes_with_lsn(0)
    }

    /// [`to_bytes`](IndexSnapshot::to_bytes) with an explicit WAL checkpoint
    /// LSN (the durable sharded save's hook).
    pub(crate) fn to_bytes_with_lsn(&self, wal_lsn: u64) -> Result<Vec<u8>> {
        let mut writer = segment::SegmentWriter::new(Vec::new(), INDEX_MAGIC, INDEX_VERSION)
            .map_err(IndexError::from)?;
        self.write_segments(&mut writer, wal_lsn).map_err(IndexError::from)?;
        writer.finish().map_err(IndexError::from)
    }

    fn write_segments<W: std::io::Write>(
        &self,
        writer: &mut segment::SegmentWriter<W>,
        wal_lsn: u64,
    ) -> trace_storage::segment::Result<()> {
        writer.write_segment(TAG_META, &self.encode_meta())?;
        writer.write_segment(TAG_WAL, &wal_lsn.to_le_bytes())?;
        writer.write_segment(TAG_SYN, &self.encode_synopsis())?;
        writer.write_segment(TAG_SP, &self.encode_sp())?;
        for chunk in self.tree.nodes().chunks(NODES_PER_SEGMENT) {
            writer.write_segment(TAG_TREE, &encode_tree_chunk(chunk))?;
        }
        let entities: Vec<EntityId> = self.sequences.keys().copied().collect();
        for chunk in entities.chunks(ENTITIES_PER_SEGMENT) {
            writer.write_segment(TAG_ENT, &self.encode_entity_chunk(chunk))?;
        }
        Ok(())
    }

    /// Loads a snapshot previously written by [`save`](IndexSnapshot::save).
    ///
    /// The load is a cheap linear pass — signatures are read back verbatim and
    /// no cell is re-hashed; only the per-level sequence projections are
    /// recomputed from the stored base cells.  Every checksum, count and
    /// structural invariant is verified: a truncated, bit-flipped or
    /// otherwise damaged file yields [`IndexError::Corrupt`] (or
    /// [`IndexError::Io`]), never a partially loaded index.
    pub fn open(path: &Path) -> Result<IndexSnapshot> {
        Ok(Self::open_with_lsn(path)?.0)
    }

    /// [`open`](IndexSnapshot::open), also returning the file's WAL
    /// checkpoint LSN (0 for files older than format version 3 and for
    /// non-durable saves).
    pub(crate) fn open_with_lsn(path: &Path) -> Result<(IndexSnapshot, u64)> {
        Self::open_reader(segment::open_file(path, INDEX_MAGIC, INDEX_VERSION)?)
    }

    /// Loads a snapshot from an in-memory buffer previously produced by
    /// [`to_bytes`](IndexSnapshot::to_bytes) (or read verbatim from a
    /// [`save`](IndexSnapshot::save)d file), with exactly the same
    /// verification as [`open`](IndexSnapshot::open).
    ///
    /// Lets a caller that must authenticate the bytes first (the sharded
    /// open's manifest digest check) parse the *verified* buffer instead of
    /// re-reading the file — no window for the file to change in between.
    pub fn open_from_bytes(bytes: &[u8]) -> Result<IndexSnapshot> {
        Ok(Self::open_from_bytes_with_lsn(bytes)?.0)
    }

    /// [`open_from_bytes`](IndexSnapshot::open_from_bytes), also returning
    /// the buffer's WAL checkpoint LSN (the sharded recovery hook).
    pub(crate) fn open_from_bytes_with_lsn(bytes: &[u8]) -> Result<(IndexSnapshot, u64)> {
        Self::open_reader(segment::SegmentReader::new(bytes, INDEX_MAGIC, INDEX_VERSION)?)
    }

    fn open_reader<R: std::io::Read>(
        mut reader: segment::SegmentReader<R>,
    ) -> Result<(IndexSnapshot, u64)> {
        let version = reader.version();
        let mut meta: Option<Meta> = None;
        let mut sp = None;
        let mut nodes: Vec<Node> = Vec::new();
        let mut sequences = BTreeMap::new();
        let mut signatures = BTreeMap::new();
        let mut synopsis: Option<Synopsis> = None;
        let mut wal_lsn: Option<u64> = None;

        while let Some((tag, payload)) = reader.next_segment()? {
            match tag {
                TAG_META => {
                    if meta.is_some() {
                        return Err(corrupt("duplicate META segment"));
                    }
                    meta = Some(Meta::decode(&payload)?);
                }
                TAG_SYN => {
                    let meta = meta.as_ref().ok_or_else(|| corrupt("SYN segment before META"))?;
                    if synopsis.is_some() {
                        return Err(corrupt("duplicate SYN segment"));
                    }
                    synopsis = Some(decode_synopsis(&payload, meta)?);
                }
                TAG_WAL => {
                    if version < 3 {
                        return Err(corrupt("pre-version-3 file carries a WAL segment"));
                    }
                    if wal_lsn.is_some() {
                        return Err(corrupt("duplicate WAL segment"));
                    }
                    let mut c = Cursor::new(&payload);
                    let lsn = c.u64()?;
                    c.expect_end().map_err(IndexError::from)?;
                    wal_lsn = Some(lsn);
                }
                TAG_SP => {
                    let meta = meta.as_ref().ok_or_else(|| corrupt("SP segment before META"))?;
                    if sp.is_some() {
                        return Err(corrupt("duplicate SP segment"));
                    }
                    sp = Some(decode_sp(meta, &payload)?);
                }
                TAG_TREE => {
                    let meta = meta.as_ref().ok_or_else(|| corrupt("TREE segment before META"))?;
                    decode_tree_chunk(&payload, meta, &mut nodes)?;
                }
                TAG_ENT => {
                    let meta = meta.as_ref().ok_or_else(|| corrupt("ENT segment before META"))?;
                    let sp = sp.as_ref().ok_or_else(|| corrupt("ENT segment before SP"))?;
                    decode_entity_chunk(&payload, meta, sp, &mut sequences, &mut signatures)?;
                }
                other => return Err(corrupt(&format!("unknown segment tag {other}"))),
            }
        }

        let meta = meta.ok_or_else(|| corrupt("missing META segment"))?;
        let sp = sp.ok_or_else(|| corrupt("missing SP segment"))?;
        if nodes.len() as u64 != meta.num_nodes {
            return Err(corrupt(&format!(
                "META announces {} tree nodes but {} were stored",
                meta.num_nodes,
                nodes.len()
            )));
        }
        if sequences.len() as u64 != meta.num_entities {
            return Err(corrupt(&format!(
                "META announces {} entities but {} were stored",
                meta.num_entities,
                sequences.len()
            )));
        }
        let tree = MinSigTree::from_nodes(meta.tree_levels, nodes).map_err(|e| corrupt(&e))?;
        if tree.num_entities() != sequences.len() {
            return Err(corrupt(&format!(
                "tree indexes {} entities but {} sequences were stored",
                tree.num_entities(),
                sequences.len()
            )));
        }
        for entity in tree.entities() {
            if !sequences.contains_key(&entity) {
                return Err(corrupt(&format!("tree holds {entity} but its trace is missing")));
            }
        }

        // Version 2 files always carry a synopsis; a version-1 file never
        // does, so its synopsis is computed from the loaded sequences (a
        // linear pass over cached lengths — still no re-hashing).
        let synopsis = match synopsis {
            Some(synopsis) => {
                if version < 2 {
                    return Err(corrupt("version-1 file carries a SYN segment"));
                }
                for &hot in synopsis.hot_entities() {
                    if !sequences.contains_key(&hot) {
                        return Err(corrupt(&format!(
                            "synopsis sketch lists {hot}, which is not indexed"
                        )));
                    }
                }
                // The capacity caps are the one synopsis field that can
                // change answers (an understated cap lets the planner skip a
                // shard that holds top-k entities): verify them against the
                // loaded sequences — one linear pass over cached lengths, no
                // hashing.  (The sketch only picks seeding candidates; a bad
                // sketch costs speed, never correctness.)
                let mut true_caps = vec![0usize; meta.tree_levels as usize];
                for seq in sequences.values() {
                    for (i, cap) in true_caps.iter_mut().enumerate() {
                        *cap = (*cap).max(seq.level((i + 1) as u8).len());
                    }
                }
                if synopsis.level_caps() != true_caps {
                    return Err(corrupt(&format!(
                        "synopsis capacity caps {:?} do not match the stored sequences' \
                         per-level maxima {true_caps:?}",
                        synopsis.level_caps()
                    )));
                }
                synopsis
            }
            None if version >= 2 => return Err(corrupt("missing SYN segment")),
            None => Synopsis::compute(
                meta.tree_levels,
                sequences.iter().map(|(e, s)| (*e, s)),
                crate::synopsis::DEFAULT_SKETCH_SIZE,
                0,
            ),
        };

        // Version 3 files always carry the checkpoint LSN; older files never
        // do, and an index saved outside the durable path has LSN 0 anyway.
        let wal_lsn = match wal_lsn {
            Some(lsn) => lsn,
            None if version >= 3 => return Err(corrupt("missing WAL segment")),
            None => 0,
        };

        let family = SeededHashFamily::new(
            meta.config.num_hash_functions,
            meta.config.hash_seed,
            meta.resolved_range,
        );
        let hasher = HierarchicalHasher::new(family, meta.config.hasher_mode);
        let mut snapshot = IndexSnapshot {
            sp,
            config: meta.config,
            ticks_per_unit: meta.ticks_per_unit,
            hasher,
            tree,
            sequences,
            signatures,
            synopsis,
            arena: crate::kernel::CandidateArena::default(),
            node_arena: crate::kernel::NodeArena::default(),
        };
        snapshot.rebuild_arena();
        Ok((snapshot, wal_lsn))
    }

    fn encode_meta(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&self.ticks_per_unit.to_le_bytes());
        out.extend_from_slice(&self.config.num_hash_functions.to_le_bytes());
        out.extend_from_slice(&self.config.hash_seed.to_le_bytes());
        out.push(self.config.hash_range.is_some() as u8);
        out.extend_from_slice(&self.config.hash_range.unwrap_or(0).to_le_bytes());
        out.push(match self.config.hasher_mode {
            HasherMode::Exhaustive => 0,
            HasherMode::PathMax => 1,
        });
        out.extend_from_slice(&self.hasher.range().to_le_bytes());
        out.push(self.sp.height());
        out.push(self.tree.levels());
        out.extend_from_slice(&(self.sequences.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.tree.num_nodes() as u64).to_le_bytes());
        out.extend_from_slice(&(self.sp.num_units() as u64).to_le_bytes());
        out
    }

    fn encode_synopsis(&self) -> Vec<u8> {
        let syn = &self.synopsis;
        let mut out =
            Vec::with_capacity(24 + syn.level_caps().len() * 8 + syn.hot_entities().len() * 8);
        out.extend_from_slice(&(syn.sketch_size() as u64).to_le_bytes());
        out.extend_from_slice(&(syn.level_caps().len() as u32).to_le_bytes());
        for &cap in syn.level_caps() {
            out.extend_from_slice(&(cap as u64).to_le_bytes());
        }
        out.extend_from_slice(&(syn.num_entities() as u64).to_le_bytes());
        out.extend_from_slice(&(syn.hot_entities().len() as u32).to_le_bytes());
        for &hot in syn.hot_entities() {
            out.extend_from_slice(&hot.raw().to_le_bytes());
        }
        out
    }

    fn encode_sp(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.sp.num_units() * 4);
        for unit in 0..self.sp.num_units() as u32 {
            let parent = self.sp.parent(unit).expect("unit exists").unwrap_or(NO_PARENT);
            out.extend_from_slice(&parent.to_le_bytes());
        }
        out
    }

    fn encode_entity_chunk(&self, entities: &[EntityId]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(entities.len() as u32).to_le_bytes());
        for &entity in entities {
            let seq = &self.sequences[&entity];
            let sig = &self.signatures[&entity];
            out.extend_from_slice(&entity.raw().to_le_bytes());
            let base = seq.base();
            out.extend_from_slice(&(base.len() as u32).to_le_bytes());
            for cell in base.iter() {
                out.extend_from_slice(&cell.packed().to_le_bytes());
            }
            for level in sig.levels() {
                for &value in level {
                    out.extend_from_slice(&value.to_le_bytes());
                }
            }
        }
        out
    }
}

impl MinSigIndex {
    /// Persists the current snapshot of the index to `path`; see
    /// [`IndexSnapshot::save`].
    pub fn save(&self, path: &Path) -> Result<()> {
        self.snapshot.save(path)
    }

    /// Opens a previously [`save`](MinSigIndex::save)d index as a fresh
    /// mutable handle (epoch 0, build statistics describing the load rather
    /// than the original build); see [`IndexSnapshot::open`].
    pub fn open(path: &Path) -> Result<MinSigIndex> {
        let start = Instant::now();
        let snapshot = IndexSnapshot::open(path)?;
        let stats = IndexStats {
            num_entities: snapshot.sequences.len(),
            num_nodes: snapshot.tree.num_nodes(),
            index_bytes: snapshot.tree.size_bytes(),
            hash_evaluations: 0,
            build_time_us: start.elapsed().as_micros() as u64,
        };
        Ok(MinSigIndex { snapshot: Arc::new(snapshot), stats, epoch: 0 })
    }
}

/// Decoded `META` segment.
struct Meta {
    ticks_per_unit: u64,
    config: IndexConfig,
    resolved_range: u64,
    sp_height: u8,
    tree_levels: u8,
    num_entities: u64,
    num_nodes: u64,
    num_sp_units: u64,
}

impl Meta {
    fn decode(payload: &[u8]) -> Result<Meta> {
        let mut c = Cursor::new(payload);
        let ticks_per_unit = c.u64()?;
        let num_hash_functions = c.u32()?;
        let hash_seed = c.u64()?;
        let has_range = c.u8()?;
        let raw_range = c.u64()?;
        let hasher_mode = match c.u8()? {
            0 => HasherMode::Exhaustive,
            1 => HasherMode::PathMax,
            other => return Err(corrupt(&format!("unknown hasher mode {other}"))),
        };
        let resolved_range = c.u64()?;
        let sp_height = c.u8()?;
        let tree_levels = c.u8()?;
        let num_entities = c.u64()?;
        let num_nodes = c.u64()?;
        let num_sp_units = c.u64()?;
        c.expect_end().map_err(IndexError::from)?;
        if ticks_per_unit == 0 {
            return Err(corrupt("ticks_per_unit must be positive"));
        }
        if num_hash_functions == 0 {
            return Err(corrupt("num_hash_functions must be positive"));
        }
        if resolved_range < 2 {
            return Err(corrupt("resolved hash range must be at least 2"));
        }
        if sp_height == 0 || tree_levels != sp_height {
            return Err(corrupt(&format!(
                "hierarchy height {sp_height} and tree level count {tree_levels} are inconsistent"
            )));
        }
        let hash_range = match has_range {
            0 => None,
            1 => Some(raw_range),
            other => return Err(corrupt(&format!("invalid hash_range flag {other}"))),
        };
        let config = IndexConfig { num_hash_functions, hash_seed, hash_range, hasher_mode };
        config.validate()?;
        Ok(Meta {
            ticks_per_unit,
            config,
            resolved_range,
            sp_height,
            tree_levels,
            num_entities,
            num_nodes,
            num_sp_units,
        })
    }
}

/// Decodes the `SYN` segment, validating it against the `META` announcements
/// (the hot ids are checked against the loaded sequences afterwards).  The
/// recorded epoch is reset to 0, matching the handle's open semantics.
fn decode_synopsis(payload: &[u8], meta: &Meta) -> Result<Synopsis> {
    let mut c = Cursor::new(payload);
    let sketch_size = c.u64()? as usize;
    let num_levels = c.u32()? as usize;
    if num_levels != meta.tree_levels as usize {
        return Err(corrupt(&format!(
            "synopsis covers {num_levels} levels but the tree has {}",
            meta.tree_levels
        )));
    }
    let mut level_caps = Vec::with_capacity(num_levels);
    for _ in 0..num_levels {
        level_caps.push(c.u64()? as usize);
    }
    let num_entities = c.u64()?;
    if num_entities != meta.num_entities {
        return Err(corrupt(&format!(
            "synopsis summarises {num_entities} entities but META announces {}",
            meta.num_entities
        )));
    }
    let hot_len = c.u32()? as usize;
    if hot_len > sketch_size || hot_len as u64 > num_entities {
        return Err(corrupt(&format!(
            "synopsis sketch holds {hot_len} entities (sketch size {sketch_size}, \
             population {num_entities})"
        )));
    }
    let mut hot_entities = Vec::with_capacity(hot_len.min(1 << 20));
    for _ in 0..hot_len {
        hot_entities.push(EntityId(c.u64()?));
    }
    c.expect_end().map_err(IndexError::from)?;
    Ok(Synopsis::from_parts(0, sketch_size, level_caps, num_entities as usize, hot_entities))
}

fn decode_sp(meta: &Meta, payload: &[u8]) -> Result<trace_model::SpIndex> {
    if payload.len() as u64 != meta.num_sp_units * 4 {
        return Err(corrupt(&format!(
            "SP segment holds {} bytes for {} units",
            payload.len(),
            meta.num_sp_units
        )));
    }
    let mut builder = SpIndexBuilder::new(meta.sp_height);
    let mut c = Cursor::new(payload);
    for unit in 0..meta.num_sp_units as u32 {
        let parent = c.u32()?;
        let id = if parent == NO_PARENT {
            builder.add_top_unit()?
        } else {
            if parent >= unit {
                return Err(corrupt(&format!("unit {unit} lists later unit {parent} as parent")));
            }
            builder.add_child(parent)?
        };
        debug_assert_eq!(id, unit, "builder assigns dense ids in replay order");
    }
    Ok(builder.build()?)
}

fn encode_tree_chunk(nodes: &[Node]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(nodes.len() as u32).to_le_bytes());
    for node in nodes {
        out.push(node.depth);
        out.extend_from_slice(&node.routing_index.to_le_bytes());
        out.extend_from_slice(&node.routing_value.to_le_bytes());
        out.extend_from_slice(&(node.children.len() as u32).to_le_bytes());
        for (&routing_index, &child) in &node.children {
            out.extend_from_slice(&routing_index.to_le_bytes());
            out.extend_from_slice(&child.to_le_bytes());
        }
        out.extend_from_slice(&(node.entities.len() as u32).to_le_bytes());
        for entity in &node.entities {
            out.extend_from_slice(&entity.raw().to_le_bytes());
        }
    }
    out
}

fn decode_tree_chunk(payload: &[u8], meta: &Meta, nodes: &mut Vec<Node>) -> Result<()> {
    let mut c = Cursor::new(payload);
    let count = c.u32()? as usize;
    for _ in 0..count {
        if nodes.len() as u64 >= meta.num_nodes {
            return Err(corrupt("more tree nodes than META announced"));
        }
        let depth = c.u8()?;
        let routing_index = c.u32()?;
        let routing_value = c.u64()?;
        let num_children = c.u32()? as usize;
        let mut children = BTreeMap::new();
        for _ in 0..num_children {
            let key = c.u32()?;
            let child: NodeId = c.u32()?;
            if children.insert(key, child).is_some() {
                return Err(corrupt(&format!("duplicate child routing index {key}")));
            }
        }
        let num_entities = c.u32()? as usize;
        let mut entities = Vec::with_capacity(num_entities.min(1 << 20));
        for _ in 0..num_entities {
            entities.push(EntityId(c.u64()?));
        }
        nodes.push(Node { depth, routing_index, routing_value, children, entities });
    }
    c.expect_end().map_err(IndexError::from)
}

fn decode_entity_chunk(
    payload: &[u8],
    meta: &Meta,
    sp: &trace_model::SpIndex,
    sequences: &mut BTreeMap<EntityId, CellSetSequence>,
    signatures: &mut BTreeMap<EntityId, SignatureList>,
) -> Result<()> {
    let width = meta.config.num_hash_functions as usize;
    let levels = meta.tree_levels as usize;
    let mut c = Cursor::new(payload);
    let count = c.u32()? as usize;
    for _ in 0..count {
        if sequences.len() as u64 >= meta.num_entities {
            return Err(corrupt("more entities than META announced"));
        }
        let entity = EntityId(c.u64()?);
        let num_cells = c.u32()? as usize;
        let mut cells = Vec::with_capacity(num_cells.min(1 << 20));
        for _ in 0..num_cells {
            cells.push(StCell::from_packed(c.u64()?));
        }
        let base = CellSet::from_cells(cells);
        if base.len() != num_cells {
            return Err(corrupt(&format!("base cells of {entity} are not sorted-unique")));
        }
        let seq = CellSetSequence::from_base_cells(sp, &base)?;
        let mut sig_levels = Vec::with_capacity(levels);
        for _ in 0..levels {
            let mut level = Vec::with_capacity(width);
            for _ in 0..width {
                level.push(c.u64()?);
            }
            sig_levels.push(level);
        }
        let sig = SignatureList::from_levels(sig_levels);
        if sequences.insert(entity, seq).is_some() {
            return Err(corrupt(&format!("{entity} stored twice")));
        }
        signatures.insert(entity, sig);
    }
    c.expect_end().map_err(IndexError::from)
}

fn corrupt(msg: &str) -> IndexError {
    IndexError::from(SegmentError::Malformed(msg.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_model::{Period, PresenceInstance, SpIndex, TraceSet};

    fn sample_index(entities: u64) -> (SpIndex, TraceSet, MinSigIndex) {
        let sp = SpIndex::uniform(3, &[4, 4]).unwrap();
        let base = sp.base_units().to_vec();
        let mut traces = TraceSet::new(60);
        for e in 0..entities {
            for step in 0..5u64 {
                let unit = base[((e * 11 + step * 3) % base.len() as u64) as usize];
                let start = step * 240 + e % 7 * 30;
                traces.record(PresenceInstance::new(
                    EntityId(e),
                    unit,
                    Period::new(start, start + 60).unwrap(),
                ));
            }
        }
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(24)).unwrap();
        (sp, traces, index)
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("persist-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn save_open_round_trips_structure_and_answers() {
        let (sp, _traces, index) = sample_index(40);
        let path = temp_path("round-trip.msix");
        index.save(&path).unwrap();
        let reopened = MinSigIndex::open(&path).unwrap();

        assert_eq!(reopened.num_entities(), index.num_entities());
        assert_eq!(reopened.tree().num_nodes(), index.tree().num_nodes());
        assert_eq!(reopened.config(), index.config());
        assert_eq!(reopened.ticks_per_unit(), index.ticks_per_unit());
        assert_eq!(reopened.hasher().range(), index.hasher().range());
        assert_eq!(reopened.epoch(), 0);
        for entity in index.sequences().keys() {
            assert_eq!(reopened.sequence(*entity), index.sequence(*entity));
            assert_eq!(reopened.snapshot().signature(*entity), index.snapshot().signature(*entity));
        }

        let measure = trace_model::PaperAdm::default_for(sp.height() as usize);
        for query in [0u64, 7, 19, 33] {
            let (a, _) = index.top_k(EntityId(query), 5, &measure).unwrap();
            let (b, _) = reopened.top_k(EntityId(query), 5, &measure).unwrap();
            assert_eq!(a, b, "answers must be bit-identical after reload");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reload_preserves_post_removal_tree_state() {
        let (sp, _traces, mut index) = sample_index(20);
        index.remove_entity(EntityId(3)).unwrap();
        index.remove_entity(EntityId(12)).unwrap();
        let path = temp_path("post-removal.msix");
        index.save(&path).unwrap();
        let reopened = MinSigIndex::open(&path).unwrap();
        // Stale lower-bound routing values and empty leaves survive verbatim.
        assert_eq!(reopened.tree().num_nodes(), index.tree().num_nodes());
        assert_eq!(reopened.num_entities(), 18);
        assert!(!reopened.contains(EntityId(3)));
        let measure = trace_model::PaperAdm::default_for(sp.height() as usize);
        let (a, _) = index.top_k(EntityId(0), 4, &measure).unwrap();
        let (b, _) = reopened.top_k(EntityId(0), 4, &measure).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_index_round_trips() {
        let sp = SpIndex::uniform(2, &[2]).unwrap();
        let traces = TraceSet::new(60);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::default()).unwrap();
        let path = temp_path("empty.msix");
        index.save(&path).unwrap();
        let reopened = MinSigIndex::open(&path).unwrap();
        assert_eq!(reopened.num_entities(), 0);
        assert_eq!(reopened.tree().num_nodes(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_and_corruption_are_reported() {
        let (_sp, _traces, index) = sample_index(30);
        let path = temp_path("corrupt.msix");
        index.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();

        // Truncation at every interesting boundary.
        for cut in [0, 4, 8, bytes.len() / 2, bytes.len() - 5] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let err = MinSigIndex::open(&path).unwrap_err();
            assert!(
                matches!(err, IndexError::Corrupt(_)),
                "cut at {cut} gave {err:?} instead of Corrupt"
            );
        }

        // A flipped payload bit fails its segment checksum.
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(MinSigIndex::open(&path).unwrap_err(), IndexError::Corrupt(_)));

        // Wrong magic.
        let mut wrong = bytes.clone();
        wrong[0] = b'Z';
        std::fs::write(&path, &wrong).unwrap();
        assert!(matches!(MinSigIndex::open(&path).unwrap_err(), IndexError::Corrupt(_)));

        // The intact file still opens.
        std::fs::write(&path, &bytes).unwrap();
        MinSigIndex::open(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn synopsis_round_trips_including_custom_sketch_size() {
        let (_sp, _traces, mut index) = sample_index(30);
        index.set_synopsis_sketch_size(5);
        let path = temp_path("synopsis.msix");
        index.save(&path).unwrap();
        let reopened = MinSigIndex::open(&path).unwrap();
        assert_eq!(reopened.snapshot().synopsis(), index.snapshot().synopsis());
        assert_eq!(reopened.snapshot().synopsis().sketch_size(), 5);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn inconsistent_synopsis_segments_are_rejected() {
        let (_sp, _traces, index) = sample_index(20);
        let path = temp_path("bad-synopsis.msix");
        index.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();

        // Re-encode the file with a tampered SYN payload for each failure
        // mode: wrong entity count, wrong level count, unindexed hot id.
        let tamper = |edit: &dyn Fn(&mut Vec<u8>)| {
            let mut reader =
                segment::SegmentReader::new(bytes.as_slice(), INDEX_MAGIC, INDEX_VERSION).unwrap();
            let mut writer =
                segment::SegmentWriter::new(Vec::new(), INDEX_MAGIC, INDEX_VERSION).unwrap();
            while let Some((tag, mut payload)) = reader.next_segment().unwrap() {
                if tag == TAG_SYN {
                    edit(&mut payload);
                }
                writer.write_segment(tag, &payload).unwrap();
            }
            let tampered = writer.finish().unwrap();
            std::fs::write(&path, &tampered).unwrap();
            MinSigIndex::open(&path).unwrap_err()
        };

        let levels = index.tree().levels() as usize;
        // num_entities sits after sketch size (8), level count (4), caps.
        let count_offset = 12 + levels * 8;
        let err = tamper(&|p: &mut Vec<u8>| p[count_offset] ^= 0xFF);
        assert!(matches!(err, IndexError::Corrupt(_)), "wrong entity count: {err:?}");
        let err = tamper(&|p: &mut Vec<u8>| p[8] ^= 0x01);
        assert!(matches!(err, IndexError::Corrupt(_)), "wrong level count: {err:?}");
        // A tampered capacity cap (the one answer-relevant field: an
        // understated cap could make the planner skip a contributing shard)
        // must be refused, not planned against.
        let err = tamper(&|p: &mut Vec<u8>| p[12] ^= 0x3F);
        assert!(matches!(err, IndexError::Corrupt(_)), "wrong capacity cap: {err:?}");
        // First hot id: after count (8) + hot_len (4).
        let hot_offset = count_offset + 12;
        let err = tamper(&|p: &mut Vec<u8>| p[hot_offset] = 0xEE);
        assert!(matches!(err, IndexError::Corrupt(_)), "unindexed hot id: {err:?}");

        std::fs::write(&path, &bytes).unwrap();
        MinSigIndex::open(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wal_checkpoint_lsn_round_trips() {
        let (_sp, _traces, index) = sample_index(10);
        let path = temp_path("wal-lsn.msix");
        index.snapshot().save_with_wal_lsn(&path, 77).unwrap();
        let (_, lsn) = IndexSnapshot::open_with_lsn(&path).unwrap();
        assert_eq!(lsn, 77);
        // The LSN travels with the bytes form too.
        let bytes = index.snapshot().to_bytes_with_lsn(78).unwrap();
        let (_, lsn) = IndexSnapshot::open_from_bytes_with_lsn(&bytes).unwrap();
        assert_eq!(lsn, 78);
        // A plain (non-durable) save stamps LSN 0.
        index.save(&path).unwrap();
        let (_, lsn) = IndexSnapshot::open_with_lsn(&path).unwrap();
        assert_eq!(lsn, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let path = temp_path("does-not-exist.msix");
        assert!(matches!(MinSigIndex::open(&path).unwrap_err(), IndexError::Io(_)));
    }

    #[test]
    fn newer_format_versions_are_not_reported_as_corruption() {
        let path = temp_path("future-version.msix");
        segment::atomic_write(&path, INDEX_MAGIC, INDEX_VERSION + 1, |w| {
            w.write_segment(TAG_META, b"whatever a future build writes")?;
            Ok(())
        })
        .unwrap();
        let err = MinSigIndex::open(&path).unwrap_err();
        assert!(
            matches!(err, IndexError::UnsupportedVersion(_)),
            "a newer-format file must say 'upgrade', not 'corrupt': {err:?}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resident_bytes_exceeds_tree_only_accounting() {
        let (_sp, _traces, index) = sample_index(20);
        let snapshot = index.snapshot();
        assert!(
            snapshot.resident_bytes() > index.stats().index_bytes,
            "signatures + sequences must be counted on top of the tree"
        );
    }
}
