//! Sharding: hash-partitioning the entity population across independent
//! [`MinSigIndex`] shards with exact cross-shard top-k fan-out.
//!
//! One in-memory MinSigTree per process stops scaling once the population (or
//! the ingest rate) outgrows a single snapshot: every copy-on-write clone, every
//! flush and every save serialises on one handle.  A [`ShardedMinSigIndex`]
//! instead assigns each entity to one of `N` shards by a **stable hash of its
//! id** ([`shard_of`]) and keeps a completely independent `MinSigIndex` per
//! shard — independent snapshots, independent epochs, independent `MSIX` files —
//! so ingest, persistence and maintenance all parallelise per shard.
//!
//! ## The cost-based query planner
//!
//! Fanning out got cheap per node in PR 4, but every query still opened an
//! executor on **every** shard with a cold top-k threshold.  The planned
//! query paths (the defaults: [`ShardedSnapshot::top_k`],
//! [`top_k_with_options`](ShardedSnapshot::top_k_with_options), batches and
//! joins) first consult each shard's [`Synopsis`](crate::synopsis::Synopsis)
//! through [`crate::plan`]: the sketch candidates are scored exactly to
//! **seed** the bound with a provable k-th-degree lower bound, shards whose
//! capacity caps cannot beat the seed are **skipped** outright, admitted
//! shards are driven **most-promising-first**, and tiny shards are answered
//! by the flat exact **scan** instead of a tree search.  All four decisions
//! are answer-invariant (strict-inequality certificates, see the
//! [plan module docs](crate::plan)); [`ShardedSnapshot::explain`] returns
//! the [`QueryPlan`] without executing it, and
//! [`QueryStats::shards_skipped`] / [`QueryStats::threshold_seeded`] report
//! what planning did.  The explicit `*_with_scheduler` entry points stay
//! unplanned — the measurable PR 4 baseline; `*_with_planner` exposes every
//! knob.
//!
//! [`QueryStats::shards_skipped`]: crate::stats::QueryStats::shards_skipped
//! [`QueryStats::threshold_seeded`]: crate::stats::QueryStats::threshold_seeded
//!
//! ## The cooperative bound-sharing scheduler
//!
//! Shards *partition* the entity population, so for any query sequence the
//! global top-k is the top-k of the union of per-shard answer sets.  Every
//! query builds one **resumable executor** per shard
//! ([`IndexSnapshot::executor`]) and drives them as a cooperative scheduler:
//! worker threads (over rayon) repeatedly pull an executor from a shared
//! round-robin queue, advance its frontier by one quantum
//! ([`engine::Executor::step`]) and requeue it until every frontier is
//! exhausted.  All executors of one query share a single
//! [`SharedBound`] — an atomic, monotone max of every
//! shard's local k-th-best degree — so a shard that holds none of the strong
//! candidates learns the global bar from the shard that does and prunes its
//! subtrees immediately, recovering the pruning power of the unsharded tree.
//! The scheduler knobs (step quantum, publish policy, bound mode) live in
//! [`SchedulerConfig`]; [`BoundMode::Independent`] reproduces the
//! independent per-shard fan-out as a measurable baseline.
//!
//! ## Exactness of the fan-out
//!
//! Per-shard answers merge through the engine's shared ranking order
//! ([`engine::merge_top_k`]): *(degree descending, entity id ascending)*.
//! The merged answer is **fully bit-identical** to a single unsharded index
//! over the same traces — and to the brute-force sort-and-truncate — ties at
//! the k-th (boundary) degree included, for any shard count, any scheduling
//! interleaving and any scheduler knobs.  Exactness is provable in two
//! steps: the shared bound only ever holds local k-th thresholds, each of
//! which is at most the *global* k-th degree (a shard's candidates are a
//! subset of the population); and executors prune only subtrees whose upper
//! bound is **strictly below** the bound in force (tie-complete pruning, see
//! [`crate::engine`]), so every pruned entity is strictly outside the global
//! top-k.  The conformance suite (`tests/shard_conformance.rs`) proptests
//! this contract against both the unsharded index and the brute-force
//! oracle, over arbitrary step quanta.  (Each shard derives its own hash
//! range when the config leaves it data-driven; that is fine, because leaf
//! evaluation computes degrees exactly from the sequences — signatures only
//! ever *prune*.)
//!
//! ## Epoch vectors and snapshot consistency
//!
//! Each shard keeps its own epoch counter (one per mutation batch, exactly as
//! on the unsharded handle).  [`ShardedMinSigIndex::snapshot`] captures all
//! shard snapshots **and** the epoch vector under one `&self` borrow, so a
//! reader's [`ShardedSnapshot`] is always a consistent cross-shard set: a
//! mutation needs `&mut self` and therefore cannot interleave with the
//! capture.  Readers holding a `ShardedSnapshot` are isolated from all later
//! flushes, shard by shard, exactly like unsharded snapshot readers.
//!
//! ## Ingest routing
//!
//! [`IngestBuffer::flush_sharded`] (and the [`ShardedMinSigIndex::ingest_batch`]
//! shorthand) routes a buffered batch to the shards that own each record's
//! entity and flushes **one sub-batch per touched shard**, advancing each
//! touched shard's epoch by exactly 1.  The whole cross-shard batch is
//! validated before any shard is mutated, so a bad record leaves every shard
//! (and the buffer) untouched — the same all-or-nothing contract as the
//! unsharded flush.
//!
//! ## Durability (`MSHD` v1)
//!
//! [`ShardedMinSigIndex::save`] writes a directory: one standard `MSIX` file
//! per shard plus a checksummed manifest ([`SHARD_MANIFEST_FILE`], magic
//! [`SHARD_MANIFEST_MAGIC`]) recording the partitioner version, the shard
//! count and — per shard — the expected entity count and a content digest of
//! the shard file, binding every shard file to the one save that produced
//! it.  [`ShardedMinSigIndex::open`] verifies the manifest, each shard
//! file's digest, every shard file's own checksums, the per-shard entity
//! counts, that all shards agree on the hierarchy and discretisation, and
//! that **every loaded entity routes to the shard that holds it** — so a
//! renamed, swapped, truncated or bit-flipped shard file, or a crash midway
//! through re-saving over an existing directory, is always detected, never
//! silently mis-answered.

use crate::config::{BoundMode, IndexConfig, PlannerConfig, SchedulerConfig};
use crate::engine::{self, Bound, Executor, PrivateBound, SeededBound, SharedBound};
use crate::error::{IndexError, Result};
use crate::index::MinSigIndex;
use crate::ingest::IngestBuffer;
use crate::join::{collect_join_rows, JoinOptions, JoinRow, JoinStats};
use crate::plan::{self, BatchPlan, QueryPlan, ShardDecision};
use crate::query::{QueryOptions, TopKResult};
use crate::signature::SeededHashFamily;
use crate::snapshot::IndexSnapshot;
use crate::stats::{DegradationReport, QueryStats};
use rayon::prelude::*;
use std::collections::VecDeque;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use trace_model::{
    AssociationMeasure, CellSetSequence, DigitalTrace, EntityId, PresenceInstance, SpIndex,
    TraceSet,
};
use trace_storage::segment::{self, Cursor};

/// Magic bytes of a sharded-index manifest file ("MinSig sHarD").
pub const SHARD_MANIFEST_MAGIC: [u8; 4] = *b"MSHD";
/// Newest manifest format version this build reads and writes.  Version 3
/// directories hold `MSIX` version-3 shard files (which embed each shard's
/// WAL checkpoint LSN for the durable ingest path); version 2 directories
/// hold version-2 shard files (embedded planning synopses).  The manifest
/// payload layout is unchanged across all three versions, and older
/// directories still open — their shards fall back exactly as unsharded
/// `MSIX` files do.
pub const SHARD_MANIFEST_VERSION: u16 = 3;
/// File name of the manifest inside a sharded-index directory.
pub const SHARD_MANIFEST_FILE: &str = "manifest.mshd";
/// Version of the [`shard_of`] partitioning function recorded in the
/// manifest.  Bump it if the hash ever changes; `open` refuses a manifest
/// written under a different partitioner rather than silently mis-routing.
pub const PARTITION_VERSION: u32 = 1;

const TAG_MANIFEST: u32 = 1;

/// The stable partitioning function: which shard owns `entity` among
/// `num_shards`.
///
/// A SplitMix64 finalizer over the raw id, reduced modulo the shard count —
/// sequential ids (the common assignment scheme upstream) spread evenly
/// instead of striping.  The mapping is part of the on-disk contract
/// ([`PARTITION_VERSION`]): every build of this crate must route an entity to
/// the same shard, or a reopened sharded index would look up entities in the
/// wrong shard.
pub fn shard_of(entity: EntityId, num_shards: usize) -> usize {
    debug_assert!(num_shards > 0, "a sharded index has at least one shard");
    let mut z = entity.raw().wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) % num_shards as u64) as usize
}

/// A MinSigTree index hash-partitioned across `N` independent shards.
///
/// Mutations (`update_entity` / `upsert_entity` / `remove_entity` /
/// [`ingest_batch`](Self::ingest_batch)) route to the owning shard; queries
/// fan out across all shards and merge exactly.  See the
/// [module docs](crate::shard) for the exactness, epoch and durability
/// contracts.
///
/// ```
/// use minsig::shard::ShardedMinSigIndex;
/// use minsig::IndexConfig;
/// use trace_model::{DiceAdm, EntityId, Period, PresenceInstance, SpIndex, TraceSet};
///
/// let sp = SpIndex::uniform(2, &[2]).unwrap();
/// let base = sp.base_units().to_vec();
/// let mut traces = TraceSet::new(60);
/// for (e, unit) in [(0u64, base[0]), (1, base[0]), (2, base[3])] {
///     traces.record(PresenceInstance::new(EntityId(e), unit, Period::new(0, 120).unwrap()));
/// }
/// let sharded = ShardedMinSigIndex::build(&sp, &traces, IndexConfig::default(), 4).unwrap();
/// assert_eq!(sharded.num_shards(), 4);
/// assert_eq!(sharded.num_entities(), 3);
///
/// // Identical answers to an unsharded index over the same traces.
/// let (results, _) = sharded.top_k(EntityId(0), 1, &DiceAdm::uniform(2)).unwrap();
/// assert_eq!(results[0].entity, EntityId(1));
/// ```
#[derive(Debug)]
pub struct ShardedMinSigIndex {
    pub(crate) shards: Vec<MinSigIndex>,
}

/// One consistent cross-shard version of a [`ShardedMinSigIndex`]: all shard
/// snapshots plus the epoch vector, captured atomically under one `&self`
/// borrow.
///
/// Cheap to clone around (each shard contributes one `Arc` bump) and safe to
/// query from any number of threads.  All query entry points of the sharded
/// index are available directly on the snapshot; the handle methods are thin
/// delegates.
#[derive(Debug, Clone)]
pub struct ShardedSnapshot {
    shards: Vec<Arc<IndexSnapshot>>,
    epochs: Vec<u64>,
}

/// What one sharded ingest flush did across the shards.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardedIngestReport {
    /// Presence records applied by this flush.
    pub records: usize,
    /// Distinct entities whose signature / tree path was updated.
    pub entities_touched: usize,
    /// How many of the touched entities were new to their shard.
    pub entities_inserted: usize,
    /// Number of shards that received a non-empty sub-batch (each advanced
    /// its epoch by exactly 1).
    pub shards_touched: usize,
    /// The per-shard epoch vector after the flush.
    pub epochs: Vec<u64>,
    /// Wall-clock time of the whole routed flush, in microseconds.
    pub flush_time_us: u64,
}

impl ShardedMinSigIndex {
    /// Builds a sharded index: partitions the traces by [`shard_of`] and
    /// builds every shard's `MinSigIndex` in parallel over rayon.
    ///
    /// `num_shards` must be at least 1; a 1-shard index behaves exactly like
    /// (and answers bit-identically to) an unsharded [`MinSigIndex`].
    pub fn build(
        sp: &SpIndex,
        traces: &TraceSet,
        config: IndexConfig,
        num_shards: usize,
    ) -> Result<Self> {
        if num_shards == 0 {
            return Err(IndexError::InvalidConfig("num_shards must be at least 1".into()));
        }
        config.validate()?;
        let mut parts: Vec<TraceSet> =
            (0..num_shards).map(|_| TraceSet::new(traces.ticks_per_unit())).collect();
        for (entity, trace) in traces.iter() {
            parts[shard_of(entity, num_shards)].insert_trace(entity, trace.clone());
        }
        let shards: Vec<Result<MinSigIndex>> =
            parts.par_iter().map(|part| MinSigIndex::build(sp, part, config)).collect();
        Ok(ShardedMinSigIndex { shards: shards.into_iter().collect::<Result<_>>()? })
    }

    /// Wraps already-built shards (used by `open`); the caller guarantees the
    /// entities inside each shard route to it.
    fn from_shards(shards: Vec<MinSigIndex>) -> Self {
        debug_assert!(!shards.is_empty());
        ShardedMinSigIndex { shards }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one shard's handle (diagnostics, tests, stats).
    pub fn shard(&self, shard: usize) -> &MinSigIndex {
        &self.shards[shard]
    }

    /// The shard owning `entity` under this index's shard count.
    pub fn shard_of_entity(&self, entity: EntityId) -> usize {
        shard_of(entity, self.shards.len())
    }

    /// Total number of indexed entities across all shards.
    pub fn num_entities(&self) -> usize {
        self.shards.iter().map(|s| s.num_entities()).sum()
    }

    /// True when the entity is indexed (in its home shard — an entity can
    /// never legally live anywhere else).
    pub fn contains(&self, entity: EntityId) -> bool {
        self.shards[self.shard_of_entity(entity)].contains(entity)
    }

    /// The materialised sequence of an indexed entity.
    pub fn sequence(&self, entity: EntityId) -> Option<&CellSetSequence> {
        self.shards[self.shard_of_entity(entity)].sequence(entity)
    }

    /// The configuration the shards were built with (shared across shards by
    /// [`build`](Self::build); shards opened from disk carry it per `MSIX`
    /// file).
    pub fn config(&self) -> IndexConfig {
        self.shards[0].config()
    }

    /// The per-shard epoch vector: element `i` counts the mutation batches
    /// shard `i` has applied since this handle was built or opened.
    pub fn epochs(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.epoch()).collect()
    }

    /// Total mutation batches applied across all shards (the sum of
    /// [`epochs`](Self::epochs)); a convenient single staleness number.
    pub fn epoch(&self) -> u64 {
        self.shards.iter().map(|s| s.epoch()).sum()
    }

    /// Captures one consistent cross-shard snapshot: every shard's current
    /// `Arc<IndexSnapshot>` plus the epoch vector, atomically with respect to
    /// mutations (which require `&mut self`).  Readers holding the snapshot
    /// never observe a torn epoch set or any later flush.
    pub fn snapshot(&self) -> ShardedSnapshot {
        ShardedSnapshot {
            shards: self.shards.iter().map(|s| s.snapshot()).collect(),
            epochs: self.epochs(),
        }
    }

    /// Replaces an **existing** entity's trace, routed to its home shard.
    ///
    /// Returns [`IndexError::UnknownEntity`] when the entity is not indexed —
    /// the routing is by [`shard_of`], so "not in its home shard" *is* "not in
    /// the index"; no other shard is consulted (or could legally hold it).
    /// Use [`upsert_entity`](Self::upsert_entity) for insert-or-replace.
    pub fn update_entity(&mut self, entity: EntityId, trace: &DigitalTrace) -> Result<()> {
        let home = self.shard_of_entity(entity);
        self.shards[home].update_entity(entity, trace)
    }

    /// Inserts a new entity into — or replaces an existing entity's trace in —
    /// its home shard; returns `true` when the entity was newly inserted.
    pub fn upsert_entity(&mut self, entity: EntityId, trace: &DigitalTrace) -> Result<bool> {
        let home = self.shard_of_entity(entity);
        self.shards[home].upsert_entity(entity, trace)
    }

    /// Removes an entity from its home shard.
    ///
    /// Returns [`IndexError::UnknownEntity`] when the entity is not indexed,
    /// exactly like the unsharded handle — a misrouted or repeated removal
    /// cannot silently succeed on some other shard.
    pub fn remove_entity(&mut self, entity: EntityId) -> Result<()> {
        let home = self.shard_of_entity(entity);
        self.shards[home].remove_entity(entity)
    }

    /// Applies a batch of presence records, routed per shard, in one
    /// validated flush — shorthand for filling an [`IngestBuffer`] and calling
    /// [`flush_sharded`](IngestBuffer::flush_sharded).  On a validation error
    /// no shard is touched, but the records are dropped with the temporary
    /// buffer; manage an `IngestBuffer` yourself to retry a repaired batch.
    pub fn ingest_batch<I: IntoIterator<Item = PresenceInstance>>(
        &mut self,
        records: I,
    ) -> Result<ShardedIngestReport> {
        let mut buffer: IngestBuffer = records.into_iter().collect();
        buffer.flush_sharded(self)
    }

    /// Answers a top-k query with default options; see
    /// [`ShardedSnapshot::top_k`].
    pub fn top_k<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
    ) -> Result<(Vec<TopKResult>, QueryStats)> {
        self.snapshot().top_k(query, k, measure)
    }

    /// Answers a top-k query with explicit options; see
    /// [`ShardedSnapshot::top_k_with_options`].
    pub fn top_k_with_options<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
        options: QueryOptions,
    ) -> Result<(Vec<TopKResult>, QueryStats)> {
        self.snapshot().top_k_with_options(query, k, measure, options)
    }

    /// Answers a top-k query with explicit options and scheduler knobs; see
    /// [`ShardedSnapshot::top_k_with_scheduler`].
    pub fn top_k_with_scheduler<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
        options: QueryOptions,
        scheduler: SchedulerConfig,
    ) -> Result<(Vec<TopKResult>, QueryStats)> {
        self.snapshot().top_k_with_scheduler(query, k, measure, options, scheduler)
    }

    /// Answers a top-k query with every knob explicit; see
    /// [`ShardedSnapshot::top_k_with_planner`].
    pub fn top_k_with_planner<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
        options: QueryOptions,
        scheduler: SchedulerConfig,
        planner: PlannerConfig,
    ) -> Result<(Vec<TopKResult>, QueryStats)> {
        self.snapshot().top_k_with_planner(query, k, measure, options, scheduler, planner)
    }

    /// Builds — without executing — the plan of one query; see
    /// [`ShardedSnapshot::explain`].
    pub fn explain<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
        planner: PlannerConfig,
    ) -> Result<QueryPlan> {
        self.snapshot().explain(query, k, measure, planner)
    }

    /// Rebuilds every shard's planning synopsis with sketch size `m`; see
    /// [`MinSigIndex::set_synopsis_sketch_size`].
    pub fn set_synopsis_sketch_size(&mut self, m: usize) {
        for shard in &mut self.shards {
            shard.set_synopsis_sketch_size(m);
        }
    }

    /// Answers every query of a batch; see [`ShardedSnapshot::top_k_batch`].
    pub fn top_k_batch<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        queries: &[EntityId],
        k: usize,
        measure: &M,
    ) -> Result<Vec<(Vec<TopKResult>, QueryStats)>> {
        self.snapshot().top_k_batch(queries, k, measure)
    }

    /// [`top_k_batch`](Self::top_k_batch) with explicit query options.
    pub fn top_k_batch_with_options<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        queries: &[EntityId],
        k: usize,
        measure: &M,
        options: QueryOptions,
    ) -> Result<Vec<(Vec<TopKResult>, QueryStats)>> {
        self.snapshot().top_k_batch_with_options(queries, k, measure, options)
    }

    /// Answers the top-k query for every probe entity; see
    /// [`ShardedSnapshot::top_k_join`].
    pub fn top_k_join<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        probes: &[EntityId],
        measure: &M,
        options: JoinOptions,
    ) -> Result<(Vec<JoinRow>, JoinStats)> {
        self.snapshot().top_k_join(probes, measure, options)
    }

    /// Ground-truth brute force over all shards' sequences; see
    /// [`ShardedSnapshot::brute_force`].
    pub fn brute_force<M: AssociationMeasure + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
    ) -> Result<Vec<TopKResult>> {
        self.snapshot().brute_force(query, k, measure)
    }
}

impl ShardedSnapshot {
    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one shard's snapshot.
    pub fn shard(&self, shard: usize) -> &Arc<IndexSnapshot> {
        &self.shards[shard]
    }

    /// The per-shard epoch vector as of the capture — one consistent set,
    /// never torn across a flush (capture happens under one `&self` borrow of
    /// the handle).
    pub fn epochs(&self) -> &[u64] {
        &self.epochs
    }

    /// Total number of indexed entities across all shards.
    pub fn num_entities(&self) -> usize {
        self.shards.iter().map(|s| s.num_entities()).sum()
    }

    /// True when the entity is indexed in its home shard.
    pub fn contains(&self, entity: EntityId) -> bool {
        self.shards[shard_of(entity, self.shards.len())].contains(entity)
    }

    /// The materialised sequence of an indexed entity.
    pub fn sequence(&self, entity: EntityId) -> Option<&CellSetSequence> {
        self.shards[shard_of(entity, self.shards.len())].sequence(entity)
    }

    /// Answers a top-k query for an indexed entity with default options,
    /// fanning out across all shards in parallel and merging exactly.
    pub fn top_k<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
    ) -> Result<(Vec<TopKResult>, QueryStats)> {
        self.top_k_with_options(query, k, measure, QueryOptions::default())
    }

    /// Answers a top-k query for an indexed entity with explicit options,
    /// the default cooperative [`SchedulerConfig`] and the default
    /// [`PlannerConfig`] (planned: seeded, shard-skipping, scan-picking).
    ///
    /// The query entity is looked up in its home shard only
    /// ([`IndexError::UnknownQueryEntity`] when absent); its sequence is then
    /// probed against every shard **the planner admits** through
    /// cooperatively scheduled per-shard executors sharing one seeded global
    /// bound, and the per-shard exact answers are merged under the engine's
    /// total order.  The merged results are **fully bit-identical** to the
    /// unsharded answer — degree vector, entities and ordering, boundary
    /// ties included (see the [module docs](crate::shard) for the proof
    /// sketch); the stats sum the per-shard search work and report what
    /// planning did ([`QueryStats::shards_skipped`],
    /// [`QueryStats::threshold_seeded`]).
    ///
    /// [`QueryStats::shards_skipped`]: crate::stats::QueryStats::shards_skipped
    /// [`QueryStats::threshold_seeded`]: crate::stats::QueryStats::threshold_seeded
    pub fn top_k_with_options<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
        options: QueryOptions,
    ) -> Result<(Vec<TopKResult>, QueryStats)> {
        self.top_k_with_planner(
            query,
            k,
            measure,
            options,
            SchedulerConfig::default(),
            PlannerConfig::default(),
        )
    }

    /// [`top_k_with_options`](Self::top_k_with_options) with explicit
    /// scheduler knobs (step quantum, bound publish policy, bound mode) and
    /// the planner **disabled** — the measurable PR 4 baseline: every shard
    /// opened, cold thresholds, tree search everywhere.
    ///
    /// Neither the scheduler nor the planner can change any answer — only
    /// the work counters of the returned [`QueryStats`] and the wall-clock
    /// time; pass [`SchedulerConfig::independent`] to also drop cross-shard
    /// bound sharing, and [`top_k_with_planner`](Self::top_k_with_planner)
    /// to combine explicit scheduler and planner knobs.
    pub fn top_k_with_scheduler<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
        options: QueryOptions,
        scheduler: SchedulerConfig,
    ) -> Result<(Vec<TopKResult>, QueryStats)> {
        self.top_k_with_planner(query, k, measure, options, scheduler, PlannerConfig::disabled())
    }

    /// [`top_k_with_options`](Self::top_k_with_options) with every knob
    /// explicit: scheduler (step quantum, publish policy, bound mode) and
    /// planner (threshold seeding, shard skipping, scan cutoff).
    pub fn top_k_with_planner<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
        options: QueryOptions,
        scheduler: SchedulerConfig,
        planner: PlannerConfig,
    ) -> Result<(Vec<TopKResult>, QueryStats)> {
        let seq = self.sequence(query).ok_or(IndexError::UnknownQueryEntity(query.raw()))?;
        self.fan_out(seq, Some(query), k, measure, options, true, scheduler, planner)
    }

    /// Builds — without executing — the [`QueryPlan`] the planned query
    /// paths would run for `query` under `planner`: the seeded threshold,
    /// each shard's synopsis upper bound, and the skip / scan / tree-search
    /// verdicts in driving order.  [`QueryPlan::explain`] renders it for
    /// humans.
    pub fn explain<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
        planner: PlannerConfig,
    ) -> Result<QueryPlan> {
        let seq = self.sequence(query).ok_or(IndexError::UnknownQueryEntity(query.raw()))?;
        self.check_query_levels(seq)?;
        Ok(plan::plan_query(&self.shards, seq, Some(query), k, measure, &planner))
    }

    /// Answers a top-k query for an arbitrary (possibly external) query
    /// sequence across all shards, planned with the defaults.
    pub fn top_k_for_sequence<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        query: &CellSetSequence,
        exclude: Option<EntityId>,
        k: usize,
        measure: &M,
        options: QueryOptions,
    ) -> Result<(Vec<TopKResult>, QueryStats)> {
        self.fan_out(
            query,
            exclude,
            k,
            measure,
            options,
            true,
            SchedulerConfig::default(),
            PlannerConfig::default(),
        )
    }

    /// Answers the top-k query for every query entity of a batch, in
    /// parallel, returning per-query `(results, stats)` pairs **in input
    /// order** — the same contract as [`IndexSnapshot::top_k_batch`]: the
    /// first unknown query entity (in input order) fails the whole batch.
    pub fn top_k_batch<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        queries: &[EntityId],
        k: usize,
        measure: &M,
    ) -> Result<Vec<(Vec<TopKResult>, QueryStats)>> {
        self.top_k_batch_with_options(queries, k, measure, QueryOptions::default())
    }

    /// [`top_k_batch`](Self::top_k_batch) with explicit query options
    /// (planned with the defaults, like the single-query path).
    pub fn top_k_batch_with_options<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        queries: &[EntityId],
        k: usize,
        measure: &M,
        options: QueryOptions,
    ) -> Result<Vec<(Vec<TopKResult>, QueryStats)>> {
        self.top_k_batch_with_planner(
            queries,
            k,
            measure,
            options,
            SchedulerConfig::default(),
            PlannerConfig::default(),
        )
    }

    /// [`top_k_batch`](Self::top_k_batch) with explicit query options and
    /// scheduler knobs, planner disabled (the unplanned baseline, mirroring
    /// [`top_k_with_scheduler`](Self::top_k_with_scheduler)).
    pub fn top_k_batch_with_scheduler<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        queries: &[EntityId],
        k: usize,
        measure: &M,
        options: QueryOptions,
        scheduler: SchedulerConfig,
    ) -> Result<Vec<(Vec<TopKResult>, QueryStats)>> {
        self.top_k_batch_with_planner(
            queries,
            k,
            measure,
            options,
            scheduler,
            PlannerConfig::disabled(),
        )
    }

    /// [`top_k_batch`](Self::top_k_batch) with every knob explicit.
    ///
    /// The batch is **planned once** ([`plan_batch`](Self::plan_batch)):
    /// per-shard sketch positions are resolved against the arenas a single
    /// time and reused by every query's seeding pass, and the resulting
    /// per-query plans are grouped by admitted-shard footprint.  Per-query
    /// plans — and therefore answers — are identical to per-query planning
    /// (`tests/deadline_conformance.rs` asserts bitwise equality); only the
    /// planning cost is amortized.  Each query's reported
    /// [`QueryStats::planning_us`] is its amortized share
    /// (`total / batch size`, integer division).
    ///
    /// Execution parallelism is over the *queries* (the batch is the wider
    /// axis); each query's admitted per-shard executors are interleaved
    /// sequentially on its worker — still cooperatively, sharing one seeded
    /// bound per query — to avoid nested thread fan-out.  Results are
    /// identical either way.  With a latency budget set, each query's
    /// deadline is measured from its own execution start (the shared
    /// planning cost is amortized, not charged per query).
    pub fn top_k_batch_with_planner<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        queries: &[EntityId],
        k: usize,
        measure: &M,
        options: QueryOptions,
        scheduler: SchedulerConfig,
        planner: PlannerConfig,
    ) -> Result<Vec<(Vec<TopKResult>, QueryStats)>> {
        scheduler.validate()?;
        planner.validate()?;
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        // Resolve sequentially so the *first* unknown entity (in input
        // order) fails the batch, matching the unsharded contract.
        let mut seqs: Vec<&CellSetSequence> = Vec::with_capacity(queries.len());
        for &query in queries {
            let seq = self.sequence(query).ok_or(IndexError::UnknownQueryEntity(query.raw()))?;
            self.check_query_levels(seq)?;
            seqs.push(seq);
        }
        let pairs: Vec<(&CellSetSequence, Option<EntityId>)> =
            seqs.iter().zip(queries).map(|(&seq, &query)| (seq, Some(query))).collect();
        let batch = plan::plan_batch(&self.shards, &pairs, k, measure, &planner);
        let amortized_planning_us = batch.planning_us / queries.len() as u64;
        let indices: Vec<usize> = (0..queries.len()).collect();
        let answers: Vec<Result<(Vec<TopKResult>, QueryStats)>> = indices
            .par_iter()
            .map(|&i| {
                self.execute_plan(
                    &batch.plans[i],
                    seqs[i],
                    Some(queries[i]),
                    k,
                    measure,
                    options,
                    false,
                    scheduler,
                    Instant::now(),
                    amortized_planning_us,
                )
            })
            .collect();
        answers.into_iter().collect()
    }

    /// Builds — without executing — the [`BatchPlan`] that
    /// [`top_k_batch_with_planner`](Self::top_k_batch_with_planner) would
    /// run: one [`QueryPlan`] per query (bitwise identical to per-query
    /// [`explain`](Self::explain)) plus the footprint grouping.  The first
    /// unknown query entity fails the whole batch, like the execution path.
    pub fn plan_batch<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        queries: &[EntityId],
        k: usize,
        measure: &M,
        planner: PlannerConfig,
    ) -> Result<BatchPlan> {
        planner.validate()?;
        let mut pairs: Vec<(&CellSetSequence, Option<EntityId>)> =
            Vec::with_capacity(queries.len());
        for &query in queries {
            let seq = self.sequence(query).ok_or(IndexError::UnknownQueryEntity(query.raw()))?;
            self.check_query_levels(seq)?;
            pairs.push((seq, Some(query)));
        }
        Ok(plan::plan_batch(&self.shards, &pairs, k, measure, &planner))
    }

    /// Renders [`plan_batch`](Self::plan_batch) for humans: the footprint
    /// groups, their member queries, and each group's shared shard skeleton.
    pub fn explain_batch<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        queries: &[EntityId],
        k: usize,
        measure: &M,
        planner: PlannerConfig,
    ) -> Result<String> {
        Ok(self.plan_batch(queries, k, measure, planner)?.explain())
    }

    /// Answers the top-k query for every probe entity, optionally in
    /// parallel, with the same skip/ordering semantics as
    /// [`IndexSnapshot::top_k_join`]: unindexed probes are counted in
    /// [`JoinStats::skipped`], output preserves probe order, and sequential
    /// and parallel evaluation return identical rows.
    pub fn top_k_join<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        probes: &[EntityId],
        measure: &M,
        options: JoinOptions,
    ) -> Result<(Vec<JoinRow>, JoinStats)> {
        let rows: Vec<Option<JoinRow>> = if options.threads <= 1 || probes.len() <= 1 {
            probes.iter().map(|&probe| self.join_one(probe, measure, options)).collect()
        } else {
            probes.par_iter().map(|&probe| self.join_one(probe, measure, options)).collect()
        };
        Ok(collect_join_rows(rows))
    }

    fn join_one<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        probe: EntityId,
        measure: &M,
        options: JoinOptions,
    ) -> Option<JoinRow> {
        let seq = self.sequence(probe)?;
        let scheduler = SchedulerConfig::default();
        let planner = PlannerConfig::default();
        match self.fan_out(
            seq,
            Some(probe),
            options.k,
            measure,
            options.query,
            false,
            scheduler,
            planner,
        ) {
            Ok((matches, stats)) => Some(JoinRow { probe, matches, stats }),
            Err(_) => None,
        }
    }

    /// Ground-truth brute force over all shards' sequences, merged under the
    /// shared ranking order — the sharded oracle used by conformance tests.
    pub fn brute_force<M: AssociationMeasure + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
    ) -> Result<Vec<TopKResult>> {
        let seq = self.sequence(query).ok_or(IndexError::UnknownQueryEntity(query.raw()))?;
        let view = crate::kernel::QueryView::new(seq);
        let mut dispatch = crate::stats::KernelDispatch::default();
        let parts = self
            .shards
            .iter()
            .map(|shard| shard.arena().scan_top_k(&view, Some(query), k, measure, &mut dispatch).0)
            .collect::<Vec<_>>();
        Ok(engine::merge_top_k(k, parts))
    }

    /// The shard snapshots in shard order (what the planner and the paged
    /// fan-out iterate).
    pub(crate) fn shard_snapshots(&self) -> &[Arc<IndexSnapshot>] {
        &self.shards
    }

    /// Rejects query sequences whose level count does not match the shards'
    /// trees — up front, so a plan that scans or skips every shard reports
    /// the same [`IndexError::LevelMismatch`] the executor constructor
    /// would.
    pub(crate) fn check_query_levels(&self, query: &CellSetSequence) -> Result<()> {
        let index_levels = self.shards[0].tree().levels();
        if query.num_levels() != index_levels as usize {
            return Err(IndexError::LevelMismatch {
                index_levels,
                query_levels: query.num_levels() as u8,
            });
        }
        Ok(())
    }

    /// The planned cooperative cross-shard fan-out and exact merge shared by
    /// every query path: plan first (seed, skip, order, pick access paths),
    /// scan the tiny admitted shards, then interleave one resumable executor
    /// per admitted tree shard in quanta against one seeded query-global
    /// bound.
    #[allow(clippy::too_many_arguments)]
    fn fan_out<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        query: &CellSetSequence,
        exclude: Option<EntityId>,
        k: usize,
        measure: &M,
        options: QueryOptions,
        parallel: bool,
        scheduler: SchedulerConfig,
        planner: PlannerConfig,
    ) -> Result<(Vec<TopKResult>, QueryStats)> {
        scheduler.validate()?;
        planner.validate()?;
        let start = Instant::now();
        self.check_query_levels(query)?;
        let plan = plan::plan_query(&self.shards, query, exclude, k, measure, &planner);
        let planning_us = start.elapsed().as_micros() as u64;
        self.execute_plan(
            &plan,
            query,
            exclude,
            k,
            measure,
            options,
            parallel,
            scheduler,
            start,
            planning_us,
        )
    }

    /// Executes an already-built [`QueryPlan`]: the cooperative exact drive
    /// when no latency budget is set (byte-for-byte the pre-budget fan-out),
    /// or the sequential deadline-checked drive when one is.  `start` is the
    /// instant the per-query latency budget is measured from — for the
    /// single-query path that is *before* planning (planning time spends
    /// budget, matching the cost model), for the batch path it is the
    /// query's own execution start (the batch's shared planning cost is
    /// amortized, not charged per query).
    #[allow(clippy::too_many_arguments)]
    fn execute_plan<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        plan: &QueryPlan,
        query: &CellSetSequence,
        exclude: Option<EntityId>,
        k: usize,
        measure: &M,
        options: QueryOptions,
        parallel: bool,
        scheduler: SchedulerConfig,
        start: Instant,
        planning_us: u64,
    ) -> Result<(Vec<TopKResult>, QueryStats)> {
        let mut stats = QueryStats { k, planning_us, ..QueryStats::default() };
        // Seeding scored real candidates exactly: charge them as checked
        // work, and count skipped shards' populations toward |E| so pruning
        // effectiveness stays comparable with unplanned runs.
        stats.entities_checked += plan.seed_candidates;
        stats.shards_skipped = plan.shards_skipped();
        stats.threshold_seeded = plan.seeded();
        for shard_plan in &plan.shards {
            if shard_plan.decision == ShardDecision::Skip {
                stats.total_entities += shard_plan.entities;
            }
        }

        if plan.planner.latency_budget_us.is_some() {
            return self.execute_plan_deadline(
                plan, query, exclude, k, measure, options, scheduler, start, stats,
            );
        }

        let use_shared = scheduler.bound_mode == BoundMode::Shared;
        let shared = SharedBound::new();
        if use_shared && plan.seeded() {
            shared.publish(plan.seed);
        }

        // Scan shards first: their exact per-shard answers are cheap, and
        // each one's local k-th degree is ≤ the global k-th degree, so it
        // can legally raise the shared bound before any tree executor runs.
        let scan_view = crate::kernel::QueryView::new(query);
        let mut parts: Vec<Vec<TopKResult>> = Vec::with_capacity(plan.shards.len());
        for shard_plan in plan.admitted().filter(|p| p.decision == ShardDecision::Scan) {
            let shard = &self.shards[shard_plan.shard];
            let (results, checked) = shard.arena().scan_top_k(
                &scan_view,
                exclude,
                k,
                measure,
                &mut stats.kernel_dispatch,
            );
            stats.total_entities += shard.num_entities();
            stats.entities_checked += checked;
            if use_shared && k > 0 && results.len() >= k {
                shared.publish(results[k - 1].degree);
            }
            parts.push(results);
        }

        // Tree shards in plan order: most promising first, so the executor
        // most likely to raise the bound is driven before the long tail.
        let mut executors: Vec<Executor<'_, SeededHashFamily, crate::kernel::ArenaSource<'_>, M>> =
            Vec::with_capacity(plan.shards.len());
        for shard_plan in plan.admitted().filter(|p| p.decision == ShardDecision::TreeSearch) {
            executors.push(
                self.shards[shard_plan.shard]
                    .executor(query, exclude, k, measure, options)?
                    .with_publish_policy(scheduler.publish_policy),
            );
        }
        // A single unseeded executor can only share a bound with itself; its
        // local threshold already carries the same information, so skip the
        // atomic churn (1-shard cooperative == 1-shard independent, exactly).
        // With a seed (or scan-published thresholds) in the shared bound,
        // even a lone executor must prune against it.
        if use_shared && (executors.len() > 1 || shared.current() > f64::NEG_INFINITY) {
            drive_cooperatively(&mut executors, &shared, parallel, scheduler.step_quantum);
        } else if !use_shared && plan.seeded() {
            // Independent mode still profits from the planner's seed — a
            // fixed bound that shares nothing between shards.
            let seeded = SeededBound::new(plan.seed);
            drive_cooperatively(&mut executors, &seeded, parallel, scheduler.step_quantum);
        } else {
            drive_cooperatively(&mut executors, &PrivateBound, parallel, scheduler.step_quantum);
        }

        for executor in executors {
            // Kernel accounting lives on the source (the executor's stats
            // only count frontier work); drain it before `finish` consumes
            // the executor.
            stats.kernel_dispatch.absorb(executor.source().take_dispatch());
            let (results, executor_stats) = executor.finish();
            stats.absorb_work(&executor_stats);
            parts.push(results);
        }
        let results = engine::merge_top_k(k, parts);
        stats.query_time_us = start.elapsed().as_micros() as u64;
        Ok((results, stats))
    }

    /// The deadline-checked execution of a budgeted plan.
    ///
    /// Admitted shards are driven **sequentially in plan order** (most
    /// promising first), so when the deadline trips the work already spent
    /// went to the shards most likely to hold the answer.  Per shard:
    ///
    /// * planned [`ShardDecision::ApproximateScan`] verdicts run the
    ///   deterministic sampled scan;
    /// * exact verdicts whose turn comes *after* the deadline are downgraded
    ///   to the sampled scan at the shard's recall-floor rate;
    /// * a tree search caught mid-flight is abandoned (its work counters are
    ///   kept) and the shard re-answered by the sampled scan — unless the
    ///   recall floor demands rate 1.0, in which case the shard ignores the
    ///   deadline and stays exact (the floor is the hard constraint, the
    ///   budget best-effort).
    ///
    /// Every sampled shard is recorded in the [`DegradationReport`]; when no
    /// shard ends up sampled the report is omitted, `recall_estimate` stays
    /// 1.0, and the answer is bitwise identical to the unbudgeted drive
    /// (exact answers are schedule-independent, so the sequential order
    /// changes nothing).
    #[allow(clippy::too_many_arguments)]
    fn execute_plan_deadline<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        plan: &QueryPlan,
        query: &CellSetSequence,
        exclude: Option<EntityId>,
        k: usize,
        measure: &M,
        options: QueryOptions,
        scheduler: SchedulerConfig,
        start: Instant,
        mut stats: QueryStats,
    ) -> Result<(Vec<TopKResult>, QueryStats)> {
        let deadline = plan
            .planner
            .latency_budget_us
            .and_then(|us| start.checked_add(Duration::from_micros(us)));
        let use_shared = scheduler.bound_mode == BoundMode::Shared;
        let shared = SharedBound::new();
        if plan.seeded() {
            shared.publish(plan.seed);
        }
        let seeded = SeededBound::new(plan.seed);
        let mut report = DegradationReport::default();
        let mut parts: Vec<Vec<TopKResult>> = Vec::with_capacity(plan.shards.len());
        if use_shared {
            self.drive_deadline(
                plan,
                query,
                exclude,
                k,
                measure,
                options,
                scheduler,
                &shared,
                Some(&shared),
                deadline,
                &mut stats,
                &mut report,
                &mut parts,
            )?;
        } else if plan.seeded() {
            // Independent mode still profits from the seed as a fixed bound.
            self.drive_deadline(
                plan,
                query,
                exclude,
                k,
                measure,
                options,
                scheduler,
                &seeded,
                None,
                deadline,
                &mut stats,
                &mut report,
                &mut parts,
            )?;
        } else {
            self.drive_deadline(
                plan,
                query,
                exclude,
                k,
                measure,
                options,
                scheduler,
                &PrivateBound,
                None,
                deadline,
                &mut stats,
                &mut report,
                &mut parts,
            )?;
        }
        if report.shards_approximate() > 0 {
            stats.degradation = Some(report);
        }
        let results = engine::merge_top_k(k, parts);
        stats.query_time_us = start.elapsed().as_micros() as u64;
        Ok((results, stats))
    }

    /// Sequential plan-order drive under one bound with per-shard deadline
    /// checks — the loop behind
    /// [`execute_plan_deadline`](Self::execute_plan_deadline).
    #[allow(clippy::too_many_arguments)]
    fn drive_deadline<M, B>(
        &self,
        plan: &QueryPlan,
        query: &CellSetSequence,
        exclude: Option<EntityId>,
        k: usize,
        measure: &M,
        options: QueryOptions,
        scheduler: SchedulerConfig,
        bound: &B,
        shared: Option<&SharedBound>,
        deadline: Option<Instant>,
        stats: &mut QueryStats,
        report: &mut DegradationReport,
        parts: &mut Vec<Vec<TopKResult>>,
    ) -> Result<()>
    where
        M: AssociationMeasure + Sync + ?Sized,
        B: Bound + ?Sized,
    {
        let scan_view = crate::kernel::QueryView::new(query);
        for shard_plan in plan.admitted() {
            let shard = &self.shards[shard_plan.shard];
            let expired = deadline.is_some_and(|d| Instant::now() >= d);
            match shard_plan.decision {
                ShardDecision::Skip => unreachable!("admitted() filters skips"),
                ShardDecision::ApproximateScan { rate } => {
                    self.sampled_scan_shard(
                        shard_plan.shard,
                        query,
                        exclude,
                        k,
                        measure,
                        rate,
                        true,
                        false,
                        stats,
                        report,
                        shared,
                        parts,
                    );
                }
                ShardDecision::Scan => {
                    let floor_rate =
                        shard.synopsis().min_rate_for_recall(plan.planner.recall_floor);
                    if expired && floor_rate < 1.0 {
                        report.deadline_exceeded = true;
                        self.sampled_scan_shard(
                            shard_plan.shard,
                            query,
                            exclude,
                            k,
                            measure,
                            floor_rate,
                            true,
                            true,
                            stats,
                            report,
                            shared,
                            parts,
                        );
                        continue;
                    }
                    let (results, checked) = shard.arena().scan_top_k(
                        &scan_view,
                        exclude,
                        k,
                        measure,
                        &mut stats.kernel_dispatch,
                    );
                    stats.total_entities += shard.num_entities();
                    stats.entities_checked += checked;
                    if let Some(shared) = shared {
                        if k > 0 && results.len() >= k {
                            shared.publish(results[k - 1].degree);
                        }
                    }
                    parts.push(results);
                }
                ShardDecision::TreeSearch => {
                    let floor_rate =
                        shard.synopsis().min_rate_for_recall(plan.planner.recall_floor);
                    if expired && floor_rate < 1.0 {
                        report.deadline_exceeded = true;
                        self.sampled_scan_shard(
                            shard_plan.shard,
                            query,
                            exclude,
                            k,
                            measure,
                            floor_rate,
                            true,
                            true,
                            stats,
                            report,
                            shared,
                            parts,
                        );
                        continue;
                    }
                    let mut executor = shard
                        .executor(query, exclude, k, measure, options)?
                        .with_publish_policy(scheduler.publish_policy);
                    // A shard the floor pins to rate 1.0 cannot be usefully
                    // sampled: it runs to exhaustion regardless of deadline.
                    // Otherwise, abandoning at the raw deadline would still
                    // pay the sampled fallback scan *after* it — overshooting
                    // the budget by exactly that scan — so its estimated cost
                    // (the budget pass's own calibration) is reserved out of
                    // the deadline handed to the executor.
                    let shard_deadline = if floor_rate >= 1.0 {
                        None
                    } else {
                        let reserve = Duration::from_nanos(plan::fallback_reserve_ns(
                            floor_rate,
                            shard_plan.entities,
                            plan.seed_candidates,
                            stats.planning_us,
                        ));
                        deadline.map(|d| d.checked_sub(reserve).unwrap_or(d))
                    };
                    let exhausted =
                        executor.run_until(bound, scheduler.step_quantum, shard_deadline);
                    stats.kernel_dispatch.absorb(executor.source().take_dispatch());
                    let (results, executor_stats) = executor.finish();
                    stats.absorb_work(&executor_stats);
                    if exhausted {
                        parts.push(results);
                    } else {
                        // Mid-flight abandon: keep the counters (the work
                        // happened), discard the partial answer — it may be
                        // missing arbitrary entities, while the sampled
                        // scan's omissions are exactly what the error model
                        // prices.  The executor already counted the shard's
                        // population, so the scan must not count it again.
                        report.deadline_exceeded = true;
                        self.sampled_scan_shard(
                            shard_plan.shard,
                            query,
                            exclude,
                            k,
                            measure,
                            floor_rate,
                            false,
                            true,
                            stats,
                            report,
                            shared,
                            parts,
                        );
                    }
                }
            }
        }
        Ok(())
    }

    /// Runs the deterministic sampled scan on one shard and does all the
    /// degradation bookkeeping: work counters, conservative recall estimate,
    /// report row, optional bound publishing (a sampled k-th-best over `≥ k`
    /// real candidates is still `≤` the global k-th best, so publishing it
    /// is sound).  `count_population` is false when the caller already
    /// charged the shard's population (an abandoned mid-flight executor).
    #[allow(clippy::too_many_arguments)]
    fn sampled_scan_shard<M: AssociationMeasure + ?Sized>(
        &self,
        shard_idx: usize,
        query: &CellSetSequence,
        exclude: Option<EntityId>,
        k: usize,
        measure: &M,
        rate: f64,
        count_population: bool,
        downgraded: bool,
        stats: &mut QueryStats,
        report: &mut DegradationReport,
        shared: Option<&SharedBound>,
        parts: &mut Vec<Vec<TopKResult>>,
    ) {
        let shard = &self.shards[shard_idx];
        let (results, checked) = shard.approximate_scan_top_k(
            query,
            exclude,
            k,
            measure,
            rate,
            &mut stats.kernel_dispatch,
        );
        if count_population {
            stats.total_entities += shard.num_entities();
        }
        stats.entities_checked += checked;
        stats.sampled_candidates += checked;
        stats.recall_estimate =
            stats.recall_estimate.min(shard.synopsis().expected_scan_recall(rate));
        report.record_shard(shard_idx, rate, downgraded);
        if let Some(shared) = shared {
            if k > 0 && results.len() >= k {
                shared.publish(results[k - 1].degree);
            }
        }
        parts.push(results);
    }
}

/// Drives a set of per-shard executors to exhaustion under one shared bound.
///
/// Scheduling is a round-robin work queue of executor indices: each worker
/// pops an index, advances that executor by one quantum, and requeues it
/// while work remains.  `parallel` fans the workers out over rayon (bound
/// propagation is then concurrent); otherwise one worker interleaves every
/// executor on the calling thread — later quanta still profit from bounds
/// published by earlier ones, which is what makes even the sequential batch
/// paths cooperative.  An executor held by a worker is never in the queue,
/// and a worker only exits on an empty queue while holding nothing, so every
/// frontier reaches exhaustion before this returns.  The answers do not
/// depend on the schedule (see the module docs); only work counters do.
pub(crate) fn drive_cooperatively<'a, F, S, M, B>(
    executors: &mut [Executor<'a, F, S, M>],
    bound: &B,
    parallel: bool,
    quantum: usize,
) where
    F: crate::signature::CellHashFamily,
    S: engine::TraceSource,
    M: AssociationMeasure + ?Sized + Sync,
    B: Bound + ?Sized,
    Executor<'a, F, S, M>: Send,
{
    let workers =
        if parallel { rayon::current_num_threads().min(executors.len()) } else { 1 }.max(1);
    if workers <= 1 || executors.len() <= 1 {
        let mut pending: VecDeque<usize> = (0..executors.len()).collect();
        while let Some(i) = pending.pop_front() {
            if executors[i].step(bound, quantum) {
                pending.push_back(i);
            }
        }
        return;
    }

    let slots: Vec<Mutex<&mut Executor<'a, F, S, M>>> =
        executors.iter_mut().map(Mutex::new).collect();
    let pending: Mutex<VecDeque<usize>> = Mutex::new((0..slots.len()).collect());
    let worker_ids: Vec<usize> = (0..workers).collect();
    let _: Vec<()> = worker_ids
        .par_iter()
        .map(|_| loop {
            let next = pending.lock().expect("scheduler queue poisoned").pop_front();
            let Some(i) = next else { break };
            let more = slots[i].lock().expect("executor slot poisoned").step(bound, quantum);
            if more {
                pending.lock().expect("scheduler queue poisoned").push_back(i);
            }
        })
        .collect();
}

impl IngestBuffer {
    /// Applies every buffered record to `index`, routed to each record's home
    /// shard, and empties the buffer.
    ///
    /// The whole cross-shard batch is validated **before any shard is
    /// mutated** (each entity's delta is materialised against the shared
    /// hierarchy once, up front), so a bad record leaves every shard and the
    /// buffer's records intact — the caller can drop the bad record and
    /// retry.  Each shard that receives a non-empty sub-batch applies it as
    /// one copy-on-write flush and advances its epoch by exactly 1; shards
    /// without records keep their epoch.  An empty buffer is a no-op.
    pub fn flush_sharded(&mut self, index: &mut ShardedMinSigIndex) -> Result<ShardedIngestReport> {
        let start = Instant::now();
        if self.is_empty() {
            return Ok(ShardedIngestReport { epochs: index.epochs(), ..Default::default() });
        }

        // Validate the whole batch against the shared hierarchy before
        // touching any shard: cross-shard all-or-nothing.  (The per-shard
        // flush re-materialises its deltas — one extra linear pass; hashing,
        // which dominates, still happens once.)
        {
            let probe = &index.shards[0];
            self.validate(probe.sp_index(), probe.ticks_per_unit())?;
        }

        let num_shards = index.num_shards();
        let mut per_shard: Vec<IngestBuffer> = vec![IngestBuffer::new(); num_shards];
        for record in self.records() {
            per_shard[shard_of(record.entity, num_shards)].push(*record);
        }

        let mut report = ShardedIngestReport::default();
        for (shard, mut buffer) in per_shard.into_iter().enumerate() {
            if buffer.is_empty() {
                continue;
            }
            // Invariant: the whole batch was validated above against the
            // shared hierarchy, which is the only thing a flush validates —
            // so a failure here is a logic bug (the two validations drifted
            // apart), and continuing would break the documented cross-shard
            // all-or-nothing contract with earlier shards already flushed.
            let shard_report = buffer
                .flush(&mut index.shards[shard])
                .expect("per-shard flush failed after whole-batch validation");
            report.records += shard_report.records;
            report.entities_touched += shard_report.entities_touched;
            report.entities_inserted += shard_report.entities_inserted;
            report.shards_touched += 1;
        }
        self.clear();
        report.epochs = index.epochs();
        report.flush_time_us = start.elapsed().as_micros() as u64;
        Ok(report)
    }
}

// ---------------------------------------------------------------------------
// Durability: the MSHD v1 manifest + per-shard MSIX files.
// ---------------------------------------------------------------------------

impl ShardedMinSigIndex {
    /// File name of shard `shard` inside a sharded-index directory.
    pub fn shard_file_name(shard: usize) -> String {
        format!("shard-{shard:05}.msix")
    }

    /// Persists the sharded index into directory `dir` (created if missing):
    /// one `MSIX` file per shard plus the checksummed `MSHD` manifest, written
    /// last.  Every file write is individually atomic (temp-file + rename),
    /// and the manifest records a content digest of every shard file it
    /// describes, so *any* crash point leaves a detectable directory: a crash
    /// before the manifest write leaves the old manifest whose digests no
    /// longer match the partially re-saved shard files ([`open`](Self::open)
    /// reports [`IndexError::Corrupt`]), never a silently served mix of old
    /// and new shards.  After the manifest commits, `shard-*.msix` files it
    /// does not describe (left behind by an earlier save with more shards)
    /// are deleted, so re-saving with a smaller shard count leaves exactly
    /// the files the manifest lists.  To re-save without ever invalidating
    /// the previous copy, save into a fresh directory and swap directories
    /// afterwards.
    pub fn save(&self, dir: &Path) -> Result<()> {
        self.save_with_lsns(dir, None)
    }

    /// [`save`](Self::save), stamping per-shard WAL checkpoint LSNs into the
    /// shard files (the durable ingest path's hook; `None` stamps 0
    /// everywhere).  `lsns`, when given, must have one entry per shard.
    pub(crate) fn save_with_lsns(&self, dir: &Path, lsns: Option<&[u64]>) -> Result<()> {
        debug_assert!(lsns.is_none_or(|l| l.len() == self.shards.len()));
        std::fs::create_dir_all(dir).map_err(|e| IndexError::Io(e.to_string()))?;
        let mut payload = Vec::with_capacity(8 + self.shards.len() * 16);
        payload.extend_from_slice(&PARTITION_VERSION.to_le_bytes());
        payload.extend_from_slice(&(self.shards.len() as u32).to_le_bytes());
        for (i, shard) in self.shards.iter().enumerate() {
            // Serialise in memory, digest, then commit atomically: the
            // manifest digests the exact bytes that hit the disk, with no
            // write-then-read-back round trip.
            let lsn = lsns.map_or(0, |l| l[i]);
            let bytes = shard.snapshot().to_bytes_with_lsn(lsn)?;
            segment::atomic_write_bytes(&dir.join(Self::shard_file_name(i)), &bytes)?;
            payload.extend_from_slice(&(shard.num_entities() as u64).to_le_bytes());
            payload.extend_from_slice(&file_digest(&bytes).to_le_bytes());
        }
        segment::atomic_write(
            &dir.join(SHARD_MANIFEST_FILE),
            SHARD_MANIFEST_MAGIC,
            SHARD_MANIFEST_VERSION,
            |writer| writer.write_segment(TAG_MANIFEST, &payload),
        )?;
        // The manifest is durably in place: scrub orphaned shard files from
        // any earlier save with a larger shard count.  (Before the manifest
        // commit they must stay — the *old* manifest still describes them.)
        remove_orphan_shard_files(dir, self.shards.len())?;
        Ok(())
    }

    /// Opens a previously [`save`](Self::save)d sharded index.
    ///
    /// Verified before any answer is served: the manifest's magic, version,
    /// checksum and partitioner version; every shard file's content digest
    /// against the manifest (so a crash while re-saving over an existing
    /// directory can never serve a mix of old and new shard files); every
    /// shard file's own `MSIX` checksums and invariants; the per-shard entity
    /// counts announced by the manifest; that all shards agree on the spatial
    /// hierarchy and temporal discretisation; and that every loaded entity
    /// actually routes to the shard holding it — a renamed or swapped shard
    /// file is reported as [`IndexError::Corrupt`], never served.
    pub fn open(dir: &Path) -> Result<ShardedMinSigIndex> {
        Ok(Self::open_inner(dir, true)?.0)
    }

    /// Opens a sharded directory for WAL recovery (`crate::durable`),
    /// returning the shards plus each shard file's checkpoint LSN.
    ///
    /// Relaxed where a torn checkpoint is *expected* and WAL replay restores
    /// consistency: the manifest's content digests and entity counts are not
    /// enforced (a crash mid-checkpoint legitimately leaves an old manifest
    /// next to some re-saved shard files).  Everything that replay cannot
    /// repair stays enforced — per-file `MSIX` checksums, entity-to-shard
    /// routing, and cross-shard hierarchy/discretisation agreement.
    pub(crate) fn open_for_recovery(dir: &Path) -> Result<(ShardedMinSigIndex, Vec<u64>)> {
        Self::open_inner(dir, false)
    }

    fn open_inner(dir: &Path, strict: bool) -> Result<(ShardedMinSigIndex, Vec<u64>)> {
        let mut reader = segment::open_file(
            &dir.join(SHARD_MANIFEST_FILE),
            SHARD_MANIFEST_MAGIC,
            SHARD_MANIFEST_VERSION,
        )?;
        let mut manifest: Option<(u32, Vec<(u64, u64)>)> = None;
        while let Some((tag, payload)) = reader.next_segment()? {
            match tag {
                TAG_MANIFEST => {
                    if manifest.is_some() {
                        return Err(corrupt("duplicate manifest segment"));
                    }
                    let mut c = Cursor::new(&payload);
                    let partition_version = c.u32()?;
                    let num_shards = c.u32()? as usize;
                    if num_shards == 0 {
                        return Err(corrupt("manifest announces zero shards"));
                    }
                    let mut entries = Vec::with_capacity(num_shards);
                    for _ in 0..num_shards {
                        let count = c.u64()?;
                        let digest = c.u64()?;
                        entries.push((count, digest));
                    }
                    c.expect_end().map_err(IndexError::from)?;
                    manifest = Some((partition_version, entries));
                }
                other => return Err(corrupt(&format!("unknown manifest segment tag {other}"))),
            }
        }
        let (partition_version, entries) =
            manifest.ok_or_else(|| corrupt("missing manifest segment"))?;
        if partition_version != PARTITION_VERSION {
            return Err(IndexError::UnsupportedVersion(format!(
                "sharded index was written under partitioner version {partition_version}, \
                 this build implements version {PARTITION_VERSION}"
            )));
        }

        let num_shards = entries.len();
        let mut shards = Vec::with_capacity(num_shards);
        let mut ckpt_lsns = Vec::with_capacity(num_shards);
        for (i, &(expected, digest)) in entries.iter().enumerate() {
            let path = dir.join(Self::shard_file_name(i));
            let bytes = std::fs::read(&path).map_err(|e| IndexError::Io(e.to_string()))?;
            if strict && file_digest(&bytes) != digest {
                return Err(corrupt(&format!(
                    "shard {i} does not match the manifest that describes it (interrupted \
                     re-save over an existing directory, or a damaged/replaced shard file)"
                )));
            }
            // Parse the *verified* buffer — re-reading the file here would
            // open a window for a concurrent re-save to swap it after the
            // digest check.
            let (snapshot, ckpt_lsn) = IndexSnapshot::open_from_bytes_with_lsn(&bytes)?;
            let shard = MinSigIndex::from_snapshot(Arc::new(snapshot));
            if strict && shard.num_entities() as u64 != expected {
                return Err(corrupt(&format!(
                    "shard {i} holds {} entities but the manifest announces {expected}",
                    shard.num_entities()
                )));
            }
            for &entity in shard.sequences().keys() {
                let home = shard_of(entity, num_shards);
                if home != i {
                    return Err(corrupt(&format!(
                        "shard {i} holds {entity}, which routes to shard {home} — shard files \
                         renamed or partitioner changed"
                    )));
                }
            }
            shards.push(shard);
            ckpt_lsns.push(ckpt_lsn);
        }
        for (i, shard) in shards.iter().enumerate().skip(1) {
            if shard.ticks_per_unit() != shards[0].ticks_per_unit()
                || !same_hierarchy(shard.sp_index(), shards[0].sp_index())
            {
                return Err(corrupt(&format!(
                    "shard {i} disagrees with shard 0 on the hierarchy or discretisation"
                )));
            }
        }
        Ok((ShardedMinSigIndex::from_shards(shards), ckpt_lsns))
    }
}

/// Deletes `shard-NNNNN.msix` files with index ≥ `num_shards` — orphans of
/// an earlier save with a larger shard count, which the freshly committed
/// manifest no longer describes.  Temp-file siblings and foreign names are
/// left alone.
fn remove_orphan_shard_files(dir: &Path, num_shards: usize) -> Result<()> {
    let entries = std::fs::read_dir(dir).map_err(|e| IndexError::Io(e.to_string()))?;
    for entry in entries {
        let entry = entry.map_err(|e| IndexError::Io(e.to_string()))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name.strip_prefix("shard-").and_then(|s| s.strip_suffix(".msix")) else {
            continue;
        };
        if let Ok(index) = stem.parse::<usize>() {
            if index >= num_shards {
                std::fs::remove_file(entry.path()).map_err(|e| IndexError::Io(e.to_string()))?;
            }
        }
    }
    Ok(())
}

/// 64-bit FNV-1a digest of a shard file's exact bytes.
///
/// Stored in the manifest to bind every shard file to the one save that
/// produced it.  Per-file `MSIX` checksums cannot catch a crash while
/// re-saving over an existing directory — each file is individually intact,
/// but the directory mixes old and new shard files; the manifest's digests
/// (written last, atomically) detect exactly that.
fn file_digest(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Structural equality of two spatial hierarchies: same height, same dense
/// unit ids, same parent list.
fn same_hierarchy(a: &SpIndex, b: &SpIndex) -> bool {
    if a.height() != b.height() || a.num_units() != b.num_units() {
        return false;
    }
    (0..a.num_units() as u32)
        .all(|unit| a.parent(unit).ok().flatten() == b.parent(unit).ok().flatten())
}

fn corrupt(msg: &str) -> IndexError {
    IndexError::Corrupt(format!("sharded index: {msg}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{PairedConfig, StreamConfig, Workload};
    use trace_model::Period;

    fn workload() -> Workload {
        Workload::paired(PairedConfig { pairs: 24, ..PairedConfig::default() })
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("shard-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn partitioner_is_stable_and_covers_all_shards() {
        // Pinned values: the manifest's PARTITION_VERSION contract.  If this
        // test fails, shard files written by older builds will mis-route.
        assert_eq!(shard_of(EntityId(0), 8), shard_of(EntityId(0), 8));
        for shards in [1usize, 2, 3, 8] {
            let mut seen = vec![false; shards];
            for e in 0..256u64 {
                let s = shard_of(EntityId(e), shards);
                assert!(s < shards);
                seen[s] = true;
            }
            assert!(seen.iter().all(|&s| s), "{shards} shards all receive entities");
        }
    }

    #[test]
    fn zero_shards_is_rejected() {
        let w = workload();
        assert!(matches!(
            ShardedMinSigIndex::build(&w.sp, &w.traces, IndexConfig::default(), 0),
            Err(IndexError::InvalidConfig(_))
        ));
    }

    #[test]
    fn sharded_answers_match_unsharded_answers_exactly() {
        let w = workload();
        let config = IndexConfig::with_hash_functions(32);
        let unsharded = w.build_index(config);
        let measure = w.measure();
        for shards in [1usize, 3, 7] {
            let sharded = ShardedMinSigIndex::build(&w.sp, &w.traces, config, shards).unwrap();
            assert_eq!(sharded.num_entities(), unsharded.num_entities());
            for query in [0u64, 5, 17, 40] {
                let (a, _) = sharded.top_k(EntityId(query), 5, &measure).unwrap();
                let (b, _) = unsharded.top_k(EntityId(query), 5, &measure).unwrap();
                crate::testkit::assert_equivalent_answers(
                    &a,
                    &b,
                    &format!("{shards} shards, query {query}"),
                );
            }
        }
    }

    #[test]
    fn unknown_query_entity_is_an_error_on_every_path() {
        let w = workload();
        let sharded =
            ShardedMinSigIndex::build(&w.sp, &w.traces, IndexConfig::default(), 4).unwrap();
        let measure = w.measure();
        let ghost = EntityId(999_999);
        assert!(matches!(
            sharded.top_k(ghost, 1, &measure),
            Err(IndexError::UnknownQueryEntity(999_999))
        ));
        assert!(matches!(
            sharded.top_k_batch(&[EntityId(0), ghost], 1, &measure),
            Err(IndexError::UnknownQueryEntity(999_999))
        ));
        assert!(sharded.brute_force(ghost, 1, &measure).is_err());
        // Joins skip, not fail.
        let (rows, stats) =
            sharded.top_k_join(&[EntityId(0), ghost], &measure, JoinOptions::default()).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(stats.skipped, 1);
    }

    /// `UnknownEntity` must route correctly: for **every** shard, an absent
    /// entity whose id hashes to that shard errors out of `update_entity` and
    /// `remove_entity` without touching any epoch, and `upsert_entity`
    /// inserts it into exactly that shard.
    #[test]
    fn absent_entity_mutations_error_on_every_shard() {
        let w = workload();
        let mut sharded =
            ShardedMinSigIndex::build(&w.sp, &w.traces, IndexConfig::default(), 5).unwrap();
        let trace_for = |entity: EntityId| {
            DigitalTrace::from_instances(vec![PresenceInstance::new(
                entity,
                w.sp.base_units()[0],
                Period::new(0, 60).unwrap(),
            )])
        };
        for shard in 0..sharded.num_shards() {
            // Find an absent id routing to this shard.
            let ghost = (10_000..)
                .map(EntityId)
                .find(|&e| shard_of(e, sharded.num_shards()) == shard && !sharded.contains(e))
                .unwrap();
            let epochs_before = sharded.epochs();
            let raw = ghost.raw();
            assert!(
                matches!(sharded.update_entity(ghost, &trace_for(ghost)),
                    Err(IndexError::UnknownEntity(id)) if id == raw),
                "shard {shard}"
            );
            assert!(
                matches!(sharded.remove_entity(ghost),
                    Err(IndexError::UnknownEntity(id)) if id == raw),
                "shard {shard}"
            );
            assert_eq!(sharded.epochs(), epochs_before, "failed mutations must not epoch-bump");
            // Upsert inserts into exactly the home shard.
            assert!(sharded.upsert_entity(ghost, &trace_for(ghost)).unwrap());
            assert!(sharded.shard(shard).contains(ghost));
            assert_eq!(
                sharded.epochs()[shard],
                epochs_before[shard] + 1,
                "only the home shard advances"
            );
            sharded.remove_entity(ghost).unwrap();
        }
    }

    #[test]
    fn sharded_ingest_routes_batches_and_advances_touched_epochs_only() {
        let w = workload();
        let mut sharded =
            ShardedMinSigIndex::build(&w.sp, &w.traces, IndexConfig::with_hash_functions(16), 4)
                .unwrap();
        let records = w.stream(StreamConfig {
            records: 120,
            existing_entities: 48,
            ..StreamConfig::default()
        });
        let touched_shards: std::collections::BTreeSet<usize> =
            records.iter().map(|r| shard_of(r.entity, 4)).collect();
        let report = sharded.ingest_batch(records).unwrap();
        assert_eq!(report.records, 120);
        assert_eq!(report.shards_touched, touched_shards.len());
        for shard in 0..4 {
            let expected = u64::from(touched_shards.contains(&shard));
            assert_eq!(report.epochs[shard], expected, "shard {shard}");
        }
        assert_eq!(sharded.epochs(), report.epochs);
    }

    #[test]
    fn invalid_record_rejects_the_whole_cross_shard_batch() {
        let w = workload();
        let mut sharded =
            ShardedMinSigIndex::build(&w.sp, &w.traces, IndexConfig::with_hash_functions(16), 3)
                .unwrap();
        let mut buffer = IngestBuffer::new();
        for e in 0..6u64 {
            buffer.push(PresenceInstance::new(
                EntityId(e),
                w.sp.base_units()[0],
                Period::new(0, 60).unwrap(),
            ));
        }
        // Spatial unit 9999 exists in no hierarchy of this size.
        buffer.push(PresenceInstance::new(EntityId(7), 9999, Period::new(0, 60).unwrap()));
        let entities_before = sharded.num_entities();
        let err = buffer.flush_sharded(&mut sharded).unwrap_err();
        assert!(matches!(err, IndexError::Model(_)), "got {err:?}");
        assert_eq!(sharded.epochs(), vec![0, 0, 0], "no shard may be touched");
        assert_eq!(sharded.num_entities(), entities_before);
        assert_eq!(buffer.len(), 7, "the buffer keeps every record for repair");
    }

    #[test]
    fn empty_sharded_flush_is_a_no_op() {
        let w = workload();
        let mut sharded =
            ShardedMinSigIndex::build(&w.sp, &w.traces, IndexConfig::default(), 2).unwrap();
        let report = IngestBuffer::new().flush_sharded(&mut sharded).unwrap();
        assert_eq!(report.records, 0);
        assert_eq!(report.shards_touched, 0);
        assert_eq!(report.epochs, vec![0, 0]);
    }

    #[test]
    fn snapshot_isolates_readers_from_later_flushes() {
        let w = workload();
        let mut sharded =
            ShardedMinSigIndex::build(&w.sp, &w.traces, IndexConfig::with_hash_functions(16), 3)
                .unwrap();
        let measure = w.measure();
        let reader = sharded.snapshot();
        let before = reader.top_k(EntityId(0), 3, &measure).unwrap().0;
        assert_eq!(reader.epochs(), &[0, 0, 0]);

        sharded.ingest_batch(w.stream(StreamConfig::default())).unwrap();
        assert!(sharded.epoch() > 0);
        // The held snapshot is frozen: old epoch vector, old answers.
        assert_eq!(reader.epochs(), &[0, 0, 0]);
        assert_eq!(reader.top_k(EntityId(0), 3, &measure).unwrap().0, before);
    }

    #[test]
    fn save_open_round_trips_and_detects_damage() {
        let w = workload();
        let sharded =
            ShardedMinSigIndex::build(&w.sp, &w.traces, IndexConfig::with_hash_functions(24), 3)
                .unwrap();
        let dir = temp_dir("round-trip");
        sharded.save(&dir).unwrap();

        let reopened = ShardedMinSigIndex::open(&dir).unwrap();
        assert_eq!(reopened.num_shards(), 3);
        assert_eq!(reopened.num_entities(), sharded.num_entities());
        assert_eq!(reopened.epochs(), vec![0, 0, 0]);
        let measure = w.measure();
        for query in [0u64, 9, 31] {
            let (a, _) = sharded.top_k(EntityId(query), 4, &measure).unwrap();
            let (b, _) = reopened.top_k(EntityId(query), 4, &measure).unwrap();
            assert_eq!(a, b);
        }

        // A flipped bit in ANY shard file is detected at open.
        for shard in 0..3 {
            let path = dir.join(ShardedMinSigIndex::shard_file_name(shard));
            let original = std::fs::read(&path).unwrap();
            let mut damaged = original.clone();
            let mid = damaged.len() / 2;
            damaged[mid] ^= 0x40;
            std::fs::write(&path, &damaged).unwrap();
            assert!(
                matches!(ShardedMinSigIndex::open(&dir), Err(IndexError::Corrupt(_))),
                "damage in shard {shard} must be detected"
            );
            std::fs::write(&path, &original).unwrap();
        }

        // Swapping two shard files mis-routes entities: detected, not served.
        let a = dir.join(ShardedMinSigIndex::shard_file_name(0));
        let b = dir.join(ShardedMinSigIndex::shard_file_name(1));
        let (bytes_a, bytes_b) = (std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        std::fs::write(&a, &bytes_b).unwrap();
        std::fs::write(&b, &bytes_a).unwrap();
        assert!(matches!(ShardedMinSigIndex::open(&dir), Err(IndexError::Corrupt(_))));
        std::fs::write(&a, &bytes_a).unwrap();
        std::fs::write(&b, &bytes_b).unwrap();

        // A missing shard file is an I/O error, a missing manifest too.
        std::fs::remove_file(&b).unwrap();
        assert!(matches!(ShardedMinSigIndex::open(&dir), Err(IndexError::Io(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Regression test for the shrinking re-save bug: saving 8 shards and
    /// then re-saving 2 into the same directory used to leave
    /// `shard-00002.msix`..`shard-00007.msix` behind forever — `open` only
    /// verifies manifest-listed files, so the stale shards silently
    /// accumulated.  After the manifest commits, undescribed shard files
    /// must be deleted and the directory must hold exactly the new save.
    #[test]
    fn shrinking_resave_deletes_orphaned_shard_files() {
        let w = workload();
        let config = IndexConfig::with_hash_functions(16);
        let eight = ShardedMinSigIndex::build(&w.sp, &w.traces, config, 8).unwrap();
        let dir = temp_dir("shrink");
        eight.save(&dir).unwrap();
        assert!(dir.join(ShardedMinSigIndex::shard_file_name(7)).exists());

        let two = ShardedMinSigIndex::build(&w.sp, &w.traces, config, 2).unwrap();
        two.save(&dir).unwrap();

        // Exact directory contents: the manifest plus exactly two shards.
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![
                SHARD_MANIFEST_FILE.to_string(),
                ShardedMinSigIndex::shard_file_name(0),
                ShardedMinSigIndex::shard_file_name(1),
            ],
            "orphaned shard files survived a shrinking re-save"
        );

        // And the directory reopens cleanly to the 2-shard index.
        let reopened = ShardedMinSigIndex::open(&dir).unwrap();
        assert_eq!(reopened.num_shards(), 2);
        assert_eq!(reopened.num_entities(), two.num_entities());
        let measure = w.measure();
        for query in [0u64, 9, 31] {
            let (a, _) = two.top_k(EntityId(query), 4, &measure).unwrap();
            let (b, _) = reopened.top_k(EntityId(query), 4, &measure).unwrap();
            assert_eq!(a, b);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Regression test for the re-save crash window: an interrupted save
    /// over an existing directory leaves the OLD manifest next to a mix of
    /// old and new shard files.  Every individual file is intact (entity
    /// counts and routing unchanged by an update), so only the manifest's
    /// content digests can catch the mix — `open` must refuse, never serve
    /// pre- and post-mutation shards together.
    #[test]
    fn interrupted_resave_over_existing_directory_is_detected() {
        let w = workload();
        let mut sharded =
            ShardedMinSigIndex::build(&w.sp, &w.traces, IndexConfig::with_hash_functions(16), 3)
                .unwrap();
        let dir = temp_dir("resave");
        sharded.save(&dir).unwrap();

        // Mutate without changing any entity count (replace an existing
        // entity's trace), then save elsewhere to obtain the "new" shard
        // bytes a crashed re-save would have partially written.
        let victim = w.entities()[0];
        let moved = DigitalTrace::from_instances(vec![PresenceInstance::new(
            victim,
            w.sp.base_units()[1],
            Period::new(0, 60).unwrap(),
        )]);
        sharded.update_entity(victim, &moved).unwrap();
        let dir_new = temp_dir("resave-new");
        sharded.save(&dir_new).unwrap();

        // Simulate the crash: the victim's home shard file was replaced, the
        // manifest (and the other shards) still belong to the old save.
        let home = shard_of(victim, 3);
        let partial = ShardedMinSigIndex::shard_file_name(home);
        std::fs::copy(dir_new.join(&partial), dir.join(&partial)).unwrap();
        let err = ShardedMinSigIndex::open(&dir).unwrap_err();
        assert!(
            matches!(err, IndexError::Corrupt(_)),
            "mixed-save directory must be refused, got {err:?}"
        );

        // Both complete directories still open fine.
        ShardedMinSigIndex::open(&dir_new).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&dir_new).unwrap();
    }

    #[test]
    fn future_partitioner_versions_are_not_served() {
        let w = workload();
        let sharded =
            ShardedMinSigIndex::build(&w.sp, &w.traces, IndexConfig::default(), 2).unwrap();
        let dir = temp_dir("partitioner");
        sharded.save(&dir).unwrap();
        // Rewrite the manifest with a newer partitioner version.
        let mut payload = Vec::new();
        payload.extend_from_slice(&(PARTITION_VERSION + 1).to_le_bytes());
        payload.extend_from_slice(&2u32.to_le_bytes());
        for shard in 0..2 {
            payload.extend_from_slice(&(sharded.shard(shard).num_entities() as u64).to_le_bytes());
            payload.extend_from_slice(&0u64.to_le_bytes()); // digest (never reached)
        }
        segment::atomic_write(
            &dir.join(SHARD_MANIFEST_FILE),
            SHARD_MANIFEST_MAGIC,
            SHARD_MANIFEST_VERSION,
            |writer| writer.write_segment(TAG_MANIFEST, &payload),
        )
        .unwrap();
        assert!(matches!(ShardedMinSigIndex::open(&dir), Err(IndexError::UnsupportedVersion(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
