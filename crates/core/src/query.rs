//! Top-k query processing (Chapter 5): upper bounds, best-first search and early
//! termination.
//!
//! The search walks the MinSigTree with a max-heap of candidate nodes ordered by
//! an upper bound on the association degree achievable inside each subtree
//! (Algorithm 2).  The bound for a node at depth `d` with routing index `u` and
//! stored value `v` combines two sound constraints:
//!
//! * **level-`d` constraint** — every member entity's level-`d` signature at `u`
//!   is at least `v`, so query level-`d` cells whose hash under `u` is below `v`
//!   cannot be shared (the MinHash minimum property);
//! * **base-level constraint (Theorem 2)** — query *base* cells whose hash under
//!   `u` is below `v` cannot be in any member's trace.
//!
//! Constraints accumulate down a branch (the per-level caps of a child are never
//! larger than its parent's), which is the "gradually tightened upper bound" of
//! Section 5.1.  The caps are turned into a degree bound by instantiating
//! Theorem 4's artificial entity per level (see
//! [`AssociationMeasure::upper_bound`]).

use crate::error::{IndexError, Result};
use crate::signature::{CellHashFamily, HierarchicalHasher};
use crate::stats::SearchStats;
use crate::tree::{MinSigTree, NodeId, ROOT};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::time::Instant;
use trace_model::{AssociationMeasure, CellSetSequence, EntityId, Level, SpIndex};

/// One answer of a top-k query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopKResult {
    /// The associated entity.
    pub entity: EntityId,
    /// Its association degree with the query entity.
    pub degree: f64,
}

/// Options controlling the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryOptions {
    /// Apply the per-level (depth-`d`) signature constraint in addition to the
    /// base-level Theorem-2 constraint.  Disabling it reproduces the looser
    /// "partial pruned set only" bound for ablation studies.
    pub use_level_constraints: bool,
    /// Accumulate constraints down a branch (children inherit their ancestors'
    /// caps).  Disabling it bounds each node independently, as a weaker ablation.
    pub accumulate_down_branch: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions { use_level_constraints: true, accumulate_down_branch: true }
    }
}

/// Where candidate entities' ST-cell set sequences come from during leaf
/// evaluation: the in-memory map of the index, or a paged store that charges
/// simulated I/O.
pub trait SequenceProvider {
    /// The sequence of an entity, or `None` when it cannot be found.
    fn sequence(&self, entity: EntityId) -> Option<Cow<'_, CellSetSequence>>;
}

/// In-memory provider backed by a map of materialised sequences.
pub struct MapProvider<'a> {
    sequences: &'a std::collections::BTreeMap<EntityId, CellSetSequence>,
}

impl<'a> MapProvider<'a> {
    /// Creates a provider over the index's sequence map.
    pub fn new(sequences: &'a std::collections::BTreeMap<EntityId, CellSetSequence>) -> Self {
        MapProvider { sequences }
    }
}

impl SequenceProvider for MapProvider<'_> {
    fn sequence(&self, entity: EntityId) -> Option<Cow<'_, CellSetSequence>> {
        self.sequences.get(&entity).map(Cow::Borrowed)
    }
}

/// An `f64` wrapper with a total order, used as the heap priority.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A candidate subtree in the best-first queue.
#[derive(Debug, Clone)]
struct Candidate {
    upper_bound: OrdF64,
    node: NodeId,
    /// Per-level caps on the overlap with the query (index 0 = level 1).
    caps: Vec<usize>,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.upper_bound == other.upper_bound && self.node == other.node
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.upper_bound.cmp(&other.upper_bound).then_with(|| other.node.cmp(&self.node))
    }
}

/// Lazily computed, sorted hash values of the query's cells per (level, function).
struct QueryHashes<'a, F: CellHashFamily> {
    sp: &'a SpIndex,
    hasher: &'a HierarchicalHasher<F>,
    query: &'a CellSetSequence,
    cache: HashMap<(Level, u32), Vec<u64>>,
}

impl<'a, F: CellHashFamily> QueryHashes<'a, F> {
    fn new(sp: &'a SpIndex, hasher: &'a HierarchicalHasher<F>, query: &'a CellSetSequence) -> Self {
        QueryHashes { sp, hasher, query, cache: HashMap::new() }
    }

    /// Number of query level-`level` cells whose hash under function `u` is at
    /// least `value` (i.e. cells that *survive* the pruned set of a node with
    /// routing index `u` and stored value `value`).
    fn surviving(&mut self, level: Level, u: u32, value: u64) -> usize {
        let sp = self.sp;
        let hasher = self.hasher;
        let query = self.query;
        let hashes = self.cache.entry((level, u)).or_insert_with(|| {
            let mut v: Vec<u64> =
                query.level(level).iter().map(|cell| hasher.hash(sp, u, cell)).collect();
            v.sort_unstable();
            v
        });
        let below = hashes.partition_point(|&h| h < value);
        hashes.len() - below
    }
}

/// The top-k search of Algorithm 2.
///
/// `exclude` removes the query entity itself from the answer set.  The function
/// is exact for every measure satisfying the Section 3.2 axioms: it returns the
/// same multiset of degrees as a brute-force scan.
#[allow(clippy::too_many_arguments)]
pub(crate) fn search<F, P, M>(
    sp: &SpIndex,
    hasher: &HierarchicalHasher<F>,
    tree: &MinSigTree,
    query: &CellSetSequence,
    exclude: Option<EntityId>,
    k: usize,
    measure: &M,
    provider: &P,
    options: QueryOptions,
) -> Result<(Vec<TopKResult>, SearchStats)>
where
    F: CellHashFamily,
    P: SequenceProvider,
    M: AssociationMeasure + ?Sized,
{
    if query.num_levels() != tree.levels() as usize {
        return Err(IndexError::LevelMismatch {
            index_levels: tree.levels(),
            query_levels: query.num_levels() as u8,
        });
    }
    let start = Instant::now();
    let m = tree.levels();
    let query_sizes: Vec<usize> = (1..=m).map(|l| query.level(l).len()).collect();

    let mut stats = SearchStats {
        total_entities: tree.num_entities(),
        k,
        ..SearchStats::default()
    };
    let mut hashes = QueryHashes::new(sp, hasher, query);

    // Current top-k kept as a min-heap keyed by (degree, entity); `threshold()` is
    // the k-th best degree so far.
    let mut top: BinaryHeap<std::cmp::Reverse<(OrdF64, EntityId)>> = BinaryHeap::new();
    let threshold = |top: &BinaryHeap<std::cmp::Reverse<(OrdF64, EntityId)>>| -> f64 {
        if top.len() < k {
            f64::NEG_INFINITY
        } else {
            top.peek().map(|r| r.0 .0 .0).unwrap_or(f64::NEG_INFINITY)
        }
    };

    let mut queue: BinaryHeap<Candidate> = BinaryHeap::new();
    queue.push(Candidate {
        upper_bound: OrdF64(measure.upper_bound(&query_sizes, &query_sizes)),
        node: ROOT,
        caps: query_sizes.clone(),
    });

    while let Some(candidate) = queue.pop() {
        // Early termination (Section 5.1): the best remaining subtree cannot beat
        // the current k-th answer.
        if k > 0 && top.len() >= k && threshold(&top) >= candidate.upper_bound.0 {
            break;
        }
        stats.nodes_visited += 1;
        let node = tree.node(candidate.node);

        if node.depth == m {
            // Leaf: evaluate every contained entity exactly.
            stats.leaves_visited += 1;
            for &entity in &node.entities {
                if Some(entity) == exclude {
                    continue;
                }
                let Some(seq) = provider.sequence(entity) else { continue };
                stats.entities_checked += 1;
                let degree = measure.degree(query, seq.as_ref());
                if top.len() < k {
                    top.push(std::cmp::Reverse((OrdF64(degree), entity)));
                } else if k > 0 && degree > threshold(&top) {
                    top.pop();
                    top.push(std::cmp::Reverse((OrdF64(degree), entity)));
                }
            }
            continue;
        }

        // Internal node (or root): push its children with tightened bounds.
        for (&routing_index, &child_id) in &node.children {
            let child = tree.node(child_id);
            let mut caps = if options.accumulate_down_branch {
                candidate.caps.clone()
            } else {
                query_sizes.clone()
            };
            let depth_idx = (child.depth - 1) as usize;
            let base_idx = (m - 1) as usize;
            if options.use_level_constraints {
                let surviving = hashes.surviving(child.depth, routing_index, child.routing_value);
                caps[depth_idx] = caps[depth_idx].min(surviving);
            }
            // Theorem-2 constraint over base cells (the "partial pruned set").
            let surviving_base = hashes.surviving(m, routing_index, child.routing_value);
            caps[base_idx] = caps[base_idx].min(surviving_base);

            let ub = measure.upper_bound(&query_sizes, &caps);
            // A subtree whose bound cannot beat the current threshold can still be
            // pushed; it will be discarded by the termination check when popped.
            queue.push(Candidate { upper_bound: OrdF64(ub), node: child_id, caps });
        }
    }

    let mut results: Vec<TopKResult> = top
        .into_iter()
        .map(|std::cmp::Reverse((OrdF64(degree), entity))| TopKResult { entity, degree })
        .collect();
    results.sort_by(|a, b| b.degree.total_cmp(&a.degree).then(a.entity.cmp(&b.entity)));
    stats.query_time_us = start.elapsed().as_micros() as u64;
    Ok((results, stats))
}

/// Brute-force evaluation of a top-k query over an explicit collection of
/// sequences; the ground truth used by tests and by the scan baseline.
pub fn brute_force_top_k<M: AssociationMeasure + ?Sized>(
    sequences: &std::collections::BTreeMap<EntityId, CellSetSequence>,
    query: &CellSetSequence,
    exclude: Option<EntityId>,
    k: usize,
    measure: &M,
) -> Vec<TopKResult> {
    let mut all: Vec<TopKResult> = sequences
        .iter()
        .filter(|(e, _)| Some(**e) != exclude)
        .map(|(e, seq)| TopKResult { entity: *e, degree: measure.degree(query, seq) })
        .collect();
    all.sort_by(|a, b| b.degree.total_cmp(&a.degree).then(a.entity.cmp(&b.entity)));
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordf64_orders_like_floats_and_handles_nan() {
        let mut v = vec![OrdF64(0.5), OrdF64(-1.0), OrdF64(2.0), OrdF64(f64::NAN)];
        v.sort();
        assert_eq!(v[0], OrdF64(-1.0));
        assert_eq!(v[1], OrdF64(0.5));
        assert_eq!(v[2], OrdF64(2.0));
        assert!(v[3].0.is_nan());
    }

    #[test]
    fn candidates_order_by_upper_bound() {
        let a = Candidate { upper_bound: OrdF64(0.9), node: 1, caps: vec![] };
        let b = Candidate { upper_bound: OrdF64(0.3), node: 2, caps: vec![] };
        let mut heap = BinaryHeap::new();
        heap.push(b);
        heap.push(a);
        assert_eq!(heap.pop().unwrap().node, 1);
    }

    #[test]
    fn default_options_enable_all_constraints() {
        let o = QueryOptions::default();
        assert!(o.use_level_constraints);
        assert!(o.accumulate_down_branch);
    }
}
