//! Top-k query results, options and the brute-force ground truth.
//!
//! The best-first search itself (Algorithm 2, Section 5.1) lives in
//! [`crate::engine`]; this module holds the vocabulary types shared by every
//! query path — [`TopKResult`] and [`QueryOptions`] — plus the brute-force
//! evaluator that tests and baselines compare against.  Both the executor's
//! leaf evaluation and [`brute_force_top_k`] select their answers through the
//! same [`TopKHeap`](crate::engine::TopKHeap), so exact-verification logic
//! exists once.

use crate::engine;
use serde::{Deserialize, Serialize};
use trace_model::{AssociationMeasure, CellSetSequence, EntityId};

/// One answer of a top-k query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopKResult {
    /// The associated entity.
    pub entity: EntityId,
    /// Its association degree with the query entity.
    pub degree: f64,
}

/// Options controlling the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryOptions {
    /// Apply the per-level (depth-`d`) signature constraint in addition to the
    /// base-level Theorem-2 constraint.  Disabling it reproduces the looser
    /// "partial pruned set only" bound for ablation studies.
    pub use_level_constraints: bool,
    /// Accumulate constraints down a branch (children inherit their ancestors'
    /// caps).  Disabling it bounds each node independently, as a weaker ablation.
    pub accumulate_down_branch: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions { use_level_constraints: true, accumulate_down_branch: true }
    }
}

/// Brute-force evaluation of a top-k query over an explicit collection of
/// sequences; the ground truth used by tests and by the scan baseline.
///
/// Shares its top-k selection (tie-breaking included) with the best-first
/// executor via [`TopKHeap`](crate::engine::TopKHeap).
pub fn brute_force_top_k<M: AssociationMeasure + ?Sized>(
    sequences: &std::collections::BTreeMap<EntityId, CellSetSequence>,
    query: &CellSetSequence,
    exclude: Option<EntityId>,
    k: usize,
    measure: &M,
) -> Vec<TopKResult> {
    let (results, _) =
        engine::scan_top_k(sequences.iter().map(|(e, s)| (*e, s)), query, exclude, k, measure);
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_enable_all_constraints() {
        let o = QueryOptions::default();
        assert!(o.use_level_constraints);
        assert!(o.accumulate_down_branch);
    }

    #[test]
    fn brute_force_of_empty_map_is_empty() {
        let sequences = std::collections::BTreeMap::new();
        let sp = trace_model::SpIndex::uniform(2, &[2]).unwrap();
        let query =
            trace_model::CellSetSequence::from_base_cells(&sp, &trace_model::CellSet::new())
                .unwrap();
        let measure = trace_model::DiceAdm::uniform(2);
        assert!(brute_force_top_k(&sequences, &query, None, 5, &measure).is_empty());
    }
}
