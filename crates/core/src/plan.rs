//! Cost-based planning for sharded top-k queries.
//!
//! PR 4's cooperative scheduler made cross-shard fan-out cheap *per node*,
//! but every query still opened an executor on every shard with a cold
//! top-k threshold.  The planner closes that gap by consuming the per-shard
//! [`Synopsis`] *before* any traversal:
//!
//! 1. **threshold seeding** — the exact degrees of the shards' sketch
//!    entities are computed against the query; once `k` real candidates are
//!    scored, their k-th best degree is a provable lower bound on the global
//!    k-th-best degree `G` (any `≥ k`-subset's k-th best is `≤ G`), and the
//!    search starts from that bar instead of `-inf`;
//! 2. **shard skipping** — a shard whose synopsis
//!    [`degree_upper_bound`](Synopsis::degree_upper_bound) is *strictly
//!    below* the seed provably holds no top-k entity (every member's degree
//!    `≤ upper < seed ≤ G`), so the query never touches it — the same
//!    certain-answer separation the consistent-query-answering literature
//!    applies to repairs, applied to shards;
//! 3. **admission ordering** — admitted shards are driven
//!    most-promising-first (synopsis upper bound descending), so the shard
//!    most likely to raise the shared bound runs first;
//! 4. **access-path choice** — shards at or below the
//!    [`scan_cutoff`](crate::config::PlannerConfig::scan_cutoff) are answered
//!    by the flat exact scan (no frontier bookkeeping); larger shards get the
//!    best-first tree search.
//!
//! None of the four decisions can change an answer: seeding and skipping are
//! justified by the strict-pruning argument above (ties at `G` survive
//! because both comparisons are strict), ordering is schedule-freedom the
//! executor already guarantees, and the flat scan is bitwise identical to an
//! exhausted tree search.  `tests/planner_conformance.rs` proptests exactly
//! this, over arbitrary shard counts, sketch sizes and knob settings.
//!
//! ## Latency budgets and the approximate arm
//!
//! With [`PlannerConfig::latency_budget_us`] set, the planner additionally
//! acts as a QoS mechanism: it **costs** the exact plan — per-degree
//! nanoseconds calibrated from the seeding pass it just timed (real degree
//! evaluations over this very query), plus cold-page I/O out of core — and,
//! when the estimate exceeds the budget, downgrades the *least promising*
//! admitted shards to [`ShardDecision::ApproximateScan`]: a deterministic
//! sampled flat scan that always scores the shard's hot-sketch entities and
//! includes each remaining member with probability `rate`
//! ([`sample_includes`] is a pure hash of the entity id, so the sample is
//! identical across runs and machines).  The rate is never chosen below what
//! [`Synopsis::min_rate_for_recall`] demands for
//! [`PlannerConfig::recall_floor`], and a shard whose floor rate reaches 1.0
//! simply stays exact.  **A plan whose exact cost fits the budget is never
//! degraded** — exactness is the default, approximation the forced
//! exception, and an unset budget skips all of this machinery bit-for-bit.
//!
//! ## Batch planning
//!
//! [`plan_batch`] plans a whole batch in one pass: per-shard sketch
//! positions are resolved against the arenas **once** and reused by every
//! query's seeding loop, and the resulting per-query plans are grouped by
//! their admitted-shard *footprint* (the ordered shard/decision skeleton)
//! into [`BatchGroup`]s — queries in one group run the same shards the same
//! way, which is what the batch driver amortizes.  Every per-query seed is
//! still computed from that query's own degrees (a seed is only sound for
//! the query it was scored against), so batch-planned plans — and therefore
//! answers — are identical to per-query planning
//! (`tests/deadline_conformance.rs` asserts bitwise equality).
//! [`BatchPlan::explain`] renders the grouping.
//!
//! The plan itself is a first-class value: [`ShardedSnapshot::explain`]
//! returns the [`QueryPlan`] without executing it, and
//! [`QueryPlan::explain`] renders it for humans.
//!
//! [`plan_batch`]: crate::shard::ShardedSnapshot::plan_batch
//! [`ShardedSnapshot::explain`]: crate::shard::ShardedSnapshot::explain
//! [`PlannerConfig::latency_budget_us`]: crate::config::PlannerConfig::latency_budget_us
//! [`PlannerConfig::recall_floor`]: crate::config::PlannerConfig::recall_floor
//! [`Synopsis::min_rate_for_recall`]: crate::synopsis::Synopsis::min_rate_for_recall

use crate::config::PlannerConfig;
use crate::engine::TopKHeap;
use crate::snapshot::IndexSnapshot;
use crate::synopsis::Synopsis;
use std::fmt::Write as _;
use std::sync::Arc;
use trace_model::{AssociationMeasure, CellSetSequence, EntityId};

/// How the planner decided to treat one shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShardDecision {
    /// The shard's synopsis upper bound cannot beat the seeded threshold:
    /// provably no top-k entity lives there, so the query never opens it.
    /// (An empty shard's bound is `-inf`, so any seeded query proves it
    /// away; unseeded, it is tree-searched — the executor no-ops on an
    /// empty tree.)
    Skip,
    /// The shard is small enough that a flat exact scan beats the frontier
    /// bookkeeping of a tree search.
    Scan,
    /// The shard gets a best-first tree executor under the query's bound.
    TreeSearch,
    /// The exact plan does not fit the latency budget: the shard is answered
    /// by a **deterministic sampled scan** — every hot-sketch entity plus
    /// each remaining member with probability `rate` (a pure hash of the
    /// entity id, [`sample_includes`]) is scored exactly; the rest are never
    /// touched.  The only decision that can change an answer, which is why
    /// it is taken only under an explicit
    /// [`latency_budget_us`](crate::config::PlannerConfig::latency_budget_us)
    /// and always reported through
    /// [`QueryStats::degradation`](crate::stats::QueryStats::degradation).
    ApproximateScan {
        /// Inclusion probability of each non-sketch member, in `(0, 1)`;
        /// chosen as the larger of the budget-derived rate and the
        /// [`recall_floor`](crate::config::PlannerConfig::recall_floor)'s
        /// minimum rate (a rate reaching 1.0 stays exact instead).
        rate: f64,
    },
}

/// A shard's page-residency estimate at plan time: how many distinct store
/// pages its members' traces span, and how many of those were resident in
/// the buffer pool when the plan was built.
///
/// Estimates feed the paged planner's I/O reasoning — [`cold_pages`]
/// gates the flat-scan access path and breaks shard-ordering ties — and are
/// **advisory only**: residency can change the instant the plan runs, so no
/// decision built on an estimate may affect an answer, only cost.
///
/// [`cold_pages`]: PageEstimate::cold_pages
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageEstimate {
    /// Distinct store pages holding this shard's traces.
    pub total_pages: usize,
    /// How many of those were buffer-pool resident at plan time.
    pub resident_pages: usize,
}

impl PageEstimate {
    /// Pages a full shard read would have to fetch from disk (at plan time).
    pub fn cold_pages(&self) -> usize {
        self.total_pages.saturating_sub(self.resident_pages)
    }
}

/// The planner's verdict for one shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardPlan {
    /// Shard index in the sharded snapshot.
    pub shard: usize,
    /// Entities the shard holds.
    pub entities: usize,
    /// The synopsis upper bound on any member's degree against this query
    /// (`-inf` for an empty shard; the trivial `+inf` when the planner is
    /// fully disabled and nothing was computed).
    pub upper_bound: f64,
    /// What the executor does with the shard.
    pub decision: ShardDecision,
    /// Page-residency estimate (paged plans with an active planner only;
    /// `None` on in-memory plans and on the disabled-planner baseline).
    pub pages: Option<PageEstimate>,
}

/// The executable plan of one sharded top-k query: the seeded threshold plus
/// one [`ShardPlan`] per shard, admitted shards first in driving order
/// (synopsis upper bound descending, shard index ascending), skipped shards
/// last.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// Requested result size.
    pub k: usize,
    /// The seeded lower bound on the global k-th-best degree (`-inf` when
    /// seeding is disabled or fewer than `k` sketch candidates exist).
    pub seed: f64,
    /// How many sketch candidates were scored exactly to derive the seed.
    pub seed_candidates: usize,
    /// Per-shard verdicts; admitted shards first, in driving order.
    pub shards: Vec<ShardPlan>,
    /// The knobs the plan was built under.
    pub planner: PlannerConfig,
}

impl QueryPlan {
    /// Number of shards the plan proves cannot contribute.
    pub fn shards_skipped(&self) -> usize {
        self.shards.iter().filter(|s| s.decision == ShardDecision::Skip).count()
    }

    /// True when a threshold seed was derived (and will be published to the
    /// search bound before any traversal).
    pub fn seeded(&self) -> bool {
        self.seed > f64::NEG_INFINITY
    }

    /// The admitted shards in driving order (most promising first).
    pub fn admitted(&self) -> impl Iterator<Item = &ShardPlan> {
        self.shards.iter().filter(|s| s.decision != ShardDecision::Skip)
    }

    /// Number of shards the budget forced onto the sampled (approximate)
    /// access path.  0 whenever the exact plan fits the budget — and always
    /// 0 with no budget set.
    pub fn shards_approximate(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| matches!(s.decision, ShardDecision::ApproximateScan { .. }))
            .count()
    }

    /// True when every admitted shard runs an exact access path: the plan's
    /// answer is bitwise identical to the unbudgeted plan's.
    pub fn is_exact(&self) -> bool {
        self.shards_approximate() == 0
    }

    /// Renders the plan for humans: the seed, then one line per shard in
    /// plan order with its population, upper bound and decision.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "QueryPlan: k={}, seed={} ({} sketch candidates scored), \
             {} shard(s) admitted, {} skipped",
            self.k,
            if self.seeded() { format!("{:.6}", self.seed) } else { "none".to_string() },
            self.seed_candidates,
            self.shards.len() - self.shards_skipped(),
            self.shards_skipped(),
        );
        for plan in &self.shards {
            let decision = match plan.decision {
                ShardDecision::TreeSearch => "tree-search".to_string(),
                ShardDecision::Scan => "scan".to_string(),
                ShardDecision::Skip if plan.entities == 0 => "skip (empty shard)".to_string(),
                ShardDecision::Skip => "skip (upper bound below seed)".to_string(),
                ShardDecision::ApproximateScan { rate } => {
                    format!("approximate-scan (rate={rate:.3}, budget-forced)")
                }
            };
            let pages = match plan.pages {
                Some(p) => format!(
                    " pages={} ({} resident, {} cold)",
                    p.total_pages,
                    p.resident_pages,
                    p.cold_pages()
                ),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "  shard {:>3}  entities={:<8} upper={:<12} {}{}",
                plan.shard,
                plan.entities,
                if plan.upper_bound == f64::NEG_INFINITY {
                    "-inf".to_string()
                } else {
                    format!("{:.6}", plan.upper_bound)
                },
                decision,
                pages,
            );
        }
        out
    }
}

/// Builds the plan of one query over a set of shard snapshots.
///
/// The exact degree evaluations spent on seeding are recorded in the plan's
/// [`seed_candidates`](QueryPlan::seed_candidates) field (the executor
/// charges them to the query's `entities_checked`, because they are real
/// candidate evaluations).  The caller guarantees the query sequence matches
/// the shards' level count.
///
/// A fully disabled config ([`PlannerConfig::disabled`]) produces the
/// faithful pre-planner baseline: every shard admitted as a tree search, in
/// shard-index order — no seeding, no skipping, no scans and **no
/// reordering**, so the `*_with_scheduler` paths measure exactly the PR 4
/// scheduler.
pub(crate) fn plan_query<M: AssociationMeasure + ?Sized>(
    shards: &[Arc<IndexSnapshot>],
    query: &CellSetSequence,
    exclude: Option<EntityId>,
    k: usize,
    measure: &M,
    config: &PlannerConfig,
) -> QueryPlan {
    // A fully disabled planner computes nothing at all: every shard is
    // admitted as a tree search in shard-index order, with the trivial
    // (+inf) upper bound — the baseline paths must not pay per-shard
    // synopsis evaluation they are benchmarked against.  (A latency budget
    // on an otherwise disabled planner still gets the cost model: budgets
    // are a promise to the caller, not an optimisation.)
    let planning_active = config.seed_threshold || config.skip_shards || config.scan_cutoff > 0;
    if !planning_active && config.latency_budget_us.is_none() {
        let shards = shards
            .iter()
            .enumerate()
            .map(|(i, shard)| ShardPlan {
                shard: i,
                entities: shard.synopsis().num_entities(),
                upper_bound: f64::INFINITY,
                decision: ShardDecision::TreeSearch,
                pages: None,
            })
            .collect();
        return QueryPlan {
            k,
            seed: f64::NEG_INFINITY,
            seed_candidates: 0,
            shards,
            planner: *config,
        };
    }

    let plan_start = std::time::Instant::now();
    let levels = query.num_levels() as u8;
    let query_sizes: Vec<usize> = (1..=levels).map(|l| query.level(l).len()).collect();

    // Threshold seeding: score the sketch candidates exactly; the heap's
    // threshold is -inf until k candidates are held, which is precisely the
    // soundness condition (fewer than k scored candidates prove nothing).
    let mut seed = f64::NEG_INFINITY;
    let mut seed_candidates = 0usize;
    if config.seed_threshold && k > 0 {
        let mut top = TopKHeap::new(k);
        let view = crate::kernel::QueryView::new(query);
        let mut scratch = trace_model::LevelOverlap::default();
        for shard in shards {
            let arena = shard.arena();
            for &hot in shard.synopsis().hot_entities() {
                if Some(hot) == exclude {
                    continue;
                }
                // The synopsis travels with its snapshot (as does the arena),
                // so every sketched id is indexed; tolerate a miss anyway
                // (costs seed quality, never correctness).
                let Some(pos) = arena.position(hot) else { continue };
                seed_candidates += 1;
                top.offer(hot, arena.degree_into(pos, &view, measure, &mut scratch));
            }
        }
        seed = top.threshold();
    }

    let mut admitted: Vec<ShardPlan> = Vec::with_capacity(shards.len());
    let mut skipped: Vec<ShardPlan> = Vec::new();
    for (i, shard) in shards.iter().enumerate() {
        let synopsis: &Synopsis = shard.synopsis();
        let entities = synopsis.num_entities();
        let upper_bound = synopsis.degree_upper_bound(&query_sizes, measure);
        // Both skip certificates are strict, mirroring the executor's
        // tie-complete pruning: a shard *tying* the seed may hold an
        // equal-degree entity that enters the top-k through the id
        // tie-break, so it is never skipped.  Empty shards are tree-searched
        // (the executor no-ops on an empty tree, exactly as the pre-planner
        // fan-out did) rather than scanned.
        let decision = if config.skip_shards && seed > upper_bound {
            ShardDecision::Skip
        } else if entities > 0 && entities <= config.scan_cutoff {
            ShardDecision::Scan
        } else {
            ShardDecision::TreeSearch
        };
        let plan = ShardPlan { shard: i, entities, upper_bound, decision, pages: None };
        if decision == ShardDecision::Skip {
            skipped.push(plan);
        } else {
            admitted.push(plan);
        }
    }
    // Most promising first; ties by shard index for determinism.
    admitted.sort_by(|a, b| {
        b.upper_bound.total_cmp(&a.upper_bound).then_with(|| a.shard.cmp(&b.shard))
    });
    apply_latency_budget(
        &mut admitted,
        shards,
        config,
        plan_start.elapsed().as_nanos(),
        seed_candidates,
        0,
    );
    admitted.extend(skipped);
    QueryPlan { k, seed, seed_candidates, shards: admitted, planner: *config }
}

/// Nanoseconds assumed per exact degree evaluation when the plan scored no
/// seed candidates to calibrate against (seeding off, or an empty sketch).
/// Deliberately on the measured path's high side: over-estimating exact cost
/// degrades a little too eagerly, which is the correct failure direction for
/// a latency promise.
pub(crate) const FALLBACK_NS_PER_DEGREE: u64 = 200;

/// Multiplier on the calibrated per-evaluation cost when pricing a *scan*
/// of a whole shard.  The calibration times the seeding pass, whose handful
/// of sketch evaluations run against warm arena rows; a streaming scan (or
/// the leaf evaluations of a large tree search) pays cold rows on every
/// step and measures several times slower.  Over-pricing makes the budget
/// pass degrade slightly too eagerly and sample slightly too thin for the
/// head-room — both land the query *under* its budget, which is the
/// correct failure direction for a latency promise.
pub(crate) const SCAN_COST_CONSERVATISM: u64 = 5;

/// Estimated cost (ns) of the sampled fallback scan a mid-flight abandon
/// pays: `floor_rate × entities` degree evaluations at the same
/// conservatively-scaled `ns_per_degree` calibration the budget pass
/// priced shards with (the timed seeding pass over `seed_candidates`
/// evaluations, or [`FALLBACK_NS_PER_DEGREE`] when nothing was seeded).
/// The deadline drives subtract this *reserve* from the deadline they hand
/// a tree search: abandoning at the raw deadline would still pay the
/// fallback scan after it, overshooting the budget by exactly that scan.
pub(crate) fn fallback_reserve_ns(
    floor_rate: f64,
    entities: usize,
    seed_candidates: usize,
    planning_us: u64,
) -> u64 {
    let ns_per_degree = if seed_candidates > 0 && planning_us > 0 {
        (planning_us.saturating_mul(1_000) / seed_candidates as u64).max(1)
    } else {
        FALLBACK_NS_PER_DEGREE
    };
    let scan_ns = ns_per_degree.saturating_mul(SCAN_COST_CONSERVATISM);
    (floor_rate.clamp(0.0, 1.0) * entities as f64 * scan_ns as f64) as u64
}

/// The budget pass: downgrades the cheapest-to-lose suffix of the admitted
/// shards (they are already sorted most-promising-first) to sampled scans
/// until the cost estimate fits [`PlannerConfig::latency_budget_us`].
///
/// The exact cost of a shard is `entities × ns_per_degree` — the flat-scan
/// worst case, which also upper-bounds what its tree search can do — plus
/// `cold_pages × miss_latency_us` out of core.  `ns_per_degree` is
/// calibrated from the seeding pass the planner just timed (`planning_ns`
/// over `seed_candidates` real evaluations of this very query) so the model
/// tracks the machine and the query's sequence sizes; with nothing to
/// calibrate against, [`FALLBACK_NS_PER_DEGREE`] applies.
///
/// Invariants, by construction: a plan whose total exact estimate fits the
/// budget is untouched (exactness when the budget is not binding); a
/// downgraded shard's rate is never below its synopsis'
/// [`min_rate_for_recall`](Synopsis::min_rate_for_recall) for the
/// configured floor; and a floor rate reaching 1.0 leaves the shard exact
/// (sampling everything *is* the exact scan, minus honesty).
///
/// `miss_latency_us` is 0 for in-memory plans.
fn apply_latency_budget(
    admitted: &mut [ShardPlan],
    shards: &[Arc<IndexSnapshot>],
    config: &PlannerConfig,
    planning_ns: u128,
    seed_candidates: usize,
    miss_latency_us: u64,
) {
    let Some(budget_us) = config.latency_budget_us else { return };
    let budget_ns = (budget_us as u128).saturating_mul(1_000);
    let ns_per_degree = if seed_candidates > 0 && planning_ns > 0 {
        ((planning_ns / seed_candidates as u128).max(1)).min(u64::MAX as u128) as u64
    } else {
        FALLBACK_NS_PER_DEGREE
    };
    // Planning time already spent counts against the budget: the deadline
    // the executor will enforce starts at query arrival, not at plan end.
    let mut spent_ns = planning_ns;
    for plan in admitted.iter_mut() {
        let exact_ns = exact_cost_ns(plan, ns_per_degree, miss_latency_us);
        if spent_ns.saturating_add(exact_ns) <= budget_ns {
            spent_ns = spent_ns.saturating_add(exact_ns);
            continue;
        }
        // Over budget from here on: sample this shard at the cheapest rate
        // the head-room affords, floored by the recall promise.
        let synopsis: &Synopsis = shards[plan.shard].synopsis();
        let floor_rate = synopsis.min_rate_for_recall(config.recall_floor);
        let headroom = budget_ns.saturating_sub(spent_ns);
        let budget_rate = if exact_ns == 0 { 1.0 } else { headroom as f64 / exact_ns as f64 };
        let rate = budget_rate.max(floor_rate).clamp(0.0, 1.0);
        if rate >= 1.0 {
            // The recall floor forbids sampling thin enough to matter (or
            // the shard is free anyway): stay exact.
            spent_ns = spent_ns.saturating_add(exact_ns);
            continue;
        }
        plan.decision = ShardDecision::ApproximateScan { rate };
        spent_ns = spent_ns.saturating_add((exact_ns as f64 * rate) as u128);
    }
}

/// The planner's exact-cost estimate of one admitted shard, in nanoseconds.
/// The compute term carries [`SCAN_COST_CONSERVATISM`]: whole-shard
/// evaluation streams cold arena rows the warm seeding calibration cannot
/// see.
fn exact_cost_ns(plan: &ShardPlan, ns_per_degree: u64, miss_latency_us: u64) -> u128 {
    let compute =
        (plan.entities as u128) * ns_per_degree.saturating_mul(SCAN_COST_CONSERVATISM) as u128;
    let io =
        plan.pages.map_or(0u128, |p| p.cold_pages() as u128) * (miss_latency_us as u128) * 1_000;
    compute + io
}

/// Whether a deterministic sampled scan at `rate` includes `entity`: a
/// SplitMix64 finalizer over the salted id compared against `rate`'s slice
/// of the hash range.  Pure — the same entity is in or out of the sample at
/// a given rate on every run, every shard and every machine, which keeps
/// degraded answers reproducible.
pub fn sample_includes(entity: EntityId, rate: f64) -> bool {
    if rate >= 1.0 {
        return true;
    }
    if rate <= 0.0 {
        return false;
    }
    let mut z = entity.raw().wrapping_add(0xA0761D6478BD642F);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z as f64) < rate * (u64::MAX as f64)
}

/// [`plan_query`] for the out-of-core path: the same answer-invariant
/// decisions, but the cost model reasons in **pages**, not entity counts.
///
/// * Seed candidates are scored through the paged `source` — threshold
///   seeding honestly pays (and warms) buffer-pool I/O for the sketch
///   entities' traces, exactly as the executors will at the leaves.
/// * Every shard carries a [`PageEstimate`] (`shard_pages[i]` probed against
///   the pool in one lock), rendered by [`QueryPlan::explain`].
/// * A shard is answered by the flat **scan** only when it is small *and*
///   fully resident (`cold_pages == 0`): a scan touches every member's
///   trace, so on a cold shard it would pay the worst-case I/O the tree
///   search exists to avoid — `scan_cutoff` reasons in I/O, not entities.
/// * Admitted-shard **ordering** breaks upper-bound ties by `cold_pages`
///   ascending: of equally promising shards, the one needing the least disk
///   I/O raises the shared bound soonest.
///
/// Estimates are advisory (residency moves under concurrency), which is why
/// they only ever steer *cost* decisions; the skip certificate stays the
/// strict synopsis inequality of [`plan_query`], so paged plans return
/// bitwise-identical answers (`tests/paged_conformance.rs`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn plan_query_paged<M: AssociationMeasure + ?Sized>(
    shards: &[Arc<IndexSnapshot>],
    query: &CellSetSequence,
    exclude: Option<EntityId>,
    k: usize,
    measure: &M,
    config: &PlannerConfig,
    source: &crate::engine::PagedSource<'_>,
    shard_pages: &[Vec<trace_storage::PageId>],
    pool: &trace_storage::BufferPool<'_>,
) -> QueryPlan {
    debug_assert_eq!(shards.len(), shard_pages.len());
    let planning_active = config.seed_threshold || config.skip_shards || config.scan_cutoff > 0;
    if !planning_active && config.latency_budget_us.is_none() {
        // The disabled baseline mirrors `plan_query`: nothing computed, no
        // page probes, every shard tree-searched in index order.
        return plan_query(shards, query, exclude, k, measure, config);
    }

    let plan_start = std::time::Instant::now();
    let levels = query.num_levels() as u8;
    let query_sizes: Vec<usize> = (1..=levels).map(|l| query.level(l).len()).collect();

    let mut seed = f64::NEG_INFINITY;
    let mut seed_candidates = 0usize;
    if config.seed_threshold && k > 0 {
        use crate::engine::TraceSource as _;
        let mut top = TopKHeap::new(k);
        for shard in shards {
            for &hot in shard.synopsis().hot_entities() {
                if Some(hot) == exclude {
                    continue;
                }
                // Paged seeding: the sketch names the candidates, the store
                // provides their traces.  A sketch entity missing from the
                // store only weakens the seed, never an answer.
                let Some(seq) = source.sequence(hot) else { continue };
                seed_candidates += 1;
                top.offer(hot, measure.degree(query, seq.as_ref()));
            }
        }
        seed = top.threshold();
    }

    let mut admitted: Vec<ShardPlan> = Vec::with_capacity(shards.len());
    let mut skipped: Vec<ShardPlan> = Vec::new();
    for (i, shard) in shards.iter().enumerate() {
        let synopsis: &Synopsis = shard.synopsis();
        let entities = synopsis.num_entities();
        let upper_bound = synopsis.degree_upper_bound(&query_sizes, measure);
        let estimate = PageEstimate {
            total_pages: shard_pages[i].len(),
            resident_pages: pool.resident_count(&shard_pages[i]),
        };
        let decision = if config.skip_shards && seed > upper_bound {
            ShardDecision::Skip
        } else if entities > 0 && entities <= config.scan_cutoff && estimate.cold_pages() == 0 {
            ShardDecision::Scan
        } else {
            ShardDecision::TreeSearch
        };
        let plan = ShardPlan { shard: i, entities, upper_bound, decision, pages: Some(estimate) };
        if decision == ShardDecision::Skip {
            skipped.push(plan);
        } else {
            admitted.push(plan);
        }
    }
    // Most promising first; of equally promising shards, least cold I/O
    // first; ties by shard index for determinism.
    admitted.sort_by(|a, b| {
        let cold = |p: &ShardPlan| p.pages.map_or(0, |e| e.cold_pages());
        b.upper_bound
            .total_cmp(&a.upper_bound)
            .then_with(|| cold(a).cmp(&cold(b)))
            .then_with(|| a.shard.cmp(&b.shard))
    });
    // Out of core the exact cost of a shard includes fetching its cold
    // pages at the pool's configured miss latency — the dominant term at
    // tight budgets, which is exactly when the budget pass matters.
    apply_latency_budget(
        &mut admitted,
        shards,
        config,
        plan_start.elapsed().as_nanos(),
        seed_candidates,
        pool.config().miss_latency_us,
    );
    admitted.extend(skipped);
    QueryPlan { k, seed, seed_candidates, shards: admitted, planner: *config }
}

/// One group of a [`BatchPlan`]: the batch queries (by input index) whose
/// plans share an identical admitted-shard *footprint* — the same shards, in
/// the same driving order, under the same decisions.  Queries in one group
/// run the same executor/scan skeleton; only their seeds and degrees differ.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchGroup {
    /// Indices into the batch's query slice, ascending.
    pub queries: Vec<usize>,
    /// The shared skeleton: `(shard index, decision)` in driving order.
    pub footprint: Vec<(usize, ShardDecision)>,
}

/// The amortized plan of one query batch: one [`QueryPlan`] per query (in
/// input order, each identical to what [`ShardedSnapshot::plan`]-per-query
/// would have produced) plus the footprint grouping the batch driver and
/// [`explain`](BatchPlan::explain) expose.
///
/// Amortization happens in *how* the plans are built, not in what they say:
/// every shard's hot-sketch entities are resolved to arena positions once
/// for the whole batch and every query's seeding loop reuses them, so
/// planning cost grows with `sketch × shards + batch × sketch` instead of
/// `batch × (sketch × shards)` lookups — while each query's seed is still
/// scored from its own degrees (a seed is only sound for the query it was
/// scored against), keeping batch plans bitwise identical to per-query
/// plans.
///
/// [`ShardedSnapshot::plan`]: crate::shard::ShardedSnapshot::explain
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPlan {
    /// Per-query plans, in batch input order.
    pub plans: Vec<QueryPlan>,
    /// Footprint groups; within each group query indices ascend, and groups
    /// are ordered by their smallest query index.
    pub groups: Vec<BatchGroup>,
    /// Wall-clock time spent planning the whole batch, in microseconds.
    pub planning_us: u64,
}

impl BatchPlan {
    /// Renders the batch grouping for humans: one block per footprint group
    /// with its member queries and shared shard skeleton.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "BatchPlan: {} quer{} in {} footprint group(s), planned in {} us",
            self.plans.len(),
            if self.plans.len() == 1 { "y" } else { "ies" },
            self.groups.len(),
            self.planning_us,
        );
        for (g, group) in self.groups.iter().enumerate() {
            let _ = writeln!(
                out,
                "  group {:>3}  {} quer{}: {:?}",
                g,
                group.queries.len(),
                if group.queries.len() == 1 { "y" } else { "ies" },
                group.queries,
            );
            for &(shard, decision) in &group.footprint {
                let what = match decision {
                    ShardDecision::TreeSearch => "tree-search".to_string(),
                    ShardDecision::Scan => "scan".to_string(),
                    ShardDecision::Skip => "skip".to_string(),
                    ShardDecision::ApproximateScan { rate } => {
                        format!("approximate-scan (rate={rate:.3})")
                    }
                };
                let _ = writeln!(out, "             shard {shard:>3}  {what}");
            }
        }
        out
    }
}

/// A decision's footprint key: discriminant plus the rate's exact bits, so
/// approximate shards only group when their sample rates agree.
fn decision_key(decision: ShardDecision) -> (u8, u64) {
    match decision {
        ShardDecision::Skip => (0, 0),
        ShardDecision::Scan => (1, 0),
        ShardDecision::TreeSearch => (2, 0),
        ShardDecision::ApproximateScan { rate } => (3, rate.to_bits()),
    }
}

/// Plans a whole batch in one pass; see [`BatchPlan`] for the amortization
/// and identity contracts.  `queries` pairs each query sequence with its
/// excluded entity (the query entity itself on entity batches).
pub(crate) fn plan_batch<M: AssociationMeasure + ?Sized>(
    shards: &[Arc<IndexSnapshot>],
    queries: &[(&CellSetSequence, Option<EntityId>)],
    k: usize,
    measure: &M,
    config: &PlannerConfig,
) -> BatchPlan {
    let batch_start = std::time::Instant::now();
    let planning_active = config.seed_threshold || config.skip_shards || config.scan_cutoff > 0;

    // The one-pass amortization: resolve every shard's sketch ids against
    // its arena once, up front; each query's seeding loop then reuses the
    // positions instead of re-running `sketch × shards` binary searches.
    let hot_positions: Vec<Vec<(EntityId, usize)>> = if planning_active && config.seed_threshold {
        shards
            .iter()
            .map(|shard| {
                let arena = shard.arena();
                shard
                    .synopsis()
                    .hot_entities()
                    .iter()
                    .filter_map(|&hot| arena.position(hot).map(|pos| (hot, pos)))
                    .collect()
            })
            .collect()
    } else {
        Vec::new()
    };

    let mut plans: Vec<QueryPlan> = Vec::with_capacity(queries.len());
    let mut scratch = trace_model::LevelOverlap::default();
    for &(query, exclude) in queries {
        if !planning_active && config.latency_budget_us.is_none() {
            plans.push(plan_query(shards, query, exclude, k, measure, config));
            continue;
        }
        let plan_start = std::time::Instant::now();
        let levels = query.num_levels() as u8;
        let query_sizes: Vec<usize> = (1..=levels).map(|l| query.level(l).len()).collect();

        // Per-query seeding over the shared positions: same candidates in
        // the same order as `plan_query`, so the same seed — degrees depend
        // on the query, which is why the *values* cannot be shared.
        let mut seed = f64::NEG_INFINITY;
        let mut seed_candidates = 0usize;
        if config.seed_threshold && k > 0 {
            let mut top = TopKHeap::new(k);
            let view = crate::kernel::QueryView::new(query);
            for (shard, positions) in shards.iter().zip(&hot_positions) {
                let arena = shard.arena();
                for &(hot, pos) in positions {
                    if Some(hot) == exclude {
                        continue;
                    }
                    seed_candidates += 1;
                    top.offer(hot, arena.degree_into(pos, &view, measure, &mut scratch));
                }
            }
            seed = top.threshold();
        }

        let mut admitted: Vec<ShardPlan> = Vec::with_capacity(shards.len());
        let mut skipped: Vec<ShardPlan> = Vec::new();
        for (i, shard) in shards.iter().enumerate() {
            let synopsis: &Synopsis = shard.synopsis();
            let entities = synopsis.num_entities();
            let upper_bound = synopsis.degree_upper_bound(&query_sizes, measure);
            let decision = if config.skip_shards && seed > upper_bound {
                ShardDecision::Skip
            } else if entities > 0 && entities <= config.scan_cutoff {
                ShardDecision::Scan
            } else {
                ShardDecision::TreeSearch
            };
            let plan = ShardPlan { shard: i, entities, upper_bound, decision, pages: None };
            if decision == ShardDecision::Skip {
                skipped.push(plan);
            } else {
                admitted.push(plan);
            }
        }
        admitted.sort_by(|a, b| {
            b.upper_bound.total_cmp(&a.upper_bound).then_with(|| a.shard.cmp(&b.shard))
        });
        apply_latency_budget(
            &mut admitted,
            shards,
            config,
            plan_start.elapsed().as_nanos(),
            seed_candidates,
            0,
        );
        admitted.extend(skipped);
        plans.push(QueryPlan { k, seed, seed_candidates, shards: admitted, planner: *config });
    }

    // Group by admitted footprint (ordered shard/decision skeleton).
    type FootprintKey = Vec<(usize, (u8, u64))>;
    let mut groups: Vec<BatchGroup> = Vec::new();
    let mut index: std::collections::HashMap<FootprintKey, usize> =
        std::collections::HashMap::new();
    for (q, plan) in plans.iter().enumerate() {
        let key: FootprintKey =
            plan.admitted().map(|s| (s.shard, decision_key(s.decision))).collect();
        match index.get(&key) {
            Some(&g) => groups[g].queries.push(q),
            None => {
                index.insert(key, groups.len());
                groups.push(BatchGroup {
                    queries: vec![q],
                    footprint: plan.admitted().map(|s| (s.shard, s.decision)).collect(),
                });
            }
        }
    }

    BatchPlan { plans, groups, planning_us: batch_start.elapsed().as_micros() as u64 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use crate::testkit::{PairedConfig, Workload};

    fn shards_of(w: &Workload, n: usize) -> Vec<Arc<IndexSnapshot>> {
        let sharded = crate::shard::ShardedMinSigIndex::build(
            &w.sp,
            &w.traces,
            IndexConfig::with_hash_functions(16),
            n,
        )
        .unwrap();
        (0..n).map(|i| sharded.shard(i).snapshot()).collect()
    }

    #[test]
    fn disabled_planner_admits_every_shard_unseeded() {
        let w = Workload::paired(PairedConfig::default());
        let shards = shards_of(&w, 4);
        let query =
            shards.iter().find_map(|s| s.sequence(trace_model::EntityId(0))).unwrap().clone();
        let plan = plan_query(
            &shards,
            &query,
            Some(trace_model::EntityId(0)),
            3,
            &w.measure(),
            &PlannerConfig::disabled(),
        );
        assert!(!plan.seeded());
        assert_eq!(plan.seed_candidates, 0);
        assert_eq!(plan.shards_skipped(), 0);
        assert_eq!(plan.shards.len(), 4);
        assert!(plan.shards.iter().all(|s| s.decision == ShardDecision::TreeSearch));
    }

    #[test]
    fn default_planner_seeds_and_orders_most_promising_first() {
        let w = Workload::paired(PairedConfig::default());
        let shards = shards_of(&w, 3);
        let query =
            shards.iter().find_map(|s| s.sequence(trace_model::EntityId(0))).unwrap().clone();
        let plan = plan_query(
            &shards,
            &query,
            Some(trace_model::EntityId(0)),
            2,
            &w.measure(),
            &PlannerConfig::default(),
        );
        assert!(plan.seeded(), "a 48-entity population seeds a k=2 query");
        assert!(plan.seed_candidates >= 2);
        let admitted: Vec<&ShardPlan> = plan.admitted().collect();
        for pair in admitted.windows(2) {
            assert!(pair[0].upper_bound >= pair[1].upper_bound, "driving order");
        }
        let text = plan.explain();
        assert!(text.contains("QueryPlan"));
        assert!(text.contains("shard"));
    }

    #[test]
    fn unbinding_budget_never_degrades_the_plan() {
        let w = Workload::paired(PairedConfig::default());
        let shards = shards_of(&w, 4);
        let query =
            shards.iter().find_map(|s| s.sequence(trace_model::EntityId(0))).unwrap().clone();
        let exact = plan_query(
            &shards,
            &query,
            Some(trace_model::EntityId(0)),
            3,
            &w.measure(),
            &PlannerConfig::default(),
        );
        let budgeted = plan_query(
            &shards,
            &query,
            Some(trace_model::EntityId(0)),
            3,
            &w.measure(),
            &PlannerConfig::with_budget(u64::MAX / 2_000),
        );
        assert!(budgeted.is_exact(), "a non-binding budget must not degrade anything");
        let decisions =
            |p: &QueryPlan| p.shards.iter().map(|s| (s.shard, s.decision)).collect::<Vec<_>>();
        assert_eq!(decisions(&exact), decisions(&budgeted));
        assert_eq!(exact.seed, budgeted.seed);
    }

    #[test]
    fn binding_budget_degrades_with_the_floor_honored() {
        let w = Workload::paired(PairedConfig::default());
        let shards = shards_of(&w, 4);
        let query =
            shards.iter().find_map(|s| s.sequence(trace_model::EntityId(0))).unwrap().clone();
        // A 1 µs budget binds on any real population.
        let config = PlannerConfig::with_budget_and_floor(1, 0.5);
        let plan =
            plan_query(&shards, &query, Some(trace_model::EntityId(0)), 3, &w.measure(), &config);
        assert!(
            plan.shards_approximate() > 0,
            "a 1 us budget must force sampling somewhere: {}",
            plan.explain()
        );
        for shard_plan in &plan.shards {
            if let ShardDecision::ApproximateScan { rate } = shard_plan.decision {
                let floor = shards[shard_plan.shard].synopsis().min_rate_for_recall(0.5);
                assert!(rate >= floor - 1e-12, "rate {rate} below floor rate {floor}");
                assert!(rate < 1.0, "rate 1.0 must stay exact instead");
                assert!(
                    shards[shard_plan.shard].synopsis().expected_scan_recall(rate) >= 0.5 - 1e-12
                );
            }
        }
        let text = plan.explain();
        assert!(text.contains("approximate-scan"), "explain renders the new arm: {text}");
    }

    #[test]
    fn strict_recall_floor_refuses_to_degrade() {
        let w = Workload::paired(PairedConfig::default());
        let shards = shards_of(&w, 2);
        let query =
            shards.iter().find_map(|s| s.sequence(trace_model::EntityId(0))).unwrap().clone();
        // recall_floor 1.0 ⇒ min rate 1.0 everywhere ⇒ sampling can never
        // help, so even an impossible budget leaves the plan exact.
        let config = PlannerConfig::with_budget_and_floor(1, 1.0);
        let plan =
            plan_query(&shards, &query, Some(trace_model::EntityId(0)), 3, &w.measure(), &config);
        assert!(plan.is_exact(), "a 1.0 recall floor forbids all sampling");
    }

    #[test]
    fn batch_plans_equal_per_query_plans_and_group_by_footprint() {
        let w = Workload::paired(PairedConfig::default());
        let shards = shards_of(&w, 4);
        let measure = w.measure();
        let ids: Vec<trace_model::EntityId> = (0..6u64).map(trace_model::EntityId).collect();
        let queries: Vec<(&CellSetSequence, Option<EntityId>)> = ids
            .iter()
            .filter_map(|&e| shards.iter().find_map(|s| s.sequence(e)).map(|seq| (seq, Some(e))))
            .collect();
        assert!(queries.len() >= 2, "the paired workload indexes the probe ids");
        let config = PlannerConfig::default();
        let batch = plan_batch(&shards, &queries, 3, &measure, &config);
        assert_eq!(batch.plans.len(), queries.len());
        for (i, &(seq, exclude)) in queries.iter().enumerate() {
            let single = plan_query(&shards, seq, exclude, 3, &measure, &config);
            assert_eq!(batch.plans[i], single, "batch plan {i} diverged from per-query planning");
        }
        // Groups partition the batch.
        let mut seen: Vec<usize> = batch.groups.iter().flat_map(|g| g.queries.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..queries.len()).collect::<Vec<_>>());
        let text = batch.explain();
        assert!(text.contains("BatchPlan"), "{text}");
        assert!(text.contains("group"), "{text}");
    }

    #[test]
    fn sampling_is_deterministic_and_tracks_the_rate() {
        let e = trace_model::EntityId(12345);
        assert!(sample_includes(e, 1.0));
        assert!(!sample_includes(e, 0.0));
        for rate in [0.1, 0.5, 0.9] {
            assert_eq!(sample_includes(e, rate), sample_includes(e, rate), "pure function");
        }
        // The empirical inclusion fraction tracks the rate on a large range.
        for rate in [0.25, 0.5, 0.75] {
            let hits =
                (0..10_000u64).filter(|&i| sample_includes(trace_model::EntityId(i), rate)).count();
            let fraction = hits as f64 / 10_000.0;
            assert!((fraction - rate).abs() < 0.05, "rate {rate} drew fraction {fraction}");
        }
    }
}
