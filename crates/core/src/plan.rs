//! Cost-based planning for sharded top-k queries.
//!
//! PR 4's cooperative scheduler made cross-shard fan-out cheap *per node*,
//! but every query still opened an executor on every shard with a cold
//! top-k threshold.  The planner closes that gap by consuming the per-shard
//! [`Synopsis`] *before* any traversal:
//!
//! 1. **threshold seeding** — the exact degrees of the shards' sketch
//!    entities are computed against the query; once `k` real candidates are
//!    scored, their k-th best degree is a provable lower bound on the global
//!    k-th-best degree `G` (any `≥ k`-subset's k-th best is `≤ G`), and the
//!    search starts from that bar instead of `-inf`;
//! 2. **shard skipping** — a shard whose synopsis
//!    [`degree_upper_bound`](Synopsis::degree_upper_bound) is *strictly
//!    below* the seed provably holds no top-k entity (every member's degree
//!    `≤ upper < seed ≤ G`), so the query never touches it — the same
//!    certain-answer separation the consistent-query-answering literature
//!    applies to repairs, applied to shards;
//! 3. **admission ordering** — admitted shards are driven
//!    most-promising-first (synopsis upper bound descending), so the shard
//!    most likely to raise the shared bound runs first;
//! 4. **access-path choice** — shards at or below the
//!    [`scan_cutoff`](crate::config::PlannerConfig::scan_cutoff) are answered
//!    by the flat exact scan (no frontier bookkeeping); larger shards get the
//!    best-first tree search.
//!
//! None of the four decisions can change an answer: seeding and skipping are
//! justified by the strict-pruning argument above (ties at `G` survive
//! because both comparisons are strict), ordering is schedule-freedom the
//! executor already guarantees, and the flat scan is bitwise identical to an
//! exhausted tree search.  `tests/planner_conformance.rs` proptests exactly
//! this, over arbitrary shard counts, sketch sizes and knob settings.
//!
//! The plan itself is a first-class value: [`ShardedSnapshot::explain`]
//! returns the [`QueryPlan`] without executing it, and
//! [`QueryPlan::explain`] renders it for humans.
//!
//! [`ShardedSnapshot::explain`]: crate::shard::ShardedSnapshot::explain

use crate::config::PlannerConfig;
use crate::engine::TopKHeap;
use crate::snapshot::IndexSnapshot;
use crate::synopsis::Synopsis;
use std::fmt::Write as _;
use std::sync::Arc;
use trace_model::{AssociationMeasure, CellSetSequence, EntityId};

/// How the planner decided to treat one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardDecision {
    /// The shard's synopsis upper bound cannot beat the seeded threshold:
    /// provably no top-k entity lives there, so the query never opens it.
    /// (An empty shard's bound is `-inf`, so any seeded query proves it
    /// away; unseeded, it is tree-searched — the executor no-ops on an
    /// empty tree.)
    Skip,
    /// The shard is small enough that a flat exact scan beats the frontier
    /// bookkeeping of a tree search.
    Scan,
    /// The shard gets a best-first tree executor under the query's bound.
    TreeSearch,
}

/// A shard's page-residency estimate at plan time: how many distinct store
/// pages its members' traces span, and how many of those were resident in
/// the buffer pool when the plan was built.
///
/// Estimates feed the paged planner's I/O reasoning — [`cold_pages`]
/// gates the flat-scan access path and breaks shard-ordering ties — and are
/// **advisory only**: residency can change the instant the plan runs, so no
/// decision built on an estimate may affect an answer, only cost.
///
/// [`cold_pages`]: PageEstimate::cold_pages
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageEstimate {
    /// Distinct store pages holding this shard's traces.
    pub total_pages: usize,
    /// How many of those were buffer-pool resident at plan time.
    pub resident_pages: usize,
}

impl PageEstimate {
    /// Pages a full shard read would have to fetch from disk (at plan time).
    pub fn cold_pages(&self) -> usize {
        self.total_pages.saturating_sub(self.resident_pages)
    }
}

/// The planner's verdict for one shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardPlan {
    /// Shard index in the sharded snapshot.
    pub shard: usize,
    /// Entities the shard holds.
    pub entities: usize,
    /// The synopsis upper bound on any member's degree against this query
    /// (`-inf` for an empty shard; the trivial `+inf` when the planner is
    /// fully disabled and nothing was computed).
    pub upper_bound: f64,
    /// What the executor does with the shard.
    pub decision: ShardDecision,
    /// Page-residency estimate (paged plans with an active planner only;
    /// `None` on in-memory plans and on the disabled-planner baseline).
    pub pages: Option<PageEstimate>,
}

/// The executable plan of one sharded top-k query: the seeded threshold plus
/// one [`ShardPlan`] per shard, admitted shards first in driving order
/// (synopsis upper bound descending, shard index ascending), skipped shards
/// last.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// Requested result size.
    pub k: usize,
    /// The seeded lower bound on the global k-th-best degree (`-inf` when
    /// seeding is disabled or fewer than `k` sketch candidates exist).
    pub seed: f64,
    /// How many sketch candidates were scored exactly to derive the seed.
    pub seed_candidates: usize,
    /// Per-shard verdicts; admitted shards first, in driving order.
    pub shards: Vec<ShardPlan>,
    /// The knobs the plan was built under.
    pub planner: PlannerConfig,
}

impl QueryPlan {
    /// Number of shards the plan proves cannot contribute.
    pub fn shards_skipped(&self) -> usize {
        self.shards.iter().filter(|s| s.decision == ShardDecision::Skip).count()
    }

    /// True when a threshold seed was derived (and will be published to the
    /// search bound before any traversal).
    pub fn seeded(&self) -> bool {
        self.seed > f64::NEG_INFINITY
    }

    /// The admitted shards in driving order (most promising first).
    pub fn admitted(&self) -> impl Iterator<Item = &ShardPlan> {
        self.shards.iter().filter(|s| s.decision != ShardDecision::Skip)
    }

    /// Renders the plan for humans: the seed, then one line per shard in
    /// plan order with its population, upper bound and decision.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "QueryPlan: k={}, seed={} ({} sketch candidates scored), \
             {} shard(s) admitted, {} skipped",
            self.k,
            if self.seeded() { format!("{:.6}", self.seed) } else { "none".to_string() },
            self.seed_candidates,
            self.shards.len() - self.shards_skipped(),
            self.shards_skipped(),
        );
        for plan in &self.shards {
            let decision = match plan.decision {
                ShardDecision::TreeSearch => "tree-search",
                ShardDecision::Scan => "scan",
                ShardDecision::Skip if plan.entities == 0 => "skip (empty shard)",
                ShardDecision::Skip => "skip (upper bound below seed)",
            };
            let pages = match plan.pages {
                Some(p) => format!(
                    " pages={} ({} resident, {} cold)",
                    p.total_pages,
                    p.resident_pages,
                    p.cold_pages()
                ),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "  shard {:>3}  entities={:<8} upper={:<12} {}{}",
                plan.shard,
                plan.entities,
                if plan.upper_bound == f64::NEG_INFINITY {
                    "-inf".to_string()
                } else {
                    format!("{:.6}", plan.upper_bound)
                },
                decision,
                pages,
            );
        }
        out
    }
}

/// Builds the plan of one query over a set of shard snapshots.
///
/// The exact degree evaluations spent on seeding are recorded in the plan's
/// [`seed_candidates`](QueryPlan::seed_candidates) field (the executor
/// charges them to the query's `entities_checked`, because they are real
/// candidate evaluations).  The caller guarantees the query sequence matches
/// the shards' level count.
///
/// A fully disabled config ([`PlannerConfig::disabled`]) produces the
/// faithful pre-planner baseline: every shard admitted as a tree search, in
/// shard-index order — no seeding, no skipping, no scans and **no
/// reordering**, so the `*_with_scheduler` paths measure exactly the PR 4
/// scheduler.
pub(crate) fn plan_query<M: AssociationMeasure + ?Sized>(
    shards: &[Arc<IndexSnapshot>],
    query: &CellSetSequence,
    exclude: Option<EntityId>,
    k: usize,
    measure: &M,
    config: &PlannerConfig,
) -> QueryPlan {
    // A fully disabled planner computes nothing at all: every shard is
    // admitted as a tree search in shard-index order, with the trivial
    // (+inf) upper bound — the baseline paths must not pay per-shard
    // synopsis evaluation they are benchmarked against.
    let planning_active = config.seed_threshold || config.skip_shards || config.scan_cutoff > 0;
    if !planning_active {
        let shards = shards
            .iter()
            .enumerate()
            .map(|(i, shard)| ShardPlan {
                shard: i,
                entities: shard.synopsis().num_entities(),
                upper_bound: f64::INFINITY,
                decision: ShardDecision::TreeSearch,
                pages: None,
            })
            .collect();
        return QueryPlan {
            k,
            seed: f64::NEG_INFINITY,
            seed_candidates: 0,
            shards,
            planner: *config,
        };
    }

    let levels = query.num_levels() as u8;
    let query_sizes: Vec<usize> = (1..=levels).map(|l| query.level(l).len()).collect();

    // Threshold seeding: score the sketch candidates exactly; the heap's
    // threshold is -inf until k candidates are held, which is precisely the
    // soundness condition (fewer than k scored candidates prove nothing).
    let mut seed = f64::NEG_INFINITY;
    let mut seed_candidates = 0usize;
    if config.seed_threshold && k > 0 {
        let mut top = TopKHeap::new(k);
        let view = crate::kernel::QueryView::new(query);
        let mut scratch = trace_model::LevelOverlap::default();
        for shard in shards {
            let arena = shard.arena();
            for &hot in shard.synopsis().hot_entities() {
                if Some(hot) == exclude {
                    continue;
                }
                // The synopsis travels with its snapshot (as does the arena),
                // so every sketched id is indexed; tolerate a miss anyway
                // (costs seed quality, never correctness).
                let Some(pos) = arena.position(hot) else { continue };
                seed_candidates += 1;
                top.offer(hot, arena.degree_into(pos, &view, measure, &mut scratch));
            }
        }
        seed = top.threshold();
    }

    let mut admitted: Vec<ShardPlan> = Vec::with_capacity(shards.len());
    let mut skipped: Vec<ShardPlan> = Vec::new();
    for (i, shard) in shards.iter().enumerate() {
        let synopsis: &Synopsis = shard.synopsis();
        let entities = synopsis.num_entities();
        let upper_bound = synopsis.degree_upper_bound(&query_sizes, measure);
        // Both skip certificates are strict, mirroring the executor's
        // tie-complete pruning: a shard *tying* the seed may hold an
        // equal-degree entity that enters the top-k through the id
        // tie-break, so it is never skipped.  Empty shards are tree-searched
        // (the executor no-ops on an empty tree, exactly as the pre-planner
        // fan-out did) rather than scanned.
        let decision = if config.skip_shards && seed > upper_bound {
            ShardDecision::Skip
        } else if entities > 0 && entities <= config.scan_cutoff {
            ShardDecision::Scan
        } else {
            ShardDecision::TreeSearch
        };
        let plan = ShardPlan { shard: i, entities, upper_bound, decision, pages: None };
        if decision == ShardDecision::Skip {
            skipped.push(plan);
        } else {
            admitted.push(plan);
        }
    }
    // Most promising first; ties by shard index for determinism.
    admitted.sort_by(|a, b| {
        b.upper_bound.total_cmp(&a.upper_bound).then_with(|| a.shard.cmp(&b.shard))
    });
    admitted.extend(skipped);
    QueryPlan { k, seed, seed_candidates, shards: admitted, planner: *config }
}

/// [`plan_query`] for the out-of-core path: the same answer-invariant
/// decisions, but the cost model reasons in **pages**, not entity counts.
///
/// * Seed candidates are scored through the paged `source` — threshold
///   seeding honestly pays (and warms) buffer-pool I/O for the sketch
///   entities' traces, exactly as the executors will at the leaves.
/// * Every shard carries a [`PageEstimate`] (`shard_pages[i]` probed against
///   the pool in one lock), rendered by [`QueryPlan::explain`].
/// * A shard is answered by the flat **scan** only when it is small *and*
///   fully resident (`cold_pages == 0`): a scan touches every member's
///   trace, so on a cold shard it would pay the worst-case I/O the tree
///   search exists to avoid — `scan_cutoff` reasons in I/O, not entities.
/// * Admitted-shard **ordering** breaks upper-bound ties by `cold_pages`
///   ascending: of equally promising shards, the one needing the least disk
///   I/O raises the shared bound soonest.
///
/// Estimates are advisory (residency moves under concurrency), which is why
/// they only ever steer *cost* decisions; the skip certificate stays the
/// strict synopsis inequality of [`plan_query`], so paged plans return
/// bitwise-identical answers (`tests/paged_conformance.rs`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn plan_query_paged<M: AssociationMeasure + ?Sized>(
    shards: &[Arc<IndexSnapshot>],
    query: &CellSetSequence,
    exclude: Option<EntityId>,
    k: usize,
    measure: &M,
    config: &PlannerConfig,
    source: &crate::engine::PagedSource<'_>,
    shard_pages: &[Vec<trace_storage::PageId>],
    pool: &trace_storage::BufferPool<'_>,
) -> QueryPlan {
    debug_assert_eq!(shards.len(), shard_pages.len());
    let planning_active = config.seed_threshold || config.skip_shards || config.scan_cutoff > 0;
    if !planning_active {
        // The disabled baseline mirrors `plan_query`: nothing computed, no
        // page probes, every shard tree-searched in index order.
        return plan_query(shards, query, exclude, k, measure, config);
    }

    let levels = query.num_levels() as u8;
    let query_sizes: Vec<usize> = (1..=levels).map(|l| query.level(l).len()).collect();

    let mut seed = f64::NEG_INFINITY;
    let mut seed_candidates = 0usize;
    if config.seed_threshold && k > 0 {
        use crate::engine::TraceSource as _;
        let mut top = TopKHeap::new(k);
        for shard in shards {
            for &hot in shard.synopsis().hot_entities() {
                if Some(hot) == exclude {
                    continue;
                }
                // Paged seeding: the sketch names the candidates, the store
                // provides their traces.  A sketch entity missing from the
                // store only weakens the seed, never an answer.
                let Some(seq) = source.sequence(hot) else { continue };
                seed_candidates += 1;
                top.offer(hot, measure.degree(query, seq.as_ref()));
            }
        }
        seed = top.threshold();
    }

    let mut admitted: Vec<ShardPlan> = Vec::with_capacity(shards.len());
    let mut skipped: Vec<ShardPlan> = Vec::new();
    for (i, shard) in shards.iter().enumerate() {
        let synopsis: &Synopsis = shard.synopsis();
        let entities = synopsis.num_entities();
        let upper_bound = synopsis.degree_upper_bound(&query_sizes, measure);
        let estimate = PageEstimate {
            total_pages: shard_pages[i].len(),
            resident_pages: pool.resident_count(&shard_pages[i]),
        };
        let decision = if config.skip_shards && seed > upper_bound {
            ShardDecision::Skip
        } else if entities > 0 && entities <= config.scan_cutoff && estimate.cold_pages() == 0 {
            ShardDecision::Scan
        } else {
            ShardDecision::TreeSearch
        };
        let plan = ShardPlan { shard: i, entities, upper_bound, decision, pages: Some(estimate) };
        if decision == ShardDecision::Skip {
            skipped.push(plan);
        } else {
            admitted.push(plan);
        }
    }
    // Most promising first; of equally promising shards, least cold I/O
    // first; ties by shard index for determinism.
    admitted.sort_by(|a, b| {
        let cold = |p: &ShardPlan| p.pages.map_or(0, |e| e.cold_pages());
        b.upper_bound
            .total_cmp(&a.upper_bound)
            .then_with(|| cold(a).cmp(&cold(b)))
            .then_with(|| a.shard.cmp(&b.shard))
    });
    admitted.extend(skipped);
    QueryPlan { k, seed, seed_candidates, shards: admitted, planner: *config }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use crate::testkit::{PairedConfig, Workload};

    fn shards_of(w: &Workload, n: usize) -> Vec<Arc<IndexSnapshot>> {
        let sharded = crate::shard::ShardedMinSigIndex::build(
            &w.sp,
            &w.traces,
            IndexConfig::with_hash_functions(16),
            n,
        )
        .unwrap();
        (0..n).map(|i| sharded.shard(i).snapshot()).collect()
    }

    #[test]
    fn disabled_planner_admits_every_shard_unseeded() {
        let w = Workload::paired(PairedConfig::default());
        let shards = shards_of(&w, 4);
        let query =
            shards.iter().find_map(|s| s.sequence(trace_model::EntityId(0))).unwrap().clone();
        let plan = plan_query(
            &shards,
            &query,
            Some(trace_model::EntityId(0)),
            3,
            &w.measure(),
            &PlannerConfig::disabled(),
        );
        assert!(!plan.seeded());
        assert_eq!(plan.seed_candidates, 0);
        assert_eq!(plan.shards_skipped(), 0);
        assert_eq!(plan.shards.len(), 4);
        assert!(plan.shards.iter().all(|s| s.decision == ShardDecision::TreeSearch));
    }

    #[test]
    fn default_planner_seeds_and_orders_most_promising_first() {
        let w = Workload::paired(PairedConfig::default());
        let shards = shards_of(&w, 3);
        let query =
            shards.iter().find_map(|s| s.sequence(trace_model::EntityId(0))).unwrap().clone();
        let plan = plan_query(
            &shards,
            &query,
            Some(trace_model::EntityId(0)),
            2,
            &w.measure(),
            &PlannerConfig::default(),
        );
        assert!(plan.seeded(), "a 48-entity population seeds a k=2 query");
        assert!(plan.seed_candidates >= 2);
        let admitted: Vec<&ShardPlan> = plan.admitted().collect();
        for pair in admitted.windows(2) {
            assert!(pair[0].upper_bound >= pair[1].upper_bound, "driving order");
        }
        let text = plan.explain();
        assert!(text.contains("QueryPlan"));
        assert!(text.contains("shard"));
    }
}
