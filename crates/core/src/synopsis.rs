//! Per-shard synopses: the tiny, provable summaries the query planner
//! ([`crate::plan`]) consumes to skip shards and seed thresholds.
//!
//! A [`Synopsis`] condenses one shard's entity population into three facts,
//! each chosen because it supports a *proof*, not a heuristic:
//!
//! * **per-level cell-capacity caps** — for every sp-index level `l`, the
//!   maximum level-`l` sequence size over the shard's entities.  Any entity's
//!   level-`l` overlap with any query is at most
//!   `min(|query_l|, |entity_l|) ≤ min(|query_l|, cap_l)`, so feeding the
//!   caps through [`AssociationMeasure::upper_bound`] (Theorem 4's artificial
//!   entity) yields a degree **no entity in the shard can exceed** —
//!   the certificate behind shard skipping;
//! * **a top-m degree sketch** — the ids of the shard's `m` *hottest*
//!   entities (largest total cell count, ties by ascending id).  The planner
//!   evaluates their **exact** degrees against the query; the k-th best of
//!   any ≥ k real candidates is a sound lower bound on the global k-th-best
//!   degree, usable to seed the search bound before any traversal.  The
//!   sketch only influences *which* candidates get pre-scored, never what
//!   their degrees are, so a poor sketch costs speed, never correctness;
//! * **the entity count** — lets the planner answer tiny shards with a flat
//!   [`scan`](crate::engine) instead of a tree search (and an empty shard's
//!   `-inf` upper bound makes any seeded query skip it).
//!
//! ## Consistency contract
//!
//! The synopsis always equals [`Synopsis::compute`] over the snapshot it
//! travels with — the caps are exact maxima of the *current* population,
//! never stale upper bounds.  Pure single-entity **inserts** are absorbed
//! incrementally (caps are monotone under growth and the new top-m is the
//! top-m of the old top-m plus the new entity — `O(m log n)`, so streaming
//! per-record inserts stay `O(delta)`); every mutation that can *shrink*
//! sizes (replacement, removal, batch flushes) triggers a full recompute —
//! one `O(entities × levels)` pass over already-materialised sequence
//! lengths; no cell is ever hashed.  Each synopsis records the snapshot
//! [`epoch`](Synopsis::epoch) it was computed at.
//!
//! The synopsis is persisted inside the `MSIX` v2 file ([`crate::persist`])
//! so a reopened index plans without recomputing anything — in particular
//! without losing a non-default [`sketch_size`](Synopsis::sketch_size) chosen
//! at build time.  Version-1 files (which predate synopses) still open: the
//! synopsis is then computed from the loaded sequences at
//! [`DEFAULT_SKETCH_SIZE`].

use trace_model::{AssociationMeasure, CellSetSequence, EntityId};

/// Sketch size used when none is chosen explicitly: enough hot candidates per
/// shard that even a single-shard index can usually seed a k ≤ 16 query.
pub const DEFAULT_SKETCH_SIZE: usize = 16;

/// The planning summary of one shard's population; see the
/// [module docs](crate::synopsis) for what each field proves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Synopsis {
    epoch: u64,
    sketch_size: usize,
    level_caps: Vec<usize>,
    num_entities: usize,
    hot_entities: Vec<EntityId>,
}

impl Synopsis {
    /// Computes the synopsis of a population in one linear pass.
    ///
    /// `levels` is the sp-index height (the length of
    /// [`level_caps`](Synopsis::level_caps)); `sketch_size` is `m`, the
    /// number of hottest entities to remember; `epoch` is recorded verbatim
    /// (pass the snapshot's mutation epoch, 0 for fresh builds and opens).
    pub fn compute<'a, I>(levels: u8, sequences: I, sketch_size: usize, epoch: u64) -> Synopsis
    where
        I: IntoIterator<Item = (EntityId, &'a CellSetSequence)>,
    {
        let mut level_caps = vec![0usize; levels as usize];
        let mut sized: Vec<(usize, EntityId)> = Vec::new();
        for (entity, seq) in sequences {
            debug_assert_eq!(seq.num_levels(), levels as usize);
            for (i, cap) in level_caps.iter_mut().enumerate() {
                *cap = (*cap).max(seq.level((i + 1) as u8).len());
            }
            sized.push((seq.total_cells(), entity));
        }
        let num_entities = sized.len();
        // Hottest first: most cells, ties by ascending id (deterministic).
        // Select the m survivors in O(n) before sorting only them — this
        // runs on every mutation batch, so a full population sort would make
        // single-entity upserts O(n log n) for a 16-entry sketch.
        let hottest_first =
            |a: &(usize, EntityId), b: &(usize, EntityId)| b.0.cmp(&a.0).then(a.1.cmp(&b.1));
        let keep = sketch_size.min(sized.len());
        if keep == 0 {
            sized.clear();
        } else {
            if keep < sized.len() {
                sized.select_nth_unstable_by(keep - 1, hottest_first);
                sized.truncate(keep);
            }
            sized.sort_unstable_by(hottest_first);
        }
        Synopsis {
            epoch,
            sketch_size,
            level_caps,
            num_entities,
            hot_entities: sized.into_iter().map(|(_, e)| e).collect(),
        }
    }

    /// Absorbs one **newly inserted** entity without rescanning the
    /// population: caps max in the new per-level sizes, the count grows by
    /// one, and `sketch_insert_at` (computed by the caller against the
    /// current members' totals) splices the entity into the hot sketch.
    ///
    /// Exactly equivalent to a full [`compute`](Synopsis::compute) over the
    /// grown population — a pure insert can only raise caps, and the new
    /// top-m is the top-m of (old top-m ∪ {new entity}).  Replacements and
    /// removals can shrink sizes and must recompute instead.
    pub(crate) fn absorb_insert(
        &mut self,
        level_sizes: &[usize],
        entity: EntityId,
        sketch_insert_at: Option<usize>,
        epoch: u64,
    ) {
        debug_assert_eq!(level_sizes.len(), self.level_caps.len());
        for (cap, &size) in self.level_caps.iter_mut().zip(level_sizes) {
            *cap = (*cap).max(size);
        }
        self.num_entities += 1;
        self.epoch = epoch;
        if let Some(pos) = sketch_insert_at {
            self.hot_entities.insert(pos, entity);
            self.hot_entities.truncate(self.sketch_size);
        }
    }

    /// Reassembles a synopsis from its stored parts (the persistence layer's
    /// decode path); the caller is responsible for validation.
    pub(crate) fn from_parts(
        epoch: u64,
        sketch_size: usize,
        level_caps: Vec<usize>,
        num_entities: usize,
        hot_entities: Vec<EntityId>,
    ) -> Synopsis {
        Synopsis { epoch, sketch_size, level_caps, num_entities, hot_entities }
    }

    /// The snapshot mutation epoch this synopsis was computed at (0 for fresh
    /// builds and freshly opened indexes).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The sketch size `m` this synopsis keeps hot entities for.
    pub fn sketch_size(&self) -> usize {
        self.sketch_size
    }

    /// Per-level caps: element `l-1` is the maximum level-`l` sequence size
    /// over the population — an upper bound on any entity's level-`l` overlap
    /// with any query.
    pub fn level_caps(&self) -> &[usize] {
        &self.level_caps
    }

    /// Number of entities summarised.
    pub fn num_entities(&self) -> usize {
        self.num_entities
    }

    /// The ids of the `min(m, population)` hottest entities, hottest first
    /// (largest total cell count, ties by ascending id).
    pub fn hot_entities(&self) -> &[EntityId] {
        &self.hot_entities
    }

    /// An upper bound on the association degree **any** entity of this
    /// population can reach against a query with the given per-level sizes —
    /// `-inf` for an empty population (no entity can contribute anything).
    ///
    /// Sound for every measure satisfying the Section 3.2 axioms: each
    /// entity's level-`l` overlap is at most `min(query_sizes[l-1],
    /// level_caps[l-1])`, and [`AssociationMeasure::upper_bound`] instantiates
    /// the most favourable entity compatible with those caps.
    pub fn degree_upper_bound<M: AssociationMeasure + ?Sized>(
        &self,
        query_sizes: &[usize],
        measure: &M,
    ) -> f64 {
        debug_assert_eq!(query_sizes.len(), self.level_caps.len());
        if self.num_entities == 0 {
            return f64::NEG_INFINITY;
        }
        let caps: Vec<usize> =
            self.level_caps.iter().zip(query_sizes).map(|(&cap, &q)| cap.min(q)).collect();
        measure.upper_bound(query_sizes, &caps)
    }

    /// The expected recall of a **sampled scan** of this shard at sample rate
    /// `rate ∈ [0, 1]`: the probability that a fixed member of the true top-k
    /// residing in this shard is scored by the scan.
    ///
    /// The sampled scan always scores every hot-sketch entity (they are known
    /// ids, not a random draw) and includes each remaining member
    /// independently with probability `rate`, so a top-k member is found with
    /// probability `1` if it is hot and `rate` otherwise.  With `m` of `n`
    /// entities in the sketch, a member is hot with probability at least
    /// `p = min(m, n) / n` under the planner's prior (hot entities, having
    /// the most cells, are the *most* likely to reach large overlap degrees —
    /// the same monotonicity the seeding heuristic exploits — so the uniform
    /// `m/n` is the conservative floor), giving
    ///
    /// ```text
    /// E[recall] ≥ p + (1 − p)·rate
    /// ```
    ///
    /// An empty shard recalls perfectly (there is nothing to miss), as does
    /// `rate = 1` (the scan degenerates to the exact flat scan).  The
    /// estimate is monotone in `rate`, which is what makes
    /// [`min_rate_for_recall`](Self::min_rate_for_recall) its exact inverse.
    pub fn expected_scan_recall(&self, rate: f64) -> f64 {
        let rate = rate.clamp(0.0, 1.0);
        if self.num_entities == 0 {
            return 1.0;
        }
        let hot = self.hot_entities.len().min(self.num_entities);
        let p = hot as f64 / self.num_entities as f64;
        (p + (1.0 - p) * rate).clamp(0.0, 1.0)
    }

    /// The smallest sample rate whose
    /// [`expected_scan_recall`](Self::expected_scan_recall) meets `target`:
    /// the inverse of the error
    /// model, `clamp((target − p) / (1 − p), 0, 1)` with `p` the hot-sketch
    /// coverage.  Returns `0.0` when the sketch alone already meets the
    /// target and `1.0` (exact) when no rate below one can.
    pub fn min_rate_for_recall(&self, target: f64) -> f64 {
        let target = target.clamp(0.0, 1.0);
        if self.num_entities == 0 {
            return 0.0;
        }
        let hot = self.hot_entities.len().min(self.num_entities);
        let p = hot as f64 / self.num_entities as f64;
        if p >= target {
            return 0.0;
        }
        if p >= 1.0 {
            return 0.0;
        }
        ((target - p) / (1.0 - p)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_model::{CellSet, PaperAdm, SpIndex, StCell};

    fn seq(sp: &SpIndex, cells: &[(u32, usize)]) -> CellSetSequence {
        let set =
            CellSet::from_cells(cells.iter().map(|&(t, u)| StCell::new(t, sp.base_units()[u])));
        CellSetSequence::from_base_cells(sp, &set).unwrap()
    }

    #[test]
    fn caps_are_exact_per_level_maxima() {
        let sp = SpIndex::uniform(2, &[3]).unwrap();
        let a = seq(&sp, &[(0, 0), (1, 1), (2, 5)]);
        let b = seq(&sp, &[(0, 0)]);
        let pop = [(EntityId(1), &a), (EntityId(2), &b)];
        let syn = Synopsis::compute(2, pop.iter().map(|(e, s)| (*e, *s)), 4, 7);
        assert_eq!(syn.epoch(), 7);
        assert_eq!(syn.num_entities(), 2);
        assert_eq!(syn.level_caps().len(), 2);
        // Base level: a has 3 cells; coarse level: a's 3 cells collapse to
        // at most 3 coarse cells — the cap equals a's actual level sizes.
        assert_eq!(syn.level_caps()[1], a.level(2).len());
        assert_eq!(syn.level_caps()[0], a.level(1).len());
    }

    #[test]
    fn sketch_keeps_the_hottest_ids_deterministically() {
        let sp = SpIndex::uniform(2, &[3]).unwrap();
        let big = seq(&sp, &[(0, 0), (1, 1), (2, 2), (3, 3)]);
        let mid = seq(&sp, &[(0, 0), (1, 1)]);
        let tied = seq(&sp, &[(5, 4), (6, 5)]);
        let pop = [(EntityId(9), &mid), (EntityId(3), &tied), (EntityId(7), &big)];
        let syn = Synopsis::compute(2, pop.iter().map(|(e, s)| (*e, *s)), 2, 0);
        // Hottest first; the size tie between 9 and 3 resolves by ascending id.
        assert_eq!(syn.hot_entities(), &[EntityId(7), EntityId(3)]);
        assert_eq!(syn.sketch_size(), 2);
        // m = 0 keeps nothing, m > population keeps everyone.
        let none = Synopsis::compute(2, pop.iter().map(|(e, s)| (*e, *s)), 0, 0);
        assert!(none.hot_entities().is_empty());
        let all = Synopsis::compute(2, pop.iter().map(|(e, s)| (*e, *s)), 10, 0);
        assert_eq!(all.hot_entities().len(), 3);
    }

    #[test]
    fn upper_bound_dominates_every_member_degree() {
        let sp = SpIndex::uniform(3, &[4]).unwrap();
        let measure = PaperAdm::default_for(2);
        let members: Vec<(EntityId, CellSetSequence)> = (0..6u64)
            .map(|e| {
                let cells: Vec<(u32, usize)> = (0..=(e as u32 % 4))
                    .map(|i| (i, ((e as usize) * 3 + i as usize) % 12))
                    .collect();
                (EntityId(e), seq(&sp, &cells))
            })
            .collect();
        let syn = Synopsis::compute(2, members.iter().map(|(e, s)| (*e, s)), 3, 0);
        let query = seq(&sp, &[(0, 0), (1, 3), (2, 6), (3, 9)]);
        let sizes: Vec<usize> = (1..=2u8).map(|l| query.level(l).len()).collect();
        let ub = syn.degree_upper_bound(&sizes, &measure);
        for (_, s) in &members {
            assert!(measure.degree(&query, s) <= ub + 1e-12);
        }
    }

    #[test]
    fn scan_recall_model_is_monotone_and_inverts() {
        let sp = SpIndex::uniform(2, &[3]).unwrap();
        let seqs: Vec<(EntityId, CellSetSequence)> =
            (0..10u64).map(|e| (EntityId(e), seq(&sp, &[(e as u32, 0)]))).collect();
        let syn = Synopsis::compute(2, seqs.iter().map(|(e, s)| (*e, s)), 4, 0);
        // p = 4/10; rate 0 recalls only the sketch, rate 1 recalls exactly.
        assert!((syn.expected_scan_recall(0.0) - 0.4).abs() < 1e-12);
        assert_eq!(syn.expected_scan_recall(1.0), 1.0);
        let mut last = -1.0;
        for i in 0..=10 {
            let r = syn.expected_scan_recall(i as f64 / 10.0);
            assert!(r >= last, "recall model must be monotone in the rate");
            last = r;
        }
        // Inversion: the minimum rate for a target achieves at least it.
        for target in [0.0, 0.3, 0.5, 0.9, 0.95, 1.0] {
            let rate = syn.min_rate_for_recall(target);
            assert!(
                syn.expected_scan_recall(rate) + 1e-12 >= target,
                "rate {rate} misses target {target}"
            );
        }
        // The sketch alone covers low targets at rate 0.
        assert_eq!(syn.min_rate_for_recall(0.3), 0.0);
        // Perfect recall needs the full scan.
        assert_eq!(syn.min_rate_for_recall(1.0), 1.0);
    }

    #[test]
    fn scan_recall_degenerate_shards() {
        let empty = Synopsis::compute(2, std::iter::empty(), 4, 0);
        assert_eq!(empty.expected_scan_recall(0.0), 1.0);
        assert_eq!(empty.min_rate_for_recall(1.0), 0.0);
        // A shard fully covered by its sketch recalls perfectly at rate 0.
        let sp = SpIndex::uniform(2, &[3]).unwrap();
        let a = seq(&sp, &[(0, 0)]);
        let pop = [(EntityId(1), &a)];
        let covered = Synopsis::compute(2, pop.iter().map(|(e, s)| (*e, *s)), 4, 0);
        assert_eq!(covered.expected_scan_recall(0.0), 1.0);
        assert_eq!(covered.min_rate_for_recall(1.0), 0.0);
    }

    #[test]
    fn empty_population_bounds_at_negative_infinity() {
        let syn = Synopsis::compute(2, std::iter::empty(), 4, 0);
        assert_eq!(syn.num_entities(), 0);
        assert!(syn.hot_entities().is_empty());
        let measure = PaperAdm::default_for(2);
        assert_eq!(syn.degree_upper_bound(&[3, 3], &measure), f64::NEG_INFINITY);
    }
}
