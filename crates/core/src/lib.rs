//! # minsig
//!
//! The MinSigTree index of *Top-k Queries over Digital Traces* (Li, Yu, Koudas;
//! SIGMOD 2019): hierarchy-aware MinHash signatures, an m-level grouping tree, and
//! a best-first top-k search with early termination.
//!
//! ## How the pieces fit together
//!
//! 1. Every entity's digital trace is represented as a per-level ST-cell set
//!    sequence (`trace-model`).
//! 2. A family of `nh` hash functions maps ST-cells to `[0, range)`; the value of
//!    a *coarse* cell is constrained to be no larger than the value of any of its
//!    descendant cells, which makes signatures at different levels comparable
//!    (Theorem 1) and lets a signature certify the *absence* of an entity from
//!    ST-cells (Theorem 2).  See [`signature`].
//! 3. Entities are grouped recursively by the position of the largest value in
//!    their per-level signatures (the *routing index*), producing the
//!    [`tree::MinSigTree`]; each node stores only its routing index and the group
//!    minimum at that index (Section 4.2.2).
//! 4. A top-k query walks the tree best-first, bounding the association degree
//!    achievable inside each subtree from the node's routing value (Theorem 4 /
//!    Section 5.1) and terminating as soon as the k-th best exact answer matches
//!    the best remaining bound ([`query`]).
//!
//! The [`index::MinSigIndex`] type wires all of this together and additionally
//! supports incremental updates (Section 4.2.3) and a paged query mode that reads
//! candidate traces through a bounded buffer pool (`trace-storage`), which is what
//! the memory-sensitivity experiment of Figure 7.6 measures.
//!
//! ```
//! use minsig::{IndexConfig, MinSigIndex};
//! use trace_model::{DiceAdm, EntityId, Period, PresenceInstance, SpIndex, TraceSet};
//!
//! // Two-level hierarchy with four base units, three entities.
//! let sp = SpIndex::uniform(2, &[2]).unwrap();
//! let base = sp.base_units().to_vec();
//! let mut traces = TraceSet::new(60);
//! for (e, unit) in [(0u64, base[0]), (1, base[0]), (2, base[3])] {
//!     traces.record(PresenceInstance::new(EntityId(e), unit, Period::new(0, 120).unwrap()));
//! }
//! let index = MinSigIndex::build(&sp, &traces, IndexConfig::default()).unwrap();
//! let measure = DiceAdm::uniform(2);
//! let (results, stats) = index.top_k(EntityId(0), 1, &measure).unwrap();
//! assert_eq!(results[0].entity, EntityId(1));
//! assert!(stats.entities_checked <= 3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod approximate;
pub mod config;
pub mod error;
pub mod index;
pub mod join;
pub mod paged;
pub mod query;
pub mod signature;
pub mod stats;
pub mod tree;

pub use approximate::{BandedIndex, BandingConfig};
pub use config::{HasherMode, IndexConfig};
pub use error::{IndexError, Result};
pub use index::MinSigIndex;
pub use join::{JoinOptions, JoinRow, JoinStats};
pub use query::{QueryOptions, TopKResult};
pub use signature::{CellHashFamily, HierarchicalHasher, SeededHashFamily, SignatureList, TableHashFamily};
pub use stats::{IndexStats, SearchStats};
pub use tree::MinSigTree;
