//! # minsig
//!
//! The MinSigTree index of *Top-k Queries over Digital Traces* (Li, Yu, Koudas;
//! SIGMOD 2019): hierarchy-aware MinHash signatures, an m-level grouping tree, and
//! a best-first top-k search with early termination — behind a unified, parallel
//! query engine.
//!
//! ## How the pieces fit together
//!
//! 1. Every entity's digital trace is represented as a per-level ST-cell set
//!    sequence (`trace-model`).
//! 2. A family of `nh` hash functions maps ST-cells to `[0, range)`; the value of
//!    a *coarse* cell is constrained to be no larger than the value of any of its
//!    descendant cells, which makes signatures at different levels comparable
//!    (Theorem 1) and lets a signature certify the *absence* of an entity from
//!    ST-cells (Theorem 2).  See [`signature`].
//! 3. Entities are grouped recursively by the position of the largest value in
//!    their per-level signatures (the *routing index*), producing the
//!    [`tree::MinSigTree`]; each node stores only its routing index and the group
//!    minimum at that index (Section 4.2.2).
//!
//! ## The query engine
//!
//! All query processing funnels through **one** resumable best-first executor
//! ([`engine::Executor`]; [`engine::execute`] is its run-to-completion
//! wrapper): a candidate frontier ordered by Theorem-4 upper bounds,
//! per-level overlap caps tightened down each branch, and strict
//! (tie-complete) k-th-best early termination (Section 5.1) against a
//! pluggable [`engine::Bound`] — private for single-tree searches, an atomic
//! [`engine::SharedBound`] when the sharded fan-out interleaves per-shard
//! executors cooperatively.  The executor is generic over a
//! [`engine::TraceSource`] — where candidate sequences come from during leaf
//! evaluation:
//!
//! * [`engine::InMemorySource`] borrows the snapshot's sequence map (the exact
//!   path of [`MinSigIndex::top_k`]);
//! * [`engine::PagedSource`] reads raw traces through a `trace-storage` buffer
//!   pool, charging simulated I/O (the Figure 7.6 path of [`paged`]).
//!
//! The remaining query modules are thin drivers over the executor: [`join`]
//! fans probe sets out over rayon ([`IndexSnapshot::top_k_batch`] /
//! [`IndexSnapshot::top_k_join`]), and [`approximate`] scores LSH band
//! collisions through the executor's shared [`engine::TopKHeap`].
//!
//! ## Snapshots and concurrency
//!
//! The index state lives in an immutable, `Arc`-shareable
//! [`snapshot::IndexSnapshot`]; [`index::MinSigIndex`] is a mutable handle
//! around it.  [`MinSigIndex::snapshot`] hands a consistent version of the
//! index to any number of reader threads, while
//! [`MinSigIndex::update_entity`] / [`MinSigIndex::remove_entity`]
//! (Section 4.2.3) keep working on the handle via copy-on-write — readers are
//! never blocked and never observe a half-applied update.  Batch evaluation is
//! deterministic: parallel results equal sequential results exactly, in input
//! order.
//!
//! ## Streaming ingestion and durability
//!
//! A stream of new presence records is applied through an
//! [`ingest::IngestBuffer`]: the whole batch becomes **one** copy-on-write
//! delta (only the new cells are hashed — signatures merge by element-wise
//! minimum, tree paths are re-routed incrementally) and publishes **one** new
//! snapshot epoch ([`MinSigIndex::epoch`]); a snapshot taken before the flush
//! never observes a partial batch.  [`MinSigIndex::save`] persists the index
//! to a versioned, checksummed segment file and [`MinSigIndex::open`] reloads
//! it without re-hashing anything, answering bit-identically — see
//! [`persist`] for the on-disk format.
//!
//! ## Sharding
//!
//! [`shard::ShardedMinSigIndex`] hash-partitions the entity population across
//! `N` independent shards (one `MinSigIndex` each, with its own snapshot,
//! epoch and `MSIX` file): ingest, persistence and maintenance parallelise
//! per shard, while every query is first **planned** ([`plan`]) against the
//! per-shard synopses ([`synopsis`]): the search bound is seeded with a
//! provable k-th-degree lower bound, shards that provably cannot contribute
//! are skipped, admitted shards run most-promising-first — tiny ones as flat
//! scans, the rest as resumable executors under a **cooperative scheduler**
//! (frontier quanta interleave over rayon, all executors prune against one
//! shared seeded bound) — and the per-shard exact top-k heaps merge.
//! Answers are fully bit-identical to an unsharded index over the same
//! traces, boundary ties included, with or without the planner.  The
//! deterministic workload generators and conformance oracles behind the test
//! suites live in [`testkit`].
//!
//! ```
//! use minsig::{IndexConfig, MinSigIndex};
//! use trace_model::{DiceAdm, EntityId, Period, PresenceInstance, SpIndex, TraceSet};
//!
//! // Two-level hierarchy with four base units, three entities.
//! let sp = SpIndex::uniform(2, &[2]).unwrap();
//! let base = sp.base_units().to_vec();
//! let mut traces = TraceSet::new(60);
//! for (e, unit) in [(0u64, base[0]), (1, base[0]), (2, base[3])] {
//!     traces.record(PresenceInstance::new(EntityId(e), unit, Period::new(0, 120).unwrap()));
//! }
//! let index = MinSigIndex::build(&sp, &traces, IndexConfig::default()).unwrap();
//! let measure = DiceAdm::uniform(2);
//!
//! // Single query...
//! let (results, stats) = index.top_k(EntityId(0), 1, &measure).unwrap();
//! assert_eq!(results[0].entity, EntityId(1));
//! assert!(stats.entities_checked <= 3);
//!
//! // ...or a parallel batch over a shared snapshot: same answers, in order.
//! let snapshot = index.snapshot();
//! let batch = snapshot.top_k_batch(&[EntityId(0), EntityId(1)], 1, &measure).unwrap();
//! assert_eq!(batch[0].0, results);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod approximate;
pub mod config;
pub mod durable;
pub mod engine;
pub mod error;
pub mod index;
pub mod ingest;
pub mod join;
pub mod kernel;
pub mod paged;
pub mod persist;
pub mod plan;
pub mod query;
pub mod shard;
pub mod signature;
pub mod snapshot;
pub mod stats;
pub mod synopsis;
pub mod testkit;
pub mod tree;

pub use approximate::{ApproximateStats, BandedIndex, BandingConfig};
pub use config::{
    BoundMode, HasherMode, IndexConfig, PlannerConfig, PublishPolicy, SchedulerConfig,
};
pub use durable::{DurableMinSigIndex, DurableShardedMinSigIndex, RecoveryReport};
pub use engine::{
    Bound, Executor, InMemorySource, PagedSource, PrivateBound, SeededBound, SharedBound, TopKHeap,
    TraceSource,
};
pub use error::{IndexError, Result};
pub use index::MinSigIndex;
pub use ingest::{IngestBuffer, IngestReport};
pub use join::{JoinOptions, JoinRow, JoinStats};
pub use kernel::{ArenaSource, CandidateArena, NodeArena, QueryView};
pub use paged::{PagedArenaSource, PagedShardedSnapshot};
pub use persist::{INDEX_MAGIC, INDEX_VERSION};
pub use plan::{
    sample_includes, BatchGroup, BatchPlan, PageEstimate, QueryPlan, ShardDecision, ShardPlan,
};
pub use query::{QueryOptions, TopKResult};
pub use shard::{
    shard_of, ShardedIngestReport, ShardedMinSigIndex, ShardedSnapshot, PARTITION_VERSION,
    SHARD_MANIFEST_MAGIC, SHARD_MANIFEST_VERSION,
};
pub use signature::{
    CellHashFamily, HierarchicalHasher, SeededHashFamily, SignatureList, TableHashFamily,
};
pub use snapshot::IndexSnapshot;
pub use stats::{DegradationReport, IndexStats, KernelDispatch, QueryStats, SearchStats};
pub use synopsis::{Synopsis, DEFAULT_SKETCH_SIZE};
pub use tree::MinSigTree;
