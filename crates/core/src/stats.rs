//! Statistics reported by index construction and query processing.

use serde::{Deserialize, Serialize};
use trace_model::kernel::KernelClass;

/// How many set intersections the flat (arena-backed) hot paths routed to
/// each kernel class, per query.
///
/// The dispatch decision of
/// [`trace_model::kernel::intersection_len`] is a pure function of the two
/// input lengths ([`trace_model::kernel::dispatch_class`]), so these counters
/// are accounted *outside* the kernel itself — the fused degree loops
/// classify each per-level intersection as they issue it, and the hot loop
/// carries no atomic or branch overhead.  Only the arena-backed paths (flat
/// scans, [`ArenaSource`](crate::kernel::ArenaSource)-driven tree executors
/// and the arena-backed paged source) count; owned-map fallback paths do
/// not, so on mixed plans the totals cover the flat portion of the work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelDispatch {
    /// Intersections taken by the branch-free tiny-set loop (both sides ≤
    /// [`trace_model::kernel::TINY_LEN`], or one side empty).
    pub tiny: u64,
    /// Intersections taken by the scalar two-pointer merge.
    pub merge: u64,
    /// Intersections taken by the galloping (skewed-size) kernel.
    pub gallop: u64,
    /// Intersections taken by the SIMD block kernel (`simd` feature builds).
    pub simd: u64,
}

impl KernelDispatch {
    /// Counts one intersection of the given kernel class.
    #[inline]
    pub fn record(&mut self, class: KernelClass) {
        match class {
            KernelClass::Tiny => self.tiny += 1,
            KernelClass::Merge => self.merge += 1,
            KernelClass::Gallop => self.gallop += 1,
            KernelClass::Simd => self.simd += 1,
        }
    }

    /// Accumulates another counter set into this one.
    #[inline]
    pub fn absorb(&mut self, other: KernelDispatch) {
        self.tiny += other.tiny;
        self.merge += other.merge;
        self.gallop += other.gallop;
        self.simd += other.simd;
    }

    /// Total intersections counted across all kernel classes.
    pub fn total(&self) -> u64 {
        self.tiny + self.merge + self.gallop + self.simd
    }
}

/// Statistics of one index build or update batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct IndexStats {
    /// Number of entities indexed.
    pub num_entities: usize,
    /// Number of tree nodes (including the virtual root).
    pub num_nodes: usize,
    /// Estimated index size in bytes — **tree only**, the paper's Section 7.8
    /// accounting (what Figure 7.8 plots).  For the full resident footprint
    /// including per-entity signatures and sequences, use
    /// [`IndexSnapshot::resident_bytes`](crate::snapshot::IndexSnapshot::resident_bytes).
    pub index_bytes: usize,
    /// Number of hash evaluations performed while computing signatures (the
    /// dominant term of the Section 4.3 processor cost `O(|E|·C·m·nh)`).
    pub hash_evaluations: u64,
    /// Wall-clock build time in microseconds.
    pub build_time_us: u64,
}

/// Per-answer record of what the deadline/recall-budgeted planner degraded —
/// attached to [`QueryStats::degradation`] whenever any shard of a query was
/// answered by a sampled (approximate) scan instead of an exact access path.
///
/// `None` on [`QueryStats::degradation`] is the exactness certificate: no
/// shard was sampled, the answer is bitwise identical to the unbudgeted
/// plan.  When present, the report is **truthful by construction** — the
/// executing fan-out stamps it from the shards it actually sampled, not from
/// what the plan intended (`tests/deadline_conformance.rs` proptests the
/// reported set against the executed one).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DegradationReport {
    /// Shards the *planner* chose to sample up front because the exact plan
    /// exceeded the latency budget ([`ShardDecision::ApproximateScan`]
    /// arms in the executed plan).
    ///
    /// [`ShardDecision::ApproximateScan`]: crate::plan::ShardDecision::ApproximateScan
    pub shards_planned_approximate: usize,
    /// Shards downgraded *mid-flight* by the per-query deadline: they were
    /// admitted exactly but the deadline expired before (or while) their
    /// executor ran, so they were answered by a sampled scan instead.
    pub shards_deadline_downgraded: usize,
    /// Bitmask of the sampled shards' indices (bit `i` = shard `i` was
    /// answered approximately, whether planned or downgraded).  Covers the
    /// first 64 shards; larger deployments rely on the counts.
    pub approximate_shard_mask: u64,
    /// The smallest sample rate any sampled shard ran at (1.0 when nothing
    /// was sampled).
    pub min_sample_rate: f64,
    /// Whether the per-query deadline actually expired during execution
    /// (planned-approximate-only degradation leaves this false).
    pub deadline_exceeded: bool,
}

impl DegradationReport {
    /// Total shards answered approximately, planned and downgraded combined.
    pub fn shards_approximate(&self) -> usize {
        self.shards_planned_approximate + self.shards_deadline_downgraded
    }

    /// Records one sampled shard into the report.
    pub(crate) fn record_shard(&mut self, shard: usize, rate: f64, downgraded: bool) {
        if downgraded {
            self.shards_deadline_downgraded += 1;
        } else {
            self.shards_planned_approximate += 1;
        }
        if shard < 64 {
            self.approximate_shard_mask |= 1u64 << shard;
        }
        if self.shards_approximate() == 1 {
            self.min_sample_rate = rate;
        } else {
            self.min_sample_rate = self.min_sample_rate.min(rate);
        }
    }

    /// Merges another report into this one (used by `absorb_work` when batch
    /// stats are summed): counts add, masks union, the minimum rate wins.
    pub(crate) fn merge(&mut self, other: &DegradationReport) {
        let had_any = self.shards_approximate() > 0;
        self.shards_planned_approximate += other.shards_planned_approximate;
        self.shards_deadline_downgraded += other.shards_deadline_downgraded;
        self.approximate_shard_mask |= other.approximate_shard_mask;
        self.min_sample_rate = if had_any {
            self.min_sample_rate.min(other.min_sample_rate)
        } else {
            other.min_sample_rate
        };
        self.deadline_exceeded |= other.deadline_exceeded;
    }
}

/// Statistics of one top-k query (Definition 5 and the complement convention used
/// throughout the experiment harness), instrumented down to the executor's
/// frontier: how many subtrees were visited, how many were pruned by the
/// active [`Bound`](crate::engine::Bound), and how often this search raised a
/// shared bound.
///
/// On a sharded query the counters are the **sums over every per-shard
/// executor**, so the pruning effect of cooperative bound sharing is directly
/// comparable against independent per-shard execution (same workload, same
/// answers — strictly fewer `nodes_visited` / strictly more
/// `subtrees_pruned` when the shared bound bites).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryStats {
    /// Total number of indexed entities (`|E|`).
    pub total_entities: usize,
    /// Requested result size `k`.
    pub k: usize,
    /// Tree nodes popped from the candidate queue and expanded or evaluated.
    pub nodes_visited: usize,
    /// Leaf nodes whose entities were evaluated exactly.
    pub leaves_visited: usize,
    /// Entities whose exact association degree was computed (`|E'|`).
    pub entities_checked: usize,
    /// Candidate subtrees discarded because their upper bound could no longer
    /// beat the best known k-th degree (local or shared) — work the bound
    /// saved.  Every queued candidate is eventually counted either here or in
    /// [`nodes_visited`](Self::nodes_visited).
    pub subtrees_pruned: usize,
    /// Times this search *raised* the bound it was executing under (always 0
    /// under a private bound; under a [`SharedBound`](crate::engine::SharedBound)
    /// each count is a k-th-degree improvement published to the other
    /// executors).
    pub bound_updates: u64,
    /// Resumable-frontier quanta executed ([`Executor::step`] calls that did
    /// work; a run-to-completion search counts its single sweep as 1).
    ///
    /// [`Executor::step`]: crate::engine::Executor::step
    pub steps: usize,
    /// Shards the query planner proved could not contribute to the top-k and
    /// therefore never opened (sharded planned queries only; see
    /// [`crate::plan`]).  On a batch, sums over the batch's queries.
    pub shards_skipped: usize,
    /// True when the planner seeded the search bound with a provable
    /// k-th-degree lower bound before any traversal (sharded planned queries
    /// only).
    pub threshold_seeded: bool,
    /// Simulated I/O latency accumulated while reading candidate traces
    /// (paged queries only), in microseconds.
    pub simulated_io_us: u64,
    /// Buffer-pool hits (paged queries only).  Like the other pool counters
    /// this is a delta of the shared pool's totals over the query, so when
    /// several queries share one pool concurrently, I/O may be attributed
    /// across them (answers are unaffected); on a sharded query the counter
    /// sums over every per-shard executor via
    /// [`absorb_work`](Self::absorb_work).
    pub pool_hits: u64,
    /// Buffer-pool misses (paged queries only; see
    /// [`pool_hits`](Self::pool_hits) for the attribution caveat).
    pub pool_misses: u64,
    /// Buffer-pool evictions (paged queries only; see
    /// [`pool_hits`](Self::pool_hits) for the attribution caveat).
    pub pool_evictions: u64,
    /// Per-kernel dispatch counts of the flat hot paths' set intersections
    /// (see [`KernelDispatch`]); sums over every per-shard executor via
    /// [`absorb_work`](Self::absorb_work).
    pub kernel_dispatch: KernelDispatch,
    /// Estimated recall of the answer: the probability that any true top-k
    /// member survived every access path the query ran.  Exactly `1.0` on
    /// every exact path (the default); below `1.0` only when the budgeted
    /// planner sampled at least one shard, in which case the minimum over
    /// the sampled shards' [`Synopsis::expected_scan_recall`] estimates is
    /// reported.  [`absorb_work`](Self::absorb_work) likewise combines
    /// estimates by taking the minimum (conservative across shards and
    /// batches).
    ///
    /// [`Synopsis::expected_scan_recall`]: crate::synopsis::Synopsis::expected_scan_recall
    pub recall_estimate: f64,
    /// Entities scored through a *sampled* access path — the LSH banded
    /// candidates of [`approximate_top_k`], or the members a budgeted
    /// approximate shard scan drew.  Always ≤
    /// [`entities_checked`](Self::entities_checked) (sampled scores are also
    /// exact degree computations and count in both).
    ///
    /// [`approximate_top_k`]: crate::snapshot::IndexSnapshot::approximate_top_k
    pub sampled_candidates: usize,
    /// What the budgeted planner degraded, if anything.  `None` (the
    /// default) is the exactness certificate: every shard ran an exact
    /// access path and the answer is bitwise identical to the unbudgeted
    /// plan.  See [`DegradationReport`].
    pub degradation: Option<DegradationReport>,
    /// Wall-clock time the planner spent building this query's
    /// [`QueryPlan`](crate::plan::QueryPlan) (seeding, skipping, budgeting),
    /// in microseconds; summed by [`absorb_work`](Self::absorb_work) so batch
    /// stats expose the total — and therefore amortized — planning cost.
    pub planning_us: u64,
    /// Wall-clock query time in microseconds.
    pub query_time_us: u64,
}

impl Default for QueryStats {
    fn default() -> Self {
        QueryStats {
            total_entities: 0,
            k: 0,
            nodes_visited: 0,
            leaves_visited: 0,
            entities_checked: 0,
            subtrees_pruned: 0,
            bound_updates: 0,
            steps: 0,
            shards_skipped: 0,
            threshold_seeded: false,
            simulated_io_us: 0,
            pool_hits: 0,
            pool_misses: 0,
            pool_evictions: 0,
            kernel_dispatch: KernelDispatch::default(),
            // An answer is exact until some sampled path says otherwise.
            recall_estimate: 1.0,
            sampled_candidates: 0,
            degradation: None,
            planning_us: 0,
            query_time_us: 0,
        }
    }
}

/// Former name of [`QueryStats`]; kept as an alias so existing callers and
/// persisted call sites keep compiling unchanged.  Fields added since the
/// rename (the planner counters, and the buffer-pool counters
/// [`pool_hits`](QueryStats::pool_hits) /
/// [`pool_misses`](QueryStats::pool_misses) /
/// [`pool_evictions`](QueryStats::pool_evictions) of the out-of-core paths)
/// default to zero on every non-paged query, so struct-update call sites
/// (`SearchStats { .., ..Default::default() }`) keep compiling and old
/// comparisons keep holding.
pub type SearchStats = QueryStats;

impl QueryStats {
    /// Definition 5: `(|E'| - k) / |E|` — the fraction of entities that had to be
    /// checked beyond the k returned ones (lower is better).
    pub fn fraction_checked(&self) -> f64 {
        if self.total_entities == 0 {
            return 0.0;
        }
        let extra = self.entities_checked.saturating_sub(self.k);
        extra as f64 / self.total_entities as f64
    }

    /// The complement of [`fraction_checked`](Self::fraction_checked): the
    /// fraction of entities pruned (higher is better).  This is the "PE" reported
    /// by the experiment harness, matching the prose convention that high PE is
    /// good.
    pub fn pruning_effectiveness(&self) -> f64 {
        (1.0 - self.fraction_checked()).clamp(0.0, 1.0)
    }

    /// Accumulates another search's work counters into this one (used by the
    /// sharded fan-out to sum per-shard executor stats; wall-clock fields are
    /// left alone because concurrent executors' times overlap).
    pub fn absorb_work(&mut self, other: &QueryStats) {
        self.total_entities += other.total_entities;
        self.nodes_visited += other.nodes_visited;
        self.leaves_visited += other.leaves_visited;
        self.entities_checked += other.entities_checked;
        self.subtrees_pruned += other.subtrees_pruned;
        self.bound_updates += other.bound_updates;
        self.steps += other.steps;
        self.shards_skipped += other.shards_skipped;
        self.threshold_seeded |= other.threshold_seeded;
        self.simulated_io_us += other.simulated_io_us;
        self.pool_hits += other.pool_hits;
        self.pool_misses += other.pool_misses;
        self.pool_evictions += other.pool_evictions;
        self.kernel_dispatch.absorb(other.kernel_dispatch);
        self.recall_estimate = self.recall_estimate.min(other.recall_estimate);
        self.sampled_candidates += other.sampled_candidates;
        self.planning_us += other.planning_us;
        if let Some(theirs) = &other.degradation {
            match &mut self.degradation {
                Some(mine) => mine.merge(theirs),
                None => self.degradation = Some(*theirs),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_are_consistent() {
        let stats = QueryStats {
            total_entities: 1000,
            k: 10,
            entities_checked: 110,
            ..QueryStats::default()
        };
        assert!((stats.fraction_checked() - 0.1).abs() < 1e-12);
        assert!((stats.pruning_effectiveness() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_do_not_divide_by_zero() {
        let empty = QueryStats::default();
        assert_eq!(empty.fraction_checked(), 0.0);
        assert_eq!(empty.pruning_effectiveness(), 1.0);
        // Checking fewer than k entities (tiny datasets) never goes negative.
        let tiny =
            QueryStats { total_entities: 5, k: 10, entities_checked: 5, ..QueryStats::default() };
        assert_eq!(tiny.fraction_checked(), 0.0);
    }

    #[test]
    fn checking_everything_gives_zero_pe() {
        let stats = QueryStats {
            total_entities: 100,
            k: 0,
            entities_checked: 100,
            ..QueryStats::default()
        };
        assert!((stats.pruning_effectiveness() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn absorb_work_sums_counters_but_not_wall_clock() {
        let mut a = QueryStats {
            nodes_visited: 3,
            subtrees_pruned: 1,
            bound_updates: 2,
            steps: 1,
            query_time_us: 10,
            ..QueryStats::default()
        };
        let b = QueryStats {
            nodes_visited: 5,
            subtrees_pruned: 4,
            bound_updates: 1,
            steps: 2,
            shards_skipped: 3,
            threshold_seeded: true,
            pool_hits: 7,
            pool_misses: 2,
            pool_evictions: 1,
            simulated_io_us: 40,
            kernel_dispatch: KernelDispatch { tiny: 1, merge: 2, gallop: 3, simd: 4 },
            query_time_us: 99,
            ..QueryStats::default()
        };
        a.absorb_work(&b);
        assert_eq!(a.nodes_visited, 8);
        assert_eq!(a.subtrees_pruned, 5);
        assert_eq!(a.bound_updates, 3);
        assert_eq!(a.steps, 3);
        assert_eq!(a.shards_skipped, 3);
        assert!(a.threshold_seeded, "seeding anywhere in the batch is recorded");
        assert_eq!(
            (a.pool_hits, a.pool_misses, a.pool_evictions, a.simulated_io_us),
            (7, 2, 1, 40),
            "pool counters sum across absorbed shards"
        );
        assert_eq!(a.query_time_us, 10, "wall clock is not summed");
        assert_eq!(
            a.kernel_dispatch,
            KernelDispatch { tiny: 1, merge: 2, gallop: 3, simd: 4 },
            "kernel dispatch counters sum across absorbed shards"
        );
    }

    #[test]
    fn default_stats_are_an_exact_answer() {
        let stats = QueryStats::default();
        assert_eq!(stats.recall_estimate, 1.0);
        assert_eq!(stats.sampled_candidates, 0);
        assert_eq!(stats.degradation, None);
        assert_eq!(stats.planning_us, 0);
    }

    #[test]
    fn absorb_work_combines_degradation_conservatively() {
        let mut exact = QueryStats::default();
        let mut report = DegradationReport::default();
        report.record_shard(2, 0.5, false);
        report.record_shard(3, 0.25, true);
        let degraded = QueryStats {
            recall_estimate: 0.8,
            sampled_candidates: 40,
            degradation: Some(report),
            planning_us: 7,
            ..QueryStats::default()
        };
        exact.absorb_work(&degraded);
        assert_eq!(exact.recall_estimate, 0.8, "recall combines by minimum");
        assert_eq!(exact.sampled_candidates, 40);
        assert_eq!(exact.planning_us, 7);
        let merged = exact.degradation.expect("degradation propagates through absorb");
        assert_eq!(merged.shards_planned_approximate, 1);
        assert_eq!(merged.shards_deadline_downgraded, 1);
        assert_eq!(merged.approximate_shard_mask, 0b1100);
        assert_eq!(merged.min_sample_rate, 0.25);

        // Absorbing a second degraded query merges the two reports.
        let mut other_report = DegradationReport::default();
        other_report.record_shard(0, 0.75, false);
        other_report.deadline_exceeded = true;
        let other = QueryStats {
            recall_estimate: 0.9,
            degradation: Some(other_report),
            ..QueryStats::default()
        };
        exact.absorb_work(&other);
        let merged = exact.degradation.unwrap();
        assert_eq!(merged.shards_approximate(), 3);
        assert_eq!(merged.approximate_shard_mask, 0b1101);
        assert_eq!(merged.min_sample_rate, 0.25, "minimum rate survives the merge");
        assert!(merged.deadline_exceeded);
        assert_eq!(exact.recall_estimate, 0.8, "minimum recall survives the merge");
    }

    #[test]
    fn degradation_report_counts_and_mask() {
        let mut r = DegradationReport::default();
        assert_eq!(r.shards_approximate(), 0);
        r.record_shard(1, 0.5, false);
        r.record_shard(70, 0.1, true);
        assert_eq!(r.shards_approximate(), 2);
        assert_eq!(r.approximate_shard_mask, 0b10, "shards past 64 rely on the counts");
        assert_eq!(r.min_sample_rate, 0.1);
    }

    #[test]
    fn kernel_dispatch_records_and_totals() {
        let mut d = KernelDispatch::default();
        d.record(KernelClass::Tiny);
        d.record(KernelClass::Merge);
        d.record(KernelClass::Merge);
        d.record(KernelClass::Gallop);
        d.record(KernelClass::Simd);
        assert_eq!(d, KernelDispatch { tiny: 1, merge: 2, gallop: 1, simd: 1 });
        let mut sum = d;
        sum.absorb(d);
        assert_eq!(sum.total(), 10);
    }
}
