//! Statistics reported by index construction and query processing.

use serde::{Deserialize, Serialize};

/// Statistics of one index build or update batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct IndexStats {
    /// Number of entities indexed.
    pub num_entities: usize,
    /// Number of tree nodes (including the virtual root).
    pub num_nodes: usize,
    /// Estimated index size in bytes — **tree only**, the paper's Section 7.8
    /// accounting (what Figure 7.8 plots).  For the full resident footprint
    /// including per-entity signatures and sequences, use
    /// [`IndexSnapshot::resident_bytes`](crate::snapshot::IndexSnapshot::resident_bytes).
    pub index_bytes: usize,
    /// Number of hash evaluations performed while computing signatures (the
    /// dominant term of the Section 4.3 processor cost `O(|E|·C·m·nh)`).
    pub hash_evaluations: u64,
    /// Wall-clock build time in microseconds.
    pub build_time_us: u64,
}

/// Statistics of one top-k query (Definition 5 and the complement convention used
/// throughout the experiment harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Total number of indexed entities (`|E|`).
    pub total_entities: usize,
    /// Requested result size `k`.
    pub k: usize,
    /// Tree nodes popped from the candidate queue.
    pub nodes_visited: usize,
    /// Leaf nodes whose entities were evaluated exactly.
    pub leaves_visited: usize,
    /// Entities whose exact association degree was computed (`|E'|`).
    pub entities_checked: usize,
    /// Simulated I/O latency accumulated while reading candidate traces
    /// (paged queries only), in microseconds.
    pub simulated_io_us: u64,
    /// Buffer-pool misses (paged queries only).
    pub pool_misses: u64,
    /// Wall-clock query time in microseconds.
    pub query_time_us: u64,
}

impl SearchStats {
    /// Definition 5: `(|E'| - k) / |E|` — the fraction of entities that had to be
    /// checked beyond the k returned ones (lower is better).
    pub fn fraction_checked(&self) -> f64 {
        if self.total_entities == 0 {
            return 0.0;
        }
        let extra = self.entities_checked.saturating_sub(self.k);
        extra as f64 / self.total_entities as f64
    }

    /// The complement of [`fraction_checked`](Self::fraction_checked): the
    /// fraction of entities pruned (higher is better).  This is the "PE" reported
    /// by the experiment harness, matching the prose convention that high PE is
    /// good.
    pub fn pruning_effectiveness(&self) -> f64 {
        (1.0 - self.fraction_checked()).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_are_consistent() {
        let stats = SearchStats {
            total_entities: 1000,
            k: 10,
            entities_checked: 110,
            ..SearchStats::default()
        };
        assert!((stats.fraction_checked() - 0.1).abs() < 1e-12);
        assert!((stats.pruning_effectiveness() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_do_not_divide_by_zero() {
        let empty = SearchStats::default();
        assert_eq!(empty.fraction_checked(), 0.0);
        assert_eq!(empty.pruning_effectiveness(), 1.0);
        // Checking fewer than k entities (tiny datasets) never goes negative.
        let tiny =
            SearchStats { total_entities: 5, k: 10, entities_checked: 5, ..SearchStats::default() };
        assert_eq!(tiny.fraction_checked(), 0.0);
    }

    #[test]
    fn checking_everything_gives_zero_pe() {
        let stats = SearchStats {
            total_entities: 100,
            k: 0,
            entities_checked: 100,
            ..SearchStats::default()
        };
        assert!((stats.pruning_effectiveness() - 0.0).abs() < 1e-12);
    }
}
