//! Continuously durable ingest: a write-ahead delta log in front of the
//! copy-on-write flush.
//!
//! The checkpoint formats of [`crate::persist`] (`.msix`) and [`crate::shard`]
//! (`manifest.mshd` + shard files) are crash-*atomic* but not crash-*durable*:
//! every batch ingested after the last save dies with the process.  This
//! module closes that window.  A [`DurableMinSigIndex`] (and its sharded
//! sibling [`DurableShardedMinSigIndex`]) serialises each validated ingest
//! batch into a [`trace_storage::LogManager`] and fsyncs it **before** the
//! in-memory index applies the batch, so commits cost O(batch) while
//! checkpoints stay O(index) — and a crash at any instant loses at most the
//! batch whose `ingest` call never returned.
//!
//! ## On-disk layout
//!
//! ```text
//! unsharded dir/                sharded dir/
//! ├── index.msix   checkpoint   ├── manifest.mshd      checkpoint
//! └── wal/                      ├── shard-00000.msix   ...
//!     └── wal-*.log             ├── wal/
//!                               │   ├── shard-00000/wal-*.log   one log per shard
//!                               │   ├── shard-00001/wal-*.log
//!                               │   └── commit/wal-*.log        cross-shard commit log
//! ```
//!
//! ## Commit protocol
//!
//! Unsharded, one batch is one log record ([`encode_batch`]): the
//! [`LogManager::append`] fsync is the commit point.  Sharded, a batch is
//! routed into per-shard sub-batches, each logged to its shard's WAL under a
//! shared `batch_id` ([`encode_sub_batch`]); the batch commits only when a
//! record carrying that id ([`encode_commit`]) is appended to the commit log.
//! A crash between two shards' appends leaves sub-batches whose id never
//! reached the commit log — recovery discards them, preserving the
//! cross-shard all-or-nothing contract of
//! [`flush_sharded`](crate::ingest::IngestBuffer::flush_sharded).
//!
//! ## Checkpoint and recovery
//!
//! Every checkpoint file records the WAL LSN it covers *inside* the
//! atomically renamed file (format v3, see [`crate::persist`]), so state and
//! log position can never be torn apart.  `open` loads the checkpoint, opens
//! the log(s) at that LSN, verifies the log still covers `ckpt_lsn + 1`
//! onward, and replays every committed batch with a LSN beyond the
//! checkpoint through the ordinary [`IngestBuffer`] path — a recovered index
//! answers queries bit-identically to one that never crashed.
//! [`DurableMinSigIndex::checkpoint`] saves, then truncates the log; a crash
//! between the two merely replays batches the checkpoint already covers —
//! the stored LSN filters them out, so nothing is ever applied twice.
//!
//! | crash point                          | after `open`                         |
//! |--------------------------------------|--------------------------------------|
//! | mid-append (torn record)             | batch lost; prior batches intact     |
//! | after append, before flush           | batch replayed                       |
//! | between two shards' appends          | sub-batches discarded (no commit)    |
//! | after commit append, before flush    | batch replayed on every shard        |
//! | mid-checkpoint save                  | old checkpoint + full log replayed   |
//! | after save, before log truncation    | stale records filtered by LSN        |

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use trace_model::{EntityId, Period, PresenceInstance};
use trace_storage::{LogConfig, LogManager};

use crate::error::{IndexError, Result};
use crate::index::MinSigIndex;
use crate::ingest::{IngestBuffer, IngestReport};
use crate::shard::{shard_of, ShardedIngestReport, ShardedMinSigIndex, SHARD_MANIFEST_FILE};
use crate::snapshot::IndexSnapshot;

/// File name of the unsharded checkpoint inside a durable index directory.
pub const DURABLE_INDEX_FILE: &str = "index.msix";

/// Serialised size of one presence record in a log payload.
const RECORD_WIRE_LEN: usize = 28;

/// The WAL directory of an unsharded durable index.
pub fn wal_dir(dir: &Path) -> PathBuf {
    dir.join("wal")
}

/// The WAL directory of one shard of a sharded durable index.
pub fn shard_wal_dir(dir: &Path, shard: usize) -> PathBuf {
    wal_dir(dir).join(format!("shard-{shard:05}"))
}

/// The commit-log directory of a sharded durable index.
pub fn commit_wal_dir(dir: &Path) -> PathBuf {
    wal_dir(dir).join("commit")
}

/// What a durable `open` replayed out of the write-ahead log(s).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Committed batches applied beyond the checkpoint.
    pub batches_replayed: usize,
    /// Presence records those batches carried (sharded: summed over the
    /// per-shard sub-batches actually applied).
    pub records_replayed: usize,
    /// Sharded only: sub-batches discarded because their batch id never
    /// reached the commit log (a crash between two shards' appends).
    pub uncommitted_discarded: usize,
}

fn corrupt(msg: &str) -> IndexError {
    IndexError::Corrupt(format!("durable index: {msg}"))
}

fn io_err(e: std::io::Error) -> IndexError {
    IndexError::Io(e.to_string())
}

/// The log must still cover everything the checkpoint does not: its first
/// retained LSN (or, when empty, the next one it will assign) may not skip
/// past `ckpt_lsn + 1`.
fn check_coverage(log: &LogManager, ckpt_lsn: u64, what: &str) -> Result<()> {
    let first = log.first_lsn().unwrap_or_else(|| log.next_lsn());
    if first > ckpt_lsn + 1 {
        return Err(corrupt(&format!(
            "{what}: log begins at LSN {first} but the checkpoint covers only LSN {ckpt_lsn}; \
             the records in between are lost"
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Log payload wire format
// ---------------------------------------------------------------------------

fn encode_records_into(buf: &mut Vec<u8>, records: &[PresenceInstance]) {
    buf.extend_from_slice(&(records.len() as u32).to_le_bytes());
    for r in records {
        buf.extend_from_slice(&r.entity.raw().to_le_bytes());
        buf.extend_from_slice(&r.unit.to_le_bytes());
        buf.extend_from_slice(&r.period.start.to_le_bytes());
        buf.extend_from_slice(&r.period.end.to_le_bytes());
    }
}

/// Serialises one unsharded ingest batch into a log payload:
/// `count: u32` then `count` × (`entity: u64`, `unit: u32`, `start: u64`,
/// `end: u64`), all little-endian.
pub fn encode_batch(records: &[PresenceInstance]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + records.len() * RECORD_WIRE_LEN);
    encode_records_into(&mut buf, records);
    buf
}

/// Serialises one shard's slice of a routed batch: the cross-shard
/// `batch_id: u64` followed by the [`encode_batch`] layout.
pub fn encode_sub_batch(batch_id: u64, records: &[PresenceInstance]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(12 + records.len() * RECORD_WIRE_LEN);
    buf.extend_from_slice(&batch_id.to_le_bytes());
    encode_records_into(&mut buf, records);
    buf
}

/// Serialises a commit-log record: the committed `batch_id` alone.
pub fn encode_commit(batch_id: u64) -> Vec<u8> {
    batch_id.to_le_bytes().to_vec()
}

fn take<const N: usize>(payload: &[u8], at: &mut usize) -> Result<[u8; N]> {
    let bytes = payload
        .get(*at..*at + N)
        .ok_or_else(|| corrupt("log payload shorter than its own framing"))?;
    *at += N;
    Ok(bytes.try_into().expect("slice length is N by construction"))
}

fn expect_end(payload: &[u8], at: usize) -> Result<()> {
    if at != payload.len() {
        return Err(corrupt(&format!("{} trailing bytes after log payload", payload.len() - at)));
    }
    Ok(())
}

fn decode_records(payload: &[u8], at: &mut usize) -> Result<Vec<PresenceInstance>> {
    let count = u32::from_le_bytes(take::<4>(payload, at)?) as usize;
    if payload.len().saturating_sub(*at) < count * RECORD_WIRE_LEN {
        return Err(corrupt(&format!("log payload claims {count} records but is too short")));
    }
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        let entity = EntityId(u64::from_le_bytes(take::<8>(payload, at)?));
        let unit = u32::from_le_bytes(take::<4>(payload, at)?);
        let start = u64::from_le_bytes(take::<8>(payload, at)?);
        let end = u64::from_le_bytes(take::<8>(payload, at)?);
        let period = Period::new(start, end)
            .map_err(|e| corrupt(&format!("logged record has an invalid period: {e}")))?;
        records.push(PresenceInstance::new(entity, unit, period));
    }
    Ok(records)
}

/// Inverse of [`encode_batch`].
pub fn decode_batch(payload: &[u8]) -> Result<Vec<PresenceInstance>> {
    let mut at = 0;
    let records = decode_records(payload, &mut at)?;
    expect_end(payload, at)?;
    Ok(records)
}

/// Inverse of [`encode_sub_batch`].
pub fn decode_sub_batch(payload: &[u8]) -> Result<(u64, Vec<PresenceInstance>)> {
    let mut at = 0;
    let batch_id = u64::from_le_bytes(take::<8>(payload, &mut at)?);
    let records = decode_records(payload, &mut at)?;
    expect_end(payload, at)?;
    Ok((batch_id, records))
}

/// Inverse of [`encode_commit`].
pub fn decode_commit(payload: &[u8]) -> Result<u64> {
    let mut at = 0;
    let batch_id = u64::from_le_bytes(take::<8>(payload, &mut at)?);
    expect_end(payload, at)?;
    Ok(batch_id)
}

// ---------------------------------------------------------------------------
// Unsharded durable index
// ---------------------------------------------------------------------------

/// A [`MinSigIndex`] whose every ingest batch is logged and fsync'd before it
/// is applied; see the [module docs](self) for the protocol.
#[derive(Debug)]
pub struct DurableMinSigIndex {
    dir: PathBuf,
    index: MinSigIndex,
    log: LogManager,
}

impl DurableMinSigIndex {
    /// Starts a durable index in `dir` (created if needed) from an
    /// already-built `index`: writes the initial checkpoint and an empty log.
    /// Refuses to clobber an existing durable index.
    pub fn create(dir: &Path, index: MinSigIndex, config: LogConfig) -> Result<DurableMinSigIndex> {
        fs::create_dir_all(dir).map_err(io_err)?;
        let path = dir.join(DURABLE_INDEX_FILE);
        if path.exists() {
            return Err(IndexError::Io(format!(
                "durable index already exists at {}",
                path.display()
            )));
        }
        index.snapshot().save_with_wal_lsn(&path, 0)?;
        let (log, _) = LogManager::open(&wal_dir(dir), 0, config)?;
        Ok(DurableMinSigIndex { dir: dir.to_path_buf(), index, log })
    }

    /// Opens the durable index in `dir`, replaying every logged batch newer
    /// than the checkpoint.  The recovered index answers queries
    /// bit-identically to one that applied the same batches and never
    /// crashed.
    pub fn open(dir: &Path, config: LogConfig) -> Result<(DurableMinSigIndex, RecoveryReport)> {
        let (snapshot, ckpt_lsn) = IndexSnapshot::open_with_lsn(&dir.join(DURABLE_INDEX_FILE))?;
        let mut index = MinSigIndex::from_snapshot(std::sync::Arc::new(snapshot));
        let (log, records) = LogManager::open(&wal_dir(dir), ckpt_lsn, config)?;
        check_coverage(&log, ckpt_lsn, "unsharded log")?;

        let mut report = RecoveryReport::default();
        for record in records.iter().filter(|r| r.lsn > ckpt_lsn) {
            let batch = decode_batch(&record.payload)?;
            report.batches_replayed += 1;
            report.records_replayed += batch.len();
            index.ingest_batch(batch)?;
        }
        Ok((DurableMinSigIndex { dir: dir.to_path_buf(), index, log }, report))
    }

    /// Applies one batch durably: validates it, appends the serialised batch
    /// to the log (the fsync there is the commit point), then flushes it
    /// through the ordinary [`IngestBuffer`] path.  On a validation or log
    /// error the index is untouched and nothing was logged.
    pub fn ingest<I: IntoIterator<Item = PresenceInstance>>(
        &mut self,
        records: I,
    ) -> Result<IngestReport> {
        let mut buffer: IngestBuffer = records.into_iter().collect();
        if buffer.is_empty() {
            return buffer.flush(&mut self.index);
        }
        buffer.validate(self.index.sp_index(), self.index.ticks_per_unit())?;
        self.log.append(&encode_batch(buffer.records()))?;
        // Invariant: the batch just passed the exact validation `flush`
        // performs, and it is already durable — failing the flush now would
        // desynchronise the log from the index.
        Ok(buffer.flush(&mut self.index).expect("flush failed after validation and logging"))
    }

    /// Saves a checkpoint stamped with the log's current position, then
    /// truncates the log through that LSN.  A crash between the two steps is
    /// benign: the stored LSN filters the stale records out on recovery.
    pub fn checkpoint(&mut self) -> Result<()> {
        let lsn = self.log.next_lsn() - 1;
        self.index.snapshot().save_with_wal_lsn(&self.dir.join(DURABLE_INDEX_FILE), lsn)?;
        self.log.truncate_through(lsn)?;
        Ok(())
    }

    /// The wrapped index, for queries and inspection.
    pub fn index(&self) -> &MinSigIndex {
        &self.index
    }

    /// The write-ahead log (LSN positions, on-disk footprint).
    pub fn log(&self) -> &LogManager {
        &self.log
    }

    /// Unwraps the in-memory index, abandoning durability.
    pub fn into_index(self) -> MinSigIndex {
        self.index
    }
}

// ---------------------------------------------------------------------------
// Sharded durable index
// ---------------------------------------------------------------------------

/// A [`ShardedMinSigIndex`] with one write-ahead log per shard plus a commit
/// log that makes routed batches atomic across shards; see the
/// [module docs](self) for the protocol.
#[derive(Debug)]
pub struct DurableShardedMinSigIndex {
    dir: PathBuf,
    index: ShardedMinSigIndex,
    logs: Vec<LogManager>,
    commit: LogManager,
    next_batch_id: u64,
}

impl DurableShardedMinSigIndex {
    /// Starts a durable sharded index in `dir` (created if needed) from an
    /// already-built `index`: writes the initial checkpoint and empty
    /// per-shard and commit logs.  Refuses to clobber an existing one.
    pub fn create(
        dir: &Path,
        index: ShardedMinSigIndex,
        config: LogConfig,
    ) -> Result<DurableShardedMinSigIndex> {
        fs::create_dir_all(dir).map_err(io_err)?;
        let manifest = dir.join(SHARD_MANIFEST_FILE);
        if manifest.exists() {
            return Err(IndexError::Io(format!(
                "durable sharded index already exists at {}",
                manifest.display()
            )));
        }
        index.save(dir)?;
        let mut logs = Vec::with_capacity(index.num_shards());
        for shard in 0..index.num_shards() {
            let (log, _) = LogManager::open(&shard_wal_dir(dir, shard), 0, config)?;
            logs.push(log);
        }
        let (commit, _) = LogManager::open(&commit_wal_dir(dir), 0, config)?;
        Ok(DurableShardedMinSigIndex {
            dir: dir.to_path_buf(),
            index,
            logs,
            commit,
            next_batch_id: 1,
        })
    }

    /// Opens the durable sharded index in `dir`, replaying every *committed*
    /// sub-batch newer than each shard's checkpoint and discarding
    /// sub-batches whose batch id never reached the commit log.
    ///
    /// The checkpoint itself is read leniently (a crash mid-save may leave
    /// shard files from two checkpoint generations; per-file checksums and
    /// routing are still enforced) because the replay restores consistency.
    pub fn open(
        dir: &Path,
        config: LogConfig,
    ) -> Result<(DurableShardedMinSigIndex, RecoveryReport)> {
        let (mut index, ckpt_lsns) = ShardedMinSigIndex::open_for_recovery(dir)?;

        let (commit, commit_records) = LogManager::open(&commit_wal_dir(dir), 0, config)?;
        let mut committed = BTreeSet::new();
        for record in &commit_records {
            committed.insert(decode_commit(&record.payload)?);
        }

        let mut logs = Vec::with_capacity(ckpt_lsns.len());
        let mut report = RecoveryReport::default();
        let mut replayed_ids = BTreeSet::new();
        let mut max_seen_id = committed.iter().next_back().copied().unwrap_or(0);
        for (shard, &ckpt_lsn) in ckpt_lsns.iter().enumerate() {
            let (log, records) = LogManager::open(&shard_wal_dir(dir, shard), ckpt_lsn, config)?;
            check_coverage(&log, ckpt_lsn, &format!("shard {shard} log"))?;
            for record in records.iter().filter(|r| r.lsn > ckpt_lsn) {
                let (batch_id, batch) = decode_sub_batch(&record.payload)?;
                max_seen_id = max_seen_id.max(batch_id);
                if !committed.contains(&batch_id) {
                    report.uncommitted_discarded += 1;
                    continue;
                }
                report.records_replayed += batch.len();
                replayed_ids.insert(batch_id);
                index.shards[shard].ingest_batch(batch)?;
            }
            logs.push(log);
        }
        report.batches_replayed = replayed_ids.len();

        let durable = DurableShardedMinSigIndex {
            dir: dir.to_path_buf(),
            index,
            logs,
            commit,
            next_batch_id: max_seen_id + 1,
        };
        Ok((durable, report))
    }

    /// Applies one batch durably across the shards: validates it once against
    /// the shared hierarchy, appends each shard's sub-batch to that shard's
    /// log, appends the batch id to the commit log (**the commit point** —
    /// its fsync makes the whole batch recoverable), and only then flushes
    /// any shard.  On a validation or log error no shard was mutated; a
    /// sub-batch logged before the error stays uncommitted and recovery
    /// discards it.
    pub fn ingest<I: IntoIterator<Item = PresenceInstance>>(
        &mut self,
        records: I,
    ) -> Result<ShardedIngestReport> {
        let mut buffer: IngestBuffer = records.into_iter().collect();
        if buffer.is_empty() {
            return buffer.flush_sharded(&mut self.index);
        }
        {
            let probe = &self.index.shards[0];
            buffer.validate(probe.sp_index(), probe.ticks_per_unit())?;
        }

        let num_shards = self.index.num_shards();
        let mut per_shard: Vec<Vec<PresenceInstance>> = vec![Vec::new(); num_shards];
        for record in buffer.records() {
            per_shard[shard_of(record.entity, num_shards)].push(*record);
        }
        let batch_id = self.next_batch_id;
        for (shard, sub_batch) in per_shard.iter().enumerate() {
            if sub_batch.is_empty() {
                continue;
            }
            self.logs[shard].append(&encode_sub_batch(batch_id, sub_batch))?;
        }
        self.commit.append(&encode_commit(batch_id))?;
        self.next_batch_id = batch_id + 1;
        // Invariant: the batch just passed the exact validation
        // `flush_sharded` performs, and it is committed — failing the flush
        // now would desynchronise the logs from the shards.
        Ok(buffer
            .flush_sharded(&mut self.index)
            .expect("sharded flush failed after validation and logging"))
    }

    /// Saves a checkpoint with every shard file stamped with its log's
    /// current position, then truncates all the logs.  Uncommitted
    /// sub-batches below the stamped LSNs are retired with the logs — they
    /// were never applied and never will be.
    pub fn checkpoint(&mut self) -> Result<()> {
        let lsns: Vec<u64> = self.logs.iter().map(|log| log.next_lsn() - 1).collect();
        self.index.save_with_lsns(&self.dir, Some(&lsns))?;
        for (log, &lsn) in self.logs.iter_mut().zip(&lsns) {
            log.truncate_through(lsn)?;
        }
        let commit_lsn = self.commit.next_lsn() - 1;
        self.commit.truncate_through(commit_lsn)?;
        Ok(())
    }

    /// The wrapped sharded index, for queries and inspection.
    pub fn index(&self) -> &ShardedMinSigIndex {
        &self.index
    }

    /// One shard's write-ahead log.
    pub fn shard_log(&self, shard: usize) -> &LogManager {
        &self.logs[shard]
    }

    /// The cross-shard commit log.
    pub fn commit_log(&self) -> &LogManager {
        &self.commit
    }

    /// The id the next committed batch will carry.
    pub fn next_batch_id(&self) -> u64 {
        self.next_batch_id
    }

    /// Unwraps the in-memory sharded index, abandoning durability.
    pub fn into_index(self) -> ShardedMinSigIndex {
        self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use crate::testkit::{assert_equivalent_answers, PairedConfig, StreamConfig, Workload};

    fn workload() -> Workload {
        Workload::paired(PairedConfig { pairs: 24, ..PairedConfig::default() })
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("durable-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn no_fsync() -> LogConfig {
        LogConfig { fsync: false, ..LogConfig::default() }
    }

    fn batches(w: &Workload, n: usize) -> Vec<Vec<PresenceInstance>> {
        (0..n)
            .map(|i| {
                w.stream(StreamConfig {
                    records: 40,
                    existing_entities: 48,
                    new_entity_base: 1_000 + 100 * i as u64,
                    new_entity_span: 8,
                    new_entity_percent: 25,
                    start_tick: 10_000 + 5_000 * i as u64,
                    seed: 0xD00D + i as u64,
                    ..StreamConfig::default()
                })
            })
            .collect()
    }

    #[test]
    fn wire_formats_round_trip() {
        let w = workload();
        let records = batches(&w, 1).remove(0);
        assert_eq!(decode_batch(&encode_batch(&records)).unwrap(), records);
        let (id, back) = decode_sub_batch(&encode_sub_batch(42, &records)).unwrap();
        assert_eq!((id, back), (42, records.clone()));
        assert_eq!(decode_commit(&encode_commit(7)).unwrap(), 7);
        // Framing errors are Corrupt, not panics.
        assert!(matches!(decode_batch(&[1, 0, 0, 0]), Err(IndexError::Corrupt(_))));
        assert!(matches!(decode_commit(&[0; 9]), Err(IndexError::Corrupt(_))));
        let mut trailing = encode_batch(&records);
        trailing.push(0);
        assert!(matches!(decode_batch(&trailing), Err(IndexError::Corrupt(_))));
    }

    #[test]
    fn crash_before_checkpoint_replays_every_batch() {
        let w = workload();
        let config = IndexConfig::with_hash_functions(32);
        let dir = temp_dir("unsharded-replay");

        let mut oracle = w.build_index(config);
        let mut durable = DurableMinSigIndex::create(&dir, w.build_index(config), no_fsync())
            .expect("create durable index");
        for batch in batches(&w, 3) {
            oracle.ingest_batch(batch.clone()).unwrap();
            durable.ingest(batch).unwrap();
        }
        // Simulate a crash: drop without checkpointing.
        drop(durable);

        let (recovered, report) = DurableMinSigIndex::open(&dir, no_fsync()).unwrap();
        assert_eq!(report.batches_replayed, 3);
        assert_eq!(report.records_replayed, 120);
        assert_eq!(report.uncommitted_discarded, 0);
        assert_eq!(recovered.index().num_entities(), oracle.num_entities());
        assert_eq!(recovered.index().epoch(), oracle.epoch());
        let measure = w.measure();
        for query in [0u64, 9, 31] {
            let (a, _) = recovered.index().top_k(EntityId(query), 5, &measure).unwrap();
            let (b, _) = oracle.top_k(EntityId(query), 5, &measure).unwrap();
            assert_equivalent_answers(&a, &b, &format!("recovered, query {query}"));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_and_later_batches_still_replay() {
        let w = workload();
        let config = IndexConfig::with_hash_functions(32);
        let dir = temp_dir("unsharded-ckpt");
        let mut durable =
            DurableMinSigIndex::create(&dir, w.build_index(config), no_fsync()).unwrap();
        let all = batches(&w, 4);
        durable.ingest(all[0].clone()).unwrap();
        durable.ingest(all[1].clone()).unwrap();
        durable.checkpoint().unwrap();
        assert_eq!(durable.log().first_lsn(), None, "checkpoint truncates the log");
        durable.ingest(all[2].clone()).unwrap();
        durable.ingest(all[3].clone()).unwrap();
        drop(durable);

        let (recovered, report) = DurableMinSigIndex::open(&dir, no_fsync()).unwrap();
        assert_eq!(report.batches_replayed, 2, "only post-checkpoint batches replay");
        // Epochs count batches since the handle opened (`from_snapshot`
        // restarts at 0, exactly like the non-durable open path).
        assert_eq!(recovered.index().epoch(), 2);

        // A clean checkpoint leaves nothing to replay at all.
        let (mut durable, _) = DurableMinSigIndex::open(&dir, no_fsync()).unwrap();
        durable.checkpoint().unwrap();
        drop(durable);
        let (_, report) = DurableMinSigIndex::open(&dir, no_fsync()).unwrap();
        assert_eq!(report, RecoveryReport::default());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_to_clobber() {
        let w = workload();
        let dir = temp_dir("clobber");
        let config = IndexConfig::default();
        DurableMinSigIndex::create(&dir, w.build_index(config), no_fsync()).unwrap();
        assert!(matches!(
            DurableMinSigIndex::create(&dir, w.build_index(config), no_fsync()),
            Err(IndexError::Io(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_batch_is_never_logged() {
        let w = workload();
        let dir = temp_dir("invalid");
        let mut durable =
            DurableMinSigIndex::create(&dir, w.build_index(IndexConfig::default()), no_fsync())
                .unwrap();
        let bogus = PresenceInstance::new(
            EntityId(1),
            u32::MAX - 1, // not a unit of the hierarchy
            Period::new(0, 60).unwrap(),
        );
        let epoch = durable.index().epoch();
        assert!(durable.ingest(vec![bogus]).is_err());
        assert_eq!(durable.log().last_lsn(), None, "rejected batch must not reach the log");
        assert_eq!(durable.index().epoch(), epoch);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_crash_recovery_matches_never_crashed_oracle() {
        let w = workload();
        let config = IndexConfig::with_hash_functions(32);
        let dir = temp_dir("sharded-replay");
        let shards = 3;

        let mut oracle = ShardedMinSigIndex::build(&w.sp, &w.traces, config, shards).unwrap();
        let built = ShardedMinSigIndex::build(&w.sp, &w.traces, config, shards).unwrap();
        let mut durable = DurableShardedMinSigIndex::create(&dir, built, no_fsync()).unwrap();
        let all = batches(&w, 4);
        oracle.ingest_batch(all[0].clone()).unwrap();
        durable.ingest(all[0].clone()).unwrap();
        durable.checkpoint().unwrap();
        for batch in &all[1..] {
            oracle.ingest_batch(batch.clone()).unwrap();
            durable.ingest(batch.clone()).unwrap();
        }
        let next_id = durable.next_batch_id();
        drop(durable);

        let (recovered, report) = DurableShardedMinSigIndex::open(&dir, no_fsync()).unwrap();
        assert_eq!(report.batches_replayed, 3);
        assert_eq!(report.records_replayed, 120);
        assert_eq!(report.uncommitted_discarded, 0);
        assert_eq!(recovered.next_batch_id(), next_id, "batch ids must not be reused");
        assert_eq!(recovered.index().num_entities(), oracle.num_entities());
        let measure = w.measure();
        for query in [0u64, 9, 31] {
            let (a, _) = recovered.index().top_k(EntityId(query), 5, &measure).unwrap();
            let (b, _) = oracle.top_k(EntityId(query), 5, &measure).unwrap();
            assert_equivalent_answers(&a, &b, &format!("sharded recovered, query {query}"));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uncommitted_sub_batch_is_discarded() {
        let w = workload();
        let config = IndexConfig::with_hash_functions(32);
        let dir = temp_dir("uncommitted");
        let built = ShardedMinSigIndex::build(&w.sp, &w.traces, config, 2).unwrap();
        let mut durable = DurableShardedMinSigIndex::create(&dir, built, no_fsync()).unwrap();
        let all = batches(&w, 2);
        durable.ingest(all[0].clone()).unwrap();
        let epochs = durable.index().epochs();
        let orphan_id = durable.next_batch_id();
        drop(durable);

        // Simulate a crash between two shards' appends: shard 0 got its
        // sub-batch, the commit record was never written.
        let (mut log, _) = LogManager::open(&shard_wal_dir(&dir, 0), 0, no_fsync()).unwrap();
        log.append(&encode_sub_batch(orphan_id, &all[1])).unwrap();
        drop(log);

        let (recovered, report) = DurableShardedMinSigIndex::open(&dir, no_fsync()).unwrap();
        assert_eq!(report.batches_replayed, 1, "only the committed batch replays");
        assert_eq!(report.uncommitted_discarded, 1);
        assert_eq!(recovered.index().epochs(), epochs, "orphan must not advance any epoch");
        assert_eq!(
            recovered.next_batch_id(),
            orphan_id + 1,
            "the orphaned id is burned, never reused"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_log_behind_checkpoint_is_corrupt() {
        let w = workload();
        let dir = temp_dir("stale");
        let mut durable =
            DurableMinSigIndex::create(&dir, w.build_index(IndexConfig::default()), no_fsync())
                .unwrap();
        for batch in batches(&w, 2) {
            durable.ingest(batch).unwrap();
        }
        durable.checkpoint().unwrap();
        durable.ingest(batches(&w, 3).remove(2)).unwrap();
        durable.checkpoint().unwrap();
        drop(durable);

        // Fabricate a gap: the log's first retained record now sits well
        // beyond the checkpoint's LSN, so the records in between are gone.
        // Recovery must refuse, not silently lose data.
        fs::remove_dir_all(wal_dir(&dir)).unwrap();
        let (mut log, _) = LogManager::open(&wal_dir(&dir), 100, no_fsync()).unwrap();
        log.append(&encode_batch(&[])).unwrap();
        drop(log);
        assert!(matches!(DurableMinSigIndex::open(&dir, no_fsync()), Err(IndexError::Corrupt(_))));
        fs::remove_dir_all(&dir).unwrap();
    }
}
