//! Index configuration.

use crate::error::{IndexError, Result};
use serde::{Deserialize, Serialize};

/// How the hierarchical hash value of a *coarse* (non-base) ST-cell is derived.
///
/// The paper defines `h_u(t, l_x) = min over { h_u(t, l_c) | l_c child of l_x }`
/// — the minimum over **all** children, which guarantees that a coarse cell never
/// hashes above any of its descendants (the property Theorems 1–4 rely on).
/// Computing that minimum exactly requires enumerating every descendant base
/// unit, which is exact but expensive for wide hierarchies; this enum selects
/// between the exact rule and a scalable closed-form alternative that satisfies
/// the same monotonicity property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HasherMode {
    /// The paper's rule: minimum over all descendant base cells, memoised per
    /// coarse cell.  Exact but O(descendants) on first touch of each cell.
    Exhaustive,
    /// A scalable substitute: the hash of a cell at level `l` is the *maximum* of
    /// independent per-(time, ancestor) draws along its ancestor path.  The value
    /// of a parent is computed from a strict prefix of its children's paths, so
    /// `h(parent) <= h(child)` always holds — the only property the correctness
    /// theorems need — while evaluation is `O(level)` per cell with no memo.
    PathMax,
}

/// Configuration of a [`MinSigIndex`](crate::index::MinSigIndex).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndexConfig {
    /// Number of hash functions (`nh`), i.e. the signature width.
    pub num_hash_functions: u32,
    /// Seed of the hash family (the index is fully deterministic given the seed).
    pub hash_seed: u64,
    /// Size of the hash range; `None` derives it from the dataset as
    /// `|base units| × |time units|`, the paper's `[0, |S|-1]` range.
    pub hash_range: Option<u64>,
    /// How coarse-cell hashes are computed.
    pub hasher_mode: HasherMode,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            num_hash_functions: 128,
            hash_seed: 0x5EED_CAFE,
            hash_range: None,
            hasher_mode: HasherMode::PathMax,
        }
    }
}

impl IndexConfig {
    /// A configuration with a specific number of hash functions and defaults for
    /// everything else.
    pub fn with_hash_functions(num_hash_functions: u32) -> Self {
        IndexConfig { num_hash_functions, ..IndexConfig::default() }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.num_hash_functions == 0 {
            return Err(IndexError::InvalidConfig("num_hash_functions must be positive".into()));
        }
        if let Some(range) = self.hash_range {
            if range < 2 {
                return Err(IndexError::InvalidConfig("hash_range must be at least 2".into()));
            }
        }
        Ok(())
    }
}

/// When a cooperative executor publishes its local k-th-degree threshold to
/// the [`SharedBound`](crate::engine::SharedBound) the other shard executors
/// prune against.
///
/// Publishing is a relaxed atomic max-update — cheap, but not free on highly
/// contended queries; the policy trades publication latency (how quickly the
/// other shards learn a better bound) against update frequency.  **The policy
/// never changes any answer**: the shared bound only prunes subtrees that are
/// provably outside the global top-k, whatever the publication schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PublishPolicy {
    /// Publish immediately every time the local k-th-best degree improves
    /// (the default): tightest cross-shard pruning, one atomic max-update per
    /// improvement.
    EveryImprovement,
    /// Publish once at the end of each frontier quantum: batches updates for
    /// contended workloads, at the cost of other shards pruning against a
    /// slightly stale bound within a quantum.
    PerQuantum,
}

/// Whether concurrent per-shard executors share one global top-k bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BoundMode {
    /// One [`SharedBound`](crate::engine::SharedBound) across all shard
    /// executors (the default): every shard prunes against the best k-th
    /// degree *any* shard has found, recovering the pruning power of the
    /// unsharded tree.
    Shared,
    /// Each shard executor keeps only its private threshold — the PR 3
    /// independent fan-out, kept as the measurable baseline the
    /// `shard_scaling` bench (and the conformance stats tests) compare
    /// cooperative execution against.
    Independent,
}

/// Scheduler knobs of the cooperative sharded executor
/// ([`ShardedSnapshot`](crate::shard::ShardedSnapshot) query paths).
///
/// None of these knobs can change an answer — cooperative, independent,
/// any quantum and any publish policy all return the identical bitwise
/// top-k (`tests/shard_conformance.rs` proptests exactly this); they only
/// move work counters and wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Frontier nodes each executor processes per scheduling quantum before
    /// yielding (and, under [`PublishPolicy::PerQuantum`], publishing).
    /// Smaller quanta interleave shards more finely — bounds propagate
    /// earlier — at a higher scheduling overhead.  Must be at least 1.
    pub step_quantum: usize,
    /// When executors publish threshold improvements to the shared bound.
    pub publish_policy: PublishPolicy,
    /// Whether shard executors share a global bound at all.
    pub bound_mode: BoundMode,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            step_quantum: 32,
            publish_policy: PublishPolicy::EveryImprovement,
            bound_mode: BoundMode::Shared,
        }
    }
}

impl SchedulerConfig {
    /// A configuration with a specific step quantum and defaults for the rest.
    pub fn with_step_quantum(step_quantum: usize) -> Self {
        SchedulerConfig { step_quantum, ..SchedulerConfig::default() }
    }

    /// The independent-executor baseline (PR 3 semantics): private per-shard
    /// bounds, run-to-completion quanta.
    pub fn independent() -> Self {
        SchedulerConfig {
            step_quantum: usize::MAX,
            bound_mode: BoundMode::Independent,
            ..SchedulerConfig::default()
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.step_quantum == 0 {
            return Err(IndexError::InvalidConfig("step_quantum must be at least 1".into()));
        }
        Ok(())
    }
}

/// Knobs of the cost-based sharded query planner ([`crate::plan`]).
///
/// The planner consumes the per-shard [`Synopsis`](crate::synopsis::Synopsis)
/// to seed the search bound, skip shards and pick per-shard access paths
/// **before** any tree traversal.  Like the scheduler knobs, none of the
/// exact-planning knobs can change an answer — seeding and skipping rest on
/// strict-inequality certificates, and the flat scan is bitwise identical to
/// an exhausted tree search (`tests/planner_conformance.rs` proptests this);
/// they only move work counters and wall-clock time.
///
/// The **budget knobs** are different: setting
/// [`latency_budget_us`](Self::latency_budget_us) authorises the planner to
/// *degrade* — to answer shards whose exact cost does not fit the budget by
/// a deterministic sampled scan ([`ShardDecision::ApproximateScan`]) and to
/// downgrade still-unstarted shards when the per-query deadline expires
/// mid-flight.  Degradation is never silent ([`QueryStats::degradation`]
/// reports exactly what was sampled), never exceeds
/// [`recall_floor`](Self::recall_floor) in expectation, and **never occurs
/// when the exact plan fits the budget** — with an unset (or non-binding)
/// budget every answer stays bitwise identical to the unbudgeted plan
/// (`tests/deadline_conformance.rs` proptests this).
///
/// [`ShardDecision::ApproximateScan`]: crate::plan::ShardDecision::ApproximateScan
/// [`QueryStats::degradation`]: crate::stats::QueryStats::degradation
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// Score the shards' sketch entities exactly and publish their k-th-best
    /// degree as the initial search bound (a provable lower bound on the
    /// global k-th-best degree once `k` candidates are scored).
    pub seed_threshold: bool,
    /// Skip shards whose synopsis upper bound is strictly below the seeded
    /// threshold — provably outside the top-k, never opened.
    pub skip_shards: bool,
    /// Shards holding at most this many entities are answered by the flat
    /// exact scan instead of a best-first tree search (same answers, no
    /// frontier bookkeeping).  0 scans nothing but empty shards.
    pub scan_cutoff: usize,
    /// Per-query latency budget in microseconds; `None` (the default) turns
    /// all deadline machinery off — planning and execution are exactly the
    /// unbudgeted paths.  `Some(b)` makes the planner cost the exact plan
    /// (measured ns/degree × shard populations, plus cold-page I/O out of
    /// core) and downgrade the least promising shards to sampled scans until
    /// the estimate fits `b`; execution then enforces `b` as a hard deadline,
    /// downgrading any shard the clock overtakes.
    pub latency_budget_us: Option<u64>,
    /// The lowest expected recall a budget-forced sampled scan may be planned
    /// at (per shard): the planner never picks a sample rate whose
    /// [`Synopsis::expected_scan_recall`] falls below this floor, even when
    /// the budget asks for less work.  Irrelevant while
    /// [`latency_budget_us`](Self::latency_budget_us) is `None`.  Must lie in
    /// `[0, 1]`.
    ///
    /// [`Synopsis::expected_scan_recall`]: crate::synopsis::Synopsis::expected_scan_recall
    pub recall_floor: f64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            seed_threshold: true,
            skip_shards: true,
            scan_cutoff: 32,
            latency_budget_us: None,
            recall_floor: 0.9,
        }
    }
}

impl PlannerConfig {
    /// The planner turned fully off: no seeding, no skipping, tree search
    /// everywhere — the PR 4 behaviour, kept as the measurable baseline (and
    /// what the explicit `*_with_scheduler` entry points use).
    pub fn disabled() -> Self {
        PlannerConfig {
            seed_threshold: false,
            skip_shards: false,
            scan_cutoff: 0,
            ..PlannerConfig::default()
        }
    }

    /// The default planner with a per-query latency budget, in microseconds.
    pub fn with_budget(latency_budget_us: u64) -> Self {
        PlannerConfig { latency_budget_us: Some(latency_budget_us), ..PlannerConfig::default() }
    }

    /// The default planner with a latency budget and an explicit recall floor.
    pub fn with_budget_and_floor(latency_budget_us: u64, recall_floor: f64) -> Self {
        PlannerConfig {
            latency_budget_us: Some(latency_budget_us),
            recall_floor,
            ..PlannerConfig::default()
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.recall_floor) {
            return Err(IndexError::InvalidConfig("recall_floor must lie in [0, 1]".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(IndexConfig::default().validate().is_ok());
        assert_eq!(IndexConfig::default().hasher_mode, HasherMode::PathMax);
    }

    #[test]
    fn scheduler_defaults_are_cooperative_and_valid() {
        let s = SchedulerConfig::default();
        assert!(s.validate().is_ok());
        assert_eq!(s.bound_mode, BoundMode::Shared);
        assert_eq!(s.publish_policy, PublishPolicy::EveryImprovement);
        assert!(s.step_quantum >= 1);
        assert_eq!(SchedulerConfig::with_step_quantum(7).step_quantum, 7);
        assert_eq!(SchedulerConfig::independent().bound_mode, BoundMode::Independent);
        assert!(SchedulerConfig::with_step_quantum(0).validate().is_err());
    }

    #[test]
    fn planner_defaults_plan_and_disabled_does_not() {
        let p = PlannerConfig::default();
        assert!(p.seed_threshold);
        assert!(p.skip_shards);
        assert!(p.scan_cutoff > 0);
        assert_eq!(p.latency_budget_us, None, "no deadline machinery by default");
        assert!(p.validate().is_ok());
        let off = PlannerConfig::disabled();
        assert!(!off.seed_threshold);
        assert!(!off.skip_shards);
        assert_eq!(off.scan_cutoff, 0);
        assert_eq!(off.latency_budget_us, None);
    }

    #[test]
    fn planner_budget_constructors_and_validation() {
        let b = PlannerConfig::with_budget(5_000);
        assert_eq!(b.latency_budget_us, Some(5_000));
        assert!(b.seed_threshold, "budgeting keeps the default exact planning on");
        let f = PlannerConfig::with_budget_and_floor(5_000, 0.75);
        assert_eq!((f.latency_budget_us, f.recall_floor), (Some(5_000), 0.75));
        assert!(f.validate().is_ok());
        assert!(PlannerConfig { recall_floor: 1.5, ..PlannerConfig::default() }
            .validate()
            .is_err());
        assert!(PlannerConfig { recall_floor: -0.1, ..PlannerConfig::default() }
            .validate()
            .is_err());
    }

    #[test]
    fn with_hash_functions_overrides_only_nh() {
        let c = IndexConfig::with_hash_functions(512);
        assert_eq!(c.num_hash_functions, 512);
        assert_eq!(c.hash_seed, IndexConfig::default().hash_seed);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(IndexConfig { num_hash_functions: 0, ..IndexConfig::default() }
            .validate()
            .is_err());
        assert!(IndexConfig { hash_range: Some(1), ..IndexConfig::default() }.validate().is_err());
        assert!(IndexConfig { hash_range: Some(100), ..IndexConfig::default() }.validate().is_ok());
    }
}
