//! Index configuration.

use crate::error::{IndexError, Result};
use serde::{Deserialize, Serialize};

/// How the hierarchical hash value of a *coarse* (non-base) ST-cell is derived.
///
/// The paper defines `h_u(t, l_x) = min over { h_u(t, l_c) | l_c child of l_x }`
/// — the minimum over **all** children, which guarantees that a coarse cell never
/// hashes above any of its descendants (the property Theorems 1–4 rely on).
/// Computing that minimum exactly requires enumerating every descendant base
/// unit, which is exact but expensive for wide hierarchies; this enum selects
/// between the exact rule and a scalable closed-form alternative that satisfies
/// the same monotonicity property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HasherMode {
    /// The paper's rule: minimum over all descendant base cells, memoised per
    /// coarse cell.  Exact but O(descendants) on first touch of each cell.
    Exhaustive,
    /// A scalable substitute: the hash of a cell at level `l` is the *maximum* of
    /// independent per-(time, ancestor) draws along its ancestor path.  The value
    /// of a parent is computed from a strict prefix of its children's paths, so
    /// `h(parent) <= h(child)` always holds — the only property the correctness
    /// theorems need — while evaluation is `O(level)` per cell with no memo.
    PathMax,
}

/// Configuration of a [`MinSigIndex`](crate::index::MinSigIndex).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndexConfig {
    /// Number of hash functions (`nh`), i.e. the signature width.
    pub num_hash_functions: u32,
    /// Seed of the hash family (the index is fully deterministic given the seed).
    pub hash_seed: u64,
    /// Size of the hash range; `None` derives it from the dataset as
    /// `|base units| × |time units|`, the paper's `[0, |S|-1]` range.
    pub hash_range: Option<u64>,
    /// How coarse-cell hashes are computed.
    pub hasher_mode: HasherMode,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            num_hash_functions: 128,
            hash_seed: 0x5EED_CAFE,
            hash_range: None,
            hasher_mode: HasherMode::PathMax,
        }
    }
}

impl IndexConfig {
    /// A configuration with a specific number of hash functions and defaults for
    /// everything else.
    pub fn with_hash_functions(num_hash_functions: u32) -> Self {
        IndexConfig { num_hash_functions, ..IndexConfig::default() }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.num_hash_functions == 0 {
            return Err(IndexError::InvalidConfig("num_hash_functions must be positive".into()));
        }
        if let Some(range) = self.hash_range {
            if range < 2 {
                return Err(IndexError::InvalidConfig("hash_range must be at least 2".into()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(IndexConfig::default().validate().is_ok());
        assert_eq!(IndexConfig::default().hasher_mode, HasherMode::PathMax);
    }

    #[test]
    fn with_hash_functions_overrides_only_nh() {
        let c = IndexConfig::with_hash_functions(512);
        assert_eq!(c.num_hash_functions, 512);
        assert_eq!(c.hash_seed, IndexConfig::default().hash_seed);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(IndexConfig { num_hash_functions: 0, ..IndexConfig::default() }
            .validate()
            .is_err());
        assert!(IndexConfig { hash_range: Some(1), ..IndexConfig::default() }.validate().is_err());
        assert!(IndexConfig { hash_range: Some(100), ..IndexConfig::default() }.validate().is_ok());
    }
}
