//! Streaming ingestion: accumulate presence records and apply them to a
//! [`MinSigIndex`] as one copy-on-write batch.
//!
//! The single-record write path ([`MinSigIndex::upsert_entity`]) re-hashes the
//! affected entity's **entire** trace and publishes one snapshot per call —
//! fine for occasional corrections, wasteful for a stream of detections.  An
//! [`IngestBuffer`] instead accumulates [`PresenceInstance`]s and, on
//! [`flush`](IngestBuffer::flush), applies the whole batch as one delta:
//!
//! 1. records are grouped by entity and each group is materialised into a
//!    *delta* ST-cell set sequence (the only per-record work);
//! 2. for an entity already in the index, the new sequence is the per-level
//!    union of the old and delta sequences, and — because level sets
//!    distribute over unions — the new signature is the element-wise minimum
//!    [`SignatureList::merge_min`] of the old signature and the signature of
//!    the **delta cells only**: no previously ingested cell is ever re-hashed,
//!    and the result is bit-identical to rebuilding from the merged trace;
//! 3. each touched entity is re-routed along its root-to-leaf tree path
//!    (Section 4.2.3 incremental maintenance);
//! 4. the handle publishes the updated snapshot as **one** new epoch
//!    ([`MinSigIndex::epoch`] advances by exactly 1 per non-empty flush).
//!
//! Readers are never blocked and never observe a partial batch: the flush
//! mutates through [`Arc::make_mut`](std::sync::Arc::make_mut) under the
//! handle's exclusive borrow, so any snapshot taken before the flush keeps its
//! old state and any snapshot taken after sees the entire batch.  The whole
//! batch is validated *before* the copy-on-write, so a bad record (unknown
//! spatial unit) rejects the flush and leaves both the index and the buffer's
//! records intact.
//!
//! ```
//! use minsig::{IndexConfig, IngestBuffer, MinSigIndex};
//! use trace_model::{DiceAdm, EntityId, Period, PresenceInstance, SpIndex, TraceSet};
//!
//! let sp = SpIndex::uniform(2, &[2]).unwrap();
//! let base = sp.base_units().to_vec();
//! let mut traces = TraceSet::new(60);
//! for e in 0..3u64 {
//!     traces.record(PresenceInstance::new(EntityId(e), base[0], Period::new(0, 120).unwrap()));
//! }
//! let mut index = MinSigIndex::build(&sp, &traces, IndexConfig::default()).unwrap();
//! let before = index.snapshot();
//!
//! // Stream two new detections — one existing device, one brand new.
//! let mut buffer = IngestBuffer::new();
//! buffer.push(PresenceInstance::new(EntityId(0), base[2], Period::new(200, 260).unwrap()));
//! buffer.push(PresenceInstance::new(EntityId(9), base[2], Period::new(200, 260).unwrap()));
//! let report = buffer.flush(&mut index).unwrap();
//!
//! assert_eq!((report.records, report.entities_touched, report.entities_inserted), (2, 2, 1));
//! assert_eq!(index.epoch(), 1); // one epoch for the whole batch
//! assert!(index.contains(EntityId(9)));
//! assert!(!before.contains(EntityId(9))); // in-flight readers keep their snapshot
//!
//! // The merged index answers like one built from scratch on the merged data.
//! let (results, _) = index.top_k(EntityId(9), 1, &DiceAdm::uniform(2)).unwrap();
//! assert_eq!(results[0].entity, EntityId(0));
//! ```

use crate::error::Result;
use crate::index::MinSigIndex;
use crate::signature::SignatureList;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;
use trace_model::{CellSet, CellSetSequence, DigitalTrace, EntityId, PresenceInstance};

/// Accumulates presence records for batched application to a [`MinSigIndex`].
///
/// See the [module docs](crate::ingest) for the merge algorithm and the epoch
/// publication contract.  The buffer is index-agnostic until
/// [`flush`](IngestBuffer::flush): the same buffer type can feed any index
/// whose spatial hierarchy knows the records' units.
#[derive(Debug, Clone, Default)]
pub struct IngestBuffer {
    pending: Vec<PresenceInstance>,
}

/// What one [`IngestBuffer::flush`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Presence records applied by this flush.
    pub records: usize,
    /// Distinct entities whose signature / tree path was updated.
    pub entities_touched: usize,
    /// How many of the touched entities were new to the index.
    pub entities_inserted: usize,
    /// The handle's epoch after the flush (one batch = one epoch).
    pub epoch: u64,
    /// Wall-clock time of the flush, in microseconds.
    pub flush_time_us: u64,
}

impl IngestBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        IngestBuffer::default()
    }

    /// Creates an empty buffer with room for `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        IngestBuffer { pending: Vec::with_capacity(capacity) }
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Buffers one presence record (the entity is taken from the record).
    pub fn push(&mut self, record: PresenceInstance) {
        self.pending.push(record);
    }

    /// Discards all buffered records without applying them.
    pub fn clear(&mut self) {
        self.pending.clear();
    }

    /// The buffered records, in arrival order (used by the sharded flush in
    /// [`crate::shard`] to validate and route a batch before any shard is
    /// touched).
    pub(crate) fn records(&self) -> &[PresenceInstance] {
        &self.pending
    }

    /// Validates every buffered record against a spatial hierarchy without
    /// touching any index: the shared all-or-nothing gate of the sharded
    /// flush and the durable ingest path, run before a batch is logged or
    /// any shard mutated.
    pub(crate) fn validate(&self, sp: &trace_model::SpIndex, ticks_per_unit: u64) -> Result<()> {
        let mut by_entity: BTreeMap<EntityId, DigitalTrace> = BTreeMap::new();
        for record in &self.pending {
            by_entity.entry(record.entity).or_default().push(*record);
        }
        for delta_trace in by_entity.values() {
            delta_trace.cell_sequence(sp, ticks_per_unit)?;
        }
        Ok(())
    }

    /// Applies every buffered record to `index` as one copy-on-write batch
    /// and empties the buffer.
    ///
    /// All-or-nothing: the whole batch is validated against the index's
    /// spatial hierarchy first, so an invalid record (e.g. an unknown spatial
    /// unit) returns an error with the index unchanged **and the buffer still
    /// holding every record** — the caller can drop the bad record and retry.
    /// An empty buffer is a no-op that does not advance the epoch.
    pub fn flush(&mut self, index: &mut MinSigIndex) -> Result<IngestReport> {
        let start = Instant::now();
        if self.pending.is_empty() {
            return Ok(IngestReport { epoch: index.epoch(), ..IngestReport::default() });
        }

        // Group records by entity (BTreeMap: deterministic application order).
        let mut by_entity: BTreeMap<EntityId, DigitalTrace> = BTreeMap::new();
        for record in &self.pending {
            by_entity.entry(record.entity).or_default().push(*record);
        }

        // Materialise and validate every delta sequence BEFORE the
        // copy-on-write: a bad record must leave the index untouched.
        let snapshot = index.snapshot.as_ref();
        let (sp, ticks) = (&snapshot.sp, snapshot.ticks_per_unit);
        let mut deltas: Vec<(EntityId, CellSetSequence)> = Vec::with_capacity(by_entity.len());
        for (&entity, delta_trace) in &by_entity {
            deltas.push((entity, delta_trace.cell_sequence(sp, ticks)?));
        }

        let records = self.pending.len();
        let entities_touched = deltas.len();
        let mut entities_inserted = 0usize;
        let mut hash_evaluations = 0u64;

        // One copy-on-write for the whole batch; in-flight readers keep the
        // snapshot they already hold.
        let snap = Arc::make_mut(&mut index.snapshot);
        for (entity, delta_seq) in deltas {
            // Hash only the delta's cells; merge into the existing signature.
            let delta_sig = SignatureList::build(&snap.sp, &snap.hasher, &delta_seq);
            hash_evaluations +=
                delta_seq.total_cells() as u64 * snap.config.num_hash_functions as u64;
            let (seq, sig) = match (snap.sequences.remove(&entity), snap.signatures.remove(&entity))
            {
                (Some(old_seq), Some(old_sig)) => {
                    let merged: Vec<CellSet> = old_seq
                        .iter_levels()
                        .zip(delta_seq.iter_levels())
                        .map(|((_, old), (_, delta))| old.union(delta))
                        .collect();
                    let mut sig = old_sig;
                    sig.merge_min(&delta_sig);
                    (CellSetSequence::from_level_sets(merged), sig)
                }
                _ => {
                    entities_inserted += 1;
                    (delta_seq, delta_sig)
                }
            };
            snap.tree.insert(entity, &sig);
            snap.sequences.insert(entity, seq);
            snap.signatures.insert(entity, sig);
        }
        // The batch changed sizes and possibly the hot set: bring the
        // planning synopsis back in sync with the sequences it travels with
        // (one linear pass over cached lengths, no hashing), and republish
        // the flat candidate arena the read paths scan.
        snap.recompute_synopsis(None, index.epoch + 1);
        snap.rebuild_arena();

        index.stats.num_entities = snap.sequences.len();
        index.stats.num_nodes = snap.tree.num_nodes();
        index.stats.index_bytes = snap.tree.size_bytes();
        index.stats.hash_evaluations += hash_evaluations;
        // Measured once: the report's flush time and the stats' build-time
        // increment are the same number, so the two never disagree.
        let flush_time_us = start.elapsed().as_micros() as u64;
        index.stats.build_time_us += flush_time_us;
        index.epoch += 1;
        self.pending.clear();

        Ok(IngestReport {
            records,
            entities_touched,
            entities_inserted,
            epoch: index.epoch,
            flush_time_us,
        })
    }
}

impl Extend<PresenceInstance> for IngestBuffer {
    fn extend<I: IntoIterator<Item = PresenceInstance>>(&mut self, records: I) {
        self.pending.extend(records);
    }
}

impl FromIterator<PresenceInstance> for IngestBuffer {
    fn from_iter<I: IntoIterator<Item = PresenceInstance>>(records: I) -> Self {
        IngestBuffer { pending: records.into_iter().collect() }
    }
}

impl MinSigIndex {
    /// Applies a batch of presence records in one epoch — shorthand for
    /// filling an [`IngestBuffer`] and flushing it immediately.
    ///
    /// On a validation error the index is untouched but the records are
    /// **dropped** with the temporary buffer; manage an [`IngestBuffer`]
    /// yourself when you need the failed batch back for repair-and-retry.
    pub fn ingest_batch<I: IntoIterator<Item = PresenceInstance>>(
        &mut self,
        records: I,
    ) -> Result<IngestReport> {
        let mut buffer: IngestBuffer = records.into_iter().collect();
        buffer.flush(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use crate::error::IndexError;
    use trace_model::{PaperAdm, Period, SpIndex, TraceSet};

    fn seed_dataset(entities: u64) -> (SpIndex, TraceSet) {
        let sp = SpIndex::uniform(3, &[4, 4]).unwrap();
        let base = sp.base_units().to_vec();
        let mut traces = TraceSet::new(60);
        for e in 0..entities {
            for step in 0..4u64 {
                let unit = base[((e * 5 + step * 7) % base.len() as u64) as usize];
                let start = step * 300;
                traces.record(PresenceInstance::new(
                    EntityId(e),
                    unit,
                    Period::new(start, start + 60).unwrap(),
                ));
            }
        }
        (sp, traces)
    }

    fn streamed_records(sp: &SpIndex, n: u64) -> Vec<PresenceInstance> {
        let base = sp.base_units().to_vec();
        (0..n)
            .map(|i| {
                // A mix of existing (0..20) and new (>= 1000) entities.
                let entity =
                    if i % 3 == 0 { EntityId(1000 + i % 17) } else { EntityId(i * 13 % 20) };
                let unit = base[((i * 29) % base.len() as u64) as usize];
                let start = 5000 + i % 50 * 60;
                PresenceInstance::new(entity, unit, Period::new(start, start + 45).unwrap())
            })
            .collect()
    }

    /// The correctness bar of the batch path: flushing a batch must answer
    /// queries exactly like an index rebuilt from scratch over the merged
    /// trace set.
    #[test]
    fn flush_equals_full_rebuild() {
        let (sp, mut traces) = seed_dataset(20);
        let config = IndexConfig::with_hash_functions(32);
        let mut index = MinSigIndex::build(&sp, &traces, config).unwrap();
        let records = streamed_records(&sp, 300);
        for r in &records {
            traces.record(*r);
        }

        let report = index.ingest_batch(records).unwrap();
        assert_eq!(report.records, 300);
        assert_eq!(report.epoch, 1);
        assert!(report.entities_inserted > 0);

        // The rebuild derives its hash range from the merged data; pin the
        // incremental index's resolved range so both hash identically.
        let pinned = IndexConfig { hash_range: Some(index.hasher().range()), ..config };
        let rebuilt = MinSigIndex::build(&sp, &traces, pinned).unwrap();
        assert_eq!(index.num_entities(), rebuilt.num_entities());
        let measure = PaperAdm::default_for(sp.height() as usize);
        for query in [0u64, 7, 13, 1000, 1005] {
            let (a, _) = index.top_k(EntityId(query), 5, &measure).unwrap();
            let (b, _) = rebuilt.top_k(EntityId(query), 5, &measure).unwrap();
            assert_eq!(a, b, "query {query}");
        }
        // Signatures are bit-identical, not merely answer-equivalent.
        for e in index.sequences().keys() {
            assert_eq!(index.snapshot().signature(*e), rebuilt.snapshot().signature(*e));
            assert_eq!(index.sequence(*e), rebuilt.sequence(*e));
        }
    }

    #[test]
    fn readers_on_the_prior_epoch_are_unaffected() {
        let (sp, traces) = seed_dataset(12);
        let mut index =
            MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(16)).unwrap();
        let measure = PaperAdm::default_for(sp.height() as usize);
        let before = index.snapshot();
        let (answers_before, _) = before.top_k(EntityId(0), 3, &measure).unwrap();

        index.ingest_batch(streamed_records(&sp, 500)).unwrap();

        // The old snapshot still answers from the old state.
        assert_eq!(before.num_entities(), 12);
        let (answers_after, _) = before.top_k(EntityId(0), 3, &measure).unwrap();
        assert_eq!(answers_before, answers_after);
        assert!(index.num_entities() > 12);
    }

    #[test]
    fn empty_flush_is_a_no_op() {
        let (sp, traces) = seed_dataset(4);
        let mut index = MinSigIndex::build(&sp, &traces, IndexConfig::default()).unwrap();
        let mut buffer = IngestBuffer::new();
        let report = buffer.flush(&mut index).unwrap();
        assert_eq!(report, IngestReport { epoch: 0, ..IngestReport::default() });
        assert_eq!(index.epoch(), 0);
    }

    #[test]
    fn invalid_record_rejects_the_whole_batch() {
        let (sp, traces) = seed_dataset(6);
        let mut index =
            MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(16)).unwrap();
        let mut buffer = IngestBuffer::with_capacity(2);
        buffer.push(PresenceInstance::new(
            EntityId(0),
            sp.base_units()[0],
            Period::new(0, 60).unwrap(),
        ));
        // Spatial unit 9999 does not exist in the hierarchy.
        buffer.push(PresenceInstance::new(EntityId(1), 9999, Period::new(0, 60).unwrap()));

        let before = index.snapshot();
        let err = buffer.flush(&mut index).unwrap_err();
        assert!(matches!(err, IndexError::Model(_)), "got {err:?}");
        // Nothing was applied, nothing was dropped.
        assert_eq!(index.epoch(), 0);
        assert_eq!(buffer.len(), 2);
        assert!(Arc::ptr_eq(&before, &index.snapshot()), "snapshot must be untouched");

        buffer.clear();
        assert!(buffer.is_empty());
    }

    /// Regression: the flush used to call `elapsed()` twice, so the report's
    /// `flush_time_us` and the amount added to `IndexStats::build_time_us`
    /// disagreed.  They must be the same measurement.
    #[test]
    fn flush_time_matches_build_time_increment() {
        let (sp, traces) = seed_dataset(10);
        let mut index =
            MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(16)).unwrap();
        for batch in 0..3u64 {
            let before = index.stats().build_time_us;
            let report = index.ingest_batch(streamed_records(&sp, 200 + batch)).unwrap();
            assert_eq!(
                index.stats().build_time_us - before,
                report.flush_time_us,
                "build-time increment and reported flush time must be one measurement"
            );
        }
    }

    #[test]
    fn repeated_flushes_accumulate_epochs() {
        let (sp, traces) = seed_dataset(8);
        let mut index =
            MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(16)).unwrap();
        let mut buffer = IngestBuffer::new();
        for batch in 0..5u64 {
            buffer.extend(streamed_records(&sp, 40 + batch));
            let report = buffer.flush(&mut index).unwrap();
            assert_eq!(report.epoch, batch + 1);
            assert!(buffer.is_empty(), "flush drains the buffer");
        }
        assert_eq!(index.epoch(), 5);
        index.tree().check_invariants().unwrap();
    }
}
