//! Deterministic workload generation for tests and benchmarks.
//!
//! Every integration suite of the workspace needs the same three things: a
//! spatial hierarchy, a population of digital traces with *known* association
//! structure, and a stream of presence records to feed the ingest path.
//! Before this module existed each test file grew its own ad-hoc builder; the
//! testkit centralises them so the exactness, persistence, sharding and
//! concurrency suites all draw from one seeded, reproducible generator.
//!
//! A [`Workload`] bundles the hierarchy with the generated [`TraceSet`] and
//! offers index construction, probe sampling and record-stream helpers.
//! Populations come in three families:
//!
//! * **uniform** ([`Workload::uniform`]) — every entity visits uniformly
//!   random ST-cells; no planted structure, the general-purpose conformance
//!   population;
//! * **skewed** ([`Workload::paired`], [`Workload::skewed`]) — planted
//!   associations: itinerary-sharing pairs, and celebrity heavy-hitters over
//!   tiny single-cell pairs;
//! * **adversarial** ([`Workload::all_identical`],
//!   [`Workload::one_cell_pileup`], [`Workload::degenerate_mix`],
//!   [`Workload::pruning_adversarial`]) — the degenerate shapes that
//!   historically break top-k indexes: all-ties populations, one massively
//!   shared cell, empty and single-cell traces, and the sharding-skew
//!   population where one shard holds every top-k entity (the best and worst
//!   cases of cooperative bound sharing).
//!
//! Generation is fully deterministic: the same config (including its `seed`)
//! produces the same workload on every machine and every run, so a failing
//! case reported by CI reproduces locally without any artefact exchange.
//!
//! The oracle helpers ([`assert_matches_brute_force`],
//! [`assert_exact_for_all`]) compare an index's answers against the
//! brute-force ground truth — the black-box conformance check every query
//! path must pass.

use crate::config::IndexConfig;
use crate::index::MinSigIndex;
use crate::query::TopKResult;
use trace_model::{
    AssociationMeasure, DigitalTrace, EntityId, PaperAdm, Period, PresenceInstance, SpIndex,
    TraceSet,
};

/// Raw ticks per base temporal unit used by every generated workload.
pub const TICKS_PER_UNIT: u64 = 60;

/// A small deterministic generator (SplitMix64) so workload generation does
/// not depend on any external randomness crate.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Rng64 { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sample space");
        self.next_u64() % bound
    }
}

/// Shape of the spatial hierarchy a workload is generated over.
#[derive(Debug, Clone)]
pub struct HierarchySpec {
    /// Number of level-1 (top) units.
    pub top_units: usize,
    /// Branching factor per subsequent level; empty means a flat one-level
    /// hierarchy.
    pub branching: Vec<usize>,
}

impl Default for HierarchySpec {
    /// The three-level `3 × 4 × 4` hierarchy most suites use.
    fn default() -> Self {
        HierarchySpec { top_units: 3, branching: vec![4, 4] }
    }
}

impl HierarchySpec {
    /// A flat single-level hierarchy of `units` base units.
    pub fn flat(units: usize) -> Self {
        HierarchySpec { top_units: units, branching: Vec::new() }
    }

    /// A hierarchy with explicit top-unit count and branching factors.
    pub fn new(top_units: usize, branching: &[usize]) -> Self {
        HierarchySpec { top_units, branching: branching.to_vec() }
    }

    /// Materialises the hierarchy.
    pub fn build(&self) -> SpIndex {
        SpIndex::uniform(self.top_units, &self.branching).expect("valid hierarchy spec")
    }
}

/// Configuration of [`Workload::uniform`].
#[derive(Debug, Clone)]
pub struct UniformConfig {
    /// Number of generated entities (ids `0..entities`).
    pub entities: u64,
    /// Visits per entity.
    pub visits: u64,
    /// Number of base temporal units the visits are spread over.
    pub time_slots: u64,
    /// The hierarchy to generate over.
    pub hierarchy: HierarchySpec,
    /// Generator seed.
    pub seed: u64,
}

impl Default for UniformConfig {
    fn default() -> Self {
        UniformConfig {
            entities: 60,
            visits: 6,
            time_slots: 48,
            hierarchy: HierarchySpec::default(),
            seed: 0,
        }
    }
}

/// Configuration of [`Workload::paired`].
#[derive(Debug, Clone)]
pub struct PairedConfig {
    /// Number of entity pairs; pair `i` is entities `(2i, 2i+1)`.
    pub pairs: u64,
    /// Shared itinerary length per pair.
    pub steps: u64,
    /// Individual noise visits per member on top of the shared itinerary.
    pub noise_visits: u64,
    /// The hierarchy to generate over.
    pub hierarchy: HierarchySpec,
    /// Generator seed.
    pub seed: u64,
}

impl Default for PairedConfig {
    fn default() -> Self {
        PairedConfig {
            pairs: 20,
            steps: 6,
            noise_visits: 1,
            hierarchy: HierarchySpec::default(),
            seed: 0,
        }
    }
}

/// Configuration of [`Workload::skewed`].
#[derive(Debug, Clone)]
pub struct SkewedConfig {
    /// Number of celebrity entities visiting every base unit repeatedly
    /// (ids `0..celebrities`).
    pub celebrities: u64,
    /// Visits per base unit per celebrity.
    pub celebrity_visits_per_unit: u64,
    /// Number of tiny pairs sharing one ST-cell each (ids
    /// `celebrities..celebrities + 2 * pairs`).
    pub pairs: u64,
    /// The hierarchy to generate over.
    pub hierarchy: HierarchySpec,
    /// Generator seed.
    pub seed: u64,
}

impl Default for SkewedConfig {
    fn default() -> Self {
        SkewedConfig {
            celebrities: 1,
            celebrity_visits_per_unit: 10,
            pairs: 10,
            hierarchy: HierarchySpec::new(2, &[8]),
            seed: 0,
        }
    }
}

/// Configuration of [`Workload::stream`] — a batch of presence records to
/// feed the ingest path, mixing visits of existing entities with brand-new
/// entity ids.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Number of generated records.
    pub records: usize,
    /// Existing entities are drawn from `0..existing_entities`.
    pub existing_entities: u64,
    /// New entities are drawn from `new_entity_base..new_entity_base + new_entity_span`.
    pub new_entity_base: u64,
    /// Size of the new-entity id pool.
    pub new_entity_span: u64,
    /// Percentage (0–100) of records addressed to new entities.
    pub new_entity_percent: u8,
    /// First tick of the stream's time window (put it after the seed
    /// workload's window to model fresh detections).
    pub start_tick: u64,
    /// Number of base temporal units the stream spans.
    pub time_slots: u64,
    /// Generator seed.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            records: 200,
            existing_entities: 20,
            new_entity_base: 1_000,
            new_entity_span: 16,
            new_entity_percent: 25,
            start_tick: 10_000,
            time_slots: 50,
            seed: 1,
        }
    }
}

/// Configuration of [`Workload::pruning_adversarial`] — the workload that
/// makes cross-shard bound sharing matter most (and least).
///
/// A *hot* clique of high-overlap entities is planted so that **every** hot
/// id routes to one single shard under [`shard_of`](crate::shard::shard_of)
/// with `num_shards` shards; a *cold* background of weakly-associated
/// entities fills the remaining shards.  Querying a hot entity is the shared
/// bound's best case: the hot shard saturates the global k-th degree almost
/// immediately, and every cold shard should prune its whole tree against the
/// published bound instead of grinding to its own (far lower) local
/// threshold.  Querying a cold entity is the worst case: all thresholds stay
/// low and sharing buys little — the overhead side of the trade.
#[derive(Debug, Clone)]
pub struct PruningAdversarialConfig {
    /// The shard count the hot clique is aimed at: all hot entity ids route
    /// to one shard when the workload is built with this many shards.
    pub num_shards: usize,
    /// Number of hot (high-overlap) entities.
    pub hot_entities: u64,
    /// Number of cold (weak-overlap) background entities.
    pub cold_entities: u64,
    /// Length of the shared hot itinerary in ST-cells.
    pub itinerary_steps: u64,
    /// The hierarchy to generate over.
    pub hierarchy: HierarchySpec,
    /// Generator seed.
    pub seed: u64,
}

impl Default for PruningAdversarialConfig {
    fn default() -> Self {
        PruningAdversarialConfig {
            num_shards: 4,
            hot_entities: 12,
            cold_entities: 48,
            itinerary_steps: 6,
            hierarchy: HierarchySpec::default(),
            seed: 0,
        }
    }
}

/// Configuration of [`Workload::planner_localized`] — the query planner's
/// **best** case: every top-k answer of a hot query lives in one single
/// shard, and every other shard is provably skippable.
///
/// A hot clique (all ids routing to one shard under
/// [`shard_of`](crate::shard::shard_of) with `num_shards` shards) shares an
/// itinerary; every background entity holds exactly **one** ST-cell in a
/// time window disjoint from the clique's, so background shards have
/// per-level capacity caps of 1 and zero overlap with a hot query — their
/// synopsis upper bound is far below the seeded threshold, and the planner
/// must prove all of them away ([`QueryStats::shards_skipped`]
/// `= num_shards - 1` for a hot query at `num_shards ≥ 2`).
///
/// [`QueryStats::shards_skipped`]: crate::stats::QueryStats::shards_skipped
#[derive(Debug, Clone)]
pub struct PlannerLocalizedConfig {
    /// The shard count the hot clique is aimed at.
    pub num_shards: usize,
    /// Number of hot (clique) entities; must be at least 2.
    pub hot_entities: u64,
    /// Number of single-cell background entities filling the other shards.
    pub background_entities: u64,
    /// Length of the shared hot itinerary in ST-cells.
    pub itinerary_steps: u64,
    /// The hierarchy to generate over.
    pub hierarchy: HierarchySpec,
    /// Generator seed.
    pub seed: u64,
}

impl Default for PlannerLocalizedConfig {
    fn default() -> Self {
        PlannerLocalizedConfig {
            num_shards: 4,
            hot_entities: 12,
            background_entities: 48,
            itinerary_steps: 6,
            hierarchy: HierarchySpec::default(),
            seed: 0,
        }
    }
}

/// Configuration of [`Workload::planner_dispersed`] — the query planner's
/// **worst** case: strong candidates live in every shard, so no shard is
/// skippable and planning can only pay for itself through seeding.
///
/// Every generated entity shares one global itinerary (plus light private
/// noise keeping degrees distinct), and ids are chosen so each shard under
/// `num_shards` receives exactly `entities_per_shard` of them: every
/// shard's capacity caps and achievable degrees look alike, the planner's
/// skip certificate can never fire, and `shards_skipped` must stay 0.
#[derive(Debug, Clone)]
pub struct PlannerDispersedConfig {
    /// The shard count the population is spread over.
    pub num_shards: usize,
    /// Entities routed to each shard (total = `num_shards × entities_per_shard`).
    pub entities_per_shard: u64,
    /// Length of the shared global itinerary in ST-cells.
    pub itinerary_steps: u64,
    /// The hierarchy to generate over.
    pub hierarchy: HierarchySpec,
    /// Generator seed.
    pub seed: u64,
}

impl Default for PlannerDispersedConfig {
    fn default() -> Self {
        PlannerDispersedConfig {
            num_shards: 4,
            entities_per_shard: 12,
            itinerary_steps: 6,
            hierarchy: HierarchySpec::default(),
            seed: 0,
        }
    }
}

/// Configuration of [`Workload::deadline_adversarial`] — the budgeted
/// planner's stress case: **one pathologically expensive shard** (a large
/// clique sharing a long itinerary, so its tree search must score many
/// strong candidates) while every other shard holds only trivial
/// single-cell entities.  A latency budget that comfortably covers the
/// cheap shards binds exactly on the expensive one, which is where the
/// downgrade protocol and the recall floor earn their keep.
#[derive(Debug, Clone)]
pub struct DeadlineAdversarialConfig {
    /// The shard count; the expensive clique lands in one of them.
    pub num_shards: usize,
    /// Clique size of the expensive shard; must be at least 2.
    pub expensive_entities: u64,
    /// Single-cell entities filling the remaining (cheap) shards.
    pub cheap_entities: u64,
    /// Length of the clique's shared itinerary in ST-cells.
    pub itinerary_steps: u64,
    /// Extra expensive-shard entities that each walk a random *window* of
    /// the clique itinerary plus one private cell.  Their overlap with a
    /// clique query is real but strictly below every clique partner's (the
    /// private cell keeps the Dice ratio under its ceiling), so the exact
    /// top-k is untouched — yet their distinct signatures fan the shard's
    /// tree into many small leaves, which is what gives a deadline-driven
    /// executor fine-grained abandon points.  Requires
    /// `itinerary_steps >= 4` when non-zero.
    pub chaff_entities: u64,
    /// The hierarchy to generate over.
    pub hierarchy: HierarchySpec,
    /// Generator seed.
    pub seed: u64,
}

impl Default for DeadlineAdversarialConfig {
    fn default() -> Self {
        DeadlineAdversarialConfig {
            num_shards: 4,
            expensive_entities: 24,
            cheap_entities: 24,
            itinerary_steps: 8,
            chaff_entities: 0,
            hierarchy: HierarchySpec::default(),
            seed: 0,
        }
    }
}

/// A generated population: the hierarchy it lives in plus its trace set.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The spatial hierarchy the traces were generated over.
    pub sp: SpIndex,
    /// The generated traces.
    pub traces: TraceSet,
}

impl Workload {
    /// Uniformly random visits — no planted structure.
    pub fn uniform(config: UniformConfig) -> Workload {
        let sp = config.hierarchy.build();
        let base = sp.base_units().to_vec();
        let mut rng = Rng64::new(config.seed);
        let mut traces = TraceSet::new(TICKS_PER_UNIT);
        for e in 0..config.entities {
            for _ in 0..config.visits {
                let unit = base[rng.below(base.len() as u64) as usize];
                let start = rng.below(config.time_slots) * TICKS_PER_UNIT;
                traces.record(PresenceInstance::new(
                    EntityId(e),
                    unit,
                    Period::new(start, start + TICKS_PER_UNIT).unwrap(),
                ));
            }
        }
        Workload { sp, traces }
    }

    /// Itinerary-sharing pairs: entities `(2i, 2i+1)` visit the same random
    /// ST-cells, plus per-member noise visits in a disjoint time window —
    /// each entity's strongest association is its partner.
    pub fn paired(config: PairedConfig) -> Workload {
        let sp = config.hierarchy.build();
        let base = sp.base_units().to_vec();
        let mut rng = Rng64::new(config.seed);
        let mut traces = TraceSet::new(TICKS_PER_UNIT);
        // The shared itineraries live strictly before `noise_start`, so noise
        // can never accidentally strengthen a cross-pair association above a
        // partner's.
        let noise_start = config.steps * 3 * TICKS_PER_UNIT;
        for i in 0..config.pairs {
            let shared: Vec<(u32, u64)> = (0..config.steps)
                .map(|step| {
                    let unit = base[rng.below(base.len() as u64) as usize];
                    (unit, step * 3 * TICKS_PER_UNIT)
                })
                .collect();
            for member in 0..2u64 {
                let entity = EntityId(2 * i + member);
                for &(unit, start) in &shared {
                    traces.record(PresenceInstance::new(
                        entity,
                        unit,
                        Period::new(start, start + TICKS_PER_UNIT).unwrap(),
                    ));
                }
                for n in 0..config.noise_visits {
                    let unit = base[rng.below(base.len() as u64) as usize];
                    let start = noise_start + (i * 7 + member * 3 + n) % 29 * 2 * TICKS_PER_UNIT;
                    traces.record(PresenceInstance::new(
                        entity,
                        unit,
                        Period::new(start, start + TICKS_PER_UNIT).unwrap(),
                    ));
                }
            }
        }
        Workload { sp, traces }
    }

    /// Celebrity heavy-hitters over tiny pairs: a few entities visit every
    /// base unit repeatedly while many pairs share one specific ST-cell each.
    /// The celebrities' huge traces dilute their ratio-style degrees, so a
    /// tiny entity's top-1 must still be its partner.
    pub fn skewed(config: SkewedConfig) -> Workload {
        let sp = config.hierarchy.build();
        let base = sp.base_units().to_vec();
        let mut rng = Rng64::new(config.seed);
        let mut traces = TraceSet::new(TICKS_PER_UNIT);
        for c in 0..config.celebrities {
            for (i, &unit) in base.iter().enumerate() {
                for t in 0..config.celebrity_visits_per_unit {
                    let start = (i as u64 * config.celebrity_visits_per_unit + t) * TICKS_PER_UNIT;
                    traces.record(PresenceInstance::new(
                        EntityId(c),
                        unit,
                        Period::new(start, start + TICKS_PER_UNIT).unwrap(),
                    ));
                }
            }
        }
        let pair_slots = base.len() as u64 * config.celebrity_visits_per_unit;
        for p in 0..config.pairs {
            let unit = base[rng.below(base.len() as u64) as usize];
            let start = (pair_slots + p * 3) * TICKS_PER_UNIT;
            for member in 0..2u64 {
                traces.record(PresenceInstance::new(
                    EntityId(config.celebrities + 2 * p + member),
                    unit,
                    Period::new(start, start + TICKS_PER_UNIT).unwrap(),
                ));
            }
        }
        Workload { sp, traces }
    }

    /// Adversarial: every entity has exactly the same trace (all base units,
    /// same times) — every degree ties, and search must still terminate.
    pub fn all_identical(entities: u64, hierarchy: HierarchySpec) -> Workload {
        let sp = hierarchy.build();
        let base = sp.base_units().to_vec();
        let mut traces = TraceSet::new(TICKS_PER_UNIT);
        for e in 0..entities {
            for (i, &unit) in base.iter().enumerate() {
                let start = i as u64 * TICKS_PER_UNIT;
                traces.record(PresenceInstance::new(
                    EntityId(e),
                    unit,
                    Period::new(start, start + TICKS_PER_UNIT).unwrap(),
                ));
            }
        }
        Workload { sp, traces }
    }

    /// Adversarial: `crowd` entities (ids `0..crowd`) share one single
    /// ST-cell; one hermit (id `crowd`) lives alone in the last base unit.
    /// The hermit's best association degree is zero.
    pub fn one_cell_pileup(crowd: u64, hierarchy: HierarchySpec) -> Workload {
        let sp = hierarchy.build();
        let base = sp.base_units().to_vec();
        assert!(base.len() >= 2, "pileup needs somewhere for the hermit to hide");
        let mut traces = TraceSet::new(TICKS_PER_UNIT);
        for e in 0..crowd {
            traces.record(PresenceInstance::new(
                EntityId(e),
                base[0],
                Period::new(0, TICKS_PER_UNIT).unwrap(),
            ));
        }
        traces.record(PresenceInstance::new(
            EntityId(crowd),
            *base.last().unwrap(),
            Period::new(0, TICKS_PER_UNIT).unwrap(),
        ));
        Workload { sp, traces }
    }

    /// Adversarial: a normal pair (entities 0 and 1 sharing five cells), a
    /// single-cell entity (2, covered by the pair's first cell) and an
    /// empty-trace entity (3) coexist in one index.
    pub fn degenerate_mix(hierarchy: HierarchySpec) -> Workload {
        let sp = hierarchy.build();
        let base = sp.base_units().to_vec();
        assert!(base.len() >= 5, "degenerate mix wants five distinct base units");
        let mut traces = TraceSet::new(TICKS_PER_UNIT);
        for e in [0u64, 1] {
            for i in 0..5u64 {
                traces.record(PresenceInstance::new(
                    EntityId(e),
                    base[i as usize],
                    Period::new(i * TICKS_PER_UNIT, (i + 1) * TICKS_PER_UNIT).unwrap(),
                ));
            }
        }
        traces.record(PresenceInstance::new(
            EntityId(2),
            base[0],
            Period::new(0, TICKS_PER_UNIT).unwrap(),
        ));
        traces.insert_trace(EntityId(3), DigitalTrace::new());
        Workload { sp, traces }
    }

    /// Adversarial for sharded pruning: one shard holds **all** top-k
    /// entities of a hot query, the other shards only weak decoys.
    ///
    /// Returns the workload plus the hot entity ids (ascending) — all of
    /// which route to the same shard when sharded `config.num_shards` ways.
    /// Hot entities share one itinerary (plus per-entity noise that keeps
    /// their degrees distinct-but-high); each cold entity touches exactly one
    /// itinerary cell, so its association with a hot query is weak but
    /// non-zero, and gets its own noise cells.  See
    /// [`PruningAdversarialConfig`] for how the best/worst cases of the
    /// shared bound are exercised.
    pub fn pruning_adversarial(config: PruningAdversarialConfig) -> (Workload, Vec<EntityId>) {
        assert!(config.num_shards > 0, "the hot clique needs a shard to live in");
        assert!(config.hot_entities >= 2, "a clique of one has no associations");
        assert!(config.itinerary_steps >= 1, "the hot itinerary cannot be empty");
        let sp = config.hierarchy.build();
        let base = sp.base_units().to_vec();
        let mut rng = Rng64::new(config.seed);
        let mut traces = TraceSet::new(TICKS_PER_UNIT);

        // Partition candidate ids by their home shard under the configured
        // shard count; the hot clique gets ids routing to the shard of id 0.
        let (hot, cold) = partition_ids_by_home_shard(
            config.num_shards,
            config.hot_entities,
            config.cold_entities,
        );

        // The shared hot itinerary, strictly before the noise window.
        let itinerary = random_itinerary(&base, &mut rng, config.itinerary_steps);
        let noise_start = config.itinerary_steps * 2 * TICKS_PER_UNIT;
        record_itinerary_clique(&mut traces, &base, &mut rng, &itinerary, &hot, noise_start, 5);
        for (i, &entity) in cold.iter().enumerate() {
            // One itinerary cell: weak but non-zero association with the
            // clique, so cold shards cannot trivially return empty answers.
            let (unit, start) = itinerary[i % itinerary.len()];
            traces.record(PresenceInstance::new(
                entity,
                unit,
                Period::new(start, start + TICKS_PER_UNIT).unwrap(),
            ));
            // Heavy private noise dilutes the cold entity's ratio degrees.
            for n in 0..4u64 {
                let unit = base[rng.below(base.len() as u64) as usize];
                let start = noise_start + (i as u64 * 11 + n * 3) * TICKS_PER_UNIT;
                traces.record(PresenceInstance::new(
                    entity,
                    unit,
                    Period::new(start, start + TICKS_PER_UNIT).unwrap(),
                ));
            }
        }
        (Workload { sp, traces }, hot)
    }

    /// The planner's best case: all top-k answers of a hot query route to
    /// one shard, every other shard is provably skippable.  Returns the
    /// workload plus the hot entity ids (ascending); see
    /// [`PlannerLocalizedConfig`] for the planted structure.
    pub fn planner_localized(config: PlannerLocalizedConfig) -> (Workload, Vec<EntityId>) {
        assert!(config.num_shards > 0, "the hot clique needs a shard to live in");
        assert!(config.hot_entities >= 2, "a clique of one has no associations");
        assert!(config.itinerary_steps >= 1, "the hot itinerary cannot be empty");
        let sp = config.hierarchy.build();
        let base = sp.base_units().to_vec();
        let mut rng = Rng64::new(config.seed);
        let mut traces = TraceSet::new(TICKS_PER_UNIT);

        let (hot, background) = partition_ids_by_home_shard(
            config.num_shards,
            config.hot_entities,
            config.background_entities,
        );

        // The shared hot itinerary, followed by light per-entity hot noise
        // that keeps clique degrees high but distinct.
        let itinerary = random_itinerary(&base, &mut rng, config.itinerary_steps);
        let noise_start = config.itinerary_steps * 2 * TICKS_PER_UNIT;
        record_itinerary_clique(&mut traces, &base, &mut rng, &itinerary, &hot, noise_start, 5);

        // Background: exactly one cell per entity, in its own time slot far
        // beyond every hot cell — zero overlap with any hot query, and
        // per-level capacity caps of 1 in every background shard.
        let background_start = noise_start + (config.hot_entities * 5 + 10) * TICKS_PER_UNIT;
        for (i, &entity) in background.iter().enumerate() {
            let unit = base[rng.below(base.len() as u64) as usize];
            let start = background_start + i as u64 * TICKS_PER_UNIT;
            traces.record(PresenceInstance::new(
                entity,
                unit,
                Period::new(start, start + TICKS_PER_UNIT).unwrap(),
            ));
        }
        (Workload { sp, traces }, hot)
    }

    /// The planner's worst case: strong candidates spread evenly over every
    /// shard, so the skip certificate can never fire.  Returns the workload
    /// plus all entity ids (ascending); see [`PlannerDispersedConfig`].
    pub fn planner_dispersed(config: PlannerDispersedConfig) -> (Workload, Vec<EntityId>) {
        assert!(config.num_shards > 0, "entities need shards to live in");
        assert!(config.entities_per_shard >= 1, "every shard must hold a candidate");
        assert!(config.itinerary_steps >= 1, "the shared itinerary cannot be empty");
        let sp = config.hierarchy.build();
        let base = sp.base_units().to_vec();
        let mut rng = Rng64::new(config.seed);
        let mut traces = TraceSet::new(TICKS_PER_UNIT);

        // Exactly `entities_per_shard` ids routing to every shard.
        let mut per_shard: Vec<u64> = vec![0; config.num_shards];
        let mut entities: Vec<EntityId> = Vec::new();
        let mut next_id = 0u64;
        while per_shard.iter().any(|&n| n < config.entities_per_shard) {
            let id = EntityId(next_id);
            next_id += 1;
            let home = crate::shard::shard_of(id, config.num_shards);
            if per_shard[home] < config.entities_per_shard {
                per_shard[home] += 1;
                entities.push(id);
            }
        }
        entities.sort();

        let itinerary = random_itinerary(&base, &mut rng, config.itinerary_steps);
        let noise_start = config.itinerary_steps * 2 * TICKS_PER_UNIT;
        record_itinerary_clique(
            &mut traces,
            &base,
            &mut rng,
            &itinerary,
            &entities,
            noise_start,
            7,
        );
        (Workload { sp, traces }, entities)
    }

    /// One pathologically expensive shard plus cheap rest — the budgeted
    /// planner's stress workload; see [`DeadlineAdversarialConfig`].
    /// Returns the workload plus the expensive clique's ids (the natural
    /// probes: their queries *must* drive the expensive shard).
    pub fn deadline_adversarial(config: DeadlineAdversarialConfig) -> (Workload, Vec<EntityId>) {
        assert!(config.num_shards > 0, "the expensive clique needs a shard to live in");
        assert!(config.expensive_entities >= 2, "a clique of one has no associations");
        assert!(config.itinerary_steps >= 1, "the clique itinerary cannot be empty");
        assert!(
            config.chaff_entities == 0 || config.itinerary_steps >= 4,
            "chaff windows need an itinerary of at least 4 steps"
        );
        let sp = config.hierarchy.build();
        let base = sp.base_units().to_vec();
        let mut rng = Rng64::new(config.seed);
        let mut traces = TraceSet::new(TICKS_PER_UNIT);

        let (hot, cheap) = partition_ids_by_home_shard(
            config.num_shards,
            config.expensive_entities + config.chaff_entities,
            config.cheap_entities,
        );
        let (expensive, chaff) = hot.split_at(config.expensive_entities as usize);
        let expensive = expensive.to_vec();

        // The expensive shard: every clique member walks the whole shared
        // itinerary — and nothing else, so all partners *tie* in degree.
        // The tie wall is what makes the shard pathological (tie-complete
        // pruning must expand every boundary subtree), and it keeps the
        // recall oracle honest: any k sampled partners are a fully valid
        // degraded answer, so measured recall reflects sampling coverage,
        // not arbitrary id tie-breaks the sampler cannot know.
        let itinerary = random_itinerary(&base, &mut rng, config.itinerary_steps);
        for &entity in &expensive {
            for &(unit, start) in &itinerary {
                traces.record(PresenceInstance::new(
                    entity,
                    unit,
                    Period::new(start, start + TICKS_PER_UNIT).unwrap(),
                ));
            }
        }

        // Chaff: each walks a random window of the itinerary plus one
        // private cell all its own.  The window makes its overlap with a
        // clique query real (its subtree cannot be dismissed for free); the
        // private cell caps its Dice ratio strictly below the clique
        // partners' (overlap w of sizes steps vs w+1 scores under the
        // full-overlap tie wall), so chaff never enters the exact top-k of
        // any clique probe as long as k stays within the clique.
        let window = (config.itinerary_steps / 2).max(1);
        let chaff_start = config.itinerary_steps * 2 * TICKS_PER_UNIT;
        for (i, &entity) in chaff.iter().enumerate() {
            let offset = rng.below(config.itinerary_steps - window + 1) as usize;
            for &(unit, start) in &itinerary[offset..offset + window as usize] {
                traces.record(PresenceInstance::new(
                    entity,
                    unit,
                    Period::new(start, start + TICKS_PER_UNIT).unwrap(),
                ));
            }
            let unit = base[rng.below(base.len() as u64) as usize];
            let private = chaff_start + i as u64 * TICKS_PER_UNIT;
            traces.record(PresenceInstance::new(
                entity,
                unit,
                Period::new(private, private + TICKS_PER_UNIT).unwrap(),
            ));
        }

        // Cheap shards: one isolated cell per entity, far past every clique
        // and chaff cell — zero overlap with any clique query, trivially
        // skippable or scannable in no time.
        let cheap_start = config.itinerary_steps * 2 * TICKS_PER_UNIT
            + (config.chaff_entities + config.expensive_entities * 5 + 10) * TICKS_PER_UNIT;
        for (i, &entity) in cheap.iter().enumerate() {
            let unit = base[rng.below(base.len() as u64) as usize];
            let start = cheap_start + i as u64 * TICKS_PER_UNIT;
            traces.record(PresenceInstance::new(
                entity,
                unit,
                Period::new(start, start + TICKS_PER_UNIT).unwrap(),
            ));
        }
        (Workload { sp, traces }, expensive)
    }

    /// Builds a [`MinSigIndex`] over this workload.
    pub fn build_index(&self, config: IndexConfig) -> MinSigIndex {
        MinSigIndex::build(&self.sp, &self.traces, config).expect("workload index builds")
    }

    /// The paper's association measure at this workload's hierarchy height.
    pub fn measure(&self) -> PaperAdm {
        PaperAdm::default_for(self.sp.height() as usize)
    }

    /// All entity ids of the workload, ascending.
    pub fn entities(&self) -> Vec<EntityId> {
        self.traces.entities().collect()
    }

    /// A deterministic sample of `n` query entities (repeats once the
    /// population is exhausted, so the sample always has exactly `n` probes).
    pub fn sample_entities(&self, n: usize, seed: u64) -> Vec<EntityId> {
        let pool = self.entities();
        assert!(!pool.is_empty(), "cannot sample from an empty workload");
        let mut rng = Rng64::new(seed);
        (0..n).map(|_| pool[rng.below(pool.len() as u64) as usize]).collect()
    }

    /// A deterministic stream of presence records over this workload's
    /// hierarchy — the input of one ingest batch.
    pub fn stream(&self, config: StreamConfig) -> Vec<PresenceInstance> {
        let base = self.sp.base_units().to_vec();
        let mut rng = Rng64::new(config.seed);
        (0..config.records)
            .map(|_| {
                let entity = if rng.below(100) < config.new_entity_percent as u64 {
                    EntityId(config.new_entity_base + rng.below(config.new_entity_span.max(1)))
                } else {
                    EntityId(rng.below(config.existing_entities.max(1)))
                };
                let unit = base[rng.below(base.len() as u64) as usize];
                let start = config.start_tick + rng.below(config.time_slots) * TICKS_PER_UNIT;
                PresenceInstance::new(
                    entity,
                    unit,
                    Period::new(start, start + TICKS_PER_UNIT).unwrap(),
                )
            })
            .collect()
    }
}

/// A random shared itinerary: `steps` ST-cells, one every other base
/// temporal unit, over random base spatial units.  Shared by the
/// planted-structure generators; the noise window of each starts at
/// `steps * 2 * TICKS_PER_UNIT`.
fn random_itinerary(base: &[u32], rng: &mut Rng64, steps: u64) -> Vec<(u32, u64)> {
    (0..steps)
        .map(|step| {
            let unit = base[rng.below(base.len() as u64) as usize];
            (unit, step * 2 * TICKS_PER_UNIT)
        })
        .collect()
}

/// Records a clique: every member walks the whole shared `itinerary`, plus
/// `i % 3` private noise visits at
/// `noise_start + (i * noise_stride + n) * TICKS_PER_UNIT` — light noise
/// that keeps clique degrees high but distinct.  Shared by the
/// planted-structure generators so their itinerary layout cannot silently
/// diverge.
fn record_itinerary_clique(
    traces: &mut TraceSet,
    base: &[u32],
    rng: &mut Rng64,
    itinerary: &[(u32, u64)],
    members: &[EntityId],
    noise_start: u64,
    noise_stride: u64,
) {
    for (i, &entity) in members.iter().enumerate() {
        for &(unit, start) in itinerary {
            traces.record(PresenceInstance::new(
                entity,
                unit,
                Period::new(start, start + TICKS_PER_UNIT).unwrap(),
            ));
        }
        for n in 0..(i as u64 % 3) {
            let unit = base[rng.below(base.len() as u64) as usize];
            let start = noise_start + (i as u64 * noise_stride + n) * TICKS_PER_UNIT;
            traces.record(PresenceInstance::new(
                entity,
                unit,
                Period::new(start, start + TICKS_PER_UNIT).unwrap(),
            ));
        }
    }
}

/// Splits fresh ascending entity ids into a `hot` group whose members all
/// route to one single shard (the home of id 0 under `num_shards` shards,
/// per [`shard_of`](crate::shard::shard_of)) and a `background` group whose
/// members route anywhere else (anywhere at all when there is only one
/// shard).  Shared by the shard-skew workload generators.
fn partition_ids_by_home_shard(
    num_shards: usize,
    hot_count: u64,
    background_count: u64,
) -> (Vec<EntityId>, Vec<EntityId>) {
    let hot_shard = crate::shard::shard_of(EntityId(0), num_shards);
    let mut hot: Vec<EntityId> = Vec::with_capacity(hot_count as usize);
    let mut background: Vec<EntityId> = Vec::with_capacity(background_count as usize);
    let mut next_id = 0u64;
    while (hot.len() as u64) < hot_count || (background.len() as u64) < background_count {
        let id = EntityId(next_id);
        next_id += 1;
        let home = crate::shard::shard_of(id, num_shards);
        if home == hot_shard && (hot.len() as u64) < hot_count {
            hot.push(id);
        } else if (home != hot_shard || num_shards == 1)
            && (background.len() as u64) < background_count
        {
            background.push(id);
        }
    }
    (hot, background)
}

/// Measured recall of a (possibly degraded) answer against the exact
/// answer: the fraction of exact top-k entities the degraded answer
/// recovered, with degree-ties at the k-th threshold counting as recovered
/// (a sampled scan that surfaced a *different* entity of the same degree is
/// not wrong, only differently tied).  The oracle behind the recall-floor
/// conformance tests and the deadline bench; delegates to
/// [`approximate::recall`](crate::approximate::recall) with the argument
/// order those callers read naturally.
pub fn measured_recall(approx: &[TopKResult], exact: &[TopKResult]) -> f64 {
    crate::approximate::recall(exact, approx)
}

/// Asserts that two *exact* top-k answers are **fully bit-identical**.
///
/// Exactness in this codebase pins the answer completely: every exact path
/// (unsharded best-first, sharded cooperative or independent, paged, brute
/// force) ranks under the total order *(degree descending, entity id
/// ascending)* and prunes **strictly** — a subtree tying the k-th threshold
/// is still expanded, so boundary-tied entities are tie-broken by id, not by
/// execution strategy (see `minsig::engine`, "tie-complete pruning").
/// Concretely this asserts:
///
/// * identical lengths and **bitwise-identical degree vectors** (degrees are
///   computed exactly from the sequences on every path);
/// * identical entities at **every** rank, ties at the boundary included;
/// * canonical *(degree descending, entity id ascending)* ordering within
///   each answer.
pub fn assert_equivalent_answers(a: &[TopKResult], b: &[TopKResult], context: &str) {
    assert_canonical_order(a, context);
    assert_canonical_order(b, context);
    assert_eq!(a.len(), b.len(), "{context}: result lengths differ");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!(
            x.degree.to_bits() == y.degree.to_bits(),
            "{context}: degree at rank {i} differs ({} vs {})",
            x.degree,
            y.degree
        );
        assert_eq!(x.entity, y.entity, "{context}: entity at rank {i} differs");
    }
}

/// Asserts that `answer` is a *valid* exact top-k selection against a full
/// ground-truth table (`truth` must rank **every** candidate, canonically —
/// e.g. `index.brute_force(query, num_entities, measure)`): right length,
/// the canonical top-k degree vector, every reported entity carrying its true
/// degree, no duplicates, canonical ordering.
pub fn assert_valid_top_k(answer: &[TopKResult], truth: &[TopKResult], k: usize, context: &str) {
    assert_canonical_order(answer, context);
    assert_eq!(answer.len(), k.min(truth.len()), "{context}: result length");
    let table: std::collections::BTreeMap<EntityId, u64> =
        truth.iter().map(|r| (r.entity, r.degree.to_bits())).collect();
    let mut seen = std::collections::BTreeSet::new();
    for (i, (a, t)) in answer.iter().zip(truth.iter()).enumerate() {
        assert!(
            a.degree.to_bits() == t.degree.to_bits(),
            "{context}: degree at rank {i} is {}, canonical is {}",
            a.degree,
            t.degree
        );
        assert_eq!(
            Some(&a.degree.to_bits()),
            table.get(&a.entity),
            "{context}: reported degree of {} is not its true degree",
            a.entity
        );
        assert!(seen.insert(a.entity), "{context}: {} reported twice", a.entity);
    }
}

fn assert_canonical_order(answer: &[TopKResult], context: &str) {
    for pair in answer.windows(2) {
        let ordered = pair[0].degree > pair[1].degree
            || (pair[0].degree == pair[1].degree && pair[0].entity < pair[1].entity);
        assert!(
            ordered,
            "{context}: answer is not in canonical (degree desc, id asc) order: {pair:?}"
        );
    }
}

/// Asserts that an index's `top_k` answer for one query equals the
/// brute-force ground truth: same length, and degrees within `1e-9` pairwise
/// (ties may legitimately rank different entities, so ids are not compared).
pub fn assert_matches_brute_force<M: AssociationMeasure + ?Sized>(
    index: &MinSigIndex,
    query: EntityId,
    k: usize,
    measure: &M,
) {
    let (got, _) = index.top_k(query, k, measure).expect("indexed query succeeds");
    let expect = index.brute_force(query, k, measure).expect("brute force succeeds");
    assert_eq!(got.len(), expect.len(), "result size for query {query}, k {k}");
    for (g, e) in got.iter().zip(expect.iter()) {
        assert!(
            (g.degree - e.degree).abs() < 1e-9,
            "degree mismatch for query {query}, k {k}: {} vs {}",
            g.degree,
            e.degree
        );
    }
}

/// [`assert_matches_brute_force`] for **every** indexed entity — the
/// exhaustive conformance sweep the adversarial suites run.
pub fn assert_exact_for_all<M: AssociationMeasure + ?Sized>(
    index: &MinSigIndex,
    k: usize,
    measure: &M,
) {
    for query in index.sequences().keys().copied().collect::<Vec<_>>() {
        assert_matches_brute_force(index, query, k, measure);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Workload::uniform(UniformConfig::default());
        let b = Workload::uniform(UniformConfig::default());
        assert_eq!(a.traces.num_entities(), b.traces.num_entities());
        for e in a.entities() {
            assert_eq!(a.traces.get(e).map(|t| t.len()), b.traces.get(e).map(|t| t.len()));
        }
        let c = Workload::uniform(UniformConfig { seed: 7, ..UniformConfig::default() });
        assert_eq!(c.traces.num_entities(), a.traces.num_entities());
        // Streams are reproducible too.
        assert_eq!(a.stream(StreamConfig::default()), a.stream(StreamConfig::default()));
    }

    #[test]
    fn paired_population_plants_partners() {
        let w = Workload::paired(PairedConfig::default());
        let index = w.build_index(IndexConfig::with_hash_functions(48));
        let measure = w.measure();
        for query in [0u64, 7, 16, 33] {
            let (results, _) = index.top_k(EntityId(query), 1, &measure).unwrap();
            let partner = if query % 2 == 0 { query + 1 } else { query - 1 };
            assert_eq!(results[0].entity, EntityId(partner), "query {query}");
        }
    }

    #[test]
    fn skewed_population_keeps_tiny_partners_on_top() {
        let config = SkewedConfig::default();
        let w = Workload::skewed(config.clone());
        let index = w.build_index(IndexConfig::with_hash_functions(32));
        let measure = w.measure();
        let first_tiny = config.celebrities;
        let (results, _) = index.top_k(EntityId(first_tiny), 1, &measure).unwrap();
        assert_eq!(results[0].entity, EntityId(first_tiny + 1));
    }

    #[test]
    fn adversarial_shapes_have_their_documented_structure() {
        let pileup = Workload::one_cell_pileup(9, HierarchySpec::new(2, &[4]));
        assert_eq!(pileup.traces.num_entities(), 10);
        let mix = Workload::degenerate_mix(HierarchySpec::new(3, &[3, 3]));
        assert!(mix.traces.get(EntityId(3)).unwrap().is_empty());
        let same = Workload::all_identical(5, HierarchySpec::new(2, &[3]));
        let lens: Vec<usize> =
            same.entities().iter().map(|&e| same.traces.get(e).unwrap().len()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn pruning_adversarial_plants_a_one_shard_hot_clique() {
        let config = PruningAdversarialConfig::default();
        let shards = config.num_shards;
        let (w, hot) = Workload::pruning_adversarial(config.clone());
        assert_eq!(hot.len() as u64, config.hot_entities);
        assert_eq!(
            w.traces.num_entities() as u64,
            config.hot_entities + config.cold_entities,
            "hot + cold entities are all indexed"
        );
        // Every hot entity routes to one single shard under the configured
        // shard count.
        let home = crate::shard::shard_of(hot[0], shards);
        for &entity in &hot {
            assert_eq!(crate::shard::shard_of(entity, shards), home, "{entity}");
        }
        // A hot query's entire top-k lives in the hot clique (= that shard).
        let sharded = crate::shard::ShardedMinSigIndex::build(
            &w.sp,
            &w.traces,
            IndexConfig::with_hash_functions(32),
            shards,
        )
        .unwrap();
        let k = hot.len() - 1;
        let (results, _) = sharded.top_k(hot[0], k, &w.measure()).unwrap();
        assert_eq!(results.len(), k);
        let hot_set: std::collections::BTreeSet<EntityId> = hot.iter().copied().collect();
        for r in &results {
            assert!(hot_set.contains(&r.entity), "{} is not a hot entity", r.entity);
        }
    }

    #[test]
    fn planner_localized_isolates_answers_and_starves_background_shards() {
        let config = PlannerLocalizedConfig::default();
        let shards = config.num_shards;
        let (w, hot) = Workload::planner_localized(config.clone());
        assert_eq!(hot.len() as u64, config.hot_entities);
        assert_eq!(
            w.traces.num_entities() as u64,
            config.hot_entities + config.background_entities
        );
        // The clique lives in one shard; background entities never do.
        let home = crate::shard::shard_of(hot[0], shards);
        for &entity in &hot {
            assert_eq!(crate::shard::shard_of(entity, shards), home, "{entity}");
        }
        let hot_set: std::collections::BTreeSet<EntityId> = hot.iter().copied().collect();
        for entity in w.entities() {
            if !hot_set.contains(&entity) {
                assert_ne!(crate::shard::shard_of(entity, shards), home, "{entity}");
                // One single cell: background shards' capacity caps are 1.
                assert_eq!(w.traces.get(entity).unwrap().len(), 1, "{entity}");
            }
        }
        // A hot query's full top-k is the rest of the clique.
        let index = w.build_index(IndexConfig::with_hash_functions(32));
        let truth = index.brute_force(hot[0], hot.len() - 1, &w.measure()).unwrap();
        for r in &truth {
            assert!(hot_set.contains(&r.entity), "{} leaked into the top-k", r.entity);
            assert!(r.degree > 0.0);
        }
    }

    #[test]
    fn planner_dispersed_spreads_candidates_over_every_shard() {
        let config = PlannerDispersedConfig::default();
        let (w, entities) = Workload::planner_dispersed(config.clone());
        assert_eq!(entities.len() as u64, config.num_shards as u64 * config.entities_per_shard);
        let mut per_shard = vec![0u64; config.num_shards];
        for &entity in &entities {
            per_shard[crate::shard::shard_of(entity, config.num_shards)] += 1;
        }
        assert!(
            per_shard.iter().all(|&n| n == config.entities_per_shard),
            "every shard holds the same number of strong candidates: {per_shard:?}"
        );
        // Everyone shares the itinerary: any query's top-1 has real overlap.
        let index = w.build_index(IndexConfig::with_hash_functions(32));
        let (top, _) = index.top_k(entities[0], 1, &w.measure()).unwrap();
        assert!(top[0].degree > 0.0);
    }

    #[test]
    fn sample_entities_draws_from_the_population() {
        let w = Workload::uniform(UniformConfig { entities: 10, ..UniformConfig::default() });
        let sample = w.sample_entities(25, 3);
        assert_eq!(sample.len(), 25);
        assert!(sample.iter().all(|e| w.traces.contains(*e)));
        assert_eq!(sample, w.sample_entities(25, 3));
    }

    #[test]
    fn oracle_helpers_accept_an_exact_index() {
        let w = Workload::uniform(UniformConfig {
            entities: 20,
            visits: 4,
            ..UniformConfig::default()
        });
        let index = w.build_index(IndexConfig::with_hash_functions(16));
        assert_exact_for_all(&index, 3, &w.measure());
    }
}
