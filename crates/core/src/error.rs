//! Error types for index construction and querying.

use std::fmt;
use trace_model::ModelError;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, IndexError>;

/// Errors produced by the MinSigTree index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// A problem in the underlying trace data model.
    Model(ModelError),
    /// The index was built over a different sp-index height than the query.
    LevelMismatch {
        /// Height the index was built with.
        index_levels: u8,
        /// Height of the query sequence.
        query_levels: u8,
    },
    /// The query entity is not part of the index and no explicit sequence was given.
    UnknownQueryEntity(u64),
    /// The index configuration is invalid.
    InvalidConfig(String),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Model(e) => write!(f, "data model error: {e}"),
            IndexError::LevelMismatch { index_levels, query_levels } => write!(
                f,
                "query sequence has {query_levels} levels but the index was built over {index_levels}"
            ),
            IndexError::UnknownQueryEntity(id) => {
                write!(f, "query entity e{id} is not present in the index")
            }
            IndexError::InvalidConfig(msg) => write!(f, "invalid index configuration: {msg}"),
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for IndexError {
    fn from(e: ModelError) -> Self {
        IndexError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_errors_are_wrapped() {
        let err: IndexError = ModelError::UnknownEntity(3).into();
        assert!(matches!(err, IndexError::Model(_)));
        assert!(err.to_string().contains("unknown entity"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn display_messages() {
        let err = IndexError::LevelMismatch { index_levels: 4, query_levels: 2 };
        assert!(err.to_string().contains("2 levels"));
        assert!(IndexError::UnknownQueryEntity(9).to_string().contains("e9"));
        assert!(IndexError::InvalidConfig("nh".into()).to_string().contains("nh"));
        assert!(std::error::Error::source(&IndexError::UnknownQueryEntity(9)).is_none());
    }
}
