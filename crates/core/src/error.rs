//! Error types for index construction and querying.

use std::fmt;
use trace_model::ModelError;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, IndexError>;

/// Errors produced by the MinSigTree index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// A problem in the underlying trace data model.
    Model(ModelError),
    /// The index was built over a different sp-index height than the query.
    LevelMismatch {
        /// Height the index was built with.
        index_levels: u8,
        /// Height of the query sequence.
        query_levels: u8,
    },
    /// The query entity is not part of the index and no explicit sequence was given.
    UnknownQueryEntity(u64),
    /// An update or removal addressed an entity that is not in the index.
    ///
    /// [`update_entity`](crate::index::MinSigIndex::update_entity) and
    /// [`remove_entity`](crate::index::MinSigIndex::remove_entity) refuse to
    /// silently succeed on absent entities; use
    /// [`upsert_entity`](crate::index::MinSigIndex::upsert_entity) when
    /// insert-or-replace semantics are wanted.
    UnknownEntity(u64),
    /// The index configuration is invalid.
    InvalidConfig(String),
    /// An I/O error while saving or opening a persisted index.
    Io(String),
    /// A persisted index file is corrupt (bad magic, failed checksum,
    /// truncation, or structurally invalid contents).
    Corrupt(String),
    /// A persisted index file is intact but was written in a newer format
    /// version than this build understands — upgrade, don't rebuild.
    UnsupportedVersion(String),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Model(e) => write!(f, "data model error: {e}"),
            IndexError::LevelMismatch { index_levels, query_levels } => write!(
                f,
                "query sequence has {query_levels} levels but the index was built over {index_levels}"
            ),
            IndexError::UnknownQueryEntity(id) => {
                write!(f, "query entity e{id} is not present in the index")
            }
            IndexError::UnknownEntity(id) => {
                write!(
                    f,
                    "entity e{id} is not present in the index (use upsert_entity to insert)"
                )
            }
            IndexError::InvalidConfig(msg) => write!(f, "invalid index configuration: {msg}"),
            IndexError::Io(msg) => write!(f, "i/o error: {msg}"),
            IndexError::Corrupt(msg) => write!(f, "corrupt index file: {msg}"),
            IndexError::UnsupportedVersion(msg) => write!(f, "unsupported index file: {msg}"),
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for IndexError {
    fn from(e: ModelError) -> Self {
        IndexError::Model(e)
    }
}

impl From<trace_storage::SegmentError> for IndexError {
    fn from(e: trace_storage::SegmentError) -> Self {
        match e {
            trace_storage::SegmentError::Io(msg) => IndexError::Io(msg),
            // A newer-format file is not corrupt: telling the operator to
            // delete and rebuild would destroy a perfectly good index.
            e @ trace_storage::SegmentError::UnsupportedVersion { .. } => {
                IndexError::UnsupportedVersion(e.to_string())
            }
            other => IndexError::Corrupt(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_errors_are_wrapped() {
        let err: IndexError = ModelError::UnknownEntity(3).into();
        assert!(matches!(err, IndexError::Model(_)));
        assert!(err.to_string().contains("unknown entity"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn display_messages() {
        let err = IndexError::LevelMismatch { index_levels: 4, query_levels: 2 };
        assert!(err.to_string().contains("2 levels"));
        assert!(IndexError::UnknownQueryEntity(9).to_string().contains("e9"));
        assert!(IndexError::InvalidConfig("nh".into()).to_string().contains("nh"));
        assert!(std::error::Error::source(&IndexError::UnknownQueryEntity(9)).is_none());
    }
}
