//! The [`MinSigIndex`]: the public entry point tying together signatures, the
//! MinSigTree, query processing and incremental maintenance.
//!
//! The index is a thin mutable handle around an [`Arc`]-shared
//! [`IndexSnapshot`]: queries only ever touch the snapshot (so they can run
//! from any number of threads against one consistent version of the index),
//! while [`update_entity`](MinSigIndex::update_entity),
//! [`upsert_entity`](MinSigIndex::upsert_entity) and
//! [`remove_entity`](MinSigIndex::remove_entity) go through
//! [`Arc::make_mut`] — in-place when the handle is the sole owner,
//! copy-on-write when readers still hold older snapshots.  Batched mutation
//! lives in [`crate::ingest`]; durability (`save`/`open`) in
//! [`crate::persist`].

use crate::config::IndexConfig;
use crate::error::{IndexError, Result};
use crate::query::{QueryOptions, TopKResult};
use crate::signature::{HierarchicalHasher, SeededHashFamily, SignatureList};
use crate::snapshot::IndexSnapshot;
use crate::stats::{IndexStats, QueryStats};
use crate::synopsis::Synopsis;
use crate::tree::MinSigTree;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;
use trace_model::{AssociationMeasure, CellSetSequence, DigitalTrace, EntityId, SpIndex, TraceSet};

/// The MinSigTree index over a set of digital traces.
///
/// The index owns a copy of the spatial hierarchy, the hash family, the tree and
/// the materialised ST-cell set sequences of every indexed entity, packaged as
/// an immutable [`IndexSnapshot`] (the paged query path of [`crate::paged`]
/// reads raw traces from a disk-backed store instead).  Call
/// [`snapshot`](MinSigIndex::snapshot) to share the current version with other
/// threads; updates on the handle never disturb snapshots already handed out.
#[derive(Debug)]
pub struct MinSigIndex {
    pub(crate) snapshot: Arc<IndexSnapshot>,
    pub(crate) stats: IndexStats,
    /// Number of successful mutations applied to this handle since it was
    /// built or opened; bumped once per `update`/`upsert`/`remove` call and
    /// once per ingest batch, regardless of the batch's size.
    pub(crate) epoch: u64,
}

impl MinSigIndex {
    /// Builds the index over a trace set (Algorithm 1 plus the data-representation
    /// step of Section 4.1).
    pub fn build(sp: &SpIndex, traces: &TraceSet, config: IndexConfig) -> Result<Self> {
        config.validate()?;
        let start = Instant::now();
        let sequences = traces.cell_sequences(sp)?;
        Self::build_from_sequences(sp, sequences, traces.ticks_per_unit(), config, start)
    }

    /// Builds the index from already-materialised sequences (used by experiments
    /// that reuse one dataset across many index configurations).
    pub fn build_from_cell_sequences(
        sp: &SpIndex,
        sequences: BTreeMap<EntityId, CellSetSequence>,
        ticks_per_unit: u64,
        config: IndexConfig,
    ) -> Result<Self> {
        config.validate()?;
        let start = Instant::now();
        Self::build_from_sequences(sp, sequences, ticks_per_unit, config, start)
    }

    fn build_from_sequences(
        sp: &SpIndex,
        sequences: BTreeMap<EntityId, CellSetSequence>,
        ticks_per_unit: u64,
        config: IndexConfig,
        start: Instant,
    ) -> Result<Self> {
        let hash_range = config.hash_range.unwrap_or_else(|| default_hash_range(sp, &sequences));
        let family = SeededHashFamily::new(config.num_hash_functions, config.hash_seed, hash_range);
        let hasher = HierarchicalHasher::new(family, config.hasher_mode);

        let mut tree = MinSigTree::new(sp.height());
        let mut signatures = BTreeMap::new();
        let mut hash_evaluations = 0u64;
        for (&entity, seq) in &sequences {
            let sig = SignatureList::build(sp, &hasher, seq);
            hash_evaluations += seq.total_cells() as u64 * config.num_hash_functions as u64;
            tree.insert(entity, &sig);
            signatures.insert(entity, sig);
        }

        let stats = IndexStats {
            num_entities: sequences.len(),
            num_nodes: tree.num_nodes(),
            index_bytes: tree.size_bytes(),
            hash_evaluations,
            build_time_us: start.elapsed().as_micros() as u64,
        };
        let synopsis = Synopsis::compute(
            tree.levels(),
            sequences.iter().map(|(e, s)| (*e, s)),
            crate::synopsis::DEFAULT_SKETCH_SIZE,
            0,
        );
        let mut snapshot = IndexSnapshot {
            sp: sp.clone(),
            config,
            ticks_per_unit,
            hasher,
            tree,
            sequences,
            signatures,
            synopsis,
            arena: crate::kernel::CandidateArena::default(),
            node_arena: crate::kernel::NodeArena::default(),
        };
        snapshot.rebuild_arena();
        Ok(MinSigIndex { snapshot: Arc::new(snapshot), stats, epoch: 0 })
    }

    /// The current immutable version of the index, shareable across threads.
    ///
    /// The returned snapshot never changes: subsequent
    /// [`update_entity`](Self::update_entity) / [`remove_entity`](Self::remove_entity)
    /// calls copy the index state before mutating it (copy-on-write), so
    /// concurrent readers keep a consistent view for as long as they hold the
    /// `Arc`.  Dropping all snapshot clones makes later updates in-place again.
    pub fn snapshot(&self) -> Arc<IndexSnapshot> {
        Arc::clone(&self.snapshot)
    }

    /// Promotes a shared snapshot into a fresh mutable handle (epoch 0).
    ///
    /// The snapshot's data is **not** copied here: the first mutation on the
    /// returned handle triggers the usual copy-on-write if other `Arc`
    /// references are still alive, so existing readers of the snapshot are
    /// unaffected by whatever the new handle does.
    pub fn from_snapshot(snapshot: Arc<IndexSnapshot>) -> MinSigIndex {
        let stats = IndexStats {
            num_entities: snapshot.sequences.len(),
            num_nodes: snapshot.tree.num_nodes(),
            index_bytes: snapshot.tree.size_bytes(),
            hash_evaluations: 0,
            build_time_us: 0,
        };
        MinSigIndex { snapshot, stats, epoch: 0 }
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> IndexConfig {
        self.snapshot.config()
    }

    /// Build statistics (updated by incremental maintenance).
    pub fn stats(&self) -> IndexStats {
        self.stats
    }

    /// The spatial hierarchy of the index.
    pub fn sp_index(&self) -> &SpIndex {
        self.snapshot.sp_index()
    }

    /// The underlying tree (read-only).
    pub fn tree(&self) -> &MinSigTree {
        self.snapshot.tree()
    }

    /// The flat node rows of the tree (see [`crate::kernel::NodeArena`]) —
    /// the topology a hand-driven [`Executor`](crate::engine::Executor)
    /// expands through.
    pub fn node_arena(&self) -> &crate::kernel::NodeArena {
        self.snapshot.node_arena()
    }

    /// The hierarchical hasher (used by the paged query path and by ablations).
    pub fn hasher(&self) -> &HierarchicalHasher<SeededHashFamily> {
        self.snapshot.hasher()
    }

    /// The temporal discretisation (raw ticks per base temporal unit).
    pub fn ticks_per_unit(&self) -> u64 {
        self.snapshot.ticks_per_unit()
    }

    /// Number of indexed entities.
    pub fn num_entities(&self) -> usize {
        self.snapshot.num_entities()
    }

    /// True when the entity is indexed.
    pub fn contains(&self, entity: EntityId) -> bool {
        self.snapshot.contains(entity)
    }

    /// The materialised sequence of an indexed entity.
    pub fn sequence(&self, entity: EntityId) -> Option<&CellSetSequence> {
        self.snapshot.sequence(entity)
    }

    /// The materialised sequences of all indexed entities (used by baselines and
    /// ground-truth comparisons).
    pub fn sequences(&self) -> &BTreeMap<EntityId, CellSetSequence> {
        self.snapshot.sequences()
    }

    /// Number of successful mutations applied to this handle (one per
    /// `update`/`upsert`/`remove` call, one per ingest batch).  Fresh builds
    /// and freshly opened indexes start at epoch 0.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Replaces an **existing** entity's trace (Section 4.2.3): only the
    /// signature of the affected entity is recomputed and only its
    /// root-to-leaf path is touched.
    ///
    /// Returns [`IndexError::UnknownEntity`] when the entity is not indexed —
    /// a silent insert here usually hides an id-mapping bug in the caller.
    /// Use [`upsert_entity`](Self::upsert_entity) for insert-or-replace
    /// semantics, and [`crate::ingest::IngestBuffer`] to apply many additions
    /// as one batch.
    ///
    /// If snapshots are currently shared with readers, the update first clones
    /// the index state (copy-on-write) so those readers stay on their old,
    /// consistent version.
    pub fn update_entity(&mut self, entity: EntityId, trace: &DigitalTrace) -> Result<()> {
        if !self.snapshot.contains(entity) {
            return Err(IndexError::UnknownEntity(entity.raw()));
        }
        self.upsert_entity(entity, trace).map(|_| ())
    }

    /// Inserts a new entity or replaces an existing entity's trace; returns
    /// `true` when the entity was newly inserted.
    ///
    /// Copy-on-write like [`update_entity`](Self::update_entity): readers
    /// holding snapshots keep their old, consistent version.
    pub fn upsert_entity(&mut self, entity: EntityId, trace: &DigitalTrace) -> Result<bool> {
        let start = Instant::now();
        // Materialise the sequence before the copy-on-write so a bad trace
        // leaves the index (and its stats) untouched.
        let seq = trace.cell_sequence(self.snapshot.sp_index(), self.snapshot.ticks_per_unit())?;
        let snap = Arc::make_mut(&mut self.snapshot);
        let sig = SignatureList::build(&snap.sp, &snap.hasher, &seq);
        self.stats.hash_evaluations +=
            seq.total_cells() as u64 * snap.config.num_hash_functions as u64;
        snap.tree.insert(entity, &sig);
        let inserted = snap.sequences.insert(entity, seq).is_none();
        snap.signatures.insert(entity, sig);
        if inserted {
            // A pure insert only grows the synopsis: absorb it in O(m log n)
            // so streaming per-record inserts stay O(delta).  The arena is
            // extended incrementally the same way.
            snap.absorb_inserted_entity_into_synopsis(entity, self.epoch + 1);
            snap.absorb_inserted_entity_into_arena(entity);
        } else {
            // A replacement can shrink sizes; only a rescan stays exact.
            snap.recompute_synopsis(None, self.epoch + 1);
            snap.rebuild_arena();
        }
        self.stats.num_entities = snap.sequences.len();
        self.stats.num_nodes = snap.tree.num_nodes();
        self.stats.index_bytes = snap.tree.size_bytes();
        self.stats.build_time_us += start.elapsed().as_micros() as u64;
        self.epoch += 1;
        Ok(inserted)
    }

    /// Removes an entity from the index.
    ///
    /// Returns [`IndexError::UnknownEntity`] when the entity is not indexed,
    /// so a misdirected removal cannot silently succeed.
    ///
    /// Copy-on-write like [`update_entity`](Self::update_entity): readers
    /// holding snapshots still see the entity.
    pub fn remove_entity(&mut self, entity: EntityId) -> Result<()> {
        if !self.snapshot.contains(entity) && self.snapshot.tree().leaf_of(entity).is_none() {
            return Err(IndexError::UnknownEntity(entity.raw()));
        }
        let snap = Arc::make_mut(&mut self.snapshot);
        snap.tree.remove(entity);
        snap.sequences.remove(&entity);
        snap.signatures.remove(&entity);
        snap.recompute_synopsis(None, self.epoch + 1);
        snap.rebuild_arena();
        self.stats.num_entities = snap.sequences.len();
        self.epoch += 1;
        Ok(())
    }

    /// Rebuilds the planning synopsis with sketch size `m` (the number of
    /// hottest entities remembered for threshold seeding; see
    /// [`crate::synopsis`]).  Copy-on-write like the mutation paths, but not
    /// a data mutation: the epoch does not advance and the recorded synopsis
    /// epoch stays at the current value.
    pub fn set_synopsis_sketch_size(&mut self, m: usize) {
        let epoch = self.epoch;
        Arc::make_mut(&mut self.snapshot).recompute_synopsis(Some(m), epoch);
    }

    /// Answers a top-k query for an indexed entity with default options.
    pub fn top_k<M: AssociationMeasure + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
    ) -> Result<(Vec<TopKResult>, QueryStats)> {
        self.snapshot.top_k(query, k, measure)
    }

    /// Answers a top-k query for an indexed entity with explicit options.
    pub fn top_k_with_options<M: AssociationMeasure + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
        options: QueryOptions,
    ) -> Result<(Vec<TopKResult>, QueryStats)> {
        self.snapshot.top_k_with_options(query, k, measure, options)
    }

    /// Answers a top-k query for an arbitrary (possibly external) query sequence.
    pub fn top_k_for_sequence<M: AssociationMeasure + ?Sized>(
        &self,
        query: &CellSetSequence,
        exclude: Option<EntityId>,
        k: usize,
        measure: &M,
        options: QueryOptions,
    ) -> Result<(Vec<TopKResult>, QueryStats)> {
        self.snapshot.top_k_for_sequence(query, exclude, k, measure, options)
    }

    /// Ground-truth brute force over the indexed sequences (used by tests,
    /// baselines and the experiment harness).
    pub fn brute_force<M: AssociationMeasure + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
    ) -> Result<Vec<TopKResult>> {
        self.snapshot.brute_force(query, k, measure)
    }
}

/// The paper's hash range `|S| = |L| × |T|`: base spatial units times base
/// temporal units, derived from the data (at least 2).
fn default_hash_range(sp: &SpIndex, sequences: &BTreeMap<EntityId, CellSetSequence>) -> u64 {
    let max_time = sequences
        .values()
        .flat_map(|seq| seq.base().iter().map(|c| c.time() as u64))
        .max()
        .unwrap_or(0);
    ((sp.num_base_units() as u64) * (max_time + 1)).max(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::IndexError;
    use trace_model::{DiceAdm, PaperAdm, Period, PresenceInstance};

    /// A small deterministic dataset with obvious associations: entities come in
    /// pairs (2i, 2i+1) that visit the same places at the same times, plus some
    /// noise visits.
    fn paired_dataset(pairs: usize) -> (SpIndex, TraceSet) {
        let sp = SpIndex::uniform(3, &[4, 4]).unwrap();
        let base = sp.base_units().to_vec();
        let mut traces = TraceSet::new(60);
        for i in 0..pairs {
            for member in 0..2u64 {
                let entity = EntityId(2 * i as u64 + member);
                // Shared itinerary of the pair.
                for step in 0..6u64 {
                    let unit = base[(i * 7 + step as usize) % base.len()];
                    let start = step * 180;
                    traces.record(PresenceInstance::new(
                        entity,
                        unit,
                        Period::new(start, start + 60).unwrap(),
                    ));
                }
                // Individual noise.
                let noise_unit = base[(i * 13 + member as usize * 29 + 5) % base.len()];
                traces.record(PresenceInstance::new(
                    entity,
                    noise_unit,
                    Period::new(2000 + member * 120, 2060 + member * 120).unwrap(),
                ));
            }
        }
        (sp, traces)
    }

    #[test]
    fn build_reports_sane_stats() {
        let (sp, traces) = paired_dataset(20);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(32)).unwrap();
        let stats = index.stats();
        assert_eq!(stats.num_entities, 40);
        assert!(stats.num_nodes > 1);
        assert!(stats.index_bytes > 0);
        assert!(stats.hash_evaluations > 0);
        assert_eq!(index.num_entities(), 40);
        assert!(index.contains(EntityId(0)));
        assert!(!index.contains(EntityId(999)));
        index.tree().check_invariants().unwrap();
    }

    #[test]
    fn top1_finds_the_partner_entity() {
        let (sp, traces) = paired_dataset(25);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(64)).unwrap();
        let measure = PaperAdm::default_for(sp.height() as usize);
        for query in [0u64, 7, 16, 33] {
            let (results, stats) = index.top_k(EntityId(query), 1, &measure).unwrap();
            assert_eq!(results.len(), 1);
            let partner = if query % 2 == 0 { query + 1 } else { query - 1 };
            assert_eq!(results[0].entity, EntityId(partner), "query {query}");
            assert!(results[0].degree > 0.0);
            assert!(stats.entities_checked >= 1);
        }
    }

    #[test]
    fn index_matches_brute_force_for_various_k() {
        let (sp, traces) = paired_dataset(15);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(48)).unwrap();
        let measure = PaperAdm::default_for(sp.height() as usize);
        for k in [1usize, 3, 10, 30] {
            for query in [0u64, 5, 12, 29] {
                let (results, _) = index.top_k(EntityId(query), k, &measure).unwrap();
                let expect = index.brute_force(EntityId(query), k, &measure).unwrap();
                assert_eq!(results.len(), expect.len());
                for (r, e) in results.iter().zip(expect.iter()) {
                    assert!(
                        (r.degree - e.degree).abs() < 1e-9,
                        "degree mismatch for query {query}, k {k}: {} vs {}",
                        r.degree,
                        e.degree
                    );
                }
            }
        }
    }

    #[test]
    fn pruning_checks_fewer_entities_than_brute_force() {
        let (sp, traces) = paired_dataset(60);
        let index =
            MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(128)).unwrap();
        let measure = PaperAdm::default_for(sp.height() as usize);
        let (_, stats) = index.top_k(EntityId(0), 1, &measure).unwrap();
        assert!(
            stats.entities_checked < index.num_entities(),
            "the index should not degenerate into a full scan ({} of {})",
            stats.entities_checked,
            index.num_entities()
        );
        assert!(stats.pruning_effectiveness() > 0.0);
    }

    #[test]
    fn unknown_query_entity_is_an_error() {
        let (sp, traces) = paired_dataset(3);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::default()).unwrap();
        let measure = DiceAdm::uniform(3);
        assert!(matches!(
            index.top_k(EntityId(999), 1, &measure),
            Err(IndexError::UnknownQueryEntity(999))
        ));
        assert!(index.brute_force(EntityId(999), 1, &measure).is_err());
    }

    #[test]
    fn update_entity_is_equivalent_to_rebuilding() {
        let (sp, mut traces) = paired_dataset(10);
        let config = IndexConfig::with_hash_functions(32);
        let mut index = MinSigIndex::build(&sp, &traces, config).unwrap();
        let measure = PaperAdm::default_for(sp.height() as usize);

        // Give entity 4 a brand new trace that shadows entity 9.
        let donor = traces.trace(EntityId(9)).unwrap().clone();
        let new_trace = DigitalTrace::from_instances(
            donor
                .instances()
                .iter()
                .map(|pi| PresenceInstance::new(EntityId(4), pi.unit, pi.period))
                .collect(),
        );
        index.update_entity(EntityId(4), &new_trace).unwrap();
        traces.insert_trace(EntityId(4), new_trace);

        let rebuilt = MinSigIndex::build(&sp, &traces, config).unwrap();
        for query in [4u64, 9, 0, 15] {
            let (a, _) = index.top_k(EntityId(query), 3, &measure).unwrap();
            let (b, _) = rebuilt.top_k(EntityId(query), 3, &measure).unwrap();
            let da: Vec<f64> = a.iter().map(|r| r.degree).collect();
            let db: Vec<f64> = b.iter().map(|r| r.degree).collect();
            for (x, y) in da.iter().zip(db.iter()) {
                assert!((x - y).abs() < 1e-9, "query {query}: {da:?} vs {db:?}");
            }
        }
        // Entity 4 should now be most associated with entity 9.
        let (results, _) = index.top_k(EntityId(4), 1, &measure).unwrap();
        assert_eq!(results[0].entity, EntityId(9));
    }

    #[test]
    fn insert_new_entity_after_build() {
        let (sp, traces) = paired_dataset(5);
        let mut index =
            MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(32)).unwrap();
        let base = sp.base_units().to_vec();
        let new_entity = EntityId(1000);
        let trace = DigitalTrace::from_instances(vec![PresenceInstance::new(
            new_entity,
            base[0],
            Period::new(0, 120).unwrap(),
        )]);
        assert!(index.upsert_entity(new_entity, &trace).unwrap(), "entity is new");
        assert_eq!(index.num_entities(), 11);
        assert!(index.contains(new_entity));
        let measure = DiceAdm::uniform(3);
        let (results, _) = index.top_k(new_entity, 2, &measure).unwrap();
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn remove_entity_shrinks_the_answer_set() {
        let (sp, traces) = paired_dataset(5);
        let mut index =
            MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(32)).unwrap();
        let measure = PaperAdm::default_for(3);
        let (before, _) = index.top_k(EntityId(0), 1, &measure).unwrap();
        assert_eq!(before[0].entity, EntityId(1));
        index.remove_entity(EntityId(1)).unwrap();
        assert!(matches!(index.remove_entity(EntityId(1)), Err(IndexError::UnknownEntity(1))));
        let (after, _) = index.top_k(EntityId(0), 1, &measure).unwrap();
        assert_ne!(after[0].entity, EntityId(1));
        assert_eq!(index.num_entities(), 9);
    }

    /// Regression test: `update_entity` and `remove_entity` must error — not
    /// silently succeed — when the addressed entity is absent from the index.
    #[test]
    fn update_and_remove_of_absent_entities_are_errors() {
        let (sp, traces) = paired_dataset(3);
        let mut index = MinSigIndex::build(&sp, &traces, IndexConfig::default()).unwrap();
        let ghost = EntityId(4242);
        let trace = DigitalTrace::from_instances(vec![PresenceInstance::new(
            ghost,
            sp.base_units()[0],
            Period::new(0, 60).unwrap(),
        )]);
        let epoch_before = index.epoch();
        assert!(matches!(index.update_entity(ghost, &trace), Err(IndexError::UnknownEntity(4242))));
        assert!(matches!(index.remove_entity(ghost), Err(IndexError::UnknownEntity(4242))));
        // Failed mutations leave the index (and its epoch) untouched.
        assert_eq!(index.epoch(), epoch_before);
        assert_eq!(index.num_entities(), 6);
        assert!(!index.contains(ghost));
        // Upsert is the explicit insert-or-replace path.
        assert!(index.upsert_entity(ghost, &trace).unwrap());
        assert!(!index.upsert_entity(ghost, &trace).unwrap(), "second upsert replaces");
        index.update_entity(ghost, &trace).unwrap();
        index.remove_entity(ghost).unwrap();
        assert!(!index.contains(ghost));
    }

    /// The synopsis invariant under single-entity mutation: incremental
    /// insert absorption and the shrink-path recomputes must always leave
    /// the synopsis equal to a fresh `Synopsis::compute` over the live
    /// sequences, at the handle's epoch.
    #[test]
    fn synopsis_stays_exact_under_upserts_replacements_and_removals() {
        let (sp, _traces, mut index) = {
            let (sp, traces) = paired_dataset(8);
            let index = MinSigIndex::build(&sp, &traces, IndexConfig::default()).unwrap();
            (sp, traces, index)
        };
        let base = sp.base_units().to_vec();
        let assert_exact = |index: &MinSigIndex| {
            let snapshot = index.snapshot();
            let expected = Synopsis::compute(
                snapshot.tree().levels(),
                snapshot.sequences().iter().map(|(e, s)| (*e, s)),
                snapshot.synopsis().sketch_size(),
                index.epoch(),
            );
            assert_eq!(snapshot.synopsis(), &expected);
        };
        // A stream of fresh inserts with varied trace sizes (incremental path).
        for e in 0..20u64 {
            let cells: Vec<PresenceInstance> = (0..=(e % 5))
                .map(|i| {
                    PresenceInstance::new(
                        EntityId(500 + e),
                        base[((e + i) % base.len() as u64) as usize],
                        Period::new(i * 60, i * 60 + 60).unwrap(),
                    )
                })
                .collect();
            assert!(index
                .upsert_entity(EntityId(500 + e), &DigitalTrace::from_instances(cells))
                .unwrap());
            assert_exact(&index);
        }
        // A shrinking replacement and a removal (recompute paths).
        let tiny = DigitalTrace::from_instances(vec![PresenceInstance::new(
            EntityId(500),
            base[0],
            Period::new(0, 60).unwrap(),
        )]);
        index.update_entity(EntityId(500), &tiny).unwrap();
        assert_exact(&index);
        index.remove_entity(EntityId(501)).unwrap();
        assert_exact(&index);
    }

    #[test]
    fn k_larger_than_population_returns_everyone_else() {
        let (sp, traces) = paired_dataset(3);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::default()).unwrap();
        let measure = DiceAdm::uniform(3);
        let (results, _) = index.top_k(EntityId(0), 100, &measure).unwrap();
        assert_eq!(results.len(), 5);
    }

    #[test]
    fn k_zero_returns_nothing() {
        let (sp, traces) = paired_dataset(3);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::default()).unwrap();
        let measure = DiceAdm::uniform(3);
        let (results, stats) = index.top_k(EntityId(0), 0, &measure).unwrap();
        assert!(results.is_empty());
        assert_eq!(stats.k, 0);
    }

    #[test]
    fn external_query_sequence_works_without_exclusion() {
        let (sp, traces) = paired_dataset(4);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::default()).unwrap();
        let measure = DiceAdm::uniform(3);
        let query_seq = index.sequence(EntityId(2)).unwrap().clone();
        let (results, _) = index
            .top_k_for_sequence(&query_seq, None, 1, &measure, QueryOptions::default())
            .unwrap();
        // Without exclusion the best match for entity 2's own sequence is entity 2.
        assert_eq!(results[0].entity, EntityId(2));
    }

    #[test]
    fn level_mismatch_is_reported() {
        let (sp, traces) = paired_dataset(2);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::default()).unwrap();
        let other_sp = SpIndex::uniform(2, &[2]).unwrap();
        let seq =
            trace_model::CellSetSequence::from_base_cells(&other_sp, &trace_model::CellSet::new())
                .unwrap();
        let measure = DiceAdm::uniform(2);
        let err =
            index.top_k_for_sequence(&seq, None, 1, &measure, QueryOptions::default()).unwrap_err();
        assert!(matches!(err, IndexError::LevelMismatch { .. }));
    }

    #[test]
    fn exhaustive_and_pathmax_modes_agree_with_brute_force() {
        let (sp, traces) = paired_dataset(8);
        let measure = PaperAdm::default_for(3);
        for mode in [crate::HasherMode::Exhaustive, crate::HasherMode::PathMax] {
            let config = IndexConfig { hasher_mode: mode, ..IndexConfig::with_hash_functions(32) };
            let index = MinSigIndex::build(&sp, &traces, config).unwrap();
            for query in [0u64, 3, 11] {
                let (results, _) = index.top_k(EntityId(query), 5, &measure).unwrap();
                let expect = index.brute_force(EntityId(query), 5, &measure).unwrap();
                for (r, e) in results.iter().zip(expect.iter()) {
                    assert!((r.degree - e.degree).abs() < 1e-9, "mode {mode:?}");
                }
            }
        }
    }
}
