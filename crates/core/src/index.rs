//! The [`MinSigIndex`]: the public entry point tying together signatures, the
//! MinSigTree, query processing and incremental maintenance.

use crate::config::IndexConfig;
use crate::error::{IndexError, Result};
use crate::query::{self, MapProvider, QueryOptions, TopKResult};
use crate::signature::{HierarchicalHasher, SeededHashFamily, SignatureList};
use crate::stats::{IndexStats, SearchStats};
use crate::tree::MinSigTree;
use std::collections::BTreeMap;
use std::time::Instant;
use trace_model::{
    AssociationMeasure, CellSetSequence, DigitalTrace, EntityId, SpIndex, TraceSet,
};

/// The MinSigTree index over a set of digital traces.
///
/// The index owns a copy of the spatial hierarchy, the hash family, the tree and
/// the materialised ST-cell set sequences of every indexed entity (the latter are
/// what leaf evaluation needs to compute exact association degrees; the paged
/// query path of [`crate::paged`] reads them from a disk-backed store instead).
#[derive(Debug)]
pub struct MinSigIndex {
    sp: SpIndex,
    config: IndexConfig,
    ticks_per_unit: u64,
    hasher: HierarchicalHasher<SeededHashFamily>,
    tree: MinSigTree,
    sequences: BTreeMap<EntityId, CellSetSequence>,
    stats: IndexStats,
}

impl MinSigIndex {
    /// Builds the index over a trace set (Algorithm 1 plus the data-representation
    /// step of Section 4.1).
    pub fn build(sp: &SpIndex, traces: &TraceSet, config: IndexConfig) -> Result<Self> {
        config.validate()?;
        let start = Instant::now();
        let sequences = traces.cell_sequences(sp)?;
        Self::build_from_sequences(sp, sequences, traces.ticks_per_unit(), config, start)
    }

    /// Builds the index from already-materialised sequences (used by experiments
    /// that reuse one dataset across many index configurations).
    pub fn build_from_cell_sequences(
        sp: &SpIndex,
        sequences: BTreeMap<EntityId, CellSetSequence>,
        ticks_per_unit: u64,
        config: IndexConfig,
    ) -> Result<Self> {
        config.validate()?;
        let start = Instant::now();
        Self::build_from_sequences(sp, sequences, ticks_per_unit, config, start)
    }

    fn build_from_sequences(
        sp: &SpIndex,
        sequences: BTreeMap<EntityId, CellSetSequence>,
        ticks_per_unit: u64,
        config: IndexConfig,
        start: Instant,
    ) -> Result<Self> {
        let hash_range = config.hash_range.unwrap_or_else(|| default_hash_range(sp, &sequences));
        let family = SeededHashFamily::new(config.num_hash_functions, config.hash_seed, hash_range);
        let hasher = HierarchicalHasher::new(family, config.hasher_mode);

        let mut tree = MinSigTree::new(sp.height());
        let mut hash_evaluations = 0u64;
        for (&entity, seq) in &sequences {
            let sig = SignatureList::build(sp, &hasher, seq);
            hash_evaluations += seq.total_cells() as u64 * config.num_hash_functions as u64;
            tree.insert(entity, &sig);
        }

        let stats = IndexStats {
            num_entities: sequences.len(),
            num_nodes: tree.num_nodes(),
            index_bytes: tree.size_bytes(),
            hash_evaluations,
            build_time_us: start.elapsed().as_micros() as u64,
        };
        Ok(MinSigIndex { sp: sp.clone(), config, ticks_per_unit, hasher, tree, sequences, stats })
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> IndexConfig {
        self.config
    }

    /// Build statistics (updated by incremental maintenance).
    pub fn stats(&self) -> IndexStats {
        self.stats
    }

    /// The spatial hierarchy of the index.
    pub fn sp_index(&self) -> &SpIndex {
        &self.sp
    }

    /// The underlying tree (read-only).
    pub fn tree(&self) -> &MinSigTree {
        &self.tree
    }

    /// The hierarchical hasher (used by the paged query path and by ablations).
    pub fn hasher(&self) -> &HierarchicalHasher<SeededHashFamily> {
        &self.hasher
    }

    /// The temporal discretisation (raw ticks per base temporal unit).
    pub fn ticks_per_unit(&self) -> u64 {
        self.ticks_per_unit
    }

    /// Number of indexed entities.
    pub fn num_entities(&self) -> usize {
        self.tree.num_entities()
    }

    /// True when the entity is indexed.
    pub fn contains(&self, entity: EntityId) -> bool {
        self.sequences.contains_key(&entity)
    }

    /// The materialised sequence of an indexed entity.
    pub fn sequence(&self, entity: EntityId) -> Option<&CellSetSequence> {
        self.sequences.get(&entity)
    }

    /// The materialised sequences of all indexed entities (used by baselines and
    /// ground-truth comparisons).
    pub fn sequences(&self) -> &BTreeMap<EntityId, CellSetSequence> {
        &self.sequences
    }

    /// Incrementally inserts a new entity or replaces an existing entity's trace
    /// (Section 4.2.3): only the signature of the affected entity is recomputed
    /// and only its root-to-leaf path is touched.
    pub fn update_entity(&mut self, entity: EntityId, trace: &DigitalTrace) -> Result<()> {
        let start = Instant::now();
        let seq = trace.cell_sequence(&self.sp, self.ticks_per_unit)?;
        let sig = SignatureList::build(&self.sp, &self.hasher, &seq);
        self.stats.hash_evaluations +=
            seq.total_cells() as u64 * self.config.num_hash_functions as u64;
        self.tree.insert(entity, &sig);
        self.sequences.insert(entity, seq);
        self.stats.num_entities = self.sequences.len();
        self.stats.num_nodes = self.tree.num_nodes();
        self.stats.index_bytes = self.tree.size_bytes();
        self.stats.build_time_us += start.elapsed().as_micros() as u64;
        Ok(())
    }

    /// Removes an entity from the index; returns `true` when it was present.
    pub fn remove_entity(&mut self, entity: EntityId) -> bool {
        let removed = self.tree.remove(entity);
        self.sequences.remove(&entity);
        self.stats.num_entities = self.sequences.len();
        removed
    }

    /// Answers a top-k query for an indexed entity with default options.
    pub fn top_k<M: AssociationMeasure + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
    ) -> Result<(Vec<TopKResult>, SearchStats)> {
        self.top_k_with_options(query, k, measure, QueryOptions::default())
    }

    /// Answers a top-k query for an indexed entity with explicit options.
    pub fn top_k_with_options<M: AssociationMeasure + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
        options: QueryOptions,
    ) -> Result<(Vec<TopKResult>, SearchStats)> {
        let seq = self
            .sequences
            .get(&query)
            .ok_or(IndexError::UnknownQueryEntity(query.raw()))?
            .clone();
        self.top_k_for_sequence(&seq, Some(query), k, measure, options)
    }

    /// Answers a top-k query for an arbitrary (possibly external) query sequence.
    pub fn top_k_for_sequence<M: AssociationMeasure + ?Sized>(
        &self,
        query: &CellSetSequence,
        exclude: Option<EntityId>,
        k: usize,
        measure: &M,
        options: QueryOptions,
    ) -> Result<(Vec<TopKResult>, SearchStats)> {
        let provider = MapProvider::new(&self.sequences);
        query::search(
            &self.sp,
            &self.hasher,
            &self.tree,
            query,
            exclude,
            k,
            measure,
            &provider,
            options,
        )
    }

    /// Ground-truth brute force over the indexed sequences (used by tests,
    /// baselines and the experiment harness).
    pub fn brute_force<M: AssociationMeasure + ?Sized>(
        &self,
        query: EntityId,
        k: usize,
        measure: &M,
    ) -> Result<Vec<TopKResult>> {
        let seq = self
            .sequences
            .get(&query)
            .ok_or(IndexError::UnknownQueryEntity(query.raw()))?;
        Ok(query::brute_force_top_k(&self.sequences, seq, Some(query), k, measure))
    }
}

/// The paper's hash range `|S| = |L| × |T|`: base spatial units times base
/// temporal units, derived from the data (at least 2).
fn default_hash_range(sp: &SpIndex, sequences: &BTreeMap<EntityId, CellSetSequence>) -> u64 {
    let max_time = sequences
        .values()
        .flat_map(|seq| seq.base().iter().map(|c| c.time() as u64))
        .max()
        .unwrap_or(0);
    ((sp.num_base_units() as u64) * (max_time + 1)).max(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_model::{DiceAdm, PaperAdm, Period, PresenceInstance};

    /// A small deterministic dataset with obvious associations: entities come in
    /// pairs (2i, 2i+1) that visit the same places at the same times, plus some
    /// noise visits.
    fn paired_dataset(pairs: usize) -> (SpIndex, TraceSet) {
        let sp = SpIndex::uniform(3, &[4, 4]).unwrap();
        let base = sp.base_units().to_vec();
        let mut traces = TraceSet::new(60);
        for i in 0..pairs {
            for member in 0..2u64 {
                let entity = EntityId(2 * i as u64 + member);
                // Shared itinerary of the pair.
                for step in 0..6u64 {
                    let unit = base[(i * 7 + step as usize) % base.len()];
                    let start = step * 180;
                    traces.record(PresenceInstance::new(
                        entity,
                        unit,
                        Period::new(start, start + 60).unwrap(),
                    ));
                }
                // Individual noise.
                let noise_unit = base[(i * 13 + member as usize * 29 + 5) % base.len()];
                traces.record(PresenceInstance::new(
                    entity,
                    noise_unit,
                    Period::new(2000 + member * 120, 2060 + member * 120).unwrap(),
                ));
            }
        }
        (sp, traces)
    }

    #[test]
    fn build_reports_sane_stats() {
        let (sp, traces) = paired_dataset(20);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(32)).unwrap();
        let stats = index.stats();
        assert_eq!(stats.num_entities, 40);
        assert!(stats.num_nodes > 1);
        assert!(stats.index_bytes > 0);
        assert!(stats.hash_evaluations > 0);
        assert_eq!(index.num_entities(), 40);
        assert!(index.contains(EntityId(0)));
        assert!(!index.contains(EntityId(999)));
        index.tree().check_invariants().unwrap();
    }

    #[test]
    fn top1_finds_the_partner_entity() {
        let (sp, traces) = paired_dataset(25);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(64)).unwrap();
        let measure = PaperAdm::default_for(sp.height() as usize);
        for query in [0u64, 7, 16, 33] {
            let (results, stats) = index.top_k(EntityId(query), 1, &measure).unwrap();
            assert_eq!(results.len(), 1);
            let partner = if query % 2 == 0 { query + 1 } else { query - 1 };
            assert_eq!(results[0].entity, EntityId(partner), "query {query}");
            assert!(results[0].degree > 0.0);
            assert!(stats.entities_checked >= 1);
        }
    }

    #[test]
    fn index_matches_brute_force_for_various_k() {
        let (sp, traces) = paired_dataset(15);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(48)).unwrap();
        let measure = PaperAdm::default_for(sp.height() as usize);
        for k in [1usize, 3, 10, 30] {
            for query in [0u64, 5, 12, 29] {
                let (results, _) = index.top_k(EntityId(query), k, &measure).unwrap();
                let expect = index.brute_force(EntityId(query), k, &measure).unwrap();
                assert_eq!(results.len(), expect.len());
                for (r, e) in results.iter().zip(expect.iter()) {
                    assert!(
                        (r.degree - e.degree).abs() < 1e-9,
                        "degree mismatch for query {query}, k {k}: {} vs {}",
                        r.degree,
                        e.degree
                    );
                }
            }
        }
    }

    #[test]
    fn pruning_checks_fewer_entities_than_brute_force() {
        let (sp, traces) = paired_dataset(60);
        let index =
            MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(128)).unwrap();
        let measure = PaperAdm::default_for(sp.height() as usize);
        let (_, stats) = index.top_k(EntityId(0), 1, &measure).unwrap();
        assert!(
            stats.entities_checked < index.num_entities(),
            "the index should not degenerate into a full scan ({} of {})",
            stats.entities_checked,
            index.num_entities()
        );
        assert!(stats.pruning_effectiveness() > 0.0);
    }

    #[test]
    fn unknown_query_entity_is_an_error() {
        let (sp, traces) = paired_dataset(3);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::default()).unwrap();
        let measure = DiceAdm::uniform(3);
        assert!(matches!(
            index.top_k(EntityId(999), 1, &measure),
            Err(IndexError::UnknownQueryEntity(999))
        ));
        assert!(index.brute_force(EntityId(999), 1, &measure).is_err());
    }

    #[test]
    fn update_entity_is_equivalent_to_rebuilding() {
        let (sp, mut traces) = paired_dataset(10);
        let config = IndexConfig::with_hash_functions(32);
        let mut index = MinSigIndex::build(&sp, &traces, config).unwrap();
        let measure = PaperAdm::default_for(sp.height() as usize);

        // Give entity 4 a brand new trace that shadows entity 9.
        let donor = traces.trace(EntityId(9)).unwrap().clone();
        let new_trace = DigitalTrace::from_instances(
            donor
                .instances()
                .iter()
                .map(|pi| PresenceInstance::new(EntityId(4), pi.unit, pi.period))
                .collect(),
        );
        index.update_entity(EntityId(4), &new_trace).unwrap();
        traces.insert_trace(EntityId(4), new_trace);

        let rebuilt = MinSigIndex::build(&sp, &traces, config).unwrap();
        for query in [4u64, 9, 0, 15] {
            let (a, _) = index.top_k(EntityId(query), 3, &measure).unwrap();
            let (b, _) = rebuilt.top_k(EntityId(query), 3, &measure).unwrap();
            let da: Vec<f64> = a.iter().map(|r| r.degree).collect();
            let db: Vec<f64> = b.iter().map(|r| r.degree).collect();
            for (x, y) in da.iter().zip(db.iter()) {
                assert!((x - y).abs() < 1e-9, "query {query}: {da:?} vs {db:?}");
            }
        }
        // Entity 4 should now be most associated with entity 9.
        let (results, _) = index.top_k(EntityId(4), 1, &measure).unwrap();
        assert_eq!(results[0].entity, EntityId(9));
    }

    #[test]
    fn insert_new_entity_after_build() {
        let (sp, traces) = paired_dataset(5);
        let mut index =
            MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(32)).unwrap();
        let base = sp.base_units().to_vec();
        let new_entity = EntityId(1000);
        let trace = DigitalTrace::from_instances(vec![PresenceInstance::new(
            new_entity,
            base[0],
            Period::new(0, 120).unwrap(),
        )]);
        index.update_entity(new_entity, &trace).unwrap();
        assert_eq!(index.num_entities(), 11);
        assert!(index.contains(new_entity));
        let measure = DiceAdm::uniform(3);
        let (results, _) = index.top_k(new_entity, 2, &measure).unwrap();
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn remove_entity_shrinks_the_answer_set() {
        let (sp, traces) = paired_dataset(5);
        let mut index =
            MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(32)).unwrap();
        let measure = PaperAdm::default_for(3);
        let (before, _) = index.top_k(EntityId(0), 1, &measure).unwrap();
        assert_eq!(before[0].entity, EntityId(1));
        assert!(index.remove_entity(EntityId(1)));
        assert!(!index.remove_entity(EntityId(1)));
        let (after, _) = index.top_k(EntityId(0), 1, &measure).unwrap();
        assert_ne!(after[0].entity, EntityId(1));
        assert_eq!(index.num_entities(), 9);
    }

    #[test]
    fn k_larger_than_population_returns_everyone_else() {
        let (sp, traces) = paired_dataset(3);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::default()).unwrap();
        let measure = DiceAdm::uniform(3);
        let (results, _) = index.top_k(EntityId(0), 100, &measure).unwrap();
        assert_eq!(results.len(), 5);
    }

    #[test]
    fn k_zero_returns_nothing() {
        let (sp, traces) = paired_dataset(3);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::default()).unwrap();
        let measure = DiceAdm::uniform(3);
        let (results, stats) = index.top_k(EntityId(0), 0, &measure).unwrap();
        assert!(results.is_empty());
        assert_eq!(stats.k, 0);
    }

    #[test]
    fn external_query_sequence_works_without_exclusion() {
        let (sp, traces) = paired_dataset(4);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::default()).unwrap();
        let measure = DiceAdm::uniform(3);
        let query_seq = index.sequence(EntityId(2)).unwrap().clone();
        let (results, _) = index
            .top_k_for_sequence(&query_seq, None, 1, &measure, QueryOptions::default())
            .unwrap();
        // Without exclusion the best match for entity 2's own sequence is entity 2.
        assert_eq!(results[0].entity, EntityId(2));
    }

    #[test]
    fn level_mismatch_is_reported() {
        let (sp, traces) = paired_dataset(2);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::default()).unwrap();
        let other_sp = SpIndex::uniform(2, &[2]).unwrap();
        let seq = trace_model::CellSetSequence::from_base_cells(
            &other_sp,
            &trace_model::CellSet::new(),
        )
        .unwrap();
        let measure = DiceAdm::uniform(2);
        let err = index
            .top_k_for_sequence(&seq, None, 1, &measure, QueryOptions::default())
            .unwrap_err();
        assert!(matches!(err, IndexError::LevelMismatch { .. }));
    }

    #[test]
    fn exhaustive_and_pathmax_modes_agree_with_brute_force() {
        let (sp, traces) = paired_dataset(8);
        let measure = PaperAdm::default_for(3);
        for mode in [crate::HasherMode::Exhaustive, crate::HasherMode::PathMax] {
            let config = IndexConfig { hasher_mode: mode, ..IndexConfig::with_hash_functions(32) };
            let index = MinSigIndex::build(&sp, &traces, config).unwrap();
            for query in [0u64, 3, 11] {
                let (results, _) = index.top_k(EntityId(query), 5, &measure).unwrap();
                let expect = index.brute_force(EntityId(query), 5, &measure).unwrap();
                for (r, e) in results.iter().zip(expect.iter()) {
                    assert!((r.degree - e.degree).abs() < 1e-9, "mode {mode:?}");
                }
            }
        }
    }
}
