//! Flat hot-path data layout: the candidate arena and its fused degree kernels.
//!
//! Every exact path of the index — the executor's leaf evaluation, flat shard
//! scans, the planner's synopsis seeding and the approximate sampler's
//! verification — bottoms out in [`AssociationMeasure::degree`] over candidate
//! traces.  With the owned representation those traces live as per-entity
//! [`CellSetSequence`]s inside a `BTreeMap`: every candidate costs a tree
//! descent plus one pointer chase per level before a single cell is compared.
//!
//! The [`CandidateArena`] removes all of that from the read path.  It is a
//! CSR-style structure-of-arrays materialised once per [`IndexSnapshot`]
//! publish:
//!
//! * `entities` — all indexed entity ids, ascending;
//! * per level, one contiguous packed-`u64` cell array plus an offsets array
//!   (`offsets[pos]..offsets[pos + 1]` brackets entity `pos`'s level cells);
//! * per level, one flat signature array strided by the signature width
//!   (`signatures[pos * nh..(pos + 1) * nh]` is entity `pos`'s level row).
//!
//! On top of it, [`CandidateArena::degree_into`] fuses the per-level overlap
//! loop: all levels of one candidate are scored against a pre-resolved
//! [`QueryView`] without re-fetching the query or touching a map, with each
//! per-level intersection dispatched through the branch-light / galloping
//! kernels of [`trace_model::kernel`] (re-exported here).
//!
//! The arena is **read-path only**: the mutable index keeps its owned
//! representation as the source of truth and rebuilds the arena whenever a
//! mutation batch publishes a new snapshot — except pure single-entity
//! inserts, which extend it incrementally via
//! [`CandidateArena::absorb_insert`], mirroring how the planning synopsis
//! absorbs inserts.  Conformance tests pin the invariant that makes this
//! safe: arena-backed degrees are bitwise identical to the owned path,
//! because both feed the measure the exact same integer overlap statistics.
//!
//! [`IndexSnapshot`]: crate::snapshot::IndexSnapshot

use crate::engine::{TopKHeap, TraceSource};
use crate::query::TopKResult;
use crate::signature::SignatureList;
use std::borrow::Cow;
use std::collections::BTreeMap;
use trace_model::ajpi::{LevelOverlap, LevelStat};
use trace_model::{AssociationMeasure, CellSetSequence, EntityId, Level};

pub use trace_model::kernel::{
    argmax, intersection_len, intersection_len_gallop, intersection_len_masked,
    intersection_len_merge, merge_min, GALLOP_SKEW,
};

/// One level of the arena: CSR cells plus width-strided signature rows.
#[derive(Debug, Clone, Default)]
struct ArenaLevel {
    /// `offsets[pos]..offsets[pos + 1]` brackets the cells of entity `pos`;
    /// always `entities.len() + 1` entries with `offsets[0] == 0`.
    offsets: Vec<usize>,
    /// All entities' level cells, packed `u64`s, concatenated in entity order.
    cells: Vec<u64>,
    /// All entities' level signatures, concatenated in entity order with
    /// stride `sig_width`.
    signatures: Vec<u64>,
}

/// The flat candidate arena of one index snapshot (see the [module
/// docs](self)).
///
/// Entities are stored in ascending id order, so `position` is a binary
/// search and a full scan visits candidates in the same order as the owned
/// `BTreeMap` — which keeps `entities_checked` counters and tie handling
/// identical between the two paths.
#[derive(Debug, Clone, Default)]
pub struct CandidateArena {
    entities: Vec<EntityId>,
    sig_width: usize,
    levels: Vec<ArenaLevel>,
}

impl CandidateArena {
    /// Materialises the arena from the owned per-entity maps.
    ///
    /// `num_levels` is the sp-index height and `sig_width` the signature
    /// width (`nh`); entities missing a signature get all-`u64::MAX` rows
    /// (the empty-trace signature).
    pub fn build(
        num_levels: Level,
        sig_width: usize,
        sequences: &BTreeMap<EntityId, CellSetSequence>,
        signatures: &BTreeMap<EntityId, SignatureList>,
    ) -> Self {
        let n = sequences.len();
        let mut entities = Vec::with_capacity(n);
        let mut levels: Vec<ArenaLevel> = (0..num_levels)
            .map(|_| {
                let mut offsets = Vec::with_capacity(n + 1);
                offsets.push(0);
                ArenaLevel {
                    offsets,
                    cells: Vec::new(),
                    signatures: Vec::with_capacity(n * sig_width),
                }
            })
            .collect();
        for (&entity, seq) in sequences {
            entities.push(entity);
            debug_assert_eq!(seq.num_levels(), num_levels as usize);
            let sig = signatures.get(&entity);
            for (i, lvl) in levels.iter_mut().enumerate() {
                let level = (i + 1) as Level;
                lvl.cells.extend_from_slice(seq.level(level).packed_slice());
                lvl.offsets.push(lvl.cells.len());
                match sig {
                    Some(s) => {
                        let row = s.level(level);
                        debug_assert_eq!(row.len(), sig_width);
                        lvl.signatures.extend_from_slice(row);
                    }
                    None => lvl.signatures.extend(std::iter::repeat_n(u64::MAX, sig_width)),
                }
            }
        }
        CandidateArena { entities, sig_width, levels }
    }

    /// Splices one **newly inserted** entity into the arena without a rebuild
    /// — the incremental path for pure single-record inserts, mirroring
    /// `Synopsis::absorb_insert`.
    /// Equivalent to a full [`build`](Self::build) over the updated maps.
    ///
    /// # Panics
    /// Panics when the entity is already present (replacements rebuild).
    pub fn absorb_insert(&mut self, entity: EntityId, seq: &CellSetSequence, sig: &SignatureList) {
        let pos = match self.entities.binary_search(&entity) {
            Ok(_) => panic!("absorb_insert requires a new entity; replacements rebuild"),
            Err(p) => p,
        };
        self.entities.insert(pos, entity);
        for (i, lvl) in self.levels.iter_mut().enumerate() {
            let level = (i + 1) as Level;
            let packed = seq.level(level).packed_slice();
            let start = lvl.offsets[pos];
            lvl.cells.splice(start..start, packed.iter().copied());
            lvl.offsets.insert(pos + 1, start + packed.len());
            for off in &mut lvl.offsets[pos + 2..] {
                *off += packed.len();
            }
            let row = sig.level(level);
            debug_assert_eq!(row.len(), self.sig_width);
            let sig_start = pos * self.sig_width;
            lvl.signatures.splice(sig_start..sig_start, row.iter().copied());
        }
    }

    /// Number of entities in the arena.
    #[inline]
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// True when the arena holds no entities.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// All entity ids, ascending.
    #[inline]
    pub fn entities(&self) -> &[EntityId] {
        &self.entities
    }

    /// Number of levels (the sp-index height).
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The signature stride (`nh`).
    #[inline]
    pub fn sig_width(&self) -> usize {
        self.sig_width
    }

    /// The arena row of an entity, or `None` when it is not indexed.
    #[inline]
    pub fn position(&self, entity: EntityId) -> Option<usize> {
        self.entities.binary_search(&entity).ok()
    }

    /// The packed level-`level` cells of the entity at `pos` (1-based level).
    #[inline]
    pub fn level_cells(&self, level: Level, pos: usize) -> &[u64] {
        let lvl = &self.levels[(level - 1) as usize];
        &lvl.cells[lvl.offsets[pos]..lvl.offsets[pos + 1]]
    }

    /// The level-`level` signature row of the entity at `pos` (1-based level).
    #[inline]
    pub fn signature_row(&self, level: Level, pos: usize) -> &[u64] {
        let lvl = &self.levels[(level - 1) as usize];
        &lvl.signatures[pos * self.sig_width..(pos + 1) * self.sig_width]
    }

    /// Resident heap footprint of the arena in bytes.
    pub fn resident_bytes(&self) -> usize {
        let per_level: usize = self
            .levels
            .iter()
            .map(|l| {
                (l.cells.len() + l.signatures.len()) * std::mem::size_of::<u64>()
                    + l.offsets.len() * std::mem::size_of::<usize>()
            })
            .sum();
        per_level + self.entities.len() * std::mem::size_of::<EntityId>()
    }

    /// Fused per-level degree of the candidate at `pos` against a query view,
    /// reusing `scratch` for the overlap statistics (allocation-free after
    /// the first call).
    ///
    /// Bitwise identical to `measure.degree(query, seq)` over the owned
    /// sequence: both paths hand the measure the exact same integer
    /// [`LevelStat`]s, and the float computation downstream is shared.
    pub fn degree_into<M: AssociationMeasure + ?Sized>(
        &self,
        pos: usize,
        view: &QueryView<'_>,
        measure: &M,
        scratch: &mut LevelOverlap,
    ) -> f64 {
        debug_assert_eq!(view.num_levels(), self.levels.len());
        scratch.clear();
        for (i, lvl) in self.levels.iter().enumerate() {
            let q = view.level(i);
            let c = &lvl.cells[lvl.offsets[pos]..lvl.offsets[pos + 1]];
            scratch.push(LevelStat {
                overlap: intersection_len(q, c),
                size_a: q.len(),
                size_b: c.len(),
            });
        }
        measure.degree_from_overlap(scratch)
    }

    /// One-shot variant of [`degree_into`](Self::degree_into) that owns its
    /// scratch; convenient for isolated lookups.
    pub fn degree_at<M: AssociationMeasure + ?Sized>(
        &self,
        pos: usize,
        view: &QueryView<'_>,
        measure: &M,
    ) -> f64 {
        let mut scratch = LevelOverlap::default();
        self.degree_into(pos, view, measure, &mut scratch)
    }

    /// Exact top-k over the whole arena — the flat-scan primitive behind
    /// brute force and the planner's tiny-shard `Scan` decision.  Returns
    /// the sorted answers plus the number of entities scored, matching
    /// the owned scan's counters exactly.
    pub fn scan_top_k<M: AssociationMeasure + ?Sized>(
        &self,
        view: &QueryView<'_>,
        exclude: Option<EntityId>,
        k: usize,
        measure: &M,
    ) -> (Vec<TopKResult>, usize) {
        let mut top = TopKHeap::new(k);
        let mut checked = 0usize;
        let mut scratch = LevelOverlap::default();
        for (pos, &entity) in self.entities.iter().enumerate() {
            if Some(entity) == exclude {
                continue;
            }
            checked += 1;
            top.offer(entity, self.degree_into(pos, view, measure, &mut scratch));
        }
        (top.into_sorted(), checked)
    }
}

/// A query's per-level packed cell slices, resolved once per query so the
/// innermost loops never re-fetch the query sequence.
#[derive(Debug, Clone)]
pub struct QueryView<'a> {
    levels: Vec<&'a [u64]>,
}

impl<'a> QueryView<'a> {
    /// Resolves the view of a query sequence.
    pub fn new(query: &'a CellSetSequence) -> Self {
        QueryView { levels: query.iter_levels().map(|(_, set)| set.packed_slice()).collect() }
    }

    /// Number of levels.
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The packed cells of one level (0-based index; level `i + 1`).
    #[inline]
    pub fn level(&self, i: usize) -> &'a [u64] {
        self.levels[i]
    }
}

/// A [`TraceSource`] that serves sequences from the owned map but overrides
/// [`TraceSource::degree`] with the arena's fused kernel loop — what the
/// snapshot executors use for leaf evaluation and saturation checks.
///
/// Must be constructed with the same query sequence the executor scores
/// against; the pre-resolved [`QueryView`] stands in for the `query`
/// argument of [`TraceSource::degree`].
pub struct ArenaSource<'a> {
    sequences: &'a BTreeMap<EntityId, CellSetSequence>,
    arena: &'a CandidateArena,
    view: QueryView<'a>,
}

impl<'a> ArenaSource<'a> {
    /// Creates a source over a snapshot's owned maps and arena for one query.
    pub fn new(
        sequences: &'a BTreeMap<EntityId, CellSetSequence>,
        arena: &'a CandidateArena,
        query: &'a CellSetSequence,
    ) -> Self {
        ArenaSource { sequences, arena, view: QueryView::new(query) }
    }

    /// The arena this source scores against.
    pub fn arena(&self) -> &'a CandidateArena {
        self.arena
    }

    /// The resolved query view.
    pub fn view(&self) -> &QueryView<'a> {
        &self.view
    }
}

impl TraceSource for ArenaSource<'_> {
    fn sequence(&self, entity: EntityId) -> Option<Cow<'_, CellSetSequence>> {
        self.sequences.get(&entity).map(Cow::Borrowed)
    }

    fn degree(
        &self,
        entity: EntityId,
        query: &CellSetSequence,
        measure: &dyn AssociationMeasure,
    ) -> Option<f64> {
        debug_assert_eq!(query.num_levels(), self.view.num_levels());
        let pos = self.arena.position(entity)?;
        Some(self.arena.degree_at(pos, &self.view, measure))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HasherMode;
    use crate::signature::{HierarchicalHasher, SeededHashFamily};
    use trace_model::{CellSet, PaperAdm, SpIndex, StCell};

    fn fixture(
        n: u64,
    ) -> (SpIndex, BTreeMap<EntityId, CellSetSequence>, BTreeMap<EntityId, SignatureList>) {
        let sp = SpIndex::uniform(2, &[4]).unwrap();
        let hasher =
            HierarchicalHasher::new(SeededHashFamily::new(8, 7, 10_000), HasherMode::PathMax);
        let mut sequences = BTreeMap::new();
        let mut signatures = BTreeMap::new();
        for e in 0..n {
            let cells: Vec<StCell> = (0..=e)
                .map(|t| StCell::new(t as u32, sp.base_units()[(e + t) as usize % 4]))
                .collect();
            let seq = CellSetSequence::from_base_cells(&sp, &CellSet::from_cells(cells)).unwrap();
            signatures.insert(EntityId(e), SignatureList::build(&sp, &hasher, &seq));
            sequences.insert(EntityId(e), seq);
        }
        (sp, sequences, signatures)
    }

    #[test]
    fn build_mirrors_owned_maps() {
        let (_sp, sequences, signatures) = fixture(5);
        let arena = CandidateArena::build(2, 8, &sequences, &signatures);
        assert_eq!(arena.len(), 5);
        assert_eq!(arena.num_levels(), 2);
        assert_eq!(arena.sig_width(), 8);
        for (pos, (&entity, seq)) in sequences.iter().enumerate() {
            assert_eq!(arena.position(entity), Some(pos));
            for level in 1..=2 {
                assert_eq!(arena.level_cells(level, pos), seq.level(level).packed_slice());
                assert_eq!(arena.signature_row(level, pos), signatures[&entity].level(level));
            }
        }
        assert_eq!(arena.position(EntityId(99)), None);
        assert!(arena.resident_bytes() > 0);
    }

    #[test]
    fn absorb_insert_equals_full_rebuild() {
        let (_sp, mut sequences, mut signatures) = fixture(6);
        // Build without entity 2, then splice it back in.
        let held_seq = sequences.remove(&EntityId(2)).unwrap();
        let held_sig = signatures.remove(&EntityId(2)).unwrap();
        let mut incremental = CandidateArena::build(2, 8, &sequences, &signatures);
        incremental.absorb_insert(EntityId(2), &held_seq, &held_sig);
        sequences.insert(EntityId(2), held_seq);
        signatures.insert(EntityId(2), held_sig);
        let rebuilt = CandidateArena::build(2, 8, &sequences, &signatures);
        assert_eq!(incremental.entities(), rebuilt.entities());
        for pos in 0..rebuilt.len() {
            for level in 1..=2 {
                assert_eq!(incremental.level_cells(level, pos), rebuilt.level_cells(level, pos));
                assert_eq!(
                    incremental.signature_row(level, pos),
                    rebuilt.signature_row(level, pos)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "requires a new entity")]
    fn absorb_insert_rejects_existing_entity() {
        let (_sp, sequences, signatures) = fixture(3);
        let mut arena = CandidateArena::build(2, 8, &sequences, &signatures);
        let seq = sequences[&EntityId(1)].clone();
        let sig = signatures[&EntityId(1)].clone();
        arena.absorb_insert(EntityId(1), &seq, &sig);
    }

    #[test]
    fn fused_degree_is_bitwise_identical_to_owned_path() {
        let (_sp, sequences, signatures) = fixture(8);
        let arena = CandidateArena::build(2, 8, &sequences, &signatures);
        let measure = PaperAdm::default_for(2);
        for (&query, qseq) in &sequences {
            let view = QueryView::new(qseq);
            for (pos, (&entity, seq)) in sequences.iter().enumerate() {
                let owned = measure.degree(qseq, seq);
                let fused = arena.degree_at(pos, &view, &measure);
                assert!(
                    owned.to_bits() == fused.to_bits(),
                    "degree({query:?}, {entity:?}): owned {owned} != fused {fused}"
                );
            }
        }
    }

    #[test]
    fn arena_scan_matches_owned_scan() {
        let (_sp, sequences, signatures) = fixture(10);
        let arena = CandidateArena::build(2, 8, &sequences, &signatures);
        let measure = PaperAdm::default_for(2);
        let qseq = &sequences[&EntityId(3)];
        let view = QueryView::new(qseq);
        let (arena_results, arena_checked) =
            arena.scan_top_k(&view, Some(EntityId(3)), 4, &measure);
        let (owned_results, owned_checked) = crate::engine::scan_top_k(
            sequences.iter().map(|(e, s)| (*e, s)),
            qseq,
            Some(EntityId(3)),
            4,
            &measure,
        );
        assert_eq!(arena_checked, owned_checked);
        assert_eq!(arena_results.len(), owned_results.len());
        for (a, o) in arena_results.iter().zip(&owned_results) {
            assert_eq!(a.entity, o.entity);
            assert_eq!(a.degree.to_bits(), o.degree.to_bits());
        }
    }

    #[test]
    fn arena_source_overrides_degree() {
        let (_sp, sequences, signatures) = fixture(4);
        let arena = CandidateArena::build(2, 8, &sequences, &signatures);
        let measure = PaperAdm::default_for(2);
        let qseq = sequences[&EntityId(0)].clone();
        let source = ArenaSource::new(&sequences, &arena, &qseq);
        for &entity in arena.entities() {
            let via_source = source.degree(entity, &qseq, &measure).expect("entity is indexed");
            let owned = measure.degree(&qseq, &sequences[&entity]);
            assert_eq!(via_source.to_bits(), owned.to_bits());
        }
        assert!(source.degree(EntityId(42), &qseq, &measure).is_none());
        assert!(source.sequence(EntityId(1)).is_some());
        assert_eq!(source.arena().len(), 4);
        assert_eq!(source.view().num_levels(), 2);
    }
}
