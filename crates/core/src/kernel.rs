//! Flat hot-path data layout: the candidate arena and its fused degree kernels.
//!
//! Every exact path of the index — the executor's leaf evaluation, flat shard
//! scans, the planner's synopsis seeding and the approximate sampler's
//! verification — bottoms out in [`AssociationMeasure::degree`] over candidate
//! traces.  With the owned representation those traces live as per-entity
//! [`CellSetSequence`]s inside a `BTreeMap`: every candidate costs a tree
//! descent plus one pointer chase per level before a single cell is compared.
//!
//! The [`CandidateArena`] removes all of that from the read path.  It is a
//! CSR-style structure-of-arrays materialised once per [`IndexSnapshot`]
//! publish:
//!
//! * `entities` — all indexed entity ids, ascending;
//! * per level, one contiguous packed-`u64` cell array plus an offsets array
//!   (`offsets[pos]..offsets[pos + 1]` brackets entity `pos`'s level cells);
//! * per level, one flat signature array strided by the signature width
//!   (`signatures[pos * nh..(pos + 1) * nh]` is entity `pos`'s level row).
//!
//! On top of it, [`CandidateArena::degree_into`] fuses the per-level overlap
//! loop: all levels of one candidate are scored against a pre-resolved
//! [`QueryView`] without re-fetching the query or touching a map, with each
//! per-level intersection dispatched through the branch-light / galloping
//! kernels of [`trace_model::kernel`] (re-exported here).
//!
//! The arena is **read-path only**: the mutable index keeps its owned
//! representation as the source of truth and rebuilds the arena whenever a
//! mutation batch publishes a new snapshot — except pure single-entity
//! inserts, which extend it incrementally via
//! [`CandidateArena::absorb_insert`], mirroring how the planning synopsis
//! absorbs inserts.  Conformance tests pin the invariant that makes this
//! safe: arena-backed degrees are bitwise identical to the owned path,
//! because both feed the measure the exact same integer overlap statistics.
//!
//! [`IndexSnapshot`]: crate::snapshot::IndexSnapshot

use crate::engine::{TopKHeap, TraceSource};
use crate::query::TopKResult;
use crate::signature::SignatureList;
use crate::stats::KernelDispatch;
use crate::tree::{MinSigTree, NodeId};
use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use trace_model::ajpi::{LevelOverlap, LevelStat};
use trace_model::{AssociationMeasure, CellSetSequence, EntityId, Level};

pub use trace_model::kernel::{
    argmax, dispatch_class, intersection_len, intersection_len_gallop, intersection_len_masked,
    intersection_len_merge, intersection_len_simd, merge_min, merge_min_scalar, merge_min_simd,
    KernelClass, GALLOP_SKEW, SIMD_LANES, TINY_LEN,
};

/// One level of the arena: CSR cells plus width-strided signature rows.
#[derive(Debug, Clone, Default)]
struct ArenaLevel {
    /// `offsets[pos]..offsets[pos + 1]` brackets the cells of entity `pos`;
    /// always `entities.len() + 1` entries with `offsets[0] == 0`.
    offsets: Vec<usize>,
    /// All entities' level cells, packed `u64`s, concatenated in entity order.
    cells: Vec<u64>,
    /// All entities' level signatures, concatenated in entity order with
    /// stride `sig_width`.
    signatures: Vec<u64>,
}

/// The flat candidate arena of one index snapshot (see the [module
/// docs](self)).
///
/// Entities are stored in ascending id order, so `position` is a binary
/// search and a full scan visits candidates in the same order as the owned
/// `BTreeMap` — which keeps `entities_checked` counters and tie handling
/// identical between the two paths.
#[derive(Debug, Clone, Default)]
pub struct CandidateArena {
    entities: Vec<EntityId>,
    sig_width: usize,
    levels: Vec<ArenaLevel>,
}

impl CandidateArena {
    /// Materialises the arena from the owned per-entity maps.
    ///
    /// `num_levels` is the sp-index height and `sig_width` the signature
    /// width (`nh`); entities missing a signature get all-`u64::MAX` rows
    /// (the empty-trace signature).
    pub fn build(
        num_levels: Level,
        sig_width: usize,
        sequences: &BTreeMap<EntityId, CellSetSequence>,
        signatures: &BTreeMap<EntityId, SignatureList>,
    ) -> Self {
        let n = sequences.len();
        let mut entities = Vec::with_capacity(n);
        let mut levels: Vec<ArenaLevel> = (0..num_levels)
            .map(|_| {
                let mut offsets = Vec::with_capacity(n + 1);
                offsets.push(0);
                ArenaLevel {
                    offsets,
                    cells: Vec::new(),
                    signatures: Vec::with_capacity(n * sig_width),
                }
            })
            .collect();
        for (&entity, seq) in sequences {
            entities.push(entity);
            debug_assert_eq!(seq.num_levels(), num_levels as usize);
            let sig = signatures.get(&entity);
            for (i, lvl) in levels.iter_mut().enumerate() {
                let level = (i + 1) as Level;
                lvl.cells.extend_from_slice(seq.level(level).packed_slice());
                lvl.offsets.push(lvl.cells.len());
                match sig {
                    Some(s) => {
                        let row = s.level(level);
                        debug_assert_eq!(row.len(), sig_width);
                        lvl.signatures.extend_from_slice(row);
                    }
                    None => lvl.signatures.extend(std::iter::repeat_n(u64::MAX, sig_width)),
                }
            }
        }
        CandidateArena { entities, sig_width, levels }
    }

    /// Splices one **newly inserted** entity into the arena without a rebuild
    /// — the incremental path for pure single-record inserts, mirroring
    /// `Synopsis::absorb_insert`.
    /// Equivalent to a full [`build`](Self::build) over the updated maps.
    ///
    /// # Panics
    /// Panics when the entity is already present (replacements rebuild).
    pub fn absorb_insert(&mut self, entity: EntityId, seq: &CellSetSequence, sig: &SignatureList) {
        let pos = match self.entities.binary_search(&entity) {
            Ok(_) => panic!("absorb_insert requires a new entity; replacements rebuild"),
            Err(p) => p,
        };
        self.entities.insert(pos, entity);
        for (i, lvl) in self.levels.iter_mut().enumerate() {
            let level = (i + 1) as Level;
            let packed = seq.level(level).packed_slice();
            let start = lvl.offsets[pos];
            lvl.cells.splice(start..start, packed.iter().copied());
            lvl.offsets.insert(pos + 1, start + packed.len());
            for off in &mut lvl.offsets[pos + 2..] {
                *off += packed.len();
            }
            let row = sig.level(level);
            debug_assert_eq!(row.len(), self.sig_width);
            let sig_start = pos * self.sig_width;
            lvl.signatures.splice(sig_start..sig_start, row.iter().copied());
        }
    }

    /// Number of entities in the arena.
    #[inline]
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// True when the arena holds no entities.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// All entity ids, ascending.
    #[inline]
    pub fn entities(&self) -> &[EntityId] {
        &self.entities
    }

    /// Number of levels (the sp-index height).
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The signature stride (`nh`).
    #[inline]
    pub fn sig_width(&self) -> usize {
        self.sig_width
    }

    /// The arena row of an entity, or `None` when it is not indexed.
    #[inline]
    pub fn position(&self, entity: EntityId) -> Option<usize> {
        self.entities.binary_search(&entity).ok()
    }

    /// The packed level-`level` cells of the entity at `pos` (1-based level).
    #[inline]
    pub fn level_cells(&self, level: Level, pos: usize) -> &[u64] {
        let lvl = &self.levels[(level - 1) as usize];
        &lvl.cells[lvl.offsets[pos]..lvl.offsets[pos + 1]]
    }

    /// The level-`level` signature row of the entity at `pos` (1-based level).
    #[inline]
    pub fn signature_row(&self, level: Level, pos: usize) -> &[u64] {
        let lvl = &self.levels[(level - 1) as usize];
        &lvl.signatures[pos * self.sig_width..(pos + 1) * self.sig_width]
    }

    /// Resident heap footprint of the arena in bytes.
    pub fn resident_bytes(&self) -> usize {
        let per_level: usize = self
            .levels
            .iter()
            .map(|l| {
                (l.cells.len() + l.signatures.len()) * std::mem::size_of::<u64>()
                    + l.offsets.len() * std::mem::size_of::<usize>()
            })
            .sum();
        per_level + self.entities.len() * std::mem::size_of::<EntityId>()
    }

    /// Fused per-level degree of the candidate at `pos` against a query view,
    /// reusing `scratch` for the overlap statistics (allocation-free after
    /// the first call).
    ///
    /// Bitwise identical to `measure.degree(query, seq)` over the owned
    /// sequence: both paths hand the measure the exact same integer
    /// [`LevelStat`]s, and the float computation downstream is shared.
    pub fn degree_into<M: AssociationMeasure + ?Sized>(
        &self,
        pos: usize,
        view: &QueryView<'_>,
        measure: &M,
        scratch: &mut LevelOverlap,
    ) -> f64 {
        debug_assert_eq!(view.num_levels(), self.levels.len());
        scratch.clear();
        for (i, lvl) in self.levels.iter().enumerate() {
            let q = view.level(i);
            let c = &lvl.cells[lvl.offsets[pos]..lvl.offsets[pos + 1]];
            scratch.push(LevelStat {
                overlap: intersection_len(q, c),
                size_a: q.len(),
                size_b: c.len(),
            });
        }
        measure.degree_from_overlap(scratch)
    }

    /// [`degree_into`](Self::degree_into) plus per-kernel dispatch
    /// accounting: classifies each per-level intersection via
    /// [`dispatch_class`] (a pure function of the two lengths, so the hot
    /// loop gains only integer compares, no instrumentation inside the
    /// kernels) and counts it into `dispatch`.
    pub fn degree_into_tracked<M: AssociationMeasure + ?Sized>(
        &self,
        pos: usize,
        view: &QueryView<'_>,
        measure: &M,
        scratch: &mut LevelOverlap,
        dispatch: &mut KernelDispatch,
    ) -> f64 {
        debug_assert_eq!(view.num_levels(), self.levels.len());
        scratch.clear();
        for (i, lvl) in self.levels.iter().enumerate() {
            let q = view.level(i);
            let c = &lvl.cells[lvl.offsets[pos]..lvl.offsets[pos + 1]];
            dispatch.record(dispatch_class(q.len(), c.len()));
            scratch.push(LevelStat {
                overlap: intersection_len(q, c),
                size_a: q.len(),
                size_b: c.len(),
            });
        }
        measure.degree_from_overlap(scratch)
    }

    /// One-shot variant of [`degree_into`](Self::degree_into) that owns its
    /// scratch; convenient for isolated lookups.
    pub fn degree_at<M: AssociationMeasure + ?Sized>(
        &self,
        pos: usize,
        view: &QueryView<'_>,
        measure: &M,
    ) -> f64 {
        let mut scratch = LevelOverlap::default();
        self.degree_into(pos, view, measure, &mut scratch)
    }

    /// Exact top-k over the whole arena — the flat-scan primitive behind
    /// brute force and the planner's tiny-shard `Scan` decision.  Returns
    /// the sorted answers plus the number of entities scored, matching
    /// the owned scan's counters exactly.
    pub fn scan_top_k<M: AssociationMeasure + ?Sized>(
        &self,
        view: &QueryView<'_>,
        exclude: Option<EntityId>,
        k: usize,
        measure: &M,
        dispatch: &mut KernelDispatch,
    ) -> (Vec<TopKResult>, usize) {
        let mut top = TopKHeap::new(k);
        let mut checked = 0usize;
        let mut scratch = LevelOverlap::default();
        for (pos, &entity) in self.entities.iter().enumerate() {
            if Some(entity) == exclude {
                continue;
            }
            checked += 1;
            top.offer(entity, self.degree_into_tracked(pos, view, measure, &mut scratch, dispatch));
        }
        (top.into_sorted(), checked)
    }

    /// Deterministic **sampled** flat scan — the execution primitive behind
    /// the planner's [`ShardDecision::ApproximateScan`] arm.  Every entity in
    /// `always` (the shard's hot-sketch members) is scored unconditionally;
    /// every other member is scored iff [`sample_includes`] admits it at
    /// `rate`.  Scoring itself is exact (same tracked kernel as
    /// [`scan_top_k`](Self::scan_top_k)), so the only error is *omission* of
    /// unsampled entities, which is exactly what
    /// [`Synopsis::expected_scan_recall`] models.  Returns the sorted
    /// answers plus the number of entities actually scored.
    ///
    /// Because [`sample_includes`] is a pure hash of the entity id, the
    /// sample — and therefore the answer — is identical across runs,
    /// machines, and schedules.
    ///
    /// [`ShardDecision::ApproximateScan`]: crate::plan::ShardDecision::ApproximateScan
    /// [`sample_includes`]: crate::plan::sample_includes
    /// [`Synopsis::expected_scan_recall`]: crate::synopsis::Synopsis::expected_scan_recall
    #[allow(clippy::too_many_arguments)]
    pub fn scan_top_k_sampled<M: AssociationMeasure + ?Sized>(
        &self,
        view: &QueryView<'_>,
        exclude: Option<EntityId>,
        k: usize,
        measure: &M,
        rate: f64,
        always: &[EntityId],
        dispatch: &mut KernelDispatch,
    ) -> (Vec<TopKResult>, usize) {
        let mut top = TopKHeap::new(k);
        let mut checked = 0usize;
        let mut scratch = LevelOverlap::default();
        for (pos, &entity) in self.entities.iter().enumerate() {
            if Some(entity) == exclude {
                continue;
            }
            // Sketch entities first-class: they are few (`m ≤ 16`), so a
            // linear containment test beats hashing.
            if !crate::plan::sample_includes(entity, rate) && !always.contains(&entity) {
                continue;
            }
            checked += 1;
            top.offer(entity, self.degree_into_tracked(pos, view, measure, &mut scratch, dispatch));
        }
        (top.into_sorted(), checked)
    }
}

/// Flat per-snapshot rows of the [`MinSigTree`]'s nodes — the node-side
/// counterpart of the entity-side [`CandidateArena`].
///
/// The tree executor's inner loop (node expansion) previously walked owned
/// [`Node`](crate::tree::Node) structs: a `Vec` index into a heap-allocated
/// node, a `BTreeMap` iteration for the children, and a second node fetch per
/// child to read its depth and routing value.  The node arena stores the same
/// topology as structure-of-arrays rows indexed by [`NodeId`]:
///
/// * `depth`, `routing_index`, `routing_value` — one contiguous vector each
///   (the routing values *are* the paper's materialised `SIG_N[u]` node
///   signatures, so this is the node-signature SoA);
/// * CSR children: `child_offsets[id]..child_offsets[id + 1]` brackets the
///   node's children in ascending routing-index order (the owned `BTreeMap`'s
///   iteration order, preserved for deterministic frontier content — answers
///   are order-independent because the frontier orders by bound);
/// * CSR leaf entities: `entity_offsets[id]..entity_offsets[id + 1]`
///   brackets a leaf's entity list.
///
/// Like the candidate arena it is **read-path only**: the owned tree stays
/// the source of truth for mutation and persistence, and each snapshot
/// publish (or insert absorb) rebuilds these rows in `O(nodes)`.
#[derive(Debug, Clone, Default)]
pub struct NodeArena {
    levels: Level,
    num_entities: usize,
    depth: Vec<Level>,
    routing_index: Vec<u32>,
    routing_value: Vec<u64>,
    child_offsets: Vec<u32>,
    children: Vec<NodeId>,
    entity_offsets: Vec<u32>,
    entities: Vec<EntityId>,
}

impl NodeArena {
    /// Materialises the flat node rows from the owned tree.
    pub fn build(tree: &MinSigTree) -> Self {
        let nodes = tree.nodes();
        let n = nodes.len();
        let mut arena = NodeArena {
            levels: tree.levels(),
            num_entities: tree.num_entities(),
            depth: Vec::with_capacity(n),
            routing_index: Vec::with_capacity(n),
            routing_value: Vec::with_capacity(n),
            child_offsets: Vec::with_capacity(n + 1),
            children: Vec::new(),
            entity_offsets: Vec::with_capacity(n + 1),
            entities: Vec::new(),
        };
        arena.child_offsets.push(0);
        arena.entity_offsets.push(0);
        for node in nodes {
            arena.depth.push(node.depth);
            arena.routing_index.push(node.routing_index);
            arena.routing_value.push(node.routing_value);
            arena.children.extend(node.children.values().copied());
            arena.child_offsets.push(arena.children.len() as u32);
            arena.entities.extend_from_slice(&node.entities);
            arena.entity_offsets.push(arena.entities.len() as u32);
        }
        arena
    }

    /// Number of sp-index levels the tree was built for.
    #[inline]
    pub fn levels(&self) -> Level {
        self.levels
    }

    /// Number of entities indexed by the tree.
    #[inline]
    pub fn num_entities(&self) -> usize {
        self.num_entities
    }

    /// Total number of node rows, including the virtual root.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.depth.len()
    }

    /// Depth of a node (0 for the virtual root, `1..=m` for real nodes).
    #[inline]
    pub fn depth(&self, id: NodeId) -> Level {
        self.depth[id as usize]
    }

    /// Routing index `u` of a node's group.
    #[inline]
    pub fn routing_index(&self, id: NodeId) -> u32 {
        self.routing_index[id as usize]
    }

    /// The group minimum at the routing index (`SIG_N[u]`).
    #[inline]
    pub fn routing_value(&self, id: NodeId) -> u64 {
        self.routing_value[id as usize]
    }

    /// A node's children in ascending routing-index order.
    #[inline]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        let i = id as usize;
        &self.children[self.child_offsets[i] as usize..self.child_offsets[i + 1] as usize]
    }

    /// A leaf's entity list (empty below leaf depth).
    #[inline]
    pub fn leaf_entities(&self, id: NodeId) -> &[EntityId] {
        let i = id as usize;
        &self.entities[self.entity_offsets[i] as usize..self.entity_offsets[i + 1] as usize]
    }

    /// Resident heap footprint of the node rows in bytes.
    pub fn resident_bytes(&self) -> usize {
        self.depth.len() * std::mem::size_of::<Level>()
            + self.routing_index.len() * std::mem::size_of::<u32>()
            + self.routing_value.len() * std::mem::size_of::<u64>()
            + (self.child_offsets.len() + self.entity_offsets.len()) * std::mem::size_of::<u32>()
            + self.children.len() * std::mem::size_of::<NodeId>()
            + self.entities.len() * std::mem::size_of::<EntityId>()
    }
}

/// A query's per-level packed cell slices, resolved once per query so the
/// innermost loops never re-fetch the query sequence.
#[derive(Debug, Clone)]
pub struct QueryView<'a> {
    levels: Vec<&'a [u64]>,
}

impl<'a> QueryView<'a> {
    /// Resolves the view of a query sequence.
    pub fn new(query: &'a CellSetSequence) -> Self {
        QueryView { levels: query.iter_levels().map(|(_, set)| set.packed_slice()).collect() }
    }

    /// Number of levels.
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The packed cells of one level (0-based index; level `i + 1`).
    #[inline]
    pub fn level(&self, i: usize) -> &'a [u64] {
        self.levels[i]
    }
}

/// A [`TraceSource`] that serves sequences from the owned map but overrides
/// [`TraceSource::degree`] with the arena's fused kernel loop — what the
/// snapshot executors use for leaf evaluation and saturation checks.
///
/// Must be constructed with the same query sequence the executor scores
/// against; the pre-resolved [`QueryView`] stands in for the `query`
/// argument of [`TraceSource::degree`].
///
/// The source owns one [`LevelOverlap`] scratch reused across every degree
/// it computes (an executor evaluates thousands of candidates per query, and
/// batch fan-outs run one source per executor per query — this removes the
/// per-candidate allocation entirely), plus the per-query
/// [`KernelDispatch`] accounting drained via
/// [`take_dispatch`](Self::take_dispatch).  Both live in single-threaded
/// interior-mutability cells: an executor is driven by one worker at a time
/// (`&mut` under the cooperative scheduler's mutex slots), so the source is
/// `Send` but deliberately not `Sync`.
pub struct ArenaSource<'a> {
    sequences: &'a BTreeMap<EntityId, CellSetSequence>,
    arena: &'a CandidateArena,
    view: QueryView<'a>,
    scratch: RefCell<LevelOverlap>,
    dispatch: Cell<KernelDispatch>,
}

impl<'a> ArenaSource<'a> {
    /// Creates a source over a snapshot's owned maps and arena for one query.
    pub fn new(
        sequences: &'a BTreeMap<EntityId, CellSetSequence>,
        arena: &'a CandidateArena,
        query: &'a CellSetSequence,
    ) -> Self {
        ArenaSource {
            sequences,
            arena,
            view: QueryView::new(query),
            scratch: RefCell::new(LevelOverlap::default()),
            dispatch: Cell::new(KernelDispatch::default()),
        }
    }

    /// The arena this source scores against.
    pub fn arena(&self) -> &'a CandidateArena {
        self.arena
    }

    /// The resolved query view.
    pub fn view(&self) -> &QueryView<'a> {
        &self.view
    }

    /// Drains the per-kernel dispatch counts accumulated since the last call
    /// (or construction), leaving the counters at zero.
    pub fn take_dispatch(&self) -> KernelDispatch {
        self.dispatch.take()
    }
}

impl TraceSource for ArenaSource<'_> {
    fn sequence(&self, entity: EntityId) -> Option<Cow<'_, CellSetSequence>> {
        self.sequences.get(&entity).map(Cow::Borrowed)
    }

    fn degree(
        &self,
        entity: EntityId,
        query: &CellSetSequence,
        measure: &dyn AssociationMeasure,
    ) -> Option<f64> {
        debug_assert_eq!(query.num_levels(), self.view.num_levels());
        let pos = self.arena.position(entity)?;
        let mut dispatch = self.dispatch.get();
        let degree = self.arena.degree_into_tracked(
            pos,
            &self.view,
            measure,
            &mut self.scratch.borrow_mut(),
            &mut dispatch,
        );
        self.dispatch.set(dispatch);
        Some(degree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HasherMode;
    use crate::signature::{HierarchicalHasher, SeededHashFamily};
    use trace_model::{CellSet, PaperAdm, SpIndex, StCell};

    fn fixture(
        n: u64,
    ) -> (SpIndex, BTreeMap<EntityId, CellSetSequence>, BTreeMap<EntityId, SignatureList>) {
        let sp = SpIndex::uniform(2, &[4]).unwrap();
        let hasher =
            HierarchicalHasher::new(SeededHashFamily::new(8, 7, 10_000), HasherMode::PathMax);
        let mut sequences = BTreeMap::new();
        let mut signatures = BTreeMap::new();
        for e in 0..n {
            let cells: Vec<StCell> = (0..=e)
                .map(|t| StCell::new(t as u32, sp.base_units()[(e + t) as usize % 4]))
                .collect();
            let seq = CellSetSequence::from_base_cells(&sp, &CellSet::from_cells(cells)).unwrap();
            signatures.insert(EntityId(e), SignatureList::build(&sp, &hasher, &seq));
            sequences.insert(EntityId(e), seq);
        }
        (sp, sequences, signatures)
    }

    #[test]
    fn build_mirrors_owned_maps() {
        let (_sp, sequences, signatures) = fixture(5);
        let arena = CandidateArena::build(2, 8, &sequences, &signatures);
        assert_eq!(arena.len(), 5);
        assert_eq!(arena.num_levels(), 2);
        assert_eq!(arena.sig_width(), 8);
        for (pos, (&entity, seq)) in sequences.iter().enumerate() {
            assert_eq!(arena.position(entity), Some(pos));
            for level in 1..=2 {
                assert_eq!(arena.level_cells(level, pos), seq.level(level).packed_slice());
                assert_eq!(arena.signature_row(level, pos), signatures[&entity].level(level));
            }
        }
        assert_eq!(arena.position(EntityId(99)), None);
        assert!(arena.resident_bytes() > 0);
    }

    #[test]
    fn absorb_insert_equals_full_rebuild() {
        let (_sp, mut sequences, mut signatures) = fixture(6);
        // Build without entity 2, then splice it back in.
        let held_seq = sequences.remove(&EntityId(2)).unwrap();
        let held_sig = signatures.remove(&EntityId(2)).unwrap();
        let mut incremental = CandidateArena::build(2, 8, &sequences, &signatures);
        incremental.absorb_insert(EntityId(2), &held_seq, &held_sig);
        sequences.insert(EntityId(2), held_seq);
        signatures.insert(EntityId(2), held_sig);
        let rebuilt = CandidateArena::build(2, 8, &sequences, &signatures);
        assert_eq!(incremental.entities(), rebuilt.entities());
        for pos in 0..rebuilt.len() {
            for level in 1..=2 {
                assert_eq!(incremental.level_cells(level, pos), rebuilt.level_cells(level, pos));
                assert_eq!(
                    incremental.signature_row(level, pos),
                    rebuilt.signature_row(level, pos)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "requires a new entity")]
    fn absorb_insert_rejects_existing_entity() {
        let (_sp, sequences, signatures) = fixture(3);
        let mut arena = CandidateArena::build(2, 8, &sequences, &signatures);
        let seq = sequences[&EntityId(1)].clone();
        let sig = signatures[&EntityId(1)].clone();
        arena.absorb_insert(EntityId(1), &seq, &sig);
    }

    #[test]
    fn fused_degree_is_bitwise_identical_to_owned_path() {
        let (_sp, sequences, signatures) = fixture(8);
        let arena = CandidateArena::build(2, 8, &sequences, &signatures);
        let measure = PaperAdm::default_for(2);
        for (&query, qseq) in &sequences {
            let view = QueryView::new(qseq);
            for (pos, (&entity, seq)) in sequences.iter().enumerate() {
                let owned = measure.degree(qseq, seq);
                let fused = arena.degree_at(pos, &view, &measure);
                assert!(
                    owned.to_bits() == fused.to_bits(),
                    "degree({query:?}, {entity:?}): owned {owned} != fused {fused}"
                );
            }
        }
    }

    #[test]
    fn arena_scan_matches_owned_scan() {
        let (_sp, sequences, signatures) = fixture(10);
        let arena = CandidateArena::build(2, 8, &sequences, &signatures);
        let measure = PaperAdm::default_for(2);
        let qseq = &sequences[&EntityId(3)];
        let view = QueryView::new(qseq);
        let mut dispatch = KernelDispatch::default();
        let (arena_results, arena_checked) =
            arena.scan_top_k(&view, Some(EntityId(3)), 4, &measure, &mut dispatch);
        assert_eq!(
            dispatch.total(),
            (arena_checked * arena.num_levels()) as u64,
            "one classified intersection per level per scored candidate"
        );
        let (owned_results, owned_checked) = crate::engine::scan_top_k(
            sequences.iter().map(|(e, s)| (*e, s)),
            qseq,
            Some(EntityId(3)),
            4,
            &measure,
        );
        assert_eq!(arena_checked, owned_checked);
        assert_eq!(arena_results.len(), owned_results.len());
        for (a, o) in arena_results.iter().zip(&owned_results) {
            assert_eq!(a.entity, o.entity);
            assert_eq!(a.degree.to_bits(), o.degree.to_bits());
        }
    }

    #[test]
    fn arena_source_overrides_degree() {
        let (_sp, sequences, signatures) = fixture(4);
        let arena = CandidateArena::build(2, 8, &sequences, &signatures);
        let measure = PaperAdm::default_for(2);
        let qseq = sequences[&EntityId(0)].clone();
        let source = ArenaSource::new(&sequences, &arena, &qseq);
        for &entity in arena.entities() {
            let via_source = source.degree(entity, &qseq, &measure).expect("entity is indexed");
            let owned = measure.degree(&qseq, &sequences[&entity]);
            assert_eq!(via_source.to_bits(), owned.to_bits());
        }
        assert!(source.degree(EntityId(42), &qseq, &measure).is_none());
        assert!(source.sequence(EntityId(1)).is_some());
        assert_eq!(source.arena().len(), 4);
        assert_eq!(source.view().num_levels(), 2);
        let drained = source.take_dispatch();
        assert_eq!(drained.total(), (4 * 2) as u64, "4 degrees × 2 levels classified");
        assert_eq!(source.take_dispatch().total(), 0, "take_dispatch resets the counters");
    }

    #[test]
    fn node_arena_mirrors_the_owned_tree() {
        use crate::tree::{MinSigTree, ROOT};
        let (_sp, _sequences, signatures) = fixture(12);
        let tree = MinSigTree::build(2, signatures.iter().map(|(e, s)| (*e, s)));
        let arena = NodeArena::build(&tree);
        assert_eq!(arena.levels(), tree.levels());
        assert_eq!(arena.num_entities(), tree.num_entities());
        assert_eq!(arena.num_nodes(), tree.num_nodes());
        let mut leaf_entities = 0usize;
        for id in 0..tree.num_nodes() as u32 {
            let node = tree.node(id);
            assert_eq!(arena.depth(id), node.depth);
            assert_eq!(arena.routing_index(id), node.routing_index);
            assert_eq!(arena.routing_value(id), node.routing_value);
            let children: Vec<_> = node.children.values().copied().collect();
            assert_eq!(arena.children(id), children.as_slice(), "children in routing-index order");
            assert_eq!(arena.leaf_entities(id), node.entities.as_slice());
            leaf_entities += arena.leaf_entities(id).len();
        }
        assert_eq!(leaf_entities, tree.num_entities());
        assert!(!arena.children(ROOT).is_empty());
        assert!(arena.resident_bytes() > 0);
    }
}
