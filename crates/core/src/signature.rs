//! Hierarchy-aware MinHash signatures (Section 4.2.1).
//!
//! An entity's level-`i` signature is the element-wise minimum, over the cells of
//! its level-`i` ST-cell set, of `nh` hash functions.  The hash functions are
//! constrained so that a coarse cell never hashes above any of its descendant
//! cells; this gives two properties the index relies on:
//!
//! * **Theorem 1** — `sig^i[u] <= sig^{i+1}[u]` for every entity and every `u`;
//! * **Theorem 2** — if `sig^i[u] > h_u(s)` for a base ST-cell `s`, the entity is
//!   guaranteed not to be present in `s`.
//!
//! Two hash constructions are provided (see [`HasherMode`]): the paper's exact
//! min-over-children rule and a scalable `PathMax` rule; both satisfy the
//! monotonicity property above, which is the only thing the correctness proofs
//! use.  A third, table-driven family reproduces the worked example of
//! Tables 4.1–4.3.

use crate::config::HasherMode;
use parking_lot::RwLock;
use std::collections::HashMap;
use trace_model::{CellSetSequence, Level, SpIndex, StCell};

/// A family of `nh` hash functions over base-level ST-cells.
pub trait CellHashFamily: Send + Sync {
    /// Number of hash functions in the family.
    fn num_functions(&self) -> u32;

    /// Exclusive upper bound of the hash values.
    fn range(&self) -> u64;

    /// The value of hash function `u` (0-based) on a base-level cell.
    fn hash_base(&self, u: u32, cell: StCell) -> u64;
}

/// A seeded family of hash functions based on the SplitMix64 finaliser, mapping
/// `(function index, cell)` to `[0, range)`.
#[derive(Debug, Clone)]
pub struct SeededHashFamily {
    seeds: Vec<u64>,
    range: u64,
}

impl SeededHashFamily {
    /// Creates a family of `nh` functions with the given seed and range.
    pub fn new(nh: u32, seed: u64, range: u64) -> Self {
        assert!(nh > 0, "need at least one hash function");
        assert!(range >= 2, "hash range must be at least 2");
        let seeds = (0..nh as u64)
            .map(|i| splitmix64(seed ^ (i.wrapping_mul(0x9E3779B97F4A7C15))))
            .collect();
        SeededHashFamily { seeds, range }
    }
}

impl CellHashFamily for SeededHashFamily {
    fn num_functions(&self) -> u32 {
        self.seeds.len() as u32
    }

    fn range(&self) -> u64 {
        self.range
    }

    #[inline]
    fn hash_base(&self, u: u32, cell: StCell) -> u64 {
        let mixed = splitmix64(self.seeds[u as usize] ^ cell.packed());
        mixed % self.range
    }
}

/// The 64-bit SplitMix64 finaliser — a fast, well-distributed mixing function.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// A hash family backed by an explicit table, used to reproduce the worked
/// example of Table 4.1 exactly.
#[derive(Debug, Clone, Default)]
pub struct TableHashFamily {
    range: u64,
    values: HashMap<(u32, u64), u64>,
}

impl TableHashFamily {
    /// Creates an empty table with the given range.
    pub fn new(range: u64) -> Self {
        TableHashFamily { range, values: HashMap::new() }
    }

    /// Sets the value of hash function `u` on a base cell.
    pub fn set(&mut self, u: u32, cell: StCell, value: u64) {
        assert!(value < self.range, "table value outside range");
        self.values.insert((u, cell.packed()), value);
    }

    /// Number of distinct functions mentioned in the table.
    fn max_function(&self) -> u32 {
        self.values.keys().map(|&(u, _)| u + 1).max().unwrap_or(0)
    }
}

impl CellHashFamily for TableHashFamily {
    fn num_functions(&self) -> u32 {
        self.max_function()
    }

    fn range(&self) -> u64 {
        self.range
    }

    fn hash_base(&self, u: u32, cell: StCell) -> u64 {
        *self
            .values
            .get(&(u, cell.packed()))
            .unwrap_or_else(|| panic!("no table entry for function {u} and cell {cell}"))
    }
}

/// The hierarchy-aware hasher: extends a base-cell hash family to cells at every
/// sp-index level while preserving `h(parent) <= h(child)`.
pub struct HierarchicalHasher<F> {
    family: F,
    mode: HasherMode,
    /// Memo for the exhaustive mode: packed coarse cell → per-function values.
    memo: RwLock<HashMap<u64, Vec<u64>>>,
}

impl<F: Clone> Clone for HierarchicalHasher<F> {
    fn clone(&self) -> Self {
        HierarchicalHasher {
            family: self.family.clone(),
            mode: self.mode,
            memo: RwLock::new(self.memo.read().clone()),
        }
    }
}

impl<F: std::fmt::Debug> std::fmt::Debug for HierarchicalHasher<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HierarchicalHasher")
            .field("family", &self.family)
            .field("mode", &self.mode)
            .field("memo_entries", &self.memo.read().len())
            .finish()
    }
}

impl<F: CellHashFamily> HierarchicalHasher<F> {
    /// Wraps a base-cell family.
    pub fn new(family: F, mode: HasherMode) -> Self {
        HierarchicalHasher { family, mode, memo: RwLock::new(HashMap::new()) }
    }

    /// The underlying base-cell family.
    pub fn family(&self) -> &F {
        &self.family
    }

    /// The hasher mode.
    pub fn mode(&self) -> HasherMode {
        self.mode
    }

    /// Number of hash functions.
    pub fn num_functions(&self) -> u32 {
        self.family.num_functions()
    }

    /// Exclusive upper bound of hash values.
    pub fn range(&self) -> u64 {
        self.family.range()
    }

    /// The value of hash function `u` on a cell whose spatial unit lives at any
    /// level of `sp`.
    pub fn hash(&self, sp: &SpIndex, u: u32, cell: StCell) -> u64 {
        let level = sp.level(cell.unit()).expect("cell unit must exist in the sp-index");
        match self.mode {
            HasherMode::PathMax => self.path_max(sp, u, cell, level),
            HasherMode::Exhaustive => {
                if level == sp.height() {
                    self.family.hash_base(u, cell)
                } else {
                    self.exhaustive(sp, cell)[u as usize]
                }
            }
        }
    }

    /// Exhaustive rule: minimum over all descendant base cells, memoised.
    fn exhaustive(&self, sp: &SpIndex, cell: StCell) -> Vec<u64> {
        if let Some(values) = self.memo.read().get(&cell.packed()) {
            return values.clone();
        }
        let nh = self.family.num_functions() as usize;
        let mut values = vec![u64::MAX; nh];
        let (lo, hi) = sp.base_range(cell.unit()).expect("unit exists");
        for ordinal in lo..hi {
            let base_unit = sp.base_unit_at(ordinal).expect("ordinal in range");
            let base_cell = StCell::new(cell.time(), base_unit);
            for (u, slot) in values.iter_mut().enumerate() {
                let h = self.family.hash_base(u as u32, base_cell);
                if h < *slot {
                    *slot = h;
                }
            }
        }
        self.memo.write().insert(cell.packed(), values.clone());
        values
    }

    /// PathMax rule: `h_u(t, unit at level l) = max over the unit's ancestors a_1..a_l
    /// of g_u(t, a_j)`, where `g_u` is an independent uniform draw per
    /// (function, time, unit).  A parent's value is the maximum over a strict
    /// prefix of its children's ancestor paths, hence never larger.
    fn path_max(&self, sp: &SpIndex, u: u32, cell: StCell, level: Level) -> u64 {
        let mut value = 0u64;
        let path = sp.path(cell.unit()).expect("unit exists");
        debug_assert_eq!(path.len(), level as usize);
        for ancestor in path {
            let h = self.family.hash_base(u, StCell::new(cell.time(), ancestor));
            if h > value {
                value = h;
            }
        }
        value
    }

    /// The value of hash function `u` on a *base* cell — an alias of
    /// [`HierarchicalHasher::hash`] kept for call-site clarity on the query path,
    /// where all pruned-set checks are against base cells.
    pub fn hash_base_cell(&self, sp: &SpIndex, u: u32, cell: StCell) -> u64 {
        self.hash(sp, u, cell)
    }

    /// Number of memoised coarse cells (exhaustive mode only; useful for memory
    /// accounting).
    pub fn memo_len(&self) -> usize {
        self.memo.read().len()
    }
}

/// The per-level signature list of one entity (Section 4.2.1): `levels[i-1][u]` is
/// `sig^i[u]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignatureList {
    levels: Vec<Vec<u64>>,
}

impl SignatureList {
    /// Computes the signature list of an entity from its ST-cell set sequence.
    ///
    /// Empty levels produce all-`u64::MAX` signatures (an entity with no presence
    /// at a level can never be pruned *into* a group by it).
    pub fn build<F: CellHashFamily>(
        sp: &SpIndex,
        hasher: &HierarchicalHasher<F>,
        seq: &CellSetSequence,
    ) -> Self {
        let nh = hasher.num_functions() as usize;
        let mut levels = Vec::with_capacity(seq.num_levels());
        for (_level, set) in seq.iter_levels() {
            let mut sig = vec![u64::MAX; nh];
            for cell in set.iter() {
                for (u, slot) in sig.iter_mut().enumerate() {
                    let h = hasher.hash(sp, u as u32, cell);
                    if h < *slot {
                        *slot = h;
                    }
                }
            }
            levels.push(sig);
        }
        SignatureList { levels }
    }

    /// Reassembles a signature list from raw per-level vectors (the inverse of
    /// [`SignatureList::levels`]; used by the persistence layer).
    ///
    /// # Panics
    /// Panics when the level vectors do not all share one width.
    pub fn from_levels(levels: Vec<Vec<u64>>) -> Self {
        if let Some(first) = levels.first() {
            assert!(
                levels.iter().all(|l| l.len() == first.len()),
                "all levels of a signature must have the same width"
            );
        }
        SignatureList { levels }
    }

    /// The raw per-level signature vectors (`levels()[i - 1][u]` is `sig^i[u]`).
    pub fn levels(&self) -> &[Vec<u64>] {
        &self.levels
    }

    /// Element-wise minimum with another signature of the same shape.
    ///
    /// Because a signature is an element-wise minimum over the cells of each
    /// level set, and level sets distribute over unions
    /// (`level_i(A ∪ B) = level_i(A) ∪ level_i(B)`), the signature of a merged
    /// trace is exactly `min(sig(old), sig(delta))`.  This is what makes
    /// streaming ingestion incremental: only the *new* cells of a batch are
    /// hashed, and the result is bit-identical to rebuilding the signature
    /// from the full merged sequence.
    ///
    /// # Panics
    /// Panics when the two signatures have different shapes.
    pub fn merge_min(&mut self, other: &SignatureList) {
        assert_eq!(self.levels.len(), other.levels.len(), "level count mismatch in merge");
        for (mine, theirs) in self.levels.iter_mut().zip(other.levels.iter()) {
            assert_eq!(mine.len(), theirs.len(), "signature width mismatch in merge");
            trace_model::kernel::merge_min(mine, theirs);
        }
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The signature at a level (1-based).
    pub fn level(&self, level: Level) -> &[u64] {
        &self.levels[(level - 1) as usize]
    }

    /// The routing index at a level: the position of the maximum value (ties are
    /// broken towards the lowest index, matching "ties are broken arbitrarily").
    ///
    /// Delegates to [`trace_model::kernel::argmax`], which keeps the running
    /// maximum in a register instead of re-reading `sig[best]` each iteration.
    pub fn routing_index(&self, level: Level) -> u32 {
        trace_model::kernel::argmax(self.level(level)) as u32
    }

    /// The value at a given level and function index.
    pub fn value(&self, level: Level, u: u32) -> u64 {
        self.level(level)[u as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_model::examples::{PaperExample, T1, T2};
    use trace_model::{CellSet, CellSetSequence, SpIndex};

    fn paper_hasher() -> (PaperExample, HierarchicalHasher<TableHashFamily>) {
        let ex = PaperExample::build();
        let mut table = TableHashFamily::new(10);
        let u = ex.units;
        for (t, unit) in [
            (T1, u.l1),
            (T2, u.l1),
            (T1, u.l2),
            (T2, u.l2),
            (T1, u.l3),
            (T2, u.l3),
            (T1, u.l4),
            (T2, u.l4),
        ] {
            for h in [1u32, 2] {
                let cell = StCell::new(t, unit);
                let value = ex.hash_value(h as usize, cell).unwrap() as u64;
                table.set(h - 1, cell, value);
            }
        }
        (ex, HierarchicalHasher::new(table, HasherMode::Exhaustive))
    }

    /// Table 4.3: the signatures of the four example entities match the paper.
    #[test]
    fn paper_example_signature_table() {
        let (ex, hasher) = paper_hasher();
        let expected = ex.expected_signatures();
        for ((entity, seq), (expected_entity, sig1, sig2)) in ex.entities.iter().zip(expected) {
            assert_eq!(*entity, expected_entity);
            let sig = SignatureList::build(&ex.sp, &hasher, seq);
            assert_eq!(
                sig.level(1),
                &[sig1[0] as u64, sig1[1] as u64],
                "level-1 signature of {entity}"
            );
            assert_eq!(
                sig.level(2),
                &[sig2[0] as u64, sig2[1] as u64],
                "level-2 signature of {entity}"
            );
        }
    }

    /// Example 4.2.1 routing: e_a, e_b, e_c route to index 2 (1-based) at level 1,
    /// e_d routes to index 1.
    #[test]
    fn paper_example_routing_indices() {
        let (ex, hasher) = paper_hasher();
        let routing: Vec<u32> = ex
            .entities
            .iter()
            .map(|(_, seq)| SignatureList::build(&ex.sp, &hasher, seq).routing_index(1))
            .collect();
        assert_eq!(routing, vec![1, 1, 1, 0], "0-based routing indices at level 1");
    }

    #[test]
    fn seeded_family_is_deterministic_and_in_range() {
        let f = SeededHashFamily::new(16, 99, 1000);
        assert_eq!(f.num_functions(), 16);
        for u in 0..16 {
            for t in 0..20u32 {
                let c = StCell::new(t, t * 7);
                let a = f.hash_base(u, c);
                let b = f.hash_base(u, c);
                assert_eq!(a, b);
                assert!(a < 1000);
            }
        }
        // Different functions give different values somewhere.
        let c = StCell::new(1, 1);
        let distinct: std::collections::BTreeSet<u64> =
            (0..16).map(|u| f.hash_base(u, c)).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn theorem_1_holds_for_both_modes() {
        // sig^i[u] <= sig^{i+1}[u] on a random-ish 3-level hierarchy.
        let sp = SpIndex::uniform(3, &[3, 4]).unwrap();
        let cells: Vec<StCell> = sp
            .base_units()
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 == 0)
            .map(|(i, &unit)| StCell::new((i % 5) as u32, unit))
            .collect();
        let seq = CellSetSequence::from_base_cells(&sp, &CellSet::from_cells(cells)).unwrap();
        for mode in [HasherMode::Exhaustive, HasherMode::PathMax] {
            let hasher = HierarchicalHasher::new(SeededHashFamily::new(32, 7, 10_000), mode);
            let sig = SignatureList::build(&sp, &hasher, &seq);
            for level in 1..sp.height() {
                for u in 0..32 {
                    assert!(
                        sig.value(level, u) <= sig.value(level + 1, u),
                        "Theorem 1 violated at level {level}, u {u}, mode {mode:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn parent_hash_never_exceeds_child_hash() {
        let sp = SpIndex::uniform(2, &[4, 5]).unwrap();
        for mode in [HasherMode::Exhaustive, HasherMode::PathMax] {
            let hasher = HierarchicalHasher::new(SeededHashFamily::new(8, 3, 5_000), mode);
            for &base in sp.base_units().iter().step_by(4) {
                for t in 0..3u32 {
                    let base_cell = StCell::new(t, base);
                    for level in 1..sp.height() {
                        let ancestor = sp.ancestor_at_level(base, level).unwrap();
                        let coarse_cell = StCell::new(t, ancestor);
                        for u in 0..8 {
                            let hp = hasher.hash(&sp, u, coarse_cell);
                            let hc = hasher.hash_base_cell(&sp, u, base_cell);
                            assert!(
                                hp <= hc,
                                "h(parent)={hp} > h(child)={hc} at level {level} mode {mode:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn theorem_2_absence_certificate() {
        // If sig^i[u] > h_u(s) then s is not in the entity's base set.
        let sp = SpIndex::uniform(2, &[3, 3]).unwrap();
        let hasher =
            HierarchicalHasher::new(SeededHashFamily::new(16, 11, 2_000), HasherMode::PathMax);
        let present: Vec<StCell> =
            sp.base_units().iter().step_by(2).map(|&u| StCell::new(0, u)).collect();
        let seq =
            CellSetSequence::from_base_cells(&sp, &CellSet::from_cells(present.clone())).unwrap();
        let sig = SignatureList::build(&sp, &hasher, &seq);
        let present_set: std::collections::BTreeSet<u64> =
            present.iter().map(|c| c.packed()).collect();
        for &unit in sp.base_units() {
            for t in 0..2u32 {
                let s = StCell::new(t, unit);
                for level in 1..=sp.height() {
                    for u in 0..16 {
                        if sig.value(level, u) > hasher.hash_base_cell(&sp, u, s) {
                            assert!(
                                !present_set.contains(&s.packed()),
                                "Theorem 2 violated: pruned a present cell {s}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn exhaustive_mode_memoises_coarse_cells() {
        let sp = SpIndex::uniform(2, &[8]).unwrap();
        let hasher =
            HierarchicalHasher::new(SeededHashFamily::new(4, 5, 100), HasherMode::Exhaustive);
        let coarse_unit = sp.top_units()[0];
        let cell = StCell::new(3, coarse_unit);
        assert_eq!(hasher.memo_len(), 0);
        let first = hasher.hash(&sp, 0, cell);
        assert_eq!(hasher.memo_len(), 1);
        let second = hasher.hash(&sp, 0, cell);
        assert_eq!(first, second);
        assert_eq!(hasher.memo_len(), 1);
    }

    #[test]
    fn empty_sequence_signature_is_all_max() {
        let sp = SpIndex::uniform(2, &[2]).unwrap();
        let hasher = HierarchicalHasher::new(SeededHashFamily::new(4, 5, 100), HasherMode::PathMax);
        let seq = CellSetSequence::from_base_cells(&sp, &CellSet::new()).unwrap();
        let sig = SignatureList::build(&sp, &hasher, &seq);
        for level in 1..=2u8 {
            assert!(sig.level(level).iter().all(|&v| v == u64::MAX));
        }
        assert_eq!(sig.routing_index(1), 0);
    }

    #[test]
    #[should_panic(expected = "no table entry")]
    fn table_family_panics_on_missing_entries() {
        let table = TableHashFamily::new(10);
        let _ = table.hash_base(0, StCell::new(0, 0));
    }

    #[test]
    fn merge_min_equals_rebuild_from_union() {
        // sig(A ∪ B) == min(sig(A), sig(B)), the property streaming ingestion
        // relies on for incremental signature maintenance.
        let sp = SpIndex::uniform(3, &[3, 3]).unwrap();
        let hasher =
            HierarchicalHasher::new(SeededHashFamily::new(16, 42, 10_000), HasherMode::PathMax);
        let cells_a: Vec<StCell> =
            sp.base_units().iter().step_by(3).map(|&u| StCell::new(1, u)).collect();
        let cells_b: Vec<StCell> =
            sp.base_units().iter().step_by(4).map(|&u| StCell::new(2, u)).collect();
        let set_a = CellSet::from_cells(cells_a.clone());
        let set_b = CellSet::from_cells(cells_b.clone());
        let union = set_a.union(&set_b);

        let seq_a = CellSetSequence::from_base_cells(&sp, &set_a).unwrap();
        let seq_b = CellSetSequence::from_base_cells(&sp, &set_b).unwrap();
        let seq_union = CellSetSequence::from_base_cells(&sp, &union).unwrap();

        let mut merged = SignatureList::build(&sp, &hasher, &seq_a);
        merged.merge_min(&SignatureList::build(&sp, &hasher, &seq_b));
        let rebuilt = SignatureList::build(&sp, &hasher, &seq_union);
        assert_eq!(merged, rebuilt);
    }

    #[test]
    fn routing_index_ties_break_toward_lowest_index() {
        // Duplicate maxima anywhere in the signature must route to the first
        // occurrence: group membership depends on this being deterministic.
        let sig = SignatureList::from_levels(vec![
            vec![7, 9, 9, 3],
            vec![9, 9, 9, 9],
            vec![1, 2, 9, 9],
            vec![u64::MAX, u64::MAX, 0, u64::MAX],
        ]);
        assert_eq!(sig.routing_index(1), 1);
        assert_eq!(sig.routing_index(2), 0);
        assert_eq!(sig.routing_index(3), 2);
        assert_eq!(sig.routing_index(4), 0);
    }

    #[test]
    fn from_levels_round_trips() {
        let levels = vec![vec![3u64, 9], vec![5, 12]];
        let sig = SignatureList::from_levels(levels.clone());
        assert_eq!(sig.levels(), levels.as_slice());
        assert_eq!(sig.num_levels(), 2);
        assert_eq!(sig.value(1, 1), 9);
        assert_eq!(sig.routing_index(2), 1);
    }

    #[test]
    #[should_panic(expected = "same width")]
    fn from_levels_rejects_ragged_input() {
        let _ = SignatureList::from_levels(vec![vec![1], vec![1, 2]]);
    }

    #[test]
    fn splitmix_is_not_identity_and_spreads_bits() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert_ne!(a, 1);
        assert!(a.count_ones() > 10, "output should look random");
    }
}
