//! Top-k joins and batch query evaluation (the kNN-join future-work direction of
//! Section 8.2).
//!
//! A *top-k join* answers the top-k query for every entity of a probe set in one
//! call.  Each probe reuses the same MinSigTree and the same early-termination
//! machinery as a single query; the batch API adds two things on top:
//!
//! * **parallel evaluation** — probes are independent, so they are spread over a
//!   configurable number of worker threads (scoped threads, no unsafe, no extra
//!   dependencies);
//! * **aggregate statistics** — the mean pruning effectiveness over the batch,
//!   which is what the experiment harness reports.

use crate::error::Result;
use crate::index::MinSigIndex;
use crate::query::{QueryOptions, TopKResult};
use crate::stats::SearchStats;
use serde::{Deserialize, Serialize};
use trace_model::{AssociationMeasure, EntityId};

/// The result of one probe within a join.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinRow {
    /// The probe (query) entity.
    pub probe: EntityId,
    /// Its top-k associated entities.
    pub matches: Vec<TopKResult>,
    /// The per-probe search statistics.
    pub stats: SearchStats,
}

/// Aggregate statistics of a join.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct JoinStats {
    /// Number of probes answered.
    pub probes: usize,
    /// Probes skipped because the entity is not indexed.
    pub skipped: usize,
    /// Mean entities checked per probe.
    pub mean_entities_checked: f64,
    /// Mean pruning effectiveness over the probes.
    pub mean_pruning_effectiveness: f64,
}

/// Options of a join evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinOptions {
    /// Number of result entities per probe.
    pub k: usize,
    /// Worker threads (1 = sequential).
    pub threads: usize,
    /// Per-probe query options.
    pub query: QueryOptions,
}

impl Default for JoinOptions {
    fn default() -> Self {
        JoinOptions { k: 10, threads: 1, query: QueryOptions::default() }
    }
}

impl MinSigIndex {
    /// Answers the top-k query for every probe entity, optionally in parallel.
    ///
    /// Probes that are not indexed are skipped (and counted in
    /// [`JoinStats::skipped`]); the output preserves the probe order.
    pub fn top_k_join<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        probes: &[EntityId],
        measure: &M,
        options: JoinOptions,
    ) -> Result<(Vec<JoinRow>, JoinStats)> {
        let threads = options.threads.max(1).min(probes.len().max(1));
        let rows: Vec<Option<JoinRow>> = if threads <= 1 {
            probes.iter().map(|&probe| self.join_one(probe, measure, options)).collect()
        } else {
            let mut rows: Vec<Option<JoinRow>> = vec![None; probes.len()];
            let chunk = probes.len().div_ceil(threads);
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (chunk_index, probe_chunk) in probes.chunks(chunk).enumerate() {
                    handles.push((
                        chunk_index,
                        scope.spawn(move || {
                            probe_chunk
                                .iter()
                                .map(|&probe| self.join_one(probe, measure, options))
                                .collect::<Vec<_>>()
                        }),
                    ));
                }
                for (chunk_index, handle) in handles {
                    let chunk_rows = handle.join().expect("join worker never panics");
                    for (offset, row) in chunk_rows.into_iter().enumerate() {
                        rows[chunk_index * chunk + offset] = row;
                    }
                }
            });
            rows
        };

        let mut stats = JoinStats::default();
        let mut out = Vec::with_capacity(probes.len());
        for row in rows {
            match row {
                Some(row) => {
                    stats.probes += 1;
                    stats.mean_entities_checked += row.stats.entities_checked as f64;
                    stats.mean_pruning_effectiveness += row.stats.pruning_effectiveness();
                    out.push(row);
                }
                None => stats.skipped += 1,
            }
        }
        if stats.probes > 0 {
            stats.mean_entities_checked /= stats.probes as f64;
            stats.mean_pruning_effectiveness /= stats.probes as f64;
        }
        Ok((out, stats))
    }

    fn join_one<M: AssociationMeasure + ?Sized>(
        &self,
        probe: EntityId,
        measure: &M,
        options: JoinOptions,
    ) -> Option<JoinRow> {
        let (matches, stats) =
            self.top_k_with_options(probe, options.k, measure, options.query).ok()?;
        Some(JoinRow { probe, matches, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use trace_model::{PaperAdm, Period, PresenceInstance, SpIndex, TraceSet};

    fn dataset(pairs: usize) -> (SpIndex, TraceSet) {
        let sp = SpIndex::uniform(4, &[4]).unwrap();
        let base = sp.base_units().to_vec();
        let mut traces = TraceSet::new(60);
        for i in 0..pairs {
            for member in 0..2u64 {
                let entity = EntityId(2 * i as u64 + member);
                for step in 0..6u64 {
                    let unit = base[(i * 5 + step as usize) % base.len()];
                    traces.record(PresenceInstance::new(
                        entity,
                        unit,
                        Period::new(step * 120, step * 120 + 60).unwrap(),
                    ));
                }
            }
        }
        (sp, traces)
    }

    #[test]
    fn join_answers_every_probe_and_finds_partners() {
        let (sp, traces) = dataset(20);
        let index =
            MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(48)).unwrap();
        let measure = PaperAdm::default_for(2);
        let probes: Vec<EntityId> = (0..10u64).map(EntityId).collect();
        let (rows, stats) = index
            .top_k_join(&probes, &measure, JoinOptions { k: 1, ..JoinOptions::default() })
            .unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(stats.probes, 10);
        assert_eq!(stats.skipped, 0);
        for row in &rows {
            let probe = row.probe.raw();
            let partner = if probe % 2 == 0 { probe + 1 } else { probe - 1 };
            assert_eq!(row.matches[0].entity, EntityId(partner));
        }
        assert!(stats.mean_pruning_effectiveness >= 0.0);
        assert!(stats.mean_entities_checked >= 1.0);
    }

    #[test]
    fn parallel_join_matches_sequential_join() {
        let (sp, traces) = dataset(25);
        let index =
            MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(48)).unwrap();
        let measure = PaperAdm::default_for(2);
        let probes: Vec<EntityId> = (0..30u64).map(EntityId).collect();
        let (seq_rows, _) = index
            .top_k_join(&probes, &measure, JoinOptions { k: 3, threads: 1, ..JoinOptions::default() })
            .unwrap();
        let (par_rows, _) = index
            .top_k_join(&probes, &measure, JoinOptions { k: 3, threads: 4, ..JoinOptions::default() })
            .unwrap();
        assert_eq!(seq_rows.len(), par_rows.len());
        for (a, b) in seq_rows.iter().zip(par_rows.iter()) {
            assert_eq!(a.probe, b.probe);
            assert_eq!(a.matches.len(), b.matches.len());
            for (x, y) in a.matches.iter().zip(b.matches.iter()) {
                assert!((x.degree - y.degree).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn unknown_probes_are_skipped_not_fatal() {
        let (sp, traces) = dataset(3);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::default()).unwrap();
        let measure = PaperAdm::default_for(2);
        let probes = vec![EntityId(0), EntityId(999), EntityId(1)];
        let (rows, stats) = index.top_k_join(&probes, &measure, JoinOptions::default()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(stats.skipped, 1);
        assert_eq!(rows[0].probe, EntityId(0));
        assert_eq!(rows[1].probe, EntityId(1));
    }

    #[test]
    fn empty_probe_set_is_a_noop() {
        let (sp, traces) = dataset(2);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::default()).unwrap();
        let measure = PaperAdm::default_for(2);
        let (rows, stats) = index.top_k_join(&[], &measure, JoinOptions::default()).unwrap();
        assert!(rows.is_empty());
        assert_eq!(stats.probes, 0);
        assert_eq!(stats.mean_entities_checked, 0.0);
    }
}
