//! Top-k joins and batch query evaluation (the kNN-join future-work direction of
//! Section 8.2).
//!
//! A *top-k join* answers the top-k query for every entity of a probe set in one
//! call; [`IndexSnapshot::top_k_batch`] is the same idea with the `top_k`
//! result shape.  Each probe runs the shared best-first executor of
//! [`crate::engine`] against the same immutable snapshot, so probes are
//! trivially independent and are fanned out over the rayon thread pool.  The
//! executor is deterministic given its inputs, which yields the batch API's
//! contract: **parallel evaluation returns exactly the sequential results, in
//! probe order** (only wall-clock timing fields differ).

use crate::error::{IndexError, Result};
use crate::index::MinSigIndex;
use crate::query::{QueryOptions, TopKResult};
use crate::snapshot::IndexSnapshot;
use crate::stats::QueryStats;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use trace_model::{AssociationMeasure, EntityId};

/// The result of one probe within a join.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinRow {
    /// The probe (query) entity.
    pub probe: EntityId,
    /// Its top-k associated entities.
    pub matches: Vec<TopKResult>,
    /// The per-probe search statistics.
    pub stats: QueryStats,
}

/// Aggregate statistics of a join.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct JoinStats {
    /// Number of probes answered.
    pub probes: usize,
    /// Probes skipped because the entity is not indexed.
    pub skipped: usize,
    /// Mean entities checked per probe.
    pub mean_entities_checked: f64,
    /// Mean pruning effectiveness over the probes.
    pub mean_pruning_effectiveness: f64,
}

/// Options of a join evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinOptions {
    /// Number of result entities per probe.
    pub k: usize,
    /// `1` evaluates probes sequentially on the calling thread; any larger
    /// value fans the probes out over the rayon worker pool (whose size is
    /// global, so this acts as an on/off switch rather than an exact thread
    /// count).  Results are identical either way.
    pub threads: usize,
    /// Per-probe query options.
    pub query: QueryOptions,
}

impl Default for JoinOptions {
    fn default() -> Self {
        JoinOptions { k: 10, threads: 1, query: QueryOptions::default() }
    }
}

impl IndexSnapshot {
    /// Answers the top-k query for every query entity of a batch, in parallel,
    /// returning per-query `(results, stats)` pairs **in input order**.
    ///
    /// Equivalent to calling [`top_k`](IndexSnapshot::top_k) once per entry:
    /// the first unknown query entity fails the whole batch with
    /// [`IndexError::UnknownQueryEntity`], exactly as its sequential
    /// counterpart would.
    pub fn top_k_batch<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        queries: &[EntityId],
        k: usize,
        measure: &M,
    ) -> Result<Vec<(Vec<TopKResult>, QueryStats)>> {
        self.top_k_batch_with_options(queries, k, measure, QueryOptions::default())
    }

    /// [`top_k_batch`](IndexSnapshot::top_k_batch) with explicit query options.
    pub fn top_k_batch_with_options<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        queries: &[EntityId],
        k: usize,
        measure: &M,
        options: QueryOptions,
    ) -> Result<Vec<(Vec<TopKResult>, QueryStats)>> {
        let answers: Vec<Result<(Vec<TopKResult>, QueryStats)>> = queries
            .par_iter()
            .map(|&query| self.top_k_with_options(query, k, measure, options))
            .collect();
        // Surface the first error in input order, matching sequential
        // evaluation (later probes were computed speculatively and dropped).
        answers.into_iter().collect()
    }

    /// Answers the top-k query for every probe entity, optionally in parallel.
    ///
    /// Probes that are not indexed are skipped (and counted in
    /// [`JoinStats::skipped`]); the output preserves the probe order and is
    /// identical for sequential and parallel evaluation.
    pub fn top_k_join<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        probes: &[EntityId],
        measure: &M,
        options: JoinOptions,
    ) -> Result<(Vec<JoinRow>, JoinStats)> {
        let rows: Vec<Option<JoinRow>> = if options.threads <= 1 || probes.len() <= 1 {
            probes.iter().map(|&probe| self.join_one(probe, measure, options)).collect()
        } else {
            probes.par_iter().map(|&probe| self.join_one(probe, measure, options)).collect()
        };

        Ok(collect_join_rows(rows))
    }

    fn join_one<M: AssociationMeasure + ?Sized>(
        &self,
        probe: EntityId,
        measure: &M,
        options: JoinOptions,
    ) -> Option<JoinRow> {
        match self.top_k_with_options(probe, options.k, measure, options.query) {
            Ok((matches, stats)) => Some(JoinRow { probe, matches, stats }),
            Err(IndexError::UnknownQueryEntity(_)) => None,
            // Any other error class would indicate a malformed snapshot; the
            // join API predates fallible rows, so fold it into "skipped" too.
            Err(_) => None,
        }
    }
}

/// Folds per-probe rows (`None` = skipped probe) into the join output and its
/// aggregate statistics; shared by the unsharded and sharded join drivers so
/// their accounting cannot drift apart.
pub(crate) fn collect_join_rows(rows: Vec<Option<JoinRow>>) -> (Vec<JoinRow>, JoinStats) {
    let mut stats = JoinStats::default();
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        match row {
            Some(row) => {
                stats.probes += 1;
                stats.mean_entities_checked += row.stats.entities_checked as f64;
                stats.mean_pruning_effectiveness += row.stats.pruning_effectiveness();
                out.push(row);
            }
            None => stats.skipped += 1,
        }
    }
    if stats.probes > 0 {
        stats.mean_entities_checked /= stats.probes as f64;
        stats.mean_pruning_effectiveness /= stats.probes as f64;
    }
    (out, stats)
}

impl MinSigIndex {
    /// Answers the top-k query for every query entity of a batch, in parallel,
    /// on the current snapshot.  See [`IndexSnapshot::top_k_batch`].
    pub fn top_k_batch<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        queries: &[EntityId],
        k: usize,
        measure: &M,
    ) -> Result<Vec<(Vec<TopKResult>, QueryStats)>> {
        self.snapshot().top_k_batch(queries, k, measure)
    }

    /// [`top_k_batch`](MinSigIndex::top_k_batch) with explicit query options.
    pub fn top_k_batch_with_options<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        queries: &[EntityId],
        k: usize,
        measure: &M,
        options: QueryOptions,
    ) -> Result<Vec<(Vec<TopKResult>, QueryStats)>> {
        self.snapshot().top_k_batch_with_options(queries, k, measure, options)
    }

    /// Answers the top-k query for every probe entity, optionally in parallel,
    /// on the current snapshot.  See [`IndexSnapshot::top_k_join`].
    pub fn top_k_join<M: AssociationMeasure + Sync + ?Sized>(
        &self,
        probes: &[EntityId],
        measure: &M,
        options: JoinOptions,
    ) -> Result<(Vec<JoinRow>, JoinStats)> {
        self.snapshot().top_k_join(probes, measure, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use trace_model::{PaperAdm, Period, PresenceInstance, SpIndex, TraceSet};

    fn dataset(pairs: usize) -> (SpIndex, TraceSet) {
        let sp = SpIndex::uniform(4, &[4]).unwrap();
        let base = sp.base_units().to_vec();
        let mut traces = TraceSet::new(60);
        for i in 0..pairs {
            for member in 0..2u64 {
                let entity = EntityId(2 * i as u64 + member);
                for step in 0..6u64 {
                    let unit = base[(i * 5 + step as usize) % base.len()];
                    traces.record(PresenceInstance::new(
                        entity,
                        unit,
                        Period::new(step * 120, step * 120 + 60).unwrap(),
                    ));
                }
            }
        }
        (sp, traces)
    }

    #[test]
    fn join_answers_every_probe_and_finds_partners() {
        let (sp, traces) = dataset(20);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(48)).unwrap();
        let measure = PaperAdm::default_for(2);
        let probes: Vec<EntityId> = (0..10u64).map(EntityId).collect();
        let (rows, stats) = index
            .top_k_join(&probes, &measure, JoinOptions { k: 1, ..JoinOptions::default() })
            .unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(stats.probes, 10);
        assert_eq!(stats.skipped, 0);
        for row in &rows {
            let probe = row.probe.raw();
            let partner = if probe % 2 == 0 { probe + 1 } else { probe - 1 };
            assert_eq!(row.matches[0].entity, EntityId(partner));
        }
        assert!(stats.mean_pruning_effectiveness >= 0.0);
        assert!(stats.mean_entities_checked >= 1.0);
    }

    #[test]
    fn parallel_join_matches_sequential_join() {
        let (sp, traces) = dataset(25);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(48)).unwrap();
        let measure = PaperAdm::default_for(2);
        let probes: Vec<EntityId> = (0..30u64).map(EntityId).collect();
        let (seq_rows, _) = index
            .top_k_join(
                &probes,
                &measure,
                JoinOptions { k: 3, threads: 1, ..JoinOptions::default() },
            )
            .unwrap();
        let (par_rows, _) = index
            .top_k_join(
                &probes,
                &measure,
                JoinOptions { k: 3, threads: 4, ..JoinOptions::default() },
            )
            .unwrap();
        assert_eq!(seq_rows.len(), par_rows.len());
        for (a, b) in seq_rows.iter().zip(par_rows.iter()) {
            assert_eq!(a.probe, b.probe);
            assert_eq!(a.matches.len(), b.matches.len());
            for (x, y) in a.matches.iter().zip(b.matches.iter()) {
                assert!((x.degree - y.degree).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn unknown_probes_are_skipped_not_fatal() {
        let (sp, traces) = dataset(3);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::default()).unwrap();
        let measure = PaperAdm::default_for(2);
        let probes = vec![EntityId(0), EntityId(999), EntityId(1)];
        let (rows, stats) = index.top_k_join(&probes, &measure, JoinOptions::default()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(stats.skipped, 1);
        assert_eq!(rows[0].probe, EntityId(0));
        assert_eq!(rows[1].probe, EntityId(1));
    }

    #[test]
    fn empty_probe_set_is_a_noop() {
        let (sp, traces) = dataset(2);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::default()).unwrap();
        let measure = PaperAdm::default_for(2);
        let (rows, stats) = index.top_k_join(&[], &measure, JoinOptions::default()).unwrap();
        assert!(rows.is_empty());
        assert_eq!(stats.probes, 0);
        assert_eq!(stats.mean_entities_checked, 0.0);
    }
}
