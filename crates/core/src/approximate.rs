//! Approximate top-k queries via LSH banding (the first future-work direction of
//! Section 8.2, built from the banding technique the paper reviews in
//! Section 2.3).
//!
//! The exact search of Chapter 5 guarantees the correct answer but must keep
//! expanding subtrees until the early-termination bound closes.  Many
//! applications (interactive investigation, recommendation) tolerate approximate
//! answers with much lower latency.  The classic MinHash banding scheme provides
//! exactly that: the `nh` signature values of the *base* level are split into `b`
//! bands of `r` rows; an entity becomes a candidate if it agrees with the query
//! on every row of at least one band.  An entity whose base-level Jaccard
//! similarity with the query is `s` becomes a candidate with probability
//! `1 − (1 − s^r)^b`, so recall is tunable through `(b, r)`.
//!
//! The index stores band buckets beside the MinSigTree; the approximate query
//! scores only the bucket collisions and returns the best `k`, reporting how many
//! candidates were touched so experiments can trade recall against work.

use crate::error::{IndexError, Result};
use crate::index::MinSigIndex;
use crate::query::TopKResult;
use crate::signature::{CellHashFamily, HierarchicalHasher, SignatureList};
use crate::snapshot::IndexSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use trace_model::{AssociationMeasure, CellSetSequence, EntityId, SpIndex};

/// Configuration of the banding scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BandingConfig {
    /// Number of bands (`b`).
    pub bands: u32,
    /// Rows per band (`r`); `b × r` must not exceed the signature width.
    pub rows_per_band: u32,
}

impl Default for BandingConfig {
    fn default() -> Self {
        BandingConfig { bands: 16, rows_per_band: 4 }
    }
}

impl BandingConfig {
    /// The probability that an entity with base-level Jaccard similarity `s`
    /// becomes a candidate: `1 − (1 − s^r)^b`.
    pub fn candidate_probability(&self, similarity: f64) -> f64 {
        let s = similarity.clamp(0.0, 1.0);
        1.0 - (1.0 - s.powi(self.rows_per_band as i32)).powi(self.bands as i32)
    }

    /// Validates the configuration against a signature width.
    pub fn validate(&self, num_hash_functions: u32) -> Result<()> {
        if self.bands == 0 || self.rows_per_band == 0 {
            return Err(IndexError::InvalidConfig(
                "bands and rows_per_band must be positive".into(),
            ));
        }
        if self.bands * self.rows_per_band > num_hash_functions {
            return Err(IndexError::InvalidConfig(format!(
                "banding needs {} signature values but the index only has {num_hash_functions}",
                self.bands * self.rows_per_band
            )));
        }
        Ok(())
    }
}

/// Compatibility alias: approximate queries report through the unified
/// [`QueryStats`](crate::stats::QueryStats) — the same struct the exact tree,
/// the flat scan and the budgeted sampled scan fill — so recall estimates,
/// sampled-candidate counts and kernel dispatch are comparable across every
/// access path.  The old `candidates` field maps to
/// [`sampled_candidates`](crate::stats::QueryStats::sampled_candidates);
/// `entities_checked` and `total_entities` kept their names.
pub type ApproximateStats = crate::stats::QueryStats;

/// The banded LSH candidate index.
#[derive(Debug, Clone)]
pub struct BandedIndex {
    config: BandingConfig,
    /// One bucket map per band: hashed band key → entities.
    buckets: Vec<HashMap<u64, Vec<EntityId>>>,
    num_entities: usize,
}

impl BandedIndex {
    /// Builds the banded index from every entity's base-level signature.
    pub fn build<F: CellHashFamily>(
        sp: &SpIndex,
        hasher: &HierarchicalHasher<F>,
        sequences: &std::collections::BTreeMap<EntityId, CellSetSequence>,
        config: BandingConfig,
    ) -> Result<Self> {
        config.validate(hasher.num_functions())?;
        let mut buckets = vec![HashMap::new(); config.bands as usize];
        for (&entity, seq) in sequences {
            let sig = SignatureList::build(sp, hasher, seq);
            for (band, key) in Self::band_keys(&sig, sp.height(), config) {
                buckets[band as usize].entry(key).or_insert_with(Vec::new).push(entity);
            }
        }
        Ok(BandedIndex { config, buckets, num_entities: sequences.len() })
    }

    /// The banding configuration.
    pub fn config(&self) -> BandingConfig {
        self.config
    }

    /// Number of indexed entities.
    pub fn num_entities(&self) -> usize {
        self.num_entities
    }

    /// Total number of non-empty buckets across all bands.
    pub fn num_buckets(&self) -> usize {
        self.buckets.iter().map(HashMap::len).sum()
    }

    /// The `(band, key)` pairs of a signature's base level.
    fn band_keys(
        sig: &SignatureList,
        base_level: trace_model::Level,
        config: BandingConfig,
    ) -> Vec<(u32, u64)> {
        let values = sig.level(base_level);
        (0..config.bands)
            .map(|band| {
                let start = (band * config.rows_per_band) as usize;
                let end = start + config.rows_per_band as usize;
                let mut key = 0xCBF2_9CE4_8422_2325u64; // FNV offset basis
                for &v in &values[start..end] {
                    key ^= v;
                    key = key.wrapping_mul(0x1000_0000_01B3);
                }
                (band, key)
            })
            .collect()
    }

    /// The candidate entities colliding with a query signature in at least one band.
    pub fn candidates(
        &self,
        sig: &SignatureList,
        base_level: trace_model::Level,
    ) -> BTreeSet<EntityId> {
        let mut out = BTreeSet::new();
        for (band, key) in Self::band_keys(sig, base_level, self.config) {
            if let Some(entities) = self.buckets[band as usize].get(&key) {
                out.extend(entities.iter().copied());
            }
        }
        out
    }
}

impl IndexSnapshot {
    /// Builds a banded LSH companion index over the already-indexed entities.
    pub fn banded(&self, config: BandingConfig) -> Result<BandedIndex> {
        BandedIndex::build(self.sp_index(), self.hasher(), self.sequences(), config)
    }

    /// Approximate top-k: scores only the entities that collide with the query in
    /// at least one LSH band.  Recall is below 1 by design; the returned
    /// statistics let callers measure the recall/work trade-off (see the
    /// `approximate_search` example).
    ///
    /// Candidate scoring runs through the same shared
    /// [`TopKHeap`](crate::engine::TopKHeap) selection as the exact executor
    /// and the brute-force ground truth, so result ordering and tie-breaking
    /// agree across all query paths.
    pub fn approximate_top_k<M: AssociationMeasure + ?Sized>(
        &self,
        banded: &BandedIndex,
        query: EntityId,
        k: usize,
        measure: &M,
    ) -> Result<(Vec<TopKResult>, ApproximateStats)> {
        let start = std::time::Instant::now();
        let query_seq = self.sequence(query).ok_or(IndexError::UnknownQueryEntity(query.raw()))?;
        let sig = SignatureList::build(self.sp_index(), self.hasher(), query_seq);
        let candidates = banded.candidates(&sig, self.sp_index().height());
        let mut stats = ApproximateStats {
            k,
            sampled_candidates: candidates.len(),
            total_entities: self.num_entities(),
            ..ApproximateStats::default()
        };
        // Verify the colliding candidates through the arena's fused degree
        // kernels — same selection heap, same scores, no per-candidate map
        // walks.  The tracked variant keeps the dispatch counters complete:
        // approximate scoring dispatches the same intersection kernels as
        // every exact path.
        let arena = self.arena();
        let view = crate::kernel::QueryView::new(query_seq);
        let mut scratch = trace_model::LevelOverlap::default();
        let mut top = crate::engine::TopKHeap::new(k);
        let mut checked = 0usize;
        for &entity in &candidates {
            if entity == query {
                continue;
            }
            let Some(pos) = arena.position(entity) else { continue };
            checked += 1;
            top.offer(
                entity,
                arena.degree_into_tracked(
                    pos,
                    &view,
                    measure,
                    &mut scratch,
                    &mut stats.kernel_dispatch,
                ),
            );
        }
        stats.entities_checked = checked;
        stats.query_time_us = start.elapsed().as_micros() as u64;
        Ok((top.into_sorted(), stats))
    }
}

impl MinSigIndex {
    /// Builds a banded LSH companion index over the already-indexed entities.
    pub fn banded(&self, config: BandingConfig) -> Result<BandedIndex> {
        self.snapshot().banded(config)
    }

    /// Approximate top-k on the current snapshot.  See
    /// [`IndexSnapshot::approximate_top_k`].
    pub fn approximate_top_k<M: AssociationMeasure + ?Sized>(
        &self,
        banded: &BandedIndex,
        query: EntityId,
        k: usize,
        measure: &M,
    ) -> Result<(Vec<TopKResult>, ApproximateStats)> {
        self.snapshot().approximate_top_k(banded, query, k, measure)
    }
}

/// Recall of an approximate answer against the exact answer: the fraction of
/// exact top-k entities that the approximate result recovered (ties are treated
/// by degree, so any entity whose degree matches the k-th exact degree counts).
pub fn recall(exact: &[TopKResult], approximate: &[TopKResult]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let threshold = exact.last().map(|r| r.degree).unwrap_or(0.0);
    let approx_ids: BTreeSet<EntityId> = approximate.iter().map(|r| r.entity).collect();
    let hits = exact
        .iter()
        .filter(|r| {
            approx_ids.contains(&r.entity)
                || r.degree <= threshold
                    && approximate.iter().any(|a| (a.degree - r.degree).abs() < 1e-12)
        })
        .count();
    hits as f64 / exact.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use trace_model::{PaperAdm, Period, PresenceInstance, SpIndex, TraceSet};

    fn paired_dataset(pairs: usize) -> (SpIndex, TraceSet) {
        let sp = SpIndex::uniform(5, &[5]).unwrap();
        let base = sp.base_units().to_vec();
        let mut traces = TraceSet::new(60);
        for i in 0..pairs {
            for member in 0..2u64 {
                let entity = EntityId(2 * i as u64 + member);
                for step in 0..8u64 {
                    let unit = base[(i * 3 + step as usize) % base.len()];
                    let start = step * 120;
                    traces.record(PresenceInstance::new(
                        entity,
                        unit,
                        Period::new(start, start + 60).unwrap(),
                    ));
                }
            }
        }
        (sp, traces)
    }

    #[test]
    fn config_validation_and_probability_curve() {
        let config = BandingConfig { bands: 8, rows_per_band: 4 };
        assert!(config.validate(32).is_ok());
        assert!(config.validate(31).is_err());
        assert!(BandingConfig { bands: 0, rows_per_band: 4 }.validate(32).is_err());
        // The S-curve: near-duplicates are almost always candidates, dissimilar
        // entities almost never.
        assert!(config.candidate_probability(0.95) > 0.99);
        assert!(config.candidate_probability(0.05) < 0.01);
        assert!(config.candidate_probability(0.5) > config.candidate_probability(0.2));
    }

    #[test]
    fn identical_partners_are_always_candidates() {
        let (sp, traces) = paired_dataset(20);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(64)).unwrap();
        let banded = index.banded(BandingConfig { bands: 16, rows_per_band: 4 }).unwrap();
        assert_eq!(banded.num_entities(), 40);
        assert!(banded.num_buckets() > 0);
        let measure = PaperAdm::default_for(2);
        for query in [0u64, 8, 23] {
            let (approx, stats) =
                index.approximate_top_k(&banded, EntityId(query), 1, &measure).unwrap();
            let partner = if query % 2 == 0 { query + 1 } else { query - 1 };
            assert_eq!(approx[0].entity, EntityId(partner), "query {query}");
            assert!(
                stats.sampled_candidates < index.num_entities(),
                "banding should filter candidates"
            );
        }
    }

    #[test]
    fn approximate_answers_are_a_subset_of_exact_work() {
        let (sp, traces) = paired_dataset(30);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(64)).unwrap();
        let banded = index.banded(BandingConfig::default()).unwrap();
        let measure = PaperAdm::default_for(2);
        let (exact, exact_stats) = index.top_k(EntityId(0), 5, &measure).unwrap();
        let (approx, approx_stats) =
            index.approximate_top_k(&banded, EntityId(0), 5, &measure).unwrap();
        assert!(approx.len() <= 5);
        assert!(approx_stats.entities_checked <= exact_stats.total_entities);
        assert!(
            approx_stats.kernel_dispatch.total() > 0,
            "approximate scoring must populate the dispatch counters"
        );
        assert!(approx_stats.sampled_candidates >= approx_stats.entities_checked);
        let r = recall(&exact, &approx);
        assert!(r > 0.0, "the top pair must be recovered");
        // Every approximate degree is also achievable exactly (it is a real entity's degree).
        for a in &approx {
            assert!(a.degree <= exact[0].degree + 1e-12);
        }
    }

    #[test]
    fn recall_of_identical_answers_is_one() {
        let answers = vec![
            TopKResult { entity: EntityId(1), degree: 0.9 },
            TopKResult { entity: EntityId(2), degree: 0.5 },
        ];
        assert_eq!(recall(&answers, &answers), 1.0);
        assert_eq!(recall(&[], &answers), 1.0);
        let partial = vec![TopKResult { entity: EntityId(1), degree: 0.9 }];
        assert!(recall(&answers, &partial) >= 0.5);
    }

    #[test]
    fn unknown_query_is_reported() {
        let (sp, traces) = paired_dataset(2);
        let index = MinSigIndex::build(&sp, &traces, IndexConfig::default()).unwrap();
        let banded = index.banded(BandingConfig { bands: 4, rows_per_band: 2 }).unwrap();
        let measure = PaperAdm::default_for(2);
        assert!(matches!(
            index.approximate_top_k(&banded, EntityId(12345), 1, &measure),
            Err(IndexError::UnknownQueryEntity(12345))
        ));
    }
}
