//! The shared best-first top-k executor (Algorithm 2, Section 5.1).
//!
//! Every query path of the crate — exact in-memory ([`crate::index::MinSigIndex::top_k`]),
//! paged ([`crate::paged`]), joins and batches ([`crate::join`]) — is a thin
//! driver over the single [`execute`] function in this module.  The executor
//! separates the *logical* search from its *data source*:
//!
//! * the logical search walks the [`MinSigTree`] with a max-heap of candidate
//!   subtrees ordered by an upper bound on the association degree achievable
//!   inside each subtree, gradually tightening per-level overlap caps down
//!   every branch and terminating as soon as the current k-th best exact
//!   answer matches the best remaining bound (Theorem 4 / Section 5.1);
//! * the data source — the [`TraceSource`] trait — only answers "give me the
//!   ST-cell set sequence of this entity" during leaf evaluation.
//!   [`InMemorySource`] borrows the index snapshot's sequence map;
//!   [`PagedSource`] reads raw traces through a `trace-storage` buffer pool,
//!   charging simulated I/O.
//!
//! The executor takes `&self`-style shared references only, so any number of
//! threads may run searches against one snapshot concurrently; batch drivers
//! fan independent queries out over rayon and collect results in input order.
//!
//! The bound for a node at depth `d` with routing index `u` and stored value
//! `v` combines two sound constraints:
//!
//! * **level-`d` constraint** — every member entity's level-`d` signature at
//!   `u` is at least `v`, so query level-`d` cells whose hash under `u` is
//!   below `v` cannot be shared (the MinHash minimum property);
//! * **base-level constraint (Theorem 2)** — query *base* cells whose hash
//!   under `u` is below `v` cannot be in any member's trace.
//!
//! Constraints accumulate down a branch (the per-level caps of a child are
//! never larger than its parent's); the caps are turned into a degree bound by
//! instantiating Theorem 4's artificial entity per level (see
//! [`AssociationMeasure::upper_bound`]).
//!
//! Driving the executor directly (what [`MinSigIndex::top_k`] does for you)
//! takes the index's parts plus any [`TraceSource`]:
//!
//! ```
//! use minsig::engine::{self, InMemorySource};
//! use minsig::{IndexConfig, MinSigIndex, QueryOptions};
//! use trace_model::{DiceAdm, EntityId, Period, PresenceInstance, SpIndex, TraceSet};
//!
//! let sp = SpIndex::uniform(2, &[3]).unwrap();
//! let base = sp.base_units().to_vec();
//! let mut traces = TraceSet::new(60);
//! for (e, unit) in [(0u64, base[0]), (1, base[0]), (2, base[4])] {
//!     traces.record(PresenceInstance::new(EntityId(e), unit, Period::new(0, 120).unwrap()));
//! }
//! let index = MinSigIndex::build(&sp, &traces, IndexConfig::default()).unwrap();
//! let measure = DiceAdm::uniform(2);
//!
//! // Swap `InMemorySource` for `PagedSource` and the same call answers from
//! // a disk-backed store instead; the logical search does not change.
//! let source = InMemorySource::new(index.sequences());
//! let query = index.sequence(EntityId(0)).unwrap();
//! let (results, stats) = engine::execute(
//!     index.sp_index(),
//!     index.hasher(),
//!     index.tree(),
//!     query,
//!     Some(EntityId(0)), // exclude the query entity itself
//!     1,
//!     &measure,
//!     &source,
//!     QueryOptions::default(),
//! )
//! .unwrap();
//! assert_eq!(results[0].entity, EntityId(1));
//! assert!(stats.entities_checked <= 2);
//! ```
//!
//! [`MinSigIndex::top_k`]: crate::index::MinSigIndex::top_k

use crate::error::{IndexError, Result};
use crate::query::{QueryOptions, TopKResult};
use crate::signature::{CellHashFamily, HierarchicalHasher};
use crate::stats::SearchStats;
use crate::tree::{MinSigTree, NodeId, ROOT};
use std::borrow::Cow;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::time::Instant;
use trace_model::{AssociationMeasure, CellSetSequence, EntityId, Level, SpIndex};
use trace_storage::{BufferPool, PagedTraceStore};

/// Where candidate entities' ST-cell set sequences come from during leaf
/// evaluation.
///
/// Implementations must be cheap to query repeatedly and safe to share across
/// threads (`&self` access only): a batch executor may drive many concurrent
/// searches against one source.
pub trait TraceSource {
    /// The sequence of an entity, or `None` when it cannot be found.
    fn sequence(&self, entity: EntityId) -> Option<Cow<'_, CellSetSequence>>;
}

/// A [`TraceSource`] borrowing the materialised sequence map of an index
/// snapshot (or any other entity-keyed map).
pub struct InMemorySource<'a> {
    sequences: &'a std::collections::BTreeMap<EntityId, CellSetSequence>,
}

impl<'a> InMemorySource<'a> {
    /// Creates a source over a sequence map.
    pub fn new(sequences: &'a std::collections::BTreeMap<EntityId, CellSetSequence>) -> Self {
        InMemorySource { sequences }
    }
}

impl TraceSource for InMemorySource<'_> {
    fn sequence(&self, entity: EntityId) -> Option<Cow<'_, CellSetSequence>> {
        self.sequences.get(&entity).map(Cow::Borrowed)
    }
}

/// A [`TraceSource`] that materialises candidate sequences from a paged trace
/// store, charging buffer-pool I/O for every page touched.
///
/// The buffer pool synchronises internally, so one `PagedSource` (or several
/// over the same pool) can serve concurrent searches from multiple threads.
pub struct PagedSource<'a> {
    store: &'a PagedTraceStore,
    pool: &'a BufferPool<'a>,
    sp: &'a SpIndex,
    ticks_per_unit: u64,
}

impl<'a> PagedSource<'a> {
    /// Creates a source over a store and a pool.
    pub fn new(
        store: &'a PagedTraceStore,
        pool: &'a BufferPool<'a>,
        sp: &'a SpIndex,
        ticks_per_unit: u64,
    ) -> Self {
        PagedSource { store, pool, sp, ticks_per_unit }
    }
}

impl TraceSource for PagedSource<'_> {
    fn sequence(&self, entity: EntityId) -> Option<Cow<'_, CellSetSequence>> {
        let trace = self.store.read_trace(self.pool, entity)?;
        trace.cell_sequence(self.sp, self.ticks_per_unit).ok().map(Cow::Owned)
    }
}

/// An `f64` wrapper with a total order, used as a heap priority.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdF64(pub(crate) f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A bounded top-k accumulator: the *single* place where "keep the k best
/// (degree, entity) pairs" is implemented.
///
/// The exact executor's leaf evaluation, the brute-force ground truth
/// ([`crate::query::brute_force_top_k`]) and the approximate candidate scorer
/// ([`crate::approximate`]) all push through this type, so their tie-breaking
/// and result ordering cannot drift apart.
///
/// Semantics: candidates are ranked under the total order *(degree
/// descending, entity id ascending)*, and the accumulator keeps the exact
/// top-`k` under that order — an offer displaces the current worst answer
/// whenever it ranks strictly higher, including an equal-degree offer with a
/// smaller entity id.  Because the order is total, the kept set does not
/// depend on the order in which candidates are offered, and it equals what
/// sorting all candidates and truncating to `k` would produce.
/// [`TopKHeap::into_sorted`] returns the answers in that same order.
#[derive(Debug, Clone)]
pub struct TopKHeap {
    k: usize,
    /// Min-heap under the ranking order: the root is the worst kept answer —
    /// smallest degree, largest entity id among equal degrees (hence the
    /// inner `Reverse` on the id).
    heap: BinaryHeap<std::cmp::Reverse<(OrdF64, std::cmp::Reverse<EntityId>)>>,
}

impl TopKHeap {
    /// Creates an accumulator for the best `k` answers.
    pub fn new(k: usize) -> Self {
        TopKHeap { k, heap: BinaryHeap::with_capacity(k.saturating_add(1)) }
    }

    /// Number of answers currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no answer is held yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The current k-th best degree, or `-inf` while fewer than `k` answers
    /// are held (any candidate can still enter).
    pub fn threshold(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::NEG_INFINITY
        } else {
            self.heap.peek().map(|r| r.0 .0 .0).unwrap_or(f64::NEG_INFINITY)
        }
    }

    /// True when `k` answers are held and `bound` cannot beat the k-th best —
    /// the early-termination test of Section 5.1.
    pub fn is_saturated_against(&self, bound: f64) -> bool {
        self.k > 0 && self.heap.len() >= self.k && self.threshold() >= bound
    }

    /// Offers one scored entity.
    pub fn offer(&mut self, entity: EntityId, degree: f64) {
        if self.k == 0 {
            return;
        }
        let ranked = (OrdF64(degree), std::cmp::Reverse(entity));
        if self.heap.len() < self.k {
            self.heap.push(std::cmp::Reverse(ranked));
        } else if self.heap.peek().is_some_and(|worst| ranked > worst.0) {
            self.heap.pop();
            self.heap.push(std::cmp::Reverse(ranked));
        }
    }

    /// Consumes the accumulator, returning answers sorted by descending degree
    /// (ties by ascending entity id).
    pub fn into_sorted(self) -> Vec<TopKResult> {
        let mut results: Vec<TopKResult> = self
            .heap
            .into_iter()
            .map(|std::cmp::Reverse((OrdF64(degree), std::cmp::Reverse(entity)))| TopKResult {
                entity,
                degree,
            })
            .collect();
        results.sort_by(|a, b| b.degree.total_cmp(&a.degree).then(a.entity.cmp(&b.entity)));
        results
    }
}

/// Scores an explicit candidate set against a query sequence through the
/// shared [`TopKHeap`]; the common tail of the brute-force and approximate
/// paths.  Returns the sorted top-k and the number of entities scored.
pub(crate) fn scan_top_k<'a, M, I>(
    candidates: I,
    query: &CellSetSequence,
    exclude: Option<EntityId>,
    k: usize,
    measure: &M,
) -> (Vec<TopKResult>, usize)
where
    M: AssociationMeasure + ?Sized,
    I: IntoIterator<Item = (EntityId, &'a CellSetSequence)>,
{
    let mut top = TopKHeap::new(k);
    let mut checked = 0usize;
    for (entity, seq) in candidates {
        if Some(entity) == exclude {
            continue;
        }
        checked += 1;
        top.offer(entity, measure.degree(query, seq));
    }
    (top.into_sorted(), checked)
}

/// Merges independently computed exact top-k result lists into one global
/// top-k under the engine's ranking order *(degree descending, entity id
/// ascending)*.
///
/// Sound whenever the parts cover disjoint candidate sets that together form
/// the whole population — the situation of [`crate::shard`], where every part
/// is one shard's exact answer: the union of per-shard top-k sets is a
/// superset of the global top-k, so re-selecting through the shared
/// [`TopKHeap`] reproduces exactly what a single unsharded index returns.
pub fn merge_top_k<I>(k: usize, parts: I) -> Vec<TopKResult>
where
    I: IntoIterator<Item = Vec<TopKResult>>,
{
    let mut top = TopKHeap::new(k);
    for part in parts {
        for result in part {
            top.offer(result.entity, result.degree);
        }
    }
    top.into_sorted()
}

/// A candidate subtree in the best-first queue.
#[derive(Debug, Clone)]
struct Candidate {
    upper_bound: OrdF64,
    node: NodeId,
    /// Per-level caps on the overlap with the query (index 0 = level 1).
    caps: Vec<usize>,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.upper_bound == other.upper_bound && self.node == other.node
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.upper_bound.cmp(&other.upper_bound).then_with(|| other.node.cmp(&self.node))
    }
}

/// Lazily computed, sorted hash values of the query's cells per (level, function).
struct QueryHashes<'a, F: CellHashFamily> {
    sp: &'a SpIndex,
    hasher: &'a HierarchicalHasher<F>,
    query: &'a CellSetSequence,
    cache: HashMap<(Level, u32), Vec<u64>>,
}

impl<'a, F: CellHashFamily> QueryHashes<'a, F> {
    fn new(sp: &'a SpIndex, hasher: &'a HierarchicalHasher<F>, query: &'a CellSetSequence) -> Self {
        QueryHashes { sp, hasher, query, cache: HashMap::new() }
    }

    /// Number of query level-`level` cells whose hash under function `u` is at
    /// least `value` (i.e. cells that *survive* the pruned set of a node with
    /// routing index `u` and stored value `value`).
    fn surviving(&mut self, level: Level, u: u32, value: u64) -> usize {
        let sp = self.sp;
        let hasher = self.hasher;
        let query = self.query;
        let hashes = self.cache.entry((level, u)).or_insert_with(|| {
            let mut v: Vec<u64> =
                query.level(level).iter().map(|cell| hasher.hash(sp, u, cell)).collect();
            v.sort_unstable();
            v
        });
        let below = hashes.partition_point(|&h| h < value);
        hashes.len() - below
    }
}

/// The best-first top-k search of Algorithm 2 over an arbitrary
/// [`TraceSource`].
///
/// `exclude` removes the query entity itself from the answer set.  The
/// function is exact for every measure satisfying the Section 3.2 axioms: it
/// returns the same multiset of degrees as a brute-force scan over the same
/// source.  Given identical inputs the result is bit-for-bit deterministic
/// (only the wall-clock fields of [`SearchStats`] vary), which is what lets
/// the parallel batch drivers promise sequential-equivalent output.
#[allow(clippy::too_many_arguments)]
pub fn execute<F, S, M>(
    sp: &SpIndex,
    hasher: &HierarchicalHasher<F>,
    tree: &MinSigTree,
    query: &CellSetSequence,
    exclude: Option<EntityId>,
    k: usize,
    measure: &M,
    source: &S,
    options: QueryOptions,
) -> Result<(Vec<TopKResult>, SearchStats)>
where
    F: CellHashFamily,
    S: TraceSource + ?Sized,
    M: AssociationMeasure + ?Sized,
{
    if query.num_levels() != tree.levels() as usize {
        return Err(IndexError::LevelMismatch {
            index_levels: tree.levels(),
            query_levels: query.num_levels() as u8,
        });
    }
    let start = Instant::now();
    let m = tree.levels();
    let query_sizes: Vec<usize> = (1..=m).map(|l| query.level(l).len()).collect();

    let mut stats =
        SearchStats { total_entities: tree.num_entities(), k, ..SearchStats::default() };
    let mut hashes = QueryHashes::new(sp, hasher, query);

    // Current top-k; its threshold is the k-th best degree so far.
    let mut top = TopKHeap::new(k);

    let mut queue: BinaryHeap<Candidate> = BinaryHeap::new();
    queue.push(Candidate {
        upper_bound: OrdF64(measure.upper_bound(&query_sizes, &query_sizes)),
        node: ROOT,
        caps: query_sizes.clone(),
    });

    while let Some(candidate) = queue.pop() {
        // Early termination (Section 5.1): the best remaining subtree cannot
        // beat the current k-th answer.
        if top.is_saturated_against(candidate.upper_bound.0) {
            break;
        }
        stats.nodes_visited += 1;
        let node = tree.node(candidate.node);

        if node.depth == m {
            // Leaf: evaluate every contained entity exactly.
            stats.leaves_visited += 1;
            for &entity in &node.entities {
                if Some(entity) == exclude {
                    continue;
                }
                let Some(seq) = source.sequence(entity) else { continue };
                stats.entities_checked += 1;
                top.offer(entity, measure.degree(query, seq.as_ref()));
            }
            continue;
        }

        // Internal node (or root): push its children with tightened bounds.
        for (&routing_index, &child_id) in &node.children {
            let child = tree.node(child_id);
            let mut caps = if options.accumulate_down_branch {
                candidate.caps.clone()
            } else {
                query_sizes.clone()
            };
            let depth_idx = (child.depth - 1) as usize;
            let base_idx = (m - 1) as usize;
            if options.use_level_constraints {
                let surviving = hashes.surviving(child.depth, routing_index, child.routing_value);
                caps[depth_idx] = caps[depth_idx].min(surviving);
            }
            // Theorem-2 constraint over base cells (the "partial pruned set").
            let surviving_base = hashes.surviving(m, routing_index, child.routing_value);
            caps[base_idx] = caps[base_idx].min(surviving_base);

            let ub = measure.upper_bound(&query_sizes, &caps);
            // A subtree whose bound cannot beat the current threshold can still
            // be pushed; it will be discarded by the termination check when
            // popped.
            queue.push(Candidate { upper_bound: OrdF64(ub), node: child_id, caps });
        }
    }

    let results = top.into_sorted();
    stats.query_time_us = start.elapsed().as_micros() as u64;
    Ok((results, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordf64_orders_like_floats_and_handles_nan() {
        let mut v = [OrdF64(0.5), OrdF64(-1.0), OrdF64(2.0), OrdF64(f64::NAN)];
        v.sort();
        assert_eq!(v[0], OrdF64(-1.0));
        assert_eq!(v[1], OrdF64(0.5));
        assert_eq!(v[2], OrdF64(2.0));
        assert!(v[3].0.is_nan());
    }

    #[test]
    fn candidates_order_by_upper_bound() {
        let a = Candidate { upper_bound: OrdF64(0.9), node: 1, caps: vec![] };
        let b = Candidate { upper_bound: OrdF64(0.3), node: 2, caps: vec![] };
        let mut heap = BinaryHeap::new();
        heap.push(b);
        heap.push(a);
        assert_eq!(heap.pop().unwrap().node, 1);
    }

    #[test]
    fn top_k_heap_keeps_the_best_k_with_stable_ties() {
        let mut top = TopKHeap::new(2);
        assert!(top.is_empty());
        assert_eq!(top.threshold(), f64::NEG_INFINITY);
        top.offer(EntityId(1), 0.5);
        top.offer(EntityId(2), 0.9);
        assert_eq!(top.len(), 2);
        // An equal-degree late-comer with a larger id ranks below the
        // incumbent and is rejected.
        top.offer(EntityId(3), 0.5);
        // Strictly better degrees displace the worst answer.
        top.offer(EntityId(4), 0.7);
        let results = top.into_sorted();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].entity, EntityId(2));
        assert!((results[0].degree - 0.9).abs() < 1e-12);
        assert_eq!(results[1].entity, EntityId(4));
    }

    #[test]
    fn selection_is_independent_of_offer_order() {
        // The k-boundary is a three-way degree tie; whatever order candidates
        // arrive in, the kept set must be the sort-and-truncate answer:
        // {e9 (0.7), e1 (0.0)} — smallest id among the tied.
        let candidates = [(1u64, 0.0), (2, 0.0), (9, 0.7), (5, 0.0)];
        let mut orders = vec![candidates];
        orders.push([candidates[2], candidates[0], candidates[3], candidates[1]]);
        orders.push([candidates[3], candidates[2], candidates[1], candidates[0]]);
        for order in orders {
            let mut top = TopKHeap::new(2);
            for (entity, degree) in order {
                top.offer(EntityId(entity), degree);
            }
            let results = top.into_sorted();
            assert_eq!(results[0].entity, EntityId(9), "order {order:?}");
            assert_eq!(results[1].entity, EntityId(1), "order {order:?}");
        }
    }

    #[test]
    fn merge_top_k_equals_offering_everything_to_one_heap() {
        let offers = [(1u64, 0.3), (2, 0.9), (3, 0.9), (4, 0.1), (5, 0.5), (6, 0.5)];
        let mut all = TopKHeap::new(3);
        let mut left = TopKHeap::new(3);
        let mut right = TopKHeap::new(3);
        for (i, &(entity, degree)) in offers.iter().enumerate() {
            all.offer(EntityId(entity), degree);
            if i % 2 == 0 {
                left.offer(EntityId(entity), degree);
            } else {
                right.offer(EntityId(entity), degree);
            }
        }
        let merged = merge_top_k(3, vec![left.into_sorted(), right.into_sorted()]);
        assert_eq!(merged, all.into_sorted());
    }

    #[test]
    fn merge_top_k_equals_global_sort_and_truncate() {
        let parts = vec![
            vec![
                TopKResult { entity: EntityId(3), degree: 0.7 },
                TopKResult { entity: EntityId(9), degree: 0.2 },
            ],
            vec![],
            vec![
                TopKResult { entity: EntityId(1), degree: 0.7 },
                TopKResult { entity: EntityId(5), degree: 0.4 },
            ],
        ];
        let merged = merge_top_k(3, parts);
        // Ties resolve by ascending entity id, exactly like a single heap.
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].entity, EntityId(1));
        assert_eq!(merged[1].entity, EntityId(3));
        assert_eq!(merged[2].entity, EntityId(5));
        assert!(
            merge_top_k(0, vec![vec![TopKResult { entity: EntityId(1), degree: 1.0 }]]).is_empty()
        );
    }

    #[test]
    fn top_k_heap_with_k_zero_accepts_nothing() {
        let mut top = TopKHeap::new(0);
        top.offer(EntityId(1), 1.0);
        assert!(top.is_empty());
        assert!(top.into_sorted().is_empty());
    }

    #[test]
    fn saturation_test_matches_early_termination_semantics() {
        let mut top = TopKHeap::new(1);
        assert!(!top.is_saturated_against(0.1), "nothing held yet");
        top.offer(EntityId(7), 0.5);
        assert!(top.is_saturated_against(0.5), "equal bound cannot improve");
        assert!(top.is_saturated_against(0.4));
        assert!(!top.is_saturated_against(0.6));
    }
}
