//! The shared best-first top-k executor (Algorithm 2, Section 5.1), as a
//! resumable frontier object.
//!
//! Every query path of the crate — exact in-memory ([`crate::index::MinSigIndex::top_k`]),
//! paged ([`crate::paged`]), joins and batches ([`crate::join`]), sharded
//! fan-out ([`crate::shard`]) — drives the single [`Executor`] in this module
//! (the [`execute`] function is its run-to-completion convenience wrapper).
//! The executor separates three concerns:
//!
//! * the **logical search** walks the [`MinSigTree`](crate::tree::MinSigTree)
//!   topology (through its flat [`NodeArena`] rows) with a max-heap of
//!   candidate subtrees ordered by an upper bound on the association degree
//!   achievable inside each subtree, gradually tightening per-level overlap
//!   caps down every branch (Theorem 4 / Section 5.1);
//! * the **data source** — the [`TraceSource`] trait — only answers "give me
//!   the ST-cell set sequence of this entity" during leaf evaluation.
//!   [`InMemorySource`] borrows the index snapshot's sequence map;
//!   [`PagedSource`] reads raw traces through a `trace-storage` buffer pool,
//!   charging simulated I/O;
//! * the **termination bound** — the [`Bound`] trait — is the degree a
//!   candidate subtree must beat to stay alive.  [`PrivateBound`] is inert
//!   (the executor then prunes against its own k-th-best threshold only, the
//!   classic single-tree search); [`SharedBound`] is an atomic k-th-best
//!   degree published across concurrently running executors, which is how the
//!   sharded fan-out recovers the pruning power of one unsharded tree (see
//!   *Cooperative bound sharing* below).
//!
//! ## The frontier lifecycle
//!
//! An [`Executor`] is built over borrowed index parts
//! ([`Executor::new`], or [`IndexSnapshot::executor`] for the common
//! in-memory case), holds the candidate frontier as state, and is advanced in
//! *quanta*: each [`Executor::step`] call pops up to `quantum` frontier nodes,
//! evaluates leaves through the source, and prunes against
//! `max(local k-th threshold, bound.current())`.  A scheduler may interleave
//! any number of executors at any granularity — `step` returns whether work
//! remains — and [`Executor::finish`] yields the sorted answers plus the
//! [`QueryStats`] work counters (nodes visited, subtrees pruned, bound
//! updates, quanta executed).
//!
//! ## Cooperative bound sharing: why it is exact
//!
//! Let `G` be the k-th best degree over the whole population under the
//! engine's total order.  A shard executor's local threshold is the k-th best
//! degree *of its shard seen so far* — never above `G`, because a shard's
//! candidates are a subset of the population.  A [`SharedBound`] therefore
//! only ever holds `max` of values `≤ G`.  Executors prune a subtree only
//! when its upper bound is **strictly below** the bound in force, so any
//! pruned entity has degree `< G` and cannot appear in the global top-k, tied
//! or not.  Hence merged per-shard answers ([`merge_top_k`]) equal the
//! unsharded answer equal the brute-force sort-and-truncate — bitwise,
//! including ties, under *any* interleaving, quantum or publish policy.
//!
//! ## Tie-complete pruning (pinned tie-breaking)
//!
//! All exact answers of this crate are ranked under the total order *(degree
//! descending, [`EntityId`] ascending)*, and pruning is **strict**: a subtree
//! is discarded only when its upper bound is strictly below the k-th-best
//! threshold in force.  A subtree *tying* the threshold is still expanded,
//! because it may contain an equal-degree entity with a smaller id that
//! displaces the current k-th answer.  This pins the answer completely: every
//! exact path (unsharded, paged, sharded-cooperative, sharded-independent,
//! brute force) returns the identical bitwise result even when several
//! entities tie exactly at the k-th degree.
//!
//! The bound for a node at depth `d` with routing index `u` and stored value
//! `v` combines two sound constraints:
//!
//! * **level-`d` constraint** — every member entity's level-`d` signature at
//!   `u` is at least `v`, so query level-`d` cells whose hash under `u` is
//!   below `v` cannot be shared (the MinHash minimum property);
//! * **base-level constraint (Theorem 2)** — query *base* cells whose hash
//!   under `u` is below `v` cannot be in any member's trace.
//!
//! Constraints accumulate down a branch (the per-level caps of a child are
//! never larger than its parent's); the caps are turned into a degree bound by
//! instantiating Theorem 4's artificial entity per level (see
//! [`AssociationMeasure::upper_bound`]).
//!
//! Driving the executor directly (what [`MinSigIndex::top_k`] does for you)
//! takes the index's parts plus any [`TraceSource`]:
//!
//! ```
//! use minsig::engine::{self, Executor, InMemorySource, PrivateBound};
//! use minsig::{IndexConfig, MinSigIndex, QueryOptions};
//! use trace_model::{DiceAdm, EntityId, Period, PresenceInstance, SpIndex, TraceSet};
//!
//! let sp = SpIndex::uniform(2, &[3]).unwrap();
//! let base = sp.base_units().to_vec();
//! let mut traces = TraceSet::new(60);
//! for (e, unit) in [(0u64, base[0]), (1, base[0]), (2, base[4])] {
//!     traces.record(PresenceInstance::new(EntityId(e), unit, Period::new(0, 120).unwrap()));
//! }
//! let index = MinSigIndex::build(&sp, &traces, IndexConfig::default()).unwrap();
//! let measure = DiceAdm::uniform(2);
//!
//! // Swap `InMemorySource` for `PagedSource` and the same search answers from
//! // a disk-backed store instead; the logical search does not change.
//! let source = InMemorySource::new(index.sequences());
//! let query = index.sequence(EntityId(0)).unwrap();
//! let mut executor = Executor::new(
//!     index.sp_index(),
//!     index.hasher(),
//!     index.node_arena(),
//!     query,
//!     Some(EntityId(0)), // exclude the query entity itself
//!     1,
//!     &measure,
//!     &source,
//!     QueryOptions::default(),
//! )
//! .unwrap();
//!
//! // Resumable: advance the frontier one node at a time until exhausted.
//! while executor.step(&PrivateBound, 1) {}
//! let (results, stats) = executor.finish();
//! assert_eq!(results[0].entity, EntityId(1));
//! assert!(stats.steps >= 1);
//! assert!(stats.nodes_visited + stats.subtrees_pruned >= 1);
//! ```
//!
//! [`MinSigIndex::top_k`]: crate::index::MinSigIndex::top_k
//! [`IndexSnapshot::executor`]: crate::snapshot::IndexSnapshot::executor

use crate::config::PublishPolicy;
use crate::error::{IndexError, Result};
use crate::kernel::NodeArena;
use crate::query::{QueryOptions, TopKResult};
use crate::signature::{CellHashFamily, HierarchicalHasher};
use crate::stats::QueryStats;
use crate::tree::{NodeId, ROOT};
use std::borrow::Cow;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::time::Instant;
use trace_model::{AssociationMeasure, CellSetSequence, EntityId, Level, SpIndex};
use trace_storage::{BufferPool, PagedTraceStore};

/// Where candidate entities' ST-cell set sequences come from during leaf
/// evaluation.
///
/// Implementations must be cheap to query repeatedly and safe to share across
/// threads (`&self` access only): a batch executor may drive many concurrent
/// searches against one source.
pub trait TraceSource {
    /// The sequence of an entity, or `None` when it cannot be found.
    fn sequence(&self, entity: EntityId) -> Option<Cow<'_, CellSetSequence>>;

    /// The association degree between `query` and an entity's trace, or
    /// `None` when the entity cannot be found — the executor's leaf
    /// evaluation primitive.
    ///
    /// The default fetches the sequence and scores it through the measure;
    /// sources backed by a flat layout (the snapshot's
    /// [`ArenaSource`](crate::kernel::ArenaSource)) override this with a
    /// fused kernel loop.  Overrides must return **bitwise** the value
    /// `measure.degree(query, seq)` yields for the sequence that
    /// [`sequence`](TraceSource::sequence) reports, and must return `Some`
    /// for exactly the entities `sequence` resolves — the engine's
    /// exactness and tie-completeness guarantees ride on that.
    fn degree(
        &self,
        entity: EntityId,
        query: &CellSetSequence,
        measure: &dyn AssociationMeasure,
    ) -> Option<f64> {
        self.sequence(entity).map(|seq| measure.degree(query, seq.as_ref()))
    }
}

impl<T: TraceSource + ?Sized> TraceSource for &T {
    fn sequence(&self, entity: EntityId) -> Option<Cow<'_, CellSetSequence>> {
        (**self).sequence(entity)
    }

    fn degree(
        &self,
        entity: EntityId,
        query: &CellSetSequence,
        measure: &dyn AssociationMeasure,
    ) -> Option<f64> {
        (**self).degree(entity, query, measure)
    }
}

/// A [`TraceSource`] borrowing the materialised sequence map of an index
/// snapshot (or any other entity-keyed map).
pub struct InMemorySource<'a> {
    sequences: &'a std::collections::BTreeMap<EntityId, CellSetSequence>,
}

impl<'a> InMemorySource<'a> {
    /// Creates a source over a sequence map.
    pub fn new(sequences: &'a std::collections::BTreeMap<EntityId, CellSetSequence>) -> Self {
        InMemorySource { sequences }
    }
}

impl TraceSource for InMemorySource<'_> {
    fn sequence(&self, entity: EntityId) -> Option<Cow<'_, CellSetSequence>> {
        self.sequences.get(&entity).map(Cow::Borrowed)
    }
}

/// A [`TraceSource`] that materialises candidate sequences from a paged trace
/// store, charging buffer-pool I/O for every page touched.
///
/// The buffer pool synchronises internally, so one `PagedSource` (or several
/// over the same pool) can serve concurrent searches from multiple threads.
pub struct PagedSource<'a> {
    store: &'a PagedTraceStore,
    pool: &'a BufferPool<'a>,
    sp: &'a SpIndex,
    ticks_per_unit: u64,
}

impl<'a> PagedSource<'a> {
    /// Creates a source over a store and a pool.
    pub fn new(
        store: &'a PagedTraceStore,
        pool: &'a BufferPool<'a>,
        sp: &'a SpIndex,
        ticks_per_unit: u64,
    ) -> Self {
        PagedSource { store, pool, sp, ticks_per_unit }
    }
}

impl TraceSource for PagedSource<'_> {
    fn sequence(&self, entity: EntityId) -> Option<Cow<'_, CellSetSequence>> {
        let trace = self.store.read_trace(self.pool, entity)?;
        trace.cell_sequence(self.sp, self.ticks_per_unit).ok().map(Cow::Owned)
    }
}

/// The degree a candidate subtree must *strictly* beat to stay alive — an
/// externally supplied lower bound on the global k-th-best degree, on top of
/// the executor's own local threshold.
///
/// Soundness contract: [`current`](Bound::current) must never exceed the
/// k-th-best degree of the **full candidate population** of the overall
/// query (under the engine's total order).  Executors prune only subtrees
/// whose upper bound is strictly below the bound, so every pruned entity is
/// strictly outside the global top-k — which is why cooperative and
/// independent execution return bitwise-identical answers.
///
/// Implementations must be monotone: [`publish`](Bound::publish) may only
/// raise the value [`current`](Bound::current) reports, never lower it.
pub trait Bound: Sync {
    /// The bound currently in force (`-inf` when nothing is known yet).
    fn current(&self) -> f64;

    /// Offers a new lower bound on the global k-th-best degree (a local k-th
    /// threshold some executor just reached).  Returns `true` when the call
    /// *raised* the bound.
    fn publish(&self, value: f64) -> bool;
}

/// The inert [`Bound`]: never holds anything, never accepts anything.
///
/// Under a `PrivateBound` an executor prunes against its own k-th-best
/// threshold only — the classic run-to-completion search of a single tree,
/// and the per-shard behaviour of the PR 3 independent fan-out (kept as the
/// measurable baseline, see
/// [`BoundMode::Independent`](crate::config::BoundMode)).
#[derive(Debug, Clone, Copy, Default)]
pub struct PrivateBound;

impl Bound for PrivateBound {
    fn current(&self) -> f64 {
        f64::NEG_INFINITY
    }

    fn publish(&self, _value: f64) -> bool {
        false
    }
}

/// A [`Bound`] shared by concurrently running executors: an atomic, monotone
/// max of every published local k-th-best degree.
///
/// One `SharedBound` serves one logical query fanned out across partitions
/// (the candidate sets must partition one population — the situation of
/// [`crate::shard`]); each partition's executor publishes its local k-th
/// threshold as it improves and prunes against the best threshold *any*
/// partition has found.  All operations are relaxed atomics — the bound is a
/// monotone scalar, so no ordering with other memory is needed; a stale read
/// can only under-prune, never mis-answer.
#[derive(Debug)]
pub struct SharedBound {
    bits: AtomicU64,
}

impl SharedBound {
    /// Creates an empty bound (`-inf`: nothing known yet).
    pub fn new() -> Self {
        SharedBound { bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()) }
    }
}

impl Default for SharedBound {
    fn default() -> Self {
        SharedBound::new()
    }
}

impl Bound for SharedBound {
    fn current(&self) -> f64 {
        f64::from_bits(self.bits.load(AtomicOrdering::Relaxed))
    }

    fn publish(&self, value: f64) -> bool {
        if value.is_nan() {
            return false;
        }
        let mut seen = self.bits.load(AtomicOrdering::Relaxed);
        loop {
            if f64::from_bits(seen) >= value {
                return false;
            }
            // CAS on the exact bit pattern (u64 order differs from f64 order
            // for negative values, so the comparison above is on floats).
            match self.bits.compare_exchange_weak(
                seen,
                value.to_bits(),
                AtomicOrdering::Relaxed,
                AtomicOrdering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => seen = actual,
            }
        }
    }
}

/// A [`Bound`] fixed at a pre-computed value: executors prune against the
/// seed, but nothing is ever shared back.
///
/// This is how the query planner ([`crate::plan`]) seeds *independent*-mode
/// executions: the planner's threshold (a provable lower bound on the global
/// k-th-best degree, derived from exactly scored synopsis sketch candidates)
/// applies from the first frontier pop, while per-shard executions stay
/// isolated from each other — the measurable baseline keeps its meaning.
/// Soundness is the caller's contract, exactly as for [`SharedBound`]: the
/// seed must never exceed the global k-th-best degree.
#[derive(Debug, Clone, Copy)]
pub struct SeededBound {
    seed: f64,
}

impl SeededBound {
    /// Creates a fixed bound at `seed` (`f64::NEG_INFINITY` for "nothing
    /// known", which makes it behave exactly like [`PrivateBound`]).
    pub fn new(seed: f64) -> Self {
        SeededBound { seed }
    }
}

impl Bound for SeededBound {
    fn current(&self) -> f64 {
        self.seed
    }

    fn publish(&self, _value: f64) -> bool {
        false
    }
}

/// An `f64` wrapper with a total order, used as a heap priority.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdF64(pub(crate) f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A bounded top-k accumulator: the *single* place where "keep the k best
/// (degree, entity) pairs" is implemented.
///
/// The exact executor's leaf evaluation, the brute-force ground truth
/// ([`crate::query::brute_force_top_k`]) and the approximate candidate scorer
/// ([`crate::approximate`]) all push through this type, so their tie-breaking
/// and result ordering cannot drift apart.
///
/// Semantics: candidates are ranked under the total order *(degree
/// descending, entity id ascending)*, and the accumulator keeps the exact
/// top-`k` under that order — an offer displaces the current worst answer
/// whenever it ranks strictly higher, including an equal-degree offer with a
/// smaller entity id.  Because the order is total, the kept set does not
/// depend on the order in which candidates are offered, and it equals what
/// sorting all candidates and truncating to `k` would produce.
/// [`TopKHeap::into_sorted`] returns the answers in that same order.
///
/// Combined with the executor's strict (tie-complete) pruning, this pins the
/// k-th-degree tie-breaking of **every** exact path in the crate: equal-degree
/// candidates are kept by ascending entity id, with no remaining freedom.
#[derive(Debug, Clone)]
pub struct TopKHeap {
    k: usize,
    /// Min-heap under the ranking order: the root is the worst kept answer —
    /// smallest degree, largest entity id among equal degrees (hence the
    /// inner `Reverse` on the id).
    heap: BinaryHeap<std::cmp::Reverse<(OrdF64, std::cmp::Reverse<EntityId>)>>,
}

impl TopKHeap {
    /// Creates an accumulator for the best `k` answers.
    pub fn new(k: usize) -> Self {
        TopKHeap { k, heap: BinaryHeap::with_capacity(k.saturating_add(1)) }
    }

    /// Number of answers currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no answer is held yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The current k-th best degree, or `-inf` while fewer than `k` answers
    /// are held (any candidate can still enter).
    pub fn threshold(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::NEG_INFINITY
        } else {
            self.heap.peek().map(|r| r.0 .0 .0).unwrap_or(f64::NEG_INFINITY)
        }
    }

    /// True when `k` answers are held and a candidate bounded by `bound`
    /// cannot change the answer set — the early-termination test of
    /// Section 5.1, **strict** so that boundary ties stay pinned: a candidate
    /// *tying* the k-th degree could still displace the current k-th answer
    /// through the entity-id tie-break, so only `threshold > bound`
    /// saturates.
    pub fn is_saturated_against(&self, bound: f64) -> bool {
        self.k > 0 && self.heap.len() >= self.k && self.threshold() > bound
    }

    /// Offers one scored entity.
    pub fn offer(&mut self, entity: EntityId, degree: f64) {
        if self.k == 0 {
            return;
        }
        let ranked = (OrdF64(degree), std::cmp::Reverse(entity));
        if self.heap.len() < self.k {
            self.heap.push(std::cmp::Reverse(ranked));
        } else if self.heap.peek().is_some_and(|worst| ranked > worst.0) {
            self.heap.pop();
            self.heap.push(std::cmp::Reverse(ranked));
        }
    }

    /// Consumes the accumulator, returning answers sorted by descending degree
    /// (ties by ascending entity id).
    pub fn into_sorted(self) -> Vec<TopKResult> {
        let mut results: Vec<TopKResult> = self
            .heap
            .into_iter()
            .map(|std::cmp::Reverse((OrdF64(degree), std::cmp::Reverse(entity)))| TopKResult {
                entity,
                degree,
            })
            .collect();
        results.sort_by(|a, b| b.degree.total_cmp(&a.degree).then(a.entity.cmp(&b.entity)));
        results
    }
}

/// Scores an explicit candidate set against a query sequence through the
/// shared [`TopKHeap`]; the common tail of the brute-force and approximate
/// paths.  Returns the sorted top-k and the number of entities scored.
pub(crate) fn scan_top_k<'a, M, I>(
    candidates: I,
    query: &CellSetSequence,
    exclude: Option<EntityId>,
    k: usize,
    measure: &M,
) -> (Vec<TopKResult>, usize)
where
    M: AssociationMeasure + ?Sized,
    I: IntoIterator<Item = (EntityId, &'a CellSetSequence)>,
{
    let mut top = TopKHeap::new(k);
    let mut checked = 0usize;
    for (entity, seq) in candidates {
        if Some(entity) == exclude {
            continue;
        }
        checked += 1;
        top.offer(entity, measure.degree(query, seq));
    }
    (top.into_sorted(), checked)
}

/// Merges independently computed exact top-k result lists into one global
/// top-k under the engine's ranking order *(degree descending, entity id
/// ascending)*.
///
/// Sound whenever the parts cover disjoint candidate sets that together form
/// the whole population — the situation of [`crate::shard`], where every part
/// is one shard's exact answer: the union of per-shard top-k sets is a
/// superset of the global top-k, so re-selecting through the shared
/// [`TopKHeap`] reproduces exactly — bitwise, ties included — what a single
/// unsharded index (or a brute-force sort-and-truncate) returns.
pub fn merge_top_k<I>(k: usize, parts: I) -> Vec<TopKResult>
where
    I: IntoIterator<Item = Vec<TopKResult>>,
{
    let mut top = TopKHeap::new(k);
    for part in parts {
        for result in part {
            top.offer(result.entity, result.degree);
        }
    }
    top.into_sorted()
}

/// A candidate subtree in the best-first queue.
#[derive(Debug, Clone)]
struct Candidate {
    upper_bound: OrdF64,
    node: NodeId,
    /// Per-level caps on the overlap with the query (index 0 = level 1).
    caps: Vec<usize>,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.upper_bound == other.upper_bound && self.node == other.node
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.upper_bound.cmp(&other.upper_bound).then_with(|| other.node.cmp(&self.node))
    }
}

/// Lazily computed, sorted hash values of the query's cells per (level, function).
struct QueryHashes<'a, F: CellHashFamily> {
    sp: &'a SpIndex,
    hasher: &'a HierarchicalHasher<F>,
    query: &'a CellSetSequence,
    cache: HashMap<(Level, u32), Vec<u64>>,
}

impl<'a, F: CellHashFamily> QueryHashes<'a, F> {
    fn new(sp: &'a SpIndex, hasher: &'a HierarchicalHasher<F>, query: &'a CellSetSequence) -> Self {
        QueryHashes { sp, hasher, query, cache: HashMap::new() }
    }

    /// Number of query level-`level` cells whose hash under function `u` is at
    /// least `value` (i.e. cells that *survive* the pruned set of a node with
    /// routing index `u` and stored value `value`).
    fn surviving(&mut self, level: Level, u: u32, value: u64) -> usize {
        let sp = self.sp;
        let hasher = self.hasher;
        let query = self.query;
        let hashes = self.cache.entry((level, u)).or_insert_with(|| {
            let mut v: Vec<u64> =
                query.level(level).iter().map(|cell| hasher.hash(sp, u, cell)).collect();
            v.sort_unstable();
            v
        });
        let below = hashes.partition_point(|&h| h < value);
        hashes.len() - below
    }
}

/// The best-first top-k search of Algorithm 2 as a resumable frontier.
///
/// Construction seeds the frontier with the tree root; each [`step`] call
/// advances the search by a bounded quantum of frontier nodes, pruning
/// against the executor's own k-th-best threshold *and* an external
/// [`Bound`]; [`finish`] returns the sorted answers plus the work counters.
/// [`run`] drives the executor to exhaustion in one call — `execute` is the
/// one-shot wrapper every single-tree query path uses.
///
/// The search is exact for every measure satisfying the Section 3.2 axioms
/// and **tie-complete** (see the [module docs](crate::engine)): it returns
/// bitwise exactly the brute-force sort-and-truncate answer over the same
/// source, under any stepping schedule and any sound [`Bound`].  Given
/// identical inputs the result is bit-for-bit deterministic (only the
/// wall-clock fields of [`QueryStats`] vary), which is what lets the parallel
/// drivers promise sequential-equivalent output.
///
/// [`step`]: Executor::step
/// [`run`]: Executor::run
/// [`finish`]: Executor::finish
pub struct Executor<'a, F, S, M>
where
    F: CellHashFamily,
    S: TraceSource,
    M: AssociationMeasure + ?Sized,
{
    tree: &'a NodeArena,
    query: &'a CellSetSequence,
    exclude: Option<EntityId>,
    k: usize,
    measure: &'a M,
    source: S,
    options: QueryOptions,
    publish_policy: PublishPolicy,
    query_sizes: Vec<usize>,
    hashes: QueryHashes<'a, F>,
    top: TopKHeap,
    queue: BinaryHeap<Candidate>,
    stats: QueryStats,
    started: Instant,
    exhausted: bool,
}

impl<'a, F, S, M> Executor<'a, F, S, M>
where
    F: CellHashFamily,
    S: TraceSource,
    M: AssociationMeasure + ?Sized,
{
    /// Creates an executor with its frontier seeded at the tree root.
    ///
    /// The tree topology is consumed through its flat per-snapshot
    /// [`NodeArena`] rows (see
    /// [`IndexSnapshot::node_arena`](crate::snapshot::IndexSnapshot::node_arena)),
    /// so node expansion reads contiguous SoA vectors instead of chasing
    /// owned node structs.
    ///
    /// `exclude` removes the query entity itself from the answer set.  Fails
    /// with [`IndexError::LevelMismatch`] when the query sequence does not
    /// have the tree's level count.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        sp: &'a SpIndex,
        hasher: &'a HierarchicalHasher<F>,
        tree: &'a NodeArena,
        query: &'a CellSetSequence,
        exclude: Option<EntityId>,
        k: usize,
        measure: &'a M,
        source: S,
        options: QueryOptions,
    ) -> Result<Self> {
        if query.num_levels() != tree.levels() as usize {
            return Err(IndexError::LevelMismatch {
                index_levels: tree.levels(),
                query_levels: query.num_levels() as u8,
            });
        }
        let m = tree.levels();
        let query_sizes: Vec<usize> = (1..=m).map(|l| query.level(l).len()).collect();
        let stats = QueryStats { total_entities: tree.num_entities(), k, ..QueryStats::default() };

        let mut queue = BinaryHeap::new();
        // A k = 0 query has an empty answer by definition; seed nothing.
        if k > 0 {
            queue.push(Candidate {
                upper_bound: OrdF64(measure.upper_bound(&query_sizes, &query_sizes)),
                node: ROOT,
                caps: query_sizes.clone(),
            });
        }
        Ok(Executor {
            tree,
            query,
            exclude,
            k,
            measure,
            source,
            options,
            publish_policy: PublishPolicy::EveryImprovement,
            query_sizes,
            hashes: QueryHashes::new(sp, hasher, query),
            top: TopKHeap::new(k),
            queue,
            stats,
            started: Instant::now(),
            exhausted: k == 0,
        })
    }

    /// Sets when threshold improvements are pushed to the [`Bound`]
    /// (default: [`PublishPolicy::EveryImprovement`]).  Publish timing never
    /// changes any answer, only how early *other* executors can prune.
    pub fn with_publish_policy(mut self, policy: PublishPolicy) -> Self {
        self.publish_policy = policy;
        self
    }

    /// True once the frontier is empty or fully pruned; further [`step`]
    /// calls are no-ops.
    ///
    /// [`step`]: Executor::step
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// The requested result size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The executor's current local k-th-best degree (`-inf` while fewer
    /// than `k` answers are held).
    pub fn threshold(&self) -> f64 {
        self.top.threshold()
    }

    /// The work counters accumulated so far.
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }

    /// The trace source leaf evaluation reads through — lets fan-out drivers
    /// drain source-side accounting (e.g.
    /// [`ArenaSource::take_dispatch`](crate::kernel::ArenaSource::take_dispatch))
    /// before [`finish`](Self::finish).
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Advances the frontier by up to `quantum` nodes (at least 1), pruning
    /// against `max(local k-th threshold, bound.current())` and publishing
    /// threshold improvements per the configured [`PublishPolicy`].
    ///
    /// Returns `true` while work remains.  The answer is independent of the
    /// quantum and of how step calls interleave with other executors sharing
    /// the bound.
    pub fn step<B: Bound + ?Sized>(&mut self, bound: &B, quantum: usize) -> bool {
        if self.exhausted {
            return false;
        }
        self.stats.steps += 1;
        let mut budget = quantum.max(1);
        while budget > 0 {
            let Some(candidate) = self.queue.pop() else {
                self.exhausted = true;
                break;
            };
            // Both tests are strict, keeping boundary ties alive
            // (tie-complete pruning); `is_saturated_against` is the single
            // holder of the local rule.
            if self.top.is_saturated_against(candidate.upper_bound.0)
                || bound.current() > candidate.upper_bound.0
            {
                // The frontier is popped in descending bound order: nothing
                // left can reach the threshold either.
                self.stats.subtrees_pruned += 1 + self.queue.len();
                self.queue.clear();
                self.exhausted = true;
                break;
            }
            budget -= 1;
            self.stats.nodes_visited += 1;
            self.visit(candidate, bound);
        }
        if self.queue.is_empty() {
            self.exhausted = true;
        }
        if self.publish_policy == PublishPolicy::PerQuantum {
            self.publish_threshold(bound);
        }
        !self.exhausted
    }

    /// Drives the executor to exhaustion under `bound`.
    pub fn run<B: Bound + ?Sized>(&mut self, bound: &B) {
        while self.step(bound, usize::MAX) {}
    }

    /// Drives the executor under `bound`, `quantum` nodes at a time,
    /// re-checking `deadline` between quanta.
    ///
    /// Returns `true` when the frontier was exhausted (the answer is the
    /// full exact answer, identical to [`run`](Self::run)); `false` when the
    /// deadline tripped first, in which case the frontier still holds the
    /// remaining work and the caller decides how to degrade.  `None` never
    /// trips, making `run_until(bound, q, None)` bit-for-bit `run(bound)`.
    pub fn run_until<B: Bound + ?Sized>(
        &mut self,
        bound: &B,
        quantum: usize,
        deadline: Option<std::time::Instant>,
    ) -> bool {
        match deadline {
            None => {
                self.run(bound);
                true
            }
            Some(deadline) => loop {
                if std::time::Instant::now() >= deadline {
                    return self.exhausted;
                }
                if !self.step(bound, quantum) {
                    return true;
                }
            },
        }
    }

    /// Consumes the executor, returning the sorted answers and the final
    /// work counters (with the wall-clock time since construction).
    pub fn finish(mut self) -> (Vec<TopKResult>, QueryStats) {
        self.stats.query_time_us = self.started.elapsed().as_micros() as u64;
        (self.top.into_sorted(), self.stats)
    }

    /// Expands an internal node's children into the frontier, or evaluates a
    /// leaf's entities through the source.
    fn visit<B: Bound + ?Sized>(&mut self, candidate: Candidate, bound: &B) {
        let tree = self.tree;
        let m = tree.levels();

        if tree.depth(candidate.node) == m {
            // Leaf: evaluate every contained entity exactly, reading the
            // entity list from the arena's contiguous CSR span.
            self.stats.leaves_visited += 1;
            for &entity in tree.leaf_entities(candidate.node) {
                if Some(entity) == self.exclude {
                    continue;
                }
                let Some(degree) = self.source.degree(entity, self.query, &self.measure) else {
                    continue;
                };
                self.stats.entities_checked += 1;
                let before = self.top.threshold();
                self.top.offer(entity, degree);
                if self.publish_policy == PublishPolicy::EveryImprovement
                    && self.top.threshold() > before
                {
                    self.publish_threshold(bound);
                }
            }
            return;
        }

        // Internal node (or root): push its children with tightened bounds.
        // The child rows (depth / routing index / routing value) are strided
        // reads from the arena's SoA vectors.
        for &child_id in tree.children(candidate.node) {
            let child_depth = tree.depth(child_id);
            let routing_index = tree.routing_index(child_id);
            let routing_value = tree.routing_value(child_id);
            let mut caps = if self.options.accumulate_down_branch {
                candidate.caps.clone()
            } else {
                self.query_sizes.clone()
            };
            let depth_idx = (child_depth - 1) as usize;
            let base_idx = (m - 1) as usize;
            if self.options.use_level_constraints {
                let surviving = self.hashes.surviving(child_depth, routing_index, routing_value);
                caps[depth_idx] = caps[depth_idx].min(surviving);
            }
            // Theorem-2 constraint over base cells (the "partial pruned set").
            let surviving_base = self.hashes.surviving(m, routing_index, routing_value);
            caps[base_idx] = caps[base_idx].min(surviving_base);

            let ub = self.measure.upper_bound(&self.query_sizes, &caps);
            // A subtree whose bound cannot beat the current threshold can
            // still be pushed; it will be discarded by the pruning check when
            // popped (and counted in `subtrees_pruned`).
            self.queue.push(Candidate { upper_bound: OrdF64(ub), node: child_id, caps });
        }
    }

    /// Publishes the local threshold to the bound when it is informative.
    fn publish_threshold<B: Bound + ?Sized>(&mut self, bound: &B) {
        let threshold = self.top.threshold();
        if threshold > f64::NEG_INFINITY && bound.publish(threshold) {
            self.stats.bound_updates += 1;
        }
    }
}

/// The best-first top-k search of Algorithm 2 over an arbitrary
/// [`TraceSource`], run to completion — the one-shot wrapper around
/// [`Executor`] every single-tree query path uses.
///
/// `exclude` removes the query entity itself from the answer set.  The
/// function is exact and tie-complete: it returns bitwise the same result as
/// a brute-force sort-and-truncate over the same source (see the
/// [module docs](crate::engine)).
#[allow(clippy::too_many_arguments)]
pub fn execute<F, S, M>(
    sp: &SpIndex,
    hasher: &HierarchicalHasher<F>,
    tree: &NodeArena,
    query: &CellSetSequence,
    exclude: Option<EntityId>,
    k: usize,
    measure: &M,
    source: &S,
    options: QueryOptions,
) -> Result<(Vec<TopKResult>, QueryStats)>
where
    F: CellHashFamily,
    S: TraceSource + ?Sized,
    M: AssociationMeasure + ?Sized,
{
    let mut executor =
        Executor::new(sp, hasher, tree, query, exclude, k, measure, source, options)?;
    executor.run(&PrivateBound);
    Ok(executor.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordf64_orders_like_floats_and_handles_nan() {
        let mut v = [OrdF64(0.5), OrdF64(-1.0), OrdF64(2.0), OrdF64(f64::NAN)];
        v.sort();
        assert_eq!(v[0], OrdF64(-1.0));
        assert_eq!(v[1], OrdF64(0.5));
        assert_eq!(v[2], OrdF64(2.0));
        assert!(v[3].0.is_nan());
    }

    #[test]
    fn candidates_order_by_upper_bound() {
        let a = Candidate { upper_bound: OrdF64(0.9), node: 1, caps: vec![] };
        let b = Candidate { upper_bound: OrdF64(0.3), node: 2, caps: vec![] };
        let mut heap = BinaryHeap::new();
        heap.push(b);
        heap.push(a);
        assert_eq!(heap.pop().unwrap().node, 1);
    }

    #[test]
    fn top_k_heap_keeps_the_best_k_with_stable_ties() {
        let mut top = TopKHeap::new(2);
        assert!(top.is_empty());
        assert_eq!(top.threshold(), f64::NEG_INFINITY);
        top.offer(EntityId(1), 0.5);
        top.offer(EntityId(2), 0.9);
        assert_eq!(top.len(), 2);
        // An equal-degree late-comer with a larger id ranks below the
        // incumbent and is rejected.
        top.offer(EntityId(3), 0.5);
        // Strictly better degrees displace the worst answer.
        top.offer(EntityId(4), 0.7);
        let results = top.into_sorted();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].entity, EntityId(2));
        assert!((results[0].degree - 0.9).abs() < 1e-12);
        assert_eq!(results[1].entity, EntityId(4));
    }

    #[test]
    fn selection_is_independent_of_offer_order() {
        // The k-boundary is a three-way degree tie; whatever order candidates
        // arrive in, the kept set must be the sort-and-truncate answer:
        // {e9 (0.7), e1 (0.0)} — smallest id among the tied.
        let candidates = [(1u64, 0.0), (2, 0.0), (9, 0.7), (5, 0.0)];
        let mut orders = vec![candidates];
        orders.push([candidates[2], candidates[0], candidates[3], candidates[1]]);
        orders.push([candidates[3], candidates[2], candidates[1], candidates[0]]);
        for order in orders {
            let mut top = TopKHeap::new(2);
            for (entity, degree) in order {
                top.offer(EntityId(entity), degree);
            }
            let results = top.into_sorted();
            assert_eq!(results[0].entity, EntityId(9), "order {order:?}");
            assert_eq!(results[1].entity, EntityId(1), "order {order:?}");
        }
    }

    #[test]
    fn merge_top_k_equals_offering_everything_to_one_heap() {
        let offers = [(1u64, 0.3), (2, 0.9), (3, 0.9), (4, 0.1), (5, 0.5), (6, 0.5)];
        let mut all = TopKHeap::new(3);
        let mut left = TopKHeap::new(3);
        let mut right = TopKHeap::new(3);
        for (i, &(entity, degree)) in offers.iter().enumerate() {
            all.offer(EntityId(entity), degree);
            if i % 2 == 0 {
                left.offer(EntityId(entity), degree);
            } else {
                right.offer(EntityId(entity), degree);
            }
        }
        let merged = merge_top_k(3, vec![left.into_sorted(), right.into_sorted()]);
        assert_eq!(merged, all.into_sorted());
    }

    #[test]
    fn merge_top_k_equals_global_sort_and_truncate() {
        let parts = vec![
            vec![
                TopKResult { entity: EntityId(3), degree: 0.7 },
                TopKResult { entity: EntityId(9), degree: 0.2 },
            ],
            vec![],
            vec![
                TopKResult { entity: EntityId(1), degree: 0.7 },
                TopKResult { entity: EntityId(5), degree: 0.4 },
            ],
        ];
        let merged = merge_top_k(3, parts);
        // Ties resolve by ascending entity id, exactly like a single heap.
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].entity, EntityId(1));
        assert_eq!(merged[1].entity, EntityId(3));
        assert_eq!(merged[2].entity, EntityId(5));
        assert!(
            merge_top_k(0, vec![vec![TopKResult { entity: EntityId(1), degree: 1.0 }]]).is_empty()
        );
    }

    #[test]
    fn top_k_heap_with_k_zero_accepts_nothing() {
        let mut top = TopKHeap::new(0);
        top.offer(EntityId(1), 1.0);
        assert!(top.is_empty());
        assert!(top.into_sorted().is_empty());
    }

    #[test]
    fn saturation_test_is_strict_at_ties() {
        let mut top = TopKHeap::new(1);
        assert!(!top.is_saturated_against(0.1), "nothing held yet");
        top.offer(EntityId(7), 0.5);
        // An equal bound may hide an equal-degree entity with a smaller id,
        // which would displace the incumbent — not saturated.
        assert!(!top.is_saturated_against(0.5), "ties must stay alive");
        assert!(top.is_saturated_against(0.4));
        assert!(!top.is_saturated_against(0.6));
    }

    #[test]
    fn shared_bound_is_a_monotone_max() {
        let bound = SharedBound::new();
        assert_eq!(bound.current(), f64::NEG_INFINITY);
        assert!(bound.publish(0.25));
        assert!((bound.current() - 0.25).abs() < 1e-15);
        assert!(!bound.publish(0.1), "lower values never lower the bound");
        assert!((bound.current() - 0.25).abs() < 1e-15);
        assert!(bound.publish(0.7));
        assert!((bound.current() - 0.7).abs() < 1e-15);
        assert!(!bound.publish(f64::NAN), "NaN is rejected");
        assert!((bound.current() - 0.7).abs() < 1e-15);
        // Negative values order correctly through the bit representation.
        let negative = SharedBound::new();
        assert!(negative.publish(-2.0));
        assert!(negative.publish(-1.0));
        assert!(!negative.publish(-1.5));
        assert!((negative.current() - (-1.0)).abs() < 1e-15);
    }

    #[test]
    fn shared_bound_concurrent_publishes_settle_on_the_max() {
        let bound = SharedBound::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let bound = &bound;
                scope.spawn(move || {
                    for i in 0..1000 {
                        bound.publish((t * 1000 + i) as f64 / 4000.0);
                    }
                });
            }
        });
        assert!((bound.current() - 3999.0 / 4000.0).abs() < 1e-15);
    }

    #[test]
    fn private_bound_is_inert() {
        let bound = PrivateBound;
        assert_eq!(bound.current(), f64::NEG_INFINITY);
        assert!(!bound.publish(123.0));
        assert_eq!(bound.current(), f64::NEG_INFINITY);
    }

    #[test]
    fn seeded_bound_holds_its_seed_and_accepts_nothing() {
        let bound = SeededBound::new(0.75);
        assert!((bound.current() - 0.75).abs() < 1e-15);
        assert!(!bound.publish(0.99), "a seeded bound never shares back");
        assert!((bound.current() - 0.75).abs() < 1e-15);
        let empty = SeededBound::new(f64::NEG_INFINITY);
        assert_eq!(empty.current(), f64::NEG_INFINITY);
    }
}
