//! The bitmap baseline index of Section 7.2.
//!
//! ST-cells are partitioned into `n` clusters; every entity is summarised by an
//! `n`-bit vector whose bit `i` is set when the entity visits at least one cell of
//! cluster `i`.  Entities sharing a bit vector form a group; a query computes an
//! upper bound on the association degree per group (from the number of query
//! cells falling into the group's set clusters), examines groups best-first and
//! stops once the k-th exact answer dominates the best remaining group bound.
//!
//! The bound is sound — a group's entities cannot overlap the query on any cell
//! whose cluster bit is unset — so the answers are exact; the *pruning* is poor on
//! realistic traces because ST-cells exhibit weak locality, which is precisely the
//! comparison point of Figure 7.7.

use crate::clustering::{cluster_cells, CellClustering};
use crate::BaselineStats;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use trace_model::{AssociationMeasure, CellSetSequence, EntityId};

/// Configuration of the bitmap baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitmapIndexConfig {
    /// Minimum number of entities in which a pair of cells must co-occur for the
    /// cells to be clustered together.
    pub min_support: usize,
    /// Number of clusters (the bit-vector width).
    pub num_clusters: usize,
}

impl Default for BitmapIndexConfig {
    fn default() -> Self {
        BitmapIndexConfig { min_support: 3, num_clusters: 256 }
    }
}

/// The bitmap index.
#[derive(Debug, Clone)]
pub struct BitmapIndex {
    config: BitmapIndexConfig,
    clustering: CellClustering,
    num_levels: usize,
    /// Entity groups: the shared bit vector and the member entities.
    groups: Vec<(Vec<u64>, Vec<EntityId>)>,
    num_entities: usize,
}

fn set_bit(words: &mut [u64], bit: u32) {
    words[(bit / 64) as usize] |= 1u64 << (bit % 64);
}

fn get_bit(words: &[u64], bit: u32) -> bool {
    words[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
}

impl BitmapIndex {
    /// Builds the index from the entities' ST-cell set sequences.
    pub fn build(
        sequences: &BTreeMap<EntityId, CellSetSequence>,
        config: BitmapIndexConfig,
    ) -> Self {
        let num_levels = sequences.values().next().map(|s| s.num_levels()).unwrap_or(1);
        let transactions: Vec<Vec<u64>> =
            sequences.values().map(|seq| seq.base().iter().map(|c| c.packed()).collect()).collect();
        let clustering = cluster_cells(&transactions, config.min_support, config.num_clusters);
        let words = clustering.num_clusters().div_ceil(64).max(1);

        let mut grouped: BTreeMap<Vec<u64>, Vec<EntityId>> = BTreeMap::new();
        for (&entity, seq) in sequences {
            let mut vector = vec![0u64; words];
            for cell in seq.base().iter() {
                if let Some(cluster) = clustering.cluster_of(cell.packed()) {
                    set_bit(&mut vector, cluster);
                }
            }
            grouped.entry(vector).or_default().push(entity);
        }
        let num_entities = sequences.len();
        BitmapIndex {
            config,
            clustering,
            num_levels,
            groups: grouped.into_iter().collect(),
            num_entities,
        }
    }

    /// The configuration used to build the index.
    pub fn config(&self) -> BitmapIndexConfig {
        self.config
    }

    /// Number of distinct bit vectors (groups).
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Number of indexed entities.
    pub fn num_entities(&self) -> usize {
        self.num_entities
    }

    /// The underlying cell clustering.
    pub fn clustering(&self) -> &CellClustering {
        &self.clustering
    }

    /// Answers a top-k query.  `sequences` must be the same map the index was
    /// built from (the index stores only bit vectors, not the raw sequences).
    pub fn top_k<M: AssociationMeasure + ?Sized>(
        &self,
        sequences: &BTreeMap<EntityId, CellSetSequence>,
        query: EntityId,
        k: usize,
        measure: &M,
    ) -> (Vec<(EntityId, f64)>, BaselineStats) {
        let mut stats =
            BaselineStats { total_entities: self.num_entities, k, ..BaselineStats::default() };
        let Some(query_seq) = sequences.get(&query) else {
            return (Vec::new(), stats);
        };
        let query_sizes: Vec<usize> =
            (1..=self.num_levels as u8).map(|l| query_seq.level(l).len()).collect();

        // Query cells per cluster.
        let mut per_cluster = vec![0usize; self.clustering.num_clusters()];
        let mut unclustered = 0usize;
        for cell in query_seq.base().iter() {
            match self.clustering.cluster_of(cell.packed()) {
                Some(c) => per_cluster[c as usize] += 1,
                None => unclustered += 1,
            }
        }
        let _ = unclustered; // query-only cells can never be shared

        // Upper bound per group.
        let mut ordered: Vec<(f64, usize)> = self
            .groups
            .iter()
            .enumerate()
            .map(|(i, (vector, _))| {
                let cap_base: usize = per_cluster
                    .iter()
                    .enumerate()
                    .filter(|&(c, _)| get_bit(vector, c as u32))
                    .map(|(_, &count)| count)
                    .sum();
                let mut caps = query_sizes.clone();
                let last = caps.len() - 1;
                caps[last] = caps[last].min(cap_base);
                (measure.upper_bound(&query_sizes, &caps), i)
            })
            .collect();
        ordered.sort_by(|a, b| b.0.total_cmp(&a.0));

        // Best-first exact evaluation with early termination.
        let mut results: Vec<(EntityId, f64)> = Vec::new();
        let mut threshold = f64::NEG_INFINITY;
        for (ub, group_idx) in ordered {
            if results.len() >= k && threshold >= ub {
                break;
            }
            stats.groups_examined += 1;
            for &entity in &self.groups[group_idx].1 {
                if entity == query {
                    continue;
                }
                let Some(seq) = sequences.get(&entity) else { continue };
                stats.entities_checked += 1;
                let degree = measure.degree(query_seq, seq);
                results.push((entity, degree));
            }
            results.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            results.truncate(k.max(1) * 4 + k); // keep a margin before the final cut
            if results.len() >= k {
                threshold = results[k - 1].1;
            }
        }
        results.truncate(k);
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_top_k;
    use trace_model::{CellSet, PaperAdm, SpIndex, StCell};

    /// A dataset where entities come in strongly-associated pairs.
    fn paired_sequences(pairs: usize) -> (SpIndex, BTreeMap<EntityId, CellSetSequence>) {
        let sp = SpIndex::uniform(2, &[8, 8]).unwrap();
        let base = sp.base_units().to_vec();
        let mut out = BTreeMap::new();
        for i in 0..pairs {
            for member in 0..2u64 {
                let entity = EntityId(2 * i as u64 + member);
                let mut cells: Vec<StCell> = (0..6u32)
                    .map(|step| StCell::new(step, base[(i * 11 + step as usize) % base.len()]))
                    .collect();
                cells.push(StCell::new(
                    100 + member as u32,
                    base[(i + member as usize * 37) % base.len()],
                ));
                let seq =
                    CellSetSequence::from_base_cells(&sp, &CellSet::from_cells(cells)).unwrap();
                out.insert(entity, seq);
            }
        }
        (sp, out)
    }

    #[test]
    fn bitmap_results_match_the_exact_scan() {
        let (sp, seqs) = paired_sequences(20);
        let index =
            BitmapIndex::build(&seqs, BitmapIndexConfig { min_support: 2, num_clusters: 64 });
        let measure = PaperAdm::default_for(sp.height() as usize);
        for query in [0u64, 7, 15, 33] {
            for k in [1usize, 5] {
                let (got, stats) = index.top_k(&seqs, EntityId(query), k, &measure);
                let (expect, _) = scan_top_k(&seqs, EntityId(query), k, &measure);
                assert_eq!(got.len(), expect.len());
                for (g, e) in got.iter().zip(expect.iter()) {
                    assert!((g.1 - e.1).abs() < 1e-9, "query {query} k {k}");
                }
                assert!(stats.entities_checked <= index.num_entities());
            }
        }
    }

    #[test]
    fn top1_is_the_partner() {
        let (sp, seqs) = paired_sequences(15);
        let index = BitmapIndex::build(&seqs, BitmapIndexConfig::default());
        let measure = PaperAdm::default_for(sp.height() as usize);
        let (results, _) = index.top_k(&seqs, EntityId(6), 1, &measure);
        assert_eq!(results[0].0, EntityId(7));
    }

    #[test]
    fn group_count_is_bounded_by_entities() {
        let (_sp, seqs) = paired_sequences(10);
        let index = BitmapIndex::build(&seqs, BitmapIndexConfig::default());
        assert!(index.num_groups() <= index.num_entities());
        assert_eq!(index.num_entities(), 20);
        assert!(index.clustering().num_cells() > 0);
    }

    #[test]
    fn unknown_query_returns_empty() {
        let (_sp, seqs) = paired_sequences(3);
        let index = BitmapIndex::build(&seqs, BitmapIndexConfig::default());
        let measure = PaperAdm::default_for(2);
        let (results, stats) = index.top_k(&seqs, EntityId(999), 1, &measure);
        assert!(results.is_empty());
        assert_eq!(stats.entities_checked, 0);
    }

    #[test]
    fn empty_index_is_harmless() {
        let seqs: BTreeMap<EntityId, CellSetSequence> = BTreeMap::new();
        let index = BitmapIndex::build(&seqs, BitmapIndexConfig::default());
        assert_eq!(index.num_entities(), 0);
        assert_eq!(index.num_groups(), 0);
    }

    #[test]
    fn bit_helpers_round_trip() {
        let mut words = vec![0u64; 3];
        for bit in [0u32, 63, 64, 130] {
            assert!(!get_bit(&words, bit));
            set_bit(&mut words, bit);
            assert!(get_bit(&words, bit));
        }
        assert!(!get_bit(&words, 1));
    }
}
