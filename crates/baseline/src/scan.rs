//! The brute-force scan: exact, index-free top-k evaluation.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use trace_model::{AssociationMeasure, CellSetSequence, EntityId};

/// Statistics of one scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanStats {
    /// Number of entities whose degree was computed (always `|E| - 1`).
    pub entities_checked: usize,
}

/// Computes the exact top-k answers by scoring every entity.
///
/// Returns `(entity, degree)` pairs sorted by degree (descending) with ties broken
/// by entity id, excluding the query entity itself.
pub fn scan_top_k<M: AssociationMeasure + ?Sized>(
    sequences: &BTreeMap<EntityId, CellSetSequence>,
    query: EntityId,
    k: usize,
    measure: &M,
) -> (Vec<(EntityId, f64)>, ScanStats) {
    let query_seq = match sequences.get(&query) {
        Some(seq) => seq,
        None => return (Vec::new(), ScanStats::default()),
    };
    let mut scored: Vec<(EntityId, f64)> = sequences
        .iter()
        .filter(|(e, _)| **e != query)
        .map(|(e, seq)| (*e, measure.degree(query_seq, seq)))
        .collect();
    let stats = ScanStats { entities_checked: scored.len() };
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    (scored, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_model::examples::PaperExample;
    use trace_model::DiceAdm;

    fn sequences() -> BTreeMap<EntityId, CellSetSequence> {
        PaperExample::build().entities.into_iter().collect()
    }

    #[test]
    fn scan_finds_the_closest_entity() {
        let seqs = sequences();
        let measure = DiceAdm::paper_example();
        let (results, stats) = scan_top_k(&seqs, EntityId(2), 1, &measure);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].0, EntityId(0), "e_a is e_c's best match");
        assert_eq!(stats.entities_checked, 3);
    }

    #[test]
    fn scan_orders_results_and_respects_k() {
        let seqs = sequences();
        let measure = DiceAdm::paper_example();
        let (results, _) = scan_top_k(&seqs, EntityId(2), 10, &measure);
        assert_eq!(results.len(), 3, "k larger than population returns everyone else");
        assert!(results.windows(2).all(|w| w[0].1 >= w[1].1));
        let (top2, _) = scan_top_k(&seqs, EntityId(2), 2, &measure);
        assert_eq!(&results[..2], &top2[..]);
    }

    #[test]
    fn unknown_query_returns_empty() {
        let seqs = sequences();
        let measure = DiceAdm::paper_example();
        let (results, stats) = scan_top_k(&seqs, EntityId(99), 1, &measure);
        assert!(results.is_empty());
        assert_eq!(stats.entities_checked, 0);
    }
}
