//! # baseline
//!
//! The comparison approaches of the paper's evaluation (Section 7.2):
//!
//! * [`scan`] — the naive exact approach: compute the association degree between
//!   the query entity and every other entity (the upper bound on what any index
//!   must beat, and the ground truth for correctness tests);
//! * [`fpgrowth`] — an FP-growth frequent-itemset miner over ST-cell
//!   "transactions", the machinery behind the locality-based baseline;
//! * [`clustering`] — partitioning ST-cells into clusters of frequently
//!   co-occurring cells (union-find over frequent pairs);
//! * [`bitmap`] — the baseline index itself: an n-bit vector per entity (bit `i`
//!   set when the entity visits any cell of cluster `i`), grouped into a bitmap,
//!   searched best-first with cluster-level upper bounds.
//!
//! The paper's observation — and the reason the MinSigTree wins by orders of
//! magnitude — is that real digital traces show little ST-cell locality, so the
//! clusters couple weakly with entity behaviour and the resulting upper bounds
//! are loose (Section 7.7).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bitmap;
pub mod clustering;
pub mod fpgrowth;
pub mod scan;

pub use bitmap::{BitmapIndex, BitmapIndexConfig};
pub use clustering::{cluster_cells, CellClustering};
pub use fpgrowth::{FpGrowth, FrequentItemset};
pub use scan::{scan_top_k, ScanStats};

use serde::{Deserialize, Serialize};

/// Search statistics shared by the baseline approaches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaselineStats {
    /// Total number of entities considered by the index.
    pub total_entities: usize,
    /// Result size requested.
    pub k: usize,
    /// Entities whose exact association degree was computed.
    pub entities_checked: usize,
    /// Candidate groups (distinct bit vectors) examined.
    pub groups_examined: usize,
}

impl BaselineStats {
    /// Fraction of entities checked beyond the returned `k` (Definition 5).
    pub fn fraction_checked(&self) -> f64 {
        if self.total_entities == 0 {
            return 0.0;
        }
        self.entities_checked.saturating_sub(self.k) as f64 / self.total_entities as f64
    }

    /// The complement of [`fraction_checked`](Self::fraction_checked): fraction of
    /// entities pruned.
    pub fn pruning_effectiveness(&self) -> f64 {
        (1.0 - self.fraction_checked()).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_fractions() {
        let s =
            BaselineStats { total_entities: 100, k: 5, entities_checked: 55, groups_examined: 3 };
        assert!((s.fraction_checked() - 0.5).abs() < 1e-12);
        assert!((s.pruning_effectiveness() - 0.5).abs() < 1e-12);
        let empty = BaselineStats::default();
        assert_eq!(empty.fraction_checked(), 0.0);
    }
}
