//! FP-growth frequent-itemset mining.
//!
//! The locality baseline of Section 7.2 treats each entity's ST-cell set as a
//! transaction and mines frequently co-occurring ST-cells.  This module provides
//! a self-contained FP-growth implementation (FP-tree construction plus recursive
//! conditional-tree mining) generic over `u64` item identifiers, verified against
//! a naive Apriori-style enumerator in the tests.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A frequent itemset and its support count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrequentItemset {
    /// The items, sorted ascending.
    pub items: Vec<u64>,
    /// Number of transactions containing all of the items.
    pub support: usize,
}

/// One node of the FP-tree.
#[derive(Debug, Clone)]
struct FpNode {
    item: u64,
    count: usize,
    parent: usize,
    children: HashMap<u64, usize>,
}

/// An FP-growth miner.
#[derive(Debug, Clone)]
pub struct FpGrowth {
    min_support: usize,
    /// Maximum size of itemsets to report (0 = unlimited).  The clustering
    /// baseline only needs pairs, so capping the depth keeps mining cheap.
    max_len: usize,
}

impl FpGrowth {
    /// Creates a miner with the given minimum support (in absolute transaction
    /// counts) and no length cap.
    pub fn new(min_support: usize) -> Self {
        FpGrowth { min_support: min_support.max(1), max_len: 0 }
    }

    /// Restricts mining to itemsets of at most `max_len` items.
    pub fn with_max_len(mut self, max_len: usize) -> Self {
        self.max_len = max_len;
        self
    }

    /// The minimum support.
    pub fn min_support(&self) -> usize {
        self.min_support
    }

    /// Mines all frequent itemsets (of size ≥ 1) from the transactions.
    pub fn mine(&self, transactions: &[Vec<u64>]) -> Vec<FrequentItemset> {
        // 1. Count item frequencies and keep the frequent ones.
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for t in transactions {
            let mut seen: Vec<u64> = t.clone();
            seen.sort_unstable();
            seen.dedup();
            for item in seen {
                *counts.entry(item).or_default() += 1;
            }
        }
        let mut frequent: Vec<(u64, usize)> =
            counts.iter().filter(|(_, &c)| c >= self.min_support).map(|(&i, &c)| (i, c)).collect();
        // Order by descending frequency (ties by item id) — the canonical FP-tree
        // insertion order.
        frequent.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let order: HashMap<u64, usize> =
            frequent.iter().enumerate().map(|(rank, &(item, _))| (item, rank)).collect();

        // 2. Build the FP-tree.
        let mut nodes: Vec<FpNode> =
            vec![FpNode { item: u64::MAX, count: 0, parent: usize::MAX, children: HashMap::new() }];
        let mut header: HashMap<u64, Vec<usize>> = HashMap::new();
        for t in transactions {
            let mut items: Vec<u64> = t
                .iter()
                .copied()
                .filter(|i| order.contains_key(i))
                .collect::<std::collections::BTreeSet<u64>>()
                .into_iter()
                .collect();
            items.sort_by_key(|i| order[i]);
            let mut current = 0usize;
            for item in items {
                let next = match nodes[current].children.get(&item) {
                    Some(&id) => {
                        nodes[id].count += 1;
                        id
                    }
                    None => {
                        let id = nodes.len();
                        nodes.push(FpNode {
                            item,
                            count: 1,
                            parent: current,
                            children: HashMap::new(),
                        });
                        nodes[current].children.insert(item, id);
                        header.entry(item).or_default().push(id);
                        id
                    }
                };
                current = next;
            }
        }

        // 3. Mine recursively via conditional pattern bases.
        let mut results = Vec::new();
        // Process items in reverse frequency order (least frequent first).
        for &(item, support) in frequent.iter().rev() {
            let suffix = vec![item];
            results.push(FrequentItemset { items: suffix.clone(), support });
            if self.max_len == 1 {
                continue;
            }
            // Conditional pattern base: for every node of `item`, the path to the
            // root weighted by the node's count.
            let mut conditional: Vec<(Vec<u64>, usize)> = Vec::new();
            for &node_id in header.get(&item).unwrap_or(&Vec::new()) {
                let count = nodes[node_id].count;
                let mut path = Vec::new();
                let mut cursor = nodes[node_id].parent;
                while cursor != 0 && cursor != usize::MAX {
                    path.push(nodes[cursor].item);
                    cursor = nodes[cursor].parent;
                }
                if !path.is_empty() {
                    path.reverse();
                    conditional.push((path, count));
                }
            }
            self.mine_conditional(&conditional, &suffix, &mut results);
        }
        // Canonical form: items ascending within each set, sets sorted.
        for set in &mut results {
            set.items.sort_unstable();
        }
        results.sort_by(|a, b| a.items.len().cmp(&b.items.len()).then(a.items.cmp(&b.items)));
        results
    }

    /// Recursive step over a conditional pattern base (a weighted transaction set).
    fn mine_conditional(
        &self,
        base: &[(Vec<u64>, usize)],
        suffix: &[u64],
        results: &mut Vec<FrequentItemset>,
    ) {
        if self.max_len != 0 && suffix.len() >= self.max_len {
            return;
        }
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for (path, weight) in base {
            for &item in path {
                *counts.entry(item).or_default() += weight;
            }
        }
        let frequent: Vec<(u64, usize)> =
            counts.into_iter().filter(|&(_, c)| c >= self.min_support).collect();
        for &(item, support) in &frequent {
            let mut items = suffix.to_vec();
            items.push(item);
            results.push(FrequentItemset { items: items.clone(), support });
            // Build the conditional base for the extended suffix.
            let narrowed: Vec<(Vec<u64>, usize)> = base
                .iter()
                .filter_map(|(path, weight)| {
                    path.iter().position(|&i| i == item).map(|pos| (path[..pos].to_vec(), *weight))
                })
                .filter(|(p, _)| !p.is_empty())
                .collect();
            if !narrowed.is_empty() {
                self.mine_conditional(&narrowed, &items, results);
            }
        }
    }
}

/// Naive frequent-itemset enumeration used to cross-check FP-growth in tests and
/// available for tiny inputs.
pub fn naive_frequent_itemsets(
    transactions: &[Vec<u64>],
    min_support: usize,
    max_len: usize,
) -> Vec<FrequentItemset> {
    use std::collections::BTreeSet;
    let mut universe: BTreeSet<u64> = BTreeSet::new();
    for t in transactions {
        universe.extend(t.iter().copied());
    }
    let universe: Vec<u64> = universe.into_iter().collect();
    let sets: Vec<BTreeSet<u64>> =
        transactions.iter().map(|t| t.iter().copied().collect()).collect();
    let mut results = Vec::new();
    // Breadth-first enumeration with pruning.
    let mut frontier: Vec<Vec<u64>> = vec![Vec::new()];
    while let Some(itemset) = frontier.pop() {
        let start = itemset.last().copied().unwrap_or(0);
        for &candidate in universe.iter().filter(|&&i| i > start || itemset.is_empty()) {
            if itemset.contains(&candidate) {
                continue;
            }
            let mut extended = itemset.clone();
            extended.push(candidate);
            extended.sort_unstable();
            let support = sets.iter().filter(|s| extended.iter().all(|i| s.contains(i))).count();
            if support >= min_support {
                results.push(FrequentItemset { items: extended.clone(), support });
                if max_len == 0 || extended.len() < max_len {
                    frontier.push(extended);
                }
            }
        }
    }
    results.sort_by(|a, b| a.items.len().cmp(&b.items.len()).then(a.items.cmp(&b.items)));
    results.dedup_by(|a, b| a.items == b.items);
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn classic_transactions() -> Vec<Vec<u64>> {
        // The textbook FP-growth example (items renamed to integers).
        vec![
            vec![1, 2, 5],
            vec![2, 4],
            vec![2, 3],
            vec![1, 2, 4],
            vec![1, 3],
            vec![2, 3],
            vec![1, 3],
            vec![1, 2, 3, 5],
            vec![1, 2, 3],
        ]
    }

    #[test]
    fn singleton_supports_match_raw_counts() {
        let txns = classic_transactions();
        let sets = FpGrowth::new(2).mine(&txns);
        let lookup: BTreeMap<Vec<u64>, usize> =
            sets.iter().map(|s| (s.items.clone(), s.support)).collect();
        assert_eq!(lookup[&vec![1]], 6);
        assert_eq!(lookup[&vec![2]], 7);
        assert_eq!(lookup[&vec![3]], 6);
        assert_eq!(lookup[&vec![4]], 2);
        assert_eq!(lookup[&vec![5]], 2);
    }

    #[test]
    fn classic_example_pairs_and_triples() {
        let txns = classic_transactions();
        let sets = FpGrowth::new(2).mine(&txns);
        let lookup: BTreeMap<Vec<u64>, usize> =
            sets.iter().map(|s| (s.items.clone(), s.support)).collect();
        assert_eq!(lookup[&vec![1, 2]], 4);
        assert_eq!(lookup[&vec![1, 3]], 4);
        assert_eq!(lookup[&vec![2, 3]], 4);
        assert_eq!(lookup[&vec![1, 2, 5]], 2);
        assert_eq!(lookup[&vec![1, 2, 3]], 2);
        assert!(!lookup.contains_key(&vec![3, 4]), "infrequent pair must be absent");
    }

    #[test]
    fn matches_naive_enumeration_on_the_classic_example() {
        let txns = classic_transactions();
        for min_support in [2usize, 3, 5] {
            let mut fp = FpGrowth::new(min_support).mine(&txns);
            let mut naive = naive_frequent_itemsets(&txns, min_support, 0);
            fp.sort_by(|a, b| a.items.cmp(&b.items));
            naive.sort_by(|a, b| a.items.cmp(&b.items));
            assert_eq!(fp, naive, "min_support {min_support}");
        }
    }

    #[test]
    fn max_len_caps_itemset_size() {
        let txns = classic_transactions();
        let sets = FpGrowth::new(2).with_max_len(2).mine(&txns);
        assert!(sets.iter().all(|s| s.items.len() <= 2));
        assert!(sets.iter().any(|s| s.items.len() == 2));
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert!(FpGrowth::new(1).mine(&[]).is_empty());
        let single = FpGrowth::new(1).mine(&[vec![7, 7, 7]]);
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].items, vec![7]);
        assert_eq!(single[0].support, 1, "duplicate items in a transaction count once");
        assert_eq!(FpGrowth::new(0).min_support(), 1, "support of zero is clamped");
    }

    #[test]
    fn high_min_support_prunes_everything() {
        let txns = classic_transactions();
        assert!(FpGrowth::new(100).mine(&txns).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn fp_growth_matches_naive_on_random_inputs(
            txns in proptest::collection::vec(
                proptest::collection::vec(0u64..8, 0..6), 0..14),
            min_support in 1usize..4,
        ) {
            let mut fp = FpGrowth::new(min_support).mine(&txns);
            let mut naive = naive_frequent_itemsets(&txns, min_support, 0);
            fp.sort_by(|a, b| a.items.cmp(&b.items));
            naive.sort_by(|a, b| a.items.cmp(&b.items));
            prop_assert_eq!(fp, naive);
        }
    }
}
