//! Clustering ST-cells by co-occurrence (the first half of the Section 7.2
//! baseline).
//!
//! ST-cells that frequently co-occur in entities' traces are merged into the same
//! cluster (union-find over frequent pairs mined with FP-growth); every remaining
//! cell becomes a singleton.  The cluster count is then reduced to a target size
//! by folding the smallest clusters together, so the per-entity bit vectors of the
//! bitmap index have a fixed, manageable width.

use crate::fpgrowth::FpGrowth;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A partition of ST-cells (identified by their packed `u64` representation) into
/// clusters `0..num_clusters`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellClustering {
    assignment: HashMap<u64, u32>,
    num_clusters: u32,
}

impl CellClustering {
    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.num_clusters as usize
    }

    /// The cluster of a cell, or `None` for a cell never seen during clustering.
    pub fn cluster_of(&self, cell: u64) -> Option<u32> {
        self.assignment.get(&cell).copied()
    }

    /// Number of clustered cells.
    pub fn num_cells(&self) -> usize {
        self.assignment.len()
    }

    /// Cluster sizes indexed by cluster id.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_clusters as usize];
        for &c in self.assignment.values() {
            sizes[c as usize] += 1;
        }
        sizes
    }
}

/// Simple union-find.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect() }
    }
    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Clusters cells from entity "transactions" (each transaction is one entity's
/// set of packed ST-cells).
///
/// * `min_support` — minimum number of entities in which a *pair* of cells must
///   co-occur to be merged;
/// * `target_clusters` — the desired number of clusters (the bit-vector width);
///   the actual count can be lower when there are fewer distinct cells.
pub fn cluster_cells(
    transactions: &[Vec<u64>],
    min_support: usize,
    target_clusters: usize,
) -> CellClustering {
    assert!(target_clusters >= 1, "need at least one cluster");
    // Distinct cells in first-seen order.
    let mut cells: Vec<u64> = Vec::new();
    let mut index_of: HashMap<u64, usize> = HashMap::new();
    for t in transactions {
        for &c in t {
            index_of.entry(c).or_insert_with(|| {
                cells.push(c);
                cells.len() - 1
            });
        }
    }
    if cells.is_empty() {
        return CellClustering { assignment: HashMap::new(), num_clusters: 1 };
    }

    // Frequent pairs → union-find merges.
    let pairs = FpGrowth::new(min_support).with_max_len(2).mine(transactions);
    let mut uf = UnionFind::new(cells.len());
    for set in pairs.iter().filter(|s| s.items.len() == 2) {
        uf.union(index_of[&set.items[0]], index_of[&set.items[1]]);
    }

    // Root → provisional cluster id.
    let mut provisional: HashMap<usize, u32> = HashMap::new();
    let mut cluster_of_cell: Vec<u32> = Vec::with_capacity(cells.len());
    for i in 0..cells.len() {
        let root = uf.find(i);
        let next = provisional.len() as u32;
        let id = *provisional.entry(root).or_insert(next);
        cluster_of_cell.push(id);
    }
    let mut num_clusters = provisional.len();

    // Fold down to the target width: merge the smallest clusters into buckets by
    // size-aware round robin (cluster id modulo target).
    if num_clusters > target_clusters {
        let remap: Vec<u32> =
            (0..num_clusters as u32).map(|c| c % target_clusters as u32).collect();
        for id in cluster_of_cell.iter_mut() {
            *id = remap[*id as usize];
        }
        num_clusters = target_clusters;
    }

    let assignment = cells.iter().zip(cluster_of_cell).map(|(&c, id)| (c, id)).collect();
    CellClustering { assignment, num_clusters: num_clusters as u32 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cooccurring_cells_share_a_cluster() {
        // Cells 1 and 2 always co-occur; cell 9 never co-occurs with them.
        let txns = vec![vec![1, 2], vec![1, 2], vec![1, 2, 9], vec![9]];
        let clustering = cluster_cells(&txns, 2, 10);
        assert_eq!(clustering.cluster_of(1), clustering.cluster_of(2));
        assert_ne!(clustering.cluster_of(1), clustering.cluster_of(9));
        assert!(clustering.num_clusters() <= 10);
        assert_eq!(clustering.num_cells(), 3);
    }

    #[test]
    fn transitive_cooccurrence_merges_chains() {
        // 1-2 co-occur, 2-3 co-occur → all three end up together.
        let txns = vec![vec![1, 2], vec![1, 2], vec![2, 3], vec![2, 3]];
        let clustering = cluster_cells(&txns, 2, 10);
        assert_eq!(clustering.cluster_of(1), clustering.cluster_of(3));
    }

    #[test]
    fn low_locality_data_produces_many_singletons() {
        // Every transaction has disjoint cells → no frequent pair → singletons.
        let txns: Vec<Vec<u64>> = (0..20).map(|i| vec![2 * i, 2 * i + 1]).collect();
        let clustering = cluster_cells(&txns, 2, 64);
        assert_eq!(clustering.num_clusters(), 40);
        let sizes = clustering.cluster_sizes();
        assert!(sizes.iter().all(|&s| s >= 1));
    }

    #[test]
    fn target_cluster_cap_is_respected() {
        let txns: Vec<Vec<u64>> = (0..100).map(|i| vec![i]).collect();
        let clustering = cluster_cells(&txns, 2, 8);
        assert_eq!(clustering.num_clusters(), 8);
        assert_eq!(clustering.cluster_sizes().iter().sum::<usize>(), 100);
        for cell in 0..100u64 {
            assert!(clustering.cluster_of(cell).unwrap() < 8);
        }
    }

    #[test]
    fn unknown_cells_and_empty_input() {
        let clustering = cluster_cells(&[], 2, 4);
        assert_eq!(clustering.num_cells(), 0);
        assert!(clustering.cluster_of(5).is_none());
        assert!(clustering.num_clusters() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_target_clusters_panics() {
        let _ = cluster_cells(&[vec![1]], 1, 0);
    }
}
