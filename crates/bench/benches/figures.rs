//! One Criterion group per figure of the paper's evaluation (Chapter 7).
//!
//! Each group wraps the corresponding `experiments::figs` runner at smoke scale,
//! so `cargo bench --bench figures` both times the experiments and regenerates
//! their tables (printed once per group via `--nocapture`-free logging to
//! stderr).  Individual benchmark ids carry the figure number so the output can
//! be matched against `EXPERIMENTS.md`.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::{figs, Scale, Table};

fn run_figure<F: Fn(&Scale) -> Table>(c: &mut Criterion, id: &str, runner: F) {
    let scale = minsig_bench::bench_scale();
    // Print the regenerated table once so a bench run doubles as a report.
    let table = runner(&scale);
    eprintln!("{}", table.to_text());
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function(id, |b| b.iter(|| runner(&scale)));
    group.finish();
}

fn fig7_1(c: &mut Criterion) {
    run_figure(c, "fig7_1_data_distribution", figs::fig7_1::run);
}
fn fig7_2(c: &mut Criterion) {
    run_figure(c, "fig7_2_adm_distribution", figs::fig7_2::run);
}
fn fig7_3(c: &mut Criterion) {
    run_figure(c, "fig7_3_pe_vs_hash_functions", figs::fig7_3::run);
}
fn fig7_4(c: &mut Criterion) {
    run_figure(c, "fig7_4_pe_vs_data_characteristics", figs::fig7_4::run);
}
fn fig7_5(c: &mut Criterion) {
    run_figure(c, "fig7_5_pe_vs_adm_parameters", figs::fig7_5::run);
}
fn fig7_6(c: &mut Criterion) {
    run_figure(c, "fig7_6_search_time_vs_memory", figs::fig7_6::run);
}
fn fig7_7(c: &mut Criterion) {
    run_figure(c, "fig7_7_pe_vs_k_vs_baseline", figs::fig7_7::run);
}
fn fig7_8(c: &mut Criterion) {
    run_figure(c, "fig7_8_indexing_cost", figs::fig7_8::run);
}
fn fig7_9(c: &mut Criterion) {
    run_figure(c, "fig7_9_update_cost", figs::fig7_9::run);
}

criterion_group!(
    name = figures;
    config = Criterion::default();
    targets = fig7_1, fig7_2, fig7_3, fig7_4, fig7_5, fig7_6, fig7_7, fig7_8, fig7_9
);
criterion_main!(figures);
