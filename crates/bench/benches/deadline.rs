//! Deadline-aware planner bench: latency distribution and measured recall
//! of budgeted sharded queries at budgets {∞, 2×, 1×, 0.5×} of the exact
//! p50, plus amortized batch-planning overhead at batch sizes {1, 16, 256}.
//!
//! The workload is the testkit's deadline-adversarial population: one
//! expensive clique shard (a long shared itinerary makes its tree search
//! slow and ties every partner's degree) next to cheap single-cell shards.
//! Probing the clique forces the planner to spend the budget where exact
//! execution hurts, which is the regime the budgeted arm exists for.
//!
//! After the criterion groups, the harness re-measures per-query wall
//! clock at each budget and emits **`BENCH_deadline.json`** — p50/p99
//! latency plus measured recall against the exact oracle per budget, and
//! the batch-vs-per-query planning cost at each batch size.  The pass
//! doubles as a CI gate: it **panics** (failing the bench job) if the
//! effectively-infinite budget ever diverges bitwise from the exact
//! oracle, if mean measured recall under any budget falls below the
//! configured floor (or a per-query `recall_estimate` does), or if
//! batch-256 planning costs more than 1.1× the same 256 per-query plans.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use minsig::shard::ShardedSnapshot;
use minsig::testkit::{measured_recall, DeadlineAdversarialConfig, Workload};
use minsig::{
    IndexConfig, PlannerConfig, QueryOptions, QueryStats, SchedulerConfig, ShardedMinSigIndex,
    TopKResult,
};
use std::hint::black_box;
use std::time::Instant;
use trace_model::{EntityId, PaperAdm};

const K: usize = 10;
const SHARDS: usize = 4;
const RECALL_FLOOR: f64 = 0.05;
/// Effectively infinite without risking `Instant` overflow on checked_add.
const UNBOUNDED_US: u64 = u64::MAX / 4;
const BATCH_SIZES: [usize; 3] = [1, 16, 256];
const PASSES: usize = 5;

fn bench_workload() -> (Workload, Vec<EntityId>) {
    Workload::deadline_adversarial(DeadlineAdversarialConfig {
        num_shards: SHARDS,
        expensive_entities: 64,
        chaff_entities: 2048,
        cheap_entities: 2048,
        itinerary_steps: 128,
        ..DeadlineAdversarialConfig::default()
    })
}

fn run_query(
    snapshot: &ShardedSnapshot,
    query: EntityId,
    measure: &PaperAdm,
    budget_us: Option<u64>,
) -> (Vec<TopKResult>, QueryStats) {
    let planner = match budget_us {
        None => PlannerConfig::default(),
        Some(us) => PlannerConfig::with_budget_and_floor(us, RECALL_FLOOR),
    };
    snapshot
        .top_k_with_planner(
            query,
            K,
            measure,
            QueryOptions::default(),
            SchedulerConfig::default(),
            planner,
        )
        .expect("deadline bench query answers")
}

fn deadline_bench(c: &mut Criterion) {
    let (workload, probes) = bench_workload();
    let measure = workload.measure();
    let index = ShardedMinSigIndex::build(
        &workload.sp,
        &workload.traces,
        IndexConfig::with_hash_functions(32),
        SHARDS,
    )
    .expect("deadline bench index builds");
    let snapshot = index.snapshot();

    // Criterion axes: unbudgeted exact vs an aggressive 1µs budget — the
    // two ends of the latency/recall trade the artifact pass sweeps.
    let mut group = c.benchmark_group("deadline/single_query");
    group.sample_size(10);
    for (name, budget) in [("exact", None), ("budget_1us", Some(1u64))] {
        group.throughput(Throughput::Elements(probes.len() as u64));
        group.bench_function(BenchmarkId::new("budget", name), |b| {
            b.iter(|| {
                for &query in &probes {
                    black_box(run_query(&snapshot, query, &measure, budget));
                }
            })
        });
    }
    group.finish();

    emit_artifact(&snapshot, &probes, &measure);
}

/// Nearest-rank percentile over an ascending-sorted sample.
fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    assert!(!sorted_us.is_empty());
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

fn emit_artifact(snapshot: &ShardedSnapshot, probes: &[EntityId], measure: &PaperAdm) {
    // Exact oracle answers and the exact latency distribution, which
    // calibrates the budget grid.
    let oracle: Vec<Vec<TopKResult>> =
        probes.iter().map(|&q| run_query(snapshot, q, measure, None).0).collect();
    // One untimed warmup pass keeps first-touch page faults and cold arena
    // rows out of every percentile below.
    for &query in probes {
        black_box(run_query(snapshot, query, measure, None));
    }
    // Per-query best-of-N wall clock (the repo's standard min-time
    // practice — a shared runner's scheduling spikes would otherwise own
    // every p99), percentiles taken across the query population.
    let mut exact_us: Vec<f64> = probes
        .iter()
        .map(|&query| {
            (0..PASSES)
                .map(|_| {
                    let start = Instant::now();
                    black_box(run_query(snapshot, query, measure, None));
                    start.elapsed().as_secs_f64() * 1e6
                })
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    exact_us.sort_by(|a, b| a.total_cmp(b));
    let exact_p50 = percentile(&exact_us, 0.5);
    let budget_for = |scale: f64| ((exact_p50 * scale) as u64).max(1);

    let budgets: [(&str, Option<u64>); 4] = [
        ("inf", Some(UNBOUNDED_US)),
        ("2x", Some(budget_for(2.0))),
        ("1x", Some(budget_for(1.0))),
        ("0.5x", Some(budget_for(0.5))),
    ];

    let mut rows = Vec::new();
    rows.push(format!(
        concat!(
            "    {{\"budget\": \"exact\", \"budget_us\": null, \"p50_us\": {:.1}, ",
            "\"p99_us\": {:.1}, \"mean_recall\": 1.000, \"degraded_queries\": 0}}"
        ),
        exact_p50,
        percentile(&exact_us, 0.99),
    ));

    for (name, budget) in budgets {
        let mut latencies_us: Vec<f64> = Vec::with_capacity(probes.len());
        let mut recall_sum = 0.0;
        let mut degraded = 0usize;
        for &query in probes {
            black_box(run_query(snapshot, query, measure, budget));
        }
        for (i, &query) in probes.iter().enumerate() {
            let mut best_us = f64::INFINITY;
            for pass in 0..PASSES {
                let start = Instant::now();
                let (results, stats) = run_query(snapshot, query, measure, budget);
                best_us = best_us.min(start.elapsed().as_secs_f64() * 1e6);
                if name == "inf" {
                    assert_eq!(
                        results, oracle[i],
                        "budget {name}: an effectively-infinite budget diverged from \
                         the exact oracle for query {query}"
                    );
                    assert!(
                        stats.degradation.is_none(),
                        "budget {name}: an effectively-infinite budget reported \
                         degradation for query {query}"
                    );
                }
                assert!(
                    stats.recall_estimate >= RECALL_FLOOR - 1e-9,
                    "budget {name}: recall_estimate {} fell below the floor \
                     {RECALL_FLOOR} for query {query}",
                    stats.recall_estimate
                );
                if pass == 0 {
                    recall_sum += measured_recall(&results, &oracle[i]);
                    if stats.degradation.is_some() {
                        degraded += 1;
                    }
                }
                black_box(&results);
            }
            latencies_us.push(best_us);
        }
        let mean_recall = recall_sum / probes.len() as f64;
        assert!(
            mean_recall >= RECALL_FLOOR,
            "budget {name}: mean measured recall {mean_recall:.3} fell below the \
             floor {RECALL_FLOOR}"
        );
        latencies_us.sort_by(|a, b| a.total_cmp(b));
        rows.push(format!(
            concat!(
                "    {{\"budget\": \"{}\", \"budget_us\": {}, \"p50_us\": {:.1}, ",
                "\"p99_us\": {:.1}, \"mean_recall\": {:.3}, \"degraded_queries\": {}}}"
            ),
            name,
            budget.unwrap(),
            percentile(&latencies_us, 0.5),
            percentile(&latencies_us, 0.99),
            mean_recall,
            degraded,
        ));
    }

    // Batch planning amortization: one `plan_batch` call vs the same
    // queries planned one `explain` at a time, best-of-N wall clock.
    let mut batch_queries: Vec<EntityId> = Vec::with_capacity(*BATCH_SIZES.last().unwrap());
    while batch_queries.len() < *BATCH_SIZES.last().unwrap() {
        batch_queries.extend_from_slice(probes);
    }
    let mut gate_ratio = 0.0;
    for batch in BATCH_SIZES {
        let queries = &batch_queries[..batch];
        let mut batch_best = f64::INFINITY;
        let mut per_query_best = f64::INFINITY;
        for _ in 0..PASSES {
            let start = Instant::now();
            black_box(
                snapshot
                    .plan_batch(queries, K, measure, PlannerConfig::default())
                    .expect("batch plans"),
            );
            batch_best = batch_best.min(start.elapsed().as_secs_f64());

            let start = Instant::now();
            for &query in queries {
                black_box(
                    snapshot
                        .explain(query, K, measure, PlannerConfig::default())
                        .expect("per-query plans"),
                );
            }
            per_query_best = per_query_best.min(start.elapsed().as_secs_f64());
        }
        let ratio = batch_best / per_query_best.max(1e-12);
        if batch == *BATCH_SIZES.last().unwrap() {
            gate_ratio = ratio;
        }
        rows.push(format!(
            concat!(
                "    {{\"batch\": {}, \"batch_planning_us\": {:.1}, ",
                "\"per_query_planning_us\": {:.1}, \"ratio\": {:.3}}}"
            ),
            batch,
            batch_best * 1e6,
            per_query_best * 1e6,
            ratio,
        ));
    }
    assert!(
        gate_ratio <= 1.1,
        "batch-{} planning cost {gate_ratio:.3}x the per-query plans \
         (gate: <= 1.1x — batch planning must amortize, not regress)",
        BATCH_SIZES.last().unwrap(),
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"deadline\",\n",
            "  \"shards\": {},\n",
            "  \"queries\": {},\n",
            "  \"k\": {},\n",
            "  \"recall_floor\": {},\n",
            "  \"exact_p50_us\": {:.1},\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        SHARDS,
        probes.len(),
        K,
        RECALL_FLOOR,
        exact_p50,
        rows.join(",\n"),
    );
    // `cargo bench` runs with the package directory as cwd; anchor the
    // artifact at the workspace root, where CI picks it up.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_deadline.json");
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(
    name = deadline;
    config = Criterion::default();
    targets = deadline_bench
);
criterion_main!(deadline);
