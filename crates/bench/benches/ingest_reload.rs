//! Durability and streaming-ingestion baselines:
//!
//! * `ingest_throughput` — presence records per second applied through
//!   [`IngestBuffer::flush`] for batch sizes {100, 1k, 10k}, against the
//!   single-record `upsert_entity` path at the same record count (the win the
//!   batched delta path exists for);
//! * `reload_latency` — `MinSigIndex::open` of a persisted index versus a
//!   from-scratch `MinSigIndex::build` over the same data (the restart cost
//!   the persistence layer eliminates), plus the `save` cost itself.
//!
//! `Throughput::Elements` reports records/s (ingest) so future PRs can
//! compare against this baseline without post-processing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use minsig::{IndexConfig, IngestBuffer, MinSigIndex};
use minsig_bench::bench_dataset;
use mobility::SynDataset;
use std::hint::black_box;
use trace_model::{DigitalTrace, EntityId, Period, PresenceInstance};

const BATCH_SIZES: [usize; 3] = [100, 1_000, 10_000];

fn fixture() -> (SynDataset, MinSigIndex) {
    let dataset = bench_dataset();
    let index = minsig_bench::bench_index(&dataset, 64);
    (dataset, index)
}

/// A deterministic stream of new detections: 3/4 touch existing entities,
/// 1/4 introduce new ones.
fn stream(dataset: &SynDataset, n: usize) -> Vec<PresenceInstance> {
    let base = dataset.sp_index().base_units().to_vec();
    let existing = dataset.traces.num_entities() as u64;
    (0..n as u64)
        .map(|i| {
            let entity =
                if i % 4 == 0 { EntityId(1_000_000 + i % 97) } else { EntityId(i * 31 % existing) };
            let start = 10_000 + (i % 500) * 60;
            PresenceInstance::new(
                entity,
                base[((i * 13) as usize) % base.len()],
                Period::new(start, start + 45).unwrap(),
            )
        })
        .collect()
}

fn ingest_throughput(c: &mut Criterion) {
    let (dataset, index) = fixture();
    let base = index.snapshot();
    let mut group = c.benchmark_group("ingest_throughput");
    group.sample_size(10);
    for size in BATCH_SIZES {
        let records = stream(&dataset, size);
        group.throughput(Throughput::Elements(size as u64));
        group.bench_function(BenchmarkId::new("batched_flush", size), |b| {
            b.iter(|| {
                // Promote the shared base snapshot into a fresh handle: the
                // flush pays exactly the production cost — one copy-on-write
                // of the snapshot (readers still hold `base`) plus the delta
                // hashing and tree re-routing — and no fixture rebuild.
                let mut fresh = MinSigIndex::from_snapshot(base.clone());
                let mut buffer = IngestBuffer::with_capacity(records.len());
                buffer.extend(records.iter().copied());
                black_box(buffer.flush(&mut fresh).unwrap())
            })
        });
    }
    // The per-record alternative at the smallest size only (it re-hashes each
    // touched entity's whole trace per call, so larger sizes take minutes).
    let size = BATCH_SIZES[0];
    let records = stream(&dataset, size);
    group.throughput(Throughput::Elements(size as u64));
    group.bench_function(BenchmarkId::new("per_record_upsert", size), |b| {
        b.iter(|| {
            let mut fresh = MinSigIndex::from_snapshot(base.clone());
            let mut traces = dataset.traces.clone();
            for record in &records {
                // The single-record path needs the entity's FULL trace and
                // re-hashes all of it — exactly what batching avoids.
                let mut trace: DigitalTrace =
                    traces.get(record.entity).cloned().unwrap_or_default();
                trace.push(*record);
                black_box(fresh.upsert_entity(record.entity, &trace).unwrap());
                traces.insert_trace(record.entity, trace);
            }
        })
    });
    group.finish();
}

fn reload_latency(c: &mut Criterion) {
    let (dataset, index) = fixture();
    let path =
        std::env::temp_dir().join(format!("ingest-reload-bench-{}.msix", std::process::id()));
    index.save(&path).expect("bench index saves");
    let mut group = c.benchmark_group("reload_latency");
    group.sample_size(10);
    group.bench_function("open_persisted", |b| {
        b.iter(|| black_box(MinSigIndex::open(&path).unwrap()))
    });
    group.bench_function("rebuild_from_traces", |b| {
        b.iter(|| {
            black_box(
                MinSigIndex::build(
                    dataset.sp_index(),
                    &dataset.traces,
                    IndexConfig::with_hash_functions(64),
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("save", |b| b.iter(|| index.save(black_box(&path)).unwrap()));
    group.finish();
    let _ = std::fs::remove_file(&path);
}

criterion_group!(benches, ingest_throughput, reload_latency);
criterion_main!(benches);
