//! Hot-path kernel microbenchmarks and their CI regression gate.
//!
//! Three layers, matching the flat-kernel design (`minsig::kernel`):
//!
//! 1. **ns/op** of the intersection kernels — three-way-compare merge,
//!    explicit-mask merge, galloping, the SIMD blockwise kernel, and the
//!    size-ratio dispatcher — over deterministic sorted sets on a full
//!    size × skew grid: larger-side sizes {16, 256, 4096} × size ratios
//!    {1×, 8×, 64×}.  A comparison is one element step of the two-pointer
//!    walk, so `comparisons = |a| + |b|` per call.
//! 2. **ns/degree** of the association-degree hot loop: the owned path
//!    (`AssociationMeasure::degree` over `CellSetSequence` maps) against the
//!    arena's fused SoA loop (`CandidateArena::degree_into`), on the shared
//!    600-entity bench dataset.  Every fused degree is checked **bitwise**
//!    against the owned value first — any drift panics the bench job.
//! 3. A mini **shard run** — 8 shards, planned mode, the skewed and
//!    localized 5k-entity shard-scaling populations — for a fresh QPS
//!    figure next to the pre-change numbers.
//!
//! After the criterion groups, the harness re-measures each layer with
//! best-of-N wall clocks and writes **`BENCH_kernel.json`** at the
//! workspace root.  The artifact embeds the committed baseline
//! (`crates/bench/baselines/kernel.json`), which carries the pre-change
//! shard-scaling QPS and the arena ns/degree recorded when the kernels
//! landed, and records whether the `simd` cargo feature routed the
//! dispatcher (CI runs the bench both ways).  Three gates **panic**
//! (failing the bench job):
//!
//! * any intersection kernel diverging from the merge oracle on any grid
//!   shape, or any fused arena degree diverging bitwise from the owned
//!   oracle;
//! * the SIMD kernel losing to the scalar merge in the similar-size regime
//!   at ≥ 256 elements (the regime the dispatcher routes to it);
//! * arena ns/degree regressing more than 25% over the committed baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use minsig::{
    IndexConfig, PlannerConfig, QueryOptions, QueryView, SchedulerConfig, ShardedMinSigIndex,
    TopKResult,
};
use minsig_bench::{
    bench_dataset, bench_index, bench_measure, bench_queries, planner_bench_workload,
    shard_bench_workload, SHARD_BENCH_ENTITIES,
};
use std::hint::black_box;
use std::time::Instant;
use trace_model::kernel::{
    intersection_len, intersection_len_gallop, intersection_len_masked, intersection_len_merge,
    intersection_len_simd,
};
use trace_model::{AssociationMeasure, EntityId, LevelOverlap, PaperAdm};

/// The committed baseline this run is gated against.
const BASELINE: &str = include_str!("../baselines/kernel.json");

/// Maximum tolerated arena ns/degree, as a multiple of the baseline.
const NS_PER_DEGREE_TOLERANCE: f64 = 1.25;

const K: usize = 10;

/// A deterministic *pseudo-random* sorted set: `len` strictly-increasing
/// values with xorshift-drawn gaps in `1..=8`.  Random gaps (rather than a
/// fixed stride) keep the two-pointer comparisons unpredictable — the regime
/// the kernels are selected for; a strided set would hand any branchy
/// formulation a perfect branch predictor and measure nothing real.
fn make_set(len: usize, seed: u64) -> Vec<u64> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut value = 0u64;
    (0..len)
        .map(|_| {
            value += next() % 8 + 1;
            value
        })
        .collect()
}

/// The size × skew grid the kernels are measured on: larger-side sizes
/// {16, 256, 4096} × size ratios {1×, 8×, 64×} (the smaller side is
/// `size / skew`, clamped to 1).  Both sides draw gaps from the same dense
/// domain, so intersections are non-trivial on every shape.
fn shapes() -> Vec<(String, Vec<u64>, Vec<u64>)> {
    let mut out = Vec::new();
    for &size in &[16usize, 256, 4096] {
        for &skew in &[1usize, 8, 64] {
            let small = (size / skew).max(1);
            out.push((
                format!("{small}x{size}_r{skew}"),
                make_set(small, 42),
                make_set(size, 1337),
            ));
        }
    }
    out
}

type IntersectionFn = fn(&[u64], &[u64]) -> usize;

const KERNELS: [(&str, IntersectionFn); 5] = [
    ("merge", intersection_len_merge),
    ("masked", intersection_len_masked),
    ("gallop", intersection_len_gallop),
    ("simd", intersection_len_simd),
    ("dispatch", intersection_len),
];

fn kernel_micro(c: &mut Criterion) {
    let shapes = shapes();
    let mut group = c.benchmark_group("kernel/intersection");
    group.sample_size(20);
    for (shape, a, b) in &shapes {
        for (name, f) in KERNELS {
            group.throughput(Throughput::Elements((a.len() + b.len()) as u64));
            group.bench_function(BenchmarkId::new(name.to_string(), shape), |bch| {
                bch.iter(|| black_box(f(black_box(a), black_box(b))))
            });
        }
    }
    group.finish();

    // The degree loop on the shared 600-entity dataset.
    let dataset = bench_dataset();
    let index = bench_index(&dataset, 32);
    let snapshot = index.snapshot();
    let measure = bench_measure(&dataset);
    let query = bench_queries(&dataset, 1)[0];
    let query_seq = snapshot.sequences().get(&query).expect("query entity is indexed").clone();

    let mut group = c.benchmark_group("kernel/degree");
    group.sample_size(10);
    group.throughput(Throughput::Elements(snapshot.num_entities() as u64));
    group.bench_function("owned", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for seq in snapshot.sequences().values() {
                acc += measure.degree(&query_seq, seq);
            }
            black_box(acc)
        })
    });
    group.bench_function("arena_fused", |b| {
        let arena = snapshot.arena();
        let view = QueryView::new(&query_seq);
        let mut scratch = LevelOverlap::default();
        b.iter(|| {
            let mut acc = 0.0f64;
            for pos in 0..arena.len() {
                acc += arena.degree_into(pos, &view, &measure, &mut scratch);
            }
            black_box(acc)
        })
    });
    group.finish();

    // The JSON artifact plus the two CI gates.
    write_artifact_and_gate(&snapshot, &query_seq, &measure);
}

/// Best-of-N wall clock of `reps` calls to `f`, in nanoseconds per call.
fn best_ns_per_call(passes: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..passes {
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    best * 1e9 / reps as f64
}

/// Extracts a numeric field from the (flat, hand-written) baseline JSON.
fn baseline_field(key: &str) -> f64 {
    let needle = format!("\"{key}\":");
    let at = BASELINE.find(&needle).unwrap_or_else(|| panic!("baseline is missing {key}"));
    let rest = &BASELINE[at + needle.len()..];
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().unwrap_or_else(|e| panic!("baseline {key} is not a number: {e}"))
}

fn write_artifact_and_gate(
    snapshot: &minsig::IndexSnapshot,
    query_seq: &trace_model::CellSetSequence,
    measure: &PaperAdm,
) {
    const PASSES: usize = 5;
    let mut rows = Vec::new();

    // Layer 1: ns/op of every kernel on every grid shape, with two gates —
    // every kernel must return the merge oracle's exact count, and the SIMD
    // kernel must not lose to the scalar merge in the regime the dispatcher
    // hands it (similar sizes, ≥ 256 elements).
    for (shape, a, b) in &shapes() {
        let comparisons = (a.len() + b.len()) as f64;
        let expect = intersection_len_merge(a, b);
        let mut merge_ns = f64::NAN;
        let mut simd_ns = f64::NAN;
        for (name, f) in KERNELS {
            assert_eq!(
                f(a, b),
                expect,
                "kernel {name} diverged from the merge oracle on shape {shape}"
            );
            let ns_call = best_ns_per_call(PASSES, 400, || {
                black_box(f(black_box(a), black_box(b)));
            });
            match name {
                "merge" => merge_ns = ns_call,
                "simd" => simd_ns = ns_call,
                _ => {}
            }
            rows.push(format!(
                concat!(
                    "    {{\"layer\": \"intersection\", \"kernel\": \"{}\", \"shape\": \"{}\", ",
                    "\"ns_per_call\": {:.1}, \"ns_per_comparison\": {:.4}}}"
                ),
                name,
                shape,
                ns_call,
                ns_call / comparisons,
            ));
        }
        if a.len() == b.len() && b.len() >= 256 {
            assert!(
                simd_ns <= merge_ns,
                "SIMD kernel lost to the scalar merge on similar-size shape {shape} \
                 ({simd_ns:.1} ns vs {merge_ns:.1} ns): the dispatcher routes this \
                 regime to SIMD, so it must at least break even"
            );
        }
    }

    // Layer 2: ns/degree, owned vs fused — gated on bitwise conformance and
    // on the committed ns/degree baseline.
    let arena = snapshot.arena();
    let view = QueryView::new(query_seq);
    let mut scratch = LevelOverlap::default();
    let entities = snapshot.num_entities() as f64;
    for (seq, pos) in snapshot.sequences().values().zip(0..arena.len()) {
        let owned = measure.degree(query_seq, seq);
        let fused = arena.degree_into(pos, &view, measure, &mut scratch);
        assert!(
            owned.to_bits() == fused.to_bits(),
            "arena degree diverged from the owned oracle at arena position {pos}: \
             {fused} vs {owned}"
        );
    }
    let owned_ns = best_ns_per_call(PASSES, 20, || {
        let mut acc = 0.0f64;
        for seq in snapshot.sequences().values() {
            acc += measure.degree(query_seq, seq);
        }
        black_box(acc);
    }) / entities;
    let arena_ns = best_ns_per_call(PASSES, 20, || {
        let mut acc = 0.0f64;
        for pos in 0..arena.len() {
            acc += arena.degree_into(pos, &view, measure, &mut scratch);
        }
        black_box(acc);
    }) / entities;
    rows.push(format!(
        "    {{\"layer\": \"degree\", \"path\": \"owned\", \"ns_per_degree\": {owned_ns:.1}}}"
    ));
    rows.push(format!(
        "    {{\"layer\": \"degree\", \"path\": \"arena_fused\", \"ns_per_degree\": {arena_ns:.1}}}"
    ));
    let ceiling = baseline_field("ns_per_degree_arena") * NS_PER_DEGREE_TOLERANCE;
    assert!(
        arena_ns <= ceiling,
        "arena ns/degree regressed: measured {arena_ns:.1} ns exceeds the gate of \
         {ceiling:.1} ns (committed baseline × {NS_PER_DEGREE_TOLERANCE}); if the \
         regression is intended, refresh crates/bench/baselines/kernel.json"
    );

    // Layer 3: fresh planned-mode QPS at 8 shards on both shard-scaling
    // populations, answers checked against the unplanned oracle.
    let (skewed, skewed_queries) = shard_bench_workload();
    rows.push(shard_row("skewed", &skewed, &skewed_queries));
    let (localized, localized_queries) = planner_bench_workload();
    rows.push(shard_row("localized", &localized, &localized_queries));

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"kernel\",\n",
            "  \"simd_feature\": {},\n",
            "  \"population\": {},\n",
            "  \"k\": {},\n",
            "  \"results\": [\n{}\n  ],\n",
            "  \"baseline\": {}\n",
            "}}\n"
        ),
        cfg!(feature = "simd"),
        SHARD_BENCH_ENTITIES,
        K,
        rows.join(",\n"),
        BASELINE.trim_end(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernel.json");
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// One timed planned-mode pass at 8 shards over `queries`, answers asserted
/// equal to the independent-mode oracle; returns the artifact row.
fn shard_row(name: &str, workload: &minsig::testkit::Workload, queries: &[EntityId]) -> String {
    const PASSES: usize = 3;
    let measure = workload.measure();
    let index = ShardedMinSigIndex::build(
        &workload.sp,
        &workload.traces,
        IndexConfig::with_hash_functions(32),
        8,
    )
    .expect("sharded bench index builds");
    let snapshot = index.snapshot();
    let options = QueryOptions::default();
    let oracle: Vec<Vec<TopKResult>> = queries
        .iter()
        .map(|&q| {
            snapshot
                .top_k_with_scheduler(q, K, &measure, options, SchedulerConfig::independent())
                .expect("oracle query answers")
                .0
        })
        .collect();
    let mut best = f64::INFINITY;
    for _ in 0..PASSES {
        let start = Instant::now();
        for (i, &query) in queries.iter().enumerate() {
            let (results, _) = snapshot
                .top_k_with_planner(
                    query,
                    K,
                    &measure,
                    options,
                    SchedulerConfig::default(),
                    PlannerConfig::default(),
                )
                .expect("planned query answers");
            assert_eq!(
                results, oracle[i],
                "{name}/planned/8 shards: answers diverged from the unplanned oracle \
                 for query {query}"
            );
            black_box(&results);
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    let qps = queries.len() as f64 / best.max(1e-12);
    format!(
        concat!(
            "    {{\"layer\": \"shard\", \"workload\": \"{}\", \"shards\": 8, ",
            "\"mode\": \"planned\", \"qps\": {:.1}}}"
        ),
        name, qps,
    )
}

criterion_group!(
    name = kernel;
    config = Criterion::default();
    targets = kernel_micro
);
criterion_main!(kernel);
