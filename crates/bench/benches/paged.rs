//! Out-of-core sharded query throughput: QPS of the paged sharded snapshot
//! ([`PagedShardedSnapshot`]) across buffer-pool budgets
//! {10%, 25%, 50%, 100% of the trace data} × eviction policies
//! {LRU, LRU-2, FIFO}, on the ≥5k-entity skewed shard-bench population.
//!
//! Criterion groups time the single-query path on the two budget extremes;
//! the JSON artifact pass then re-measures every (budget, policy) cell and
//! emits **`BENCH_paged.json`** — QPS alongside the pool's hit / miss /
//! eviction counters and the simulated I/O time, the Figure 7.6 "search time
//! vs. memory size" curve for the sharded engine.
//!
//! The pass doubles as a CI gate: it **panics** (failing the bench job) if a
//! paged answer ever differs *bitwise* from the in-memory sharded oracle —
//! including the 10%-budget cell, where the trace data is 10× the pool, the
//! ISSUE's exact-answers-at-10×-memory acceptance bar — or if a query
//! finishes with a pin still outstanding.
//!
//! A final **layout comparison** times the 25%-budget LRU cell twice — flat
//! arena rows ([`PagedArenaSource`](minsig::PagedArenaSource), the default)
//! against the owned-sequence `PagedSource`
//! ([`with_flat_rows(false)`](minsig::PagedShardedSnapshot::with_flat_rows))
//! — and **panics** if the flat layout falls more than 10% below the owned
//! one (the noise allowance for the shared runner): the arena rows exist to
//! be at least as fast out of core as re-decoding sequences per evaluation.
//!
//! [`PagedShardedSnapshot`]: minsig::PagedShardedSnapshot

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use minsig::shard::ShardedSnapshot;
use minsig::{IndexConfig, ShardedMinSigIndex, TopKResult};
use minsig_bench::{shard_bench_workload, SHARD_BENCH_ENTITIES};
use std::hint::black_box;
use std::time::Instant;
use trace_model::EntityId;
use trace_storage::{PagedTraceStore, PoolConfig, ReplacerPolicy, PAGE_SIZE};

const SHARDS: usize = 4;
const K: usize = 10;
/// Pool budget as a fraction of the store's trace data.
const FRACTIONS: [f64; 4] = [0.1, 0.25, 0.5, 1.0];
const POLICIES: [(ReplacerPolicy, &str); 3] = [
    (ReplacerPolicy::LruK(1), "lru"),
    (ReplacerPolicy::LruK(2), "lru2"),
    (ReplacerPolicy::Fifo, "fifo"),
];

fn pool_config(store: &PagedTraceStore, fraction: f64, policy: ReplacerPolicy) -> PoolConfig {
    let budget = ((store.data_bytes() as f64 * fraction) as usize).max(PAGE_SIZE);
    PoolConfig { capacity_bytes: budget, ..PoolConfig::default() }.with_replacer(policy)
}

fn paged_qps(c: &mut Criterion) {
    let (workload, queries) = shard_bench_workload();
    let measure = workload.measure();
    let index = ShardedMinSigIndex::build(
        &workload.sp,
        &workload.traces,
        IndexConfig::with_hash_functions(32),
        SHARDS,
    )
    .expect("sharded bench index builds");
    let snapshot = index.snapshot();
    let store = PagedTraceStore::build(&workload.traces, 8);

    let mut group = c.benchmark_group("paged/single_query");
    group.sample_size(10);
    for fraction in [0.1, 1.0] {
        for (policy, policy_name) in POLICIES {
            let pool = store.pool(pool_config(&store, fraction, policy));
            let paged = snapshot.paged(&store, &pool);
            group.throughput(Throughput::Elements(queries.len() as u64));
            group.bench_function(
                BenchmarkId::new(format!("{policy_name}/budget"), format!("{fraction}")),
                |b| {
                    b.iter(|| {
                        for &query in &queries {
                            black_box(paged.top_k(query, K, &measure).expect("paged bench query"));
                        }
                    })
                },
            );
        }
    }
    group.finish();

    emit_artifact(&snapshot, &store, &queries, &measure, &workload);
}

/// One timed pass per (budget fraction, policy) cell with the pool counter
/// deltas, gated on bitwise equality with the in-memory sharded oracle.
fn emit_artifact(
    snapshot: &ShardedSnapshot,
    store: &PagedTraceStore,
    queries: &[EntityId],
    measure: &trace_model::PaperAdm,
    workload: &minsig::testkit::Workload,
) {
    const PASSES: usize = 3;
    let oracle: Vec<Vec<TopKResult>> =
        queries.iter().map(|&q| snapshot.top_k(q, K, measure).expect("oracle answers").0).collect();

    let mut rows = Vec::new();
    for fraction in FRACTIONS {
        for (policy, policy_name) in POLICIES {
            let config = pool_config(store, fraction, policy);
            let pool = store.pool(config);
            let paged = snapshot.paged(store, &pool);
            if fraction <= 0.1 {
                assert!(
                    store.data_bytes() >= 10 * config.capacity_bytes,
                    "the 10% cell must hold 10x more data than pool \
                     ({} data bytes vs {} budget)",
                    store.data_bytes(),
                    config.capacity_bytes,
                );
            }
            let mut best = f64::INFINITY;
            let mut planning_us = 0u64;
            let before = pool.stats();
            for _ in 0..PASSES {
                planning_us = 0;
                let start = Instant::now();
                for (i, &query) in queries.iter().enumerate() {
                    let (results, stats) = paged.top_k(query, K, measure).expect("paged answers");
                    planning_us += stats.planning_us;
                    assert_eq!(
                        results, oracle[i],
                        "{policy_name} @ {fraction}: paged answer diverged from the \
                         in-memory oracle for query {query}"
                    );
                    black_box(&results);
                }
                best = best.min(start.elapsed().as_secs_f64());
            }
            assert_eq!(
                pool.pinned_frames(),
                0,
                "{policy_name} @ {fraction}: a query left a pin outstanding"
            );
            let io = pool.stats().since(&before);
            let qps = queries.len() as f64 / best.max(1e-12);
            rows.push(format!(
                concat!(
                    "    {{\"budget_fraction\": {}, \"policy\": \"{}\", \"qps\": {:.1}, ",
                    "\"pool_hits\": {}, \"pool_misses\": {}, \"pool_evictions\": {}, ",
                    "\"simulated_io_us\": {}, \"planning_us\": {}}}"
                ),
                fraction,
                policy_name,
                qps,
                io.hits,
                io.misses,
                io.evictions,
                io.simulated_us,
                planning_us,
            ));
        }
    }

    // Layout comparison at the 25% budget, LRU: flat arena rows (the
    // default hot path) vs the owned-sequence decode path, identical pool
    // configuration, answers still gated bitwise against the oracle.
    let mut layout_qps = [0.0f64; 2];
    for (slot, (flat, layout_name)) in
        [(true, "arena_rows"), (false, "owned_sequences")].into_iter().enumerate()
    {
        let pool = store.pool(pool_config(store, 0.25, ReplacerPolicy::LruK(1)));
        let paged = snapshot.paged(store, &pool).with_flat_rows(flat);
        let mut best = f64::INFINITY;
        let mut classified = 0u64;
        for _ in 0..PASSES {
            classified = 0;
            let start = Instant::now();
            for (i, &query) in queries.iter().enumerate() {
                let (results, stats) = paged.top_k(query, K, measure).expect("paged answers");
                assert_eq!(
                    results, oracle[i],
                    "layout {layout_name}: paged answer diverged from the in-memory \
                     oracle for query {query}"
                );
                classified += stats.kernel_dispatch.total();
                black_box(&results);
            }
            best = best.min(start.elapsed().as_secs_f64());
        }
        assert_eq!(pool.pinned_frames(), 0, "layout {layout_name}: a query left a pin");
        layout_qps[slot] = queries.len() as f64 / best.max(1e-12);
        rows.push(format!(
            concat!(
                "    {{\"budget_fraction\": 0.25, \"policy\": \"lru\", \"layout\": \"{}\", ",
                "\"qps\": {:.1}, \"kernels_classified\": {}}}"
            ),
            layout_name, layout_qps[slot], classified,
        ));
    }
    assert!(
        layout_qps[0] >= 0.9 * layout_qps[1],
        "flat arena rows regressed the 25%-budget paged path: {:.1} qps vs {:.1} qps \
         for the owned-sequence layout (gate: >= 90%)",
        layout_qps[0],
        layout_qps[1],
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"paged\",\n",
            "  \"population\": {},\n",
            "  \"indexed_entities\": {},\n",
            "  \"shards\": {},\n",
            "  \"queries\": {},\n",
            "  \"k\": {},\n",
            "  \"data_bytes\": {},\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        SHARD_BENCH_ENTITIES,
        workload.entities().len(),
        SHARDS,
        queries.len(),
        K,
        store.data_bytes(),
        rows.join(",\n"),
    );
    // `cargo bench` runs with the package directory as cwd; anchor the
    // artifact at the workspace root, where CI picks it up.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_paged.json");
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(
    name = paged;
    config = Criterion::default();
    targets = paged_qps
);
criterion_main!(paged);
