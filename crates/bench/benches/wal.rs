//! Durable-ingest cost profile: what a write-ahead commit costs versus a full
//! checkpoint, and how fast crash recovery replays the log.
//!
//! The criterion group times the raw commit path — one `LogManager::append`
//! (fsync included) per batch size.  The JSON artifact pass then builds
//! durable sharded indexes over growing populations and emits
//! **`BENCH_wal.json`** with, per population: the pure WAL commit latency per
//! batch size, the full durable-ingest latency (commit + copy-on-write
//! flush), the checkpoint cost, and recovery replay throughput after a
//! simulated crash.
//!
//! The pass doubles as a CI gate: it **panics** (failing the bench job) if
//!
//! * a recovered index's answer ever differs bitwise from the live index it
//!   is recovering — the durability acceptance bar;
//! * the WAL commit stops being O(batch): committing the same batch must not
//!   get more than [`COMMIT_FLAT_FACTOR`]× slower on the largest population
//!   than on the smallest (the commit writes the batch, never the index);
//! * a WAL commit is not strictly cheaper than the O(shard) checkpoint it
//!   amortises.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use minsig::durable::{encode_sub_batch, DurableShardedMinSigIndex};
use minsig::testkit::{StreamConfig, UniformConfig, Workload};
use minsig::{IndexConfig, ShardedMinSigIndex};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;
use trace_model::{EntityId, PresenceInstance};
use trace_storage::{LogConfig, LogManager};

const SHARDS: usize = 4;
const K: usize = 10;
/// Populations the artifact pass scales over.
const SIZES: [u64; 3] = [500, 2_000, 8_000];
/// Records per committed batch.
const BATCH_SIZES: [usize; 3] = [64, 256, 1_024];
/// Batches replayed by the recovery measurement.
const RECOVERY_BATCHES: usize = 8;
/// Commit latency may not grow more than this across a 16× population jump.
const COMMIT_FLAT_FACTOR: f64 = 8.0;

fn workload(entities: u64) -> Workload {
    Workload::uniform(UniformConfig { entities, visits: 5, seed: 42, ..UniformConfig::default() })
}

fn stream(w: &Workload, entities: u64, i: u64, records: usize) -> Vec<PresenceInstance> {
    w.stream(StreamConfig {
        records,
        existing_entities: entities,
        new_entity_base: 10_000 + i * 100,
        new_entity_span: 8,
        start_tick: 20_000 + i * 1_000,
        seed: i,
        ..StreamConfig::default()
    })
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wal-bench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn best_of<F: FnMut()>(passes: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..passes {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn wal_commit(c: &mut Criterion) {
    let w = workload(2_000);
    let dir = temp_dir("criterion");
    let (mut log, _) = LogManager::open(&dir, 0, LogConfig::default()).expect("bench log opens");

    let mut group = c.benchmark_group("wal/commit");
    group.sample_size(10);
    for batch in BATCH_SIZES {
        let payload = encode_sub_batch(1, &stream(&w, 2_000, 0, batch));
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_function(BenchmarkId::new("append_fsync", batch), |b| {
            b.iter(|| {
                black_box(log.append(black_box(&payload)).expect("bench append"));
            })
        });
        // Keep the log from growing across the whole run.
        let last = log.last_lsn().unwrap_or(0);
        log.truncate_through(last).expect("bench log truncates");
    }
    group.finish();
    drop(log);
    let _ = std::fs::remove_dir_all(&dir);

    emit_artifact();
}

struct SizeRow {
    entities: u64,
    indexed_entities: usize,
    checkpoint_ms: f64,
    /// `(batch_size, wal_commit_ms, ingest_ms)` per batch size.
    commits: Vec<(usize, f64, f64)>,
    replay_ms: f64,
    replay_records: usize,
}

/// One durable index per population: commit and checkpoint costs, then a
/// crash and a timed recovery, gated on answer equality with the live index.
fn emit_artifact() {
    let log_config = LogConfig::default(); // fsync on: honest commit latency
    let mut size_rows = Vec::new();

    for &entities in &SIZES {
        let w = workload(entities);
        let measure = w.measure();
        let dir = temp_dir(&format!("artifact-{entities}"));
        let built = ShardedMinSigIndex::build(
            &w.sp,
            &w.traces,
            IndexConfig::with_hash_functions(16),
            SHARDS,
        )
        .expect("sharded bench index builds");
        let indexed_entities = built.num_entities();
        let mut durable =
            DurableShardedMinSigIndex::create(&dir, built, log_config).expect("durable creates");

        // Pure WAL commit: append + fsync of the serialised batch, measured
        // on a scratch log in the same directory (same filesystem), so the
        // number reflects durability alone — no copy-on-write flush.
        let (mut scratch, _) =
            LogManager::open(&dir.join("scratch-wal"), 0, log_config).expect("scratch log opens");
        let mut commits = Vec::new();
        for (i, &batch) in BATCH_SIZES.iter().enumerate() {
            let records = stream(&w, entities, 900 + i as u64, batch);
            let payload = encode_sub_batch(1, &records);
            let wal_commit_s = best_of(7, || {
                black_box(scratch.append(&payload).expect("scratch append"));
            });
            let ingest_start = Instant::now();
            durable.ingest(records).expect("durable ingest");
            let ingest_s = ingest_start.elapsed().as_secs_f64();
            commits.push((batch, wal_commit_s * 1e3, ingest_s * 1e3));
        }
        drop(scratch);
        let _ = std::fs::remove_dir_all(dir.join("scratch-wal"));

        // Full checkpoint: every shard file rewritten — the O(shard) cost the
        // O(batch) commits amortise.
        let checkpoint_s = best_of(3, || durable.checkpoint().expect("checkpoint"));
        let checkpoint_ms = checkpoint_s * 1e3;
        for &(batch, wal_commit_ms, _) in &commits {
            assert!(
                wal_commit_ms < checkpoint_ms,
                "{entities} entities: an O(batch) commit ({batch} records, {wal_commit_ms:.3} ms) \
                 must be cheaper than the O(shard) checkpoint ({checkpoint_ms:.3} ms)"
            );
        }

        // Crash after RECOVERY_BATCHES un-checkpointed batches, then recover.
        let mut replay_records = 0;
        for i in 0..RECOVERY_BATCHES {
            let records = stream(&w, entities, i as u64, *BATCH_SIZES.last().unwrap());
            replay_records += records.len();
            durable.ingest(records).expect("durable ingest");
        }
        let queries: Vec<EntityId> =
            (0..entities).step_by(((entities / 16).max(1)) as usize).map(EntityId).collect();
        let oracle: Vec<_> = queries
            .iter()
            .map(|&q| durable.index().top_k(q, K, &measure).expect("live answers").0)
            .collect();
        drop(durable);

        let replay_start = Instant::now();
        let (recovered, report) =
            DurableShardedMinSigIndex::open(&dir, log_config).expect("recovery opens");
        let replay_s = replay_start.elapsed().as_secs_f64();
        assert_eq!(report.batches_replayed, RECOVERY_BATCHES, "every batch must replay");
        assert_eq!(report.records_replayed, replay_records);
        for (i, &query) in queries.iter().enumerate() {
            let (got, _) = recovered.index().top_k(query, K, &measure).expect("recovered answers");
            assert_eq!(
                got, oracle[i],
                "{entities} entities: recovered answer diverged from the live index \
                 for query {query}"
            );
        }

        size_rows.push(SizeRow {
            entities,
            indexed_entities,
            checkpoint_ms,
            commits,
            replay_ms: replay_s * 1e3,
            replay_records,
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    // O(batch) gate: the same batch's commit may not track population size.
    let smallest = &size_rows[0];
    let largest = &size_rows[size_rows.len() - 1];
    for (small, large) in smallest.commits.iter().zip(&largest.commits) {
        assert!(
            large.1 <= small.1 * COMMIT_FLAT_FACTOR,
            "commit latency for a {}-record batch grew from {:.3} ms ({} entities) to {:.3} ms \
             ({} entities): the WAL commit must be O(batch), not O(index)",
            small.0,
            small.1,
            smallest.entities,
            large.1,
            largest.entities,
        );
    }

    let mut rows = Vec::new();
    for row in &size_rows {
        let commits = row
            .commits
            .iter()
            .map(|&(batch, wal_commit_ms, ingest_ms)| {
                format!(
                    concat!(
                        "      {{\"batch_records\": {}, \"wal_commit_ms\": {:.4}, ",
                        "\"ingest_ms\": {:.4}}}"
                    ),
                    batch, wal_commit_ms, ingest_ms,
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        rows.push(format!(
            concat!(
                "    {{\"entities\": {}, \"indexed_entities\": {}, \"checkpoint_ms\": {:.4},\n",
                "     \"commits\": [\n{}\n     ],\n",
                "     \"recovery\": {{\"batches\": {}, \"records\": {}, \"replay_ms\": {:.4}, ",
                "\"records_per_sec\": {:.1}}}}}"
            ),
            row.entities,
            row.indexed_entities,
            row.checkpoint_ms,
            commits,
            RECOVERY_BATCHES,
            row.replay_records,
            row.replay_ms,
            row.replay_records as f64 / (row.replay_ms / 1e3).max(1e-12),
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"wal\",\n",
            "  \"shards\": {},\n",
            "  \"k\": {},\n",
            "  \"fsync\": true,\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        SHARDS,
        K,
        rows.join(",\n"),
    );
    // `cargo bench` runs with the package directory as cwd; anchor the
    // artifact at the workspace root, where CI picks it up.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wal.json");
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(
    name = wal;
    config = Criterion::default();
    targets = wal_commit
);
criterion_main!(wal);
